// Command tracegen records benchmark address traces to disk in the
// repository's binary trace format and replays them through a memory
// system — the Shade-plus-trace-files half of the paper's methodology.
// Files ending in .gz are transparently compressed.
//
// Usage:
//
//	tracegen -workload mgrid -o mgrid.trace            # record, 10% time-sampled
//	tracegen -workload mgrid -o mgrid.trace.gz -full   # record unsampled, gzipped
//	tracegen -replay mgrid.trace                       # simulate from a trace file
//	tracegen -info mgrid.trace                         # count events
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"streamsim/internal/core"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run parses args and dispatches; separated from main for testing.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name   = fs.String("workload", "", "benchmark to record")
		out    = fs.String("o", "", "output trace file (with -workload); .gz compresses")
		replay = fs.String("replay", "", "trace file to simulate")
		info   = fs.String("info", "", "trace file to summarize")
		full   = fs.Bool("full", false, "disable the paper's 10k/90k time sampling")
		scale  = fs.Float64("scale", 1.0, "workload iteration scale in (0, 1]")
		sizeS  = fs.String("size", "small", "input size: small or large")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *name != "":
		if *out == "" {
			return fmt.Errorf("-workload requires -o")
		}
		return recordTrace(stdout, *name, *sizeS, *out, *scale, !*full)
	case *replay != "":
		return replayTrace(stdout, *replay)
	case *info != "":
		return infoTrace(stdout, *info)
	default:
		fs.Usage()
		return fmt.Errorf("one of -workload, -replay or -info is required")
	}
}

// openOut creates the output file, gzipped when the name ends in .gz.
// close finalizes both layers.
func openOut(path string) (w io.Writer, close func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, f.Close, nil
	}
	gz := gzip.NewWriter(f)
	return gz, func() error {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// openIn opens a possibly-gzipped trace file.
func openIn(path string) (r io.Reader, close func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, f.Close, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return gz, func() error {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// recordTrace writes a (possibly time-sampled) benchmark trace.
func recordTrace(stdout io.Writer, name, sizeS, path string, scale float64, sampled bool) error {
	size := workload.SizeSmall
	switch sizeS {
	case "small":
	case "large":
		size = workload.SizeLarge
	default:
		return fmt.Errorf("unknown size %q (small or large)", sizeS)
	}
	w, err := workload.New(name, size)
	if err != nil {
		return err
	}
	out, closeOut, err := openOut(path)
	if err != nil {
		return err
	}
	tw := trace.NewWriter(out)
	var sink workload.Sink = tw
	var sampler *trace.TimeSampler
	if sampled {
		sampler, err = trace.NewTimeSampler(tw, trace.DefaultOnRefs, trace.DefaultOffRefs)
		if err != nil {
			closeOut()
			return err
		}
		sink = sampler
	}
	if err := w.Run(sink, scale); err != nil {
		closeOut()
		return err
	}
	if err := tw.Flush(); err != nil {
		closeOut()
		return err
	}
	fmt.Fprintf(stdout, "recorded %d events to %s", tw.Events(), path)
	if sampler != nil {
		fmt.Fprintf(stdout, " (time-sampled: %d kept, %d dropped)", sampler.Passed(), sampler.Dropped())
	}
	fmt.Fprintln(stdout)
	return closeOut()
}

// replayTrace simulates the paper's default memory system from a file.
func replayTrace(stdout io.Writer, path string) error {
	in, closeIn, err := openIn(path)
	if err != nil {
		return err
	}
	defer closeIn()
	r, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	if err := r.Replay(sys); err != nil {
		return err
	}
	res := sys.Results()
	fmt.Fprintf(stdout, "stream hit rate: %.1f%%\n", res.StreamHitRate())
	fmt.Fprintf(stdout, "extra bandwidth: %.1f%%\n", res.ExtraBandwidth())
	fmt.Fprintf(stdout, "L1D miss rate:   %.2f%%\n", res.DataMissRate())
	fmt.Fprintf(stdout, "probes: %d  allocations: %d  prefetches: %d (wasted %d)\n",
		res.Streams.Probes, res.Streams.Allocations,
		res.Streams.PrefetchesIssued, res.Streams.PrefetchesWasted)
	return nil
}

// infoTrace counts the events in a trace file.
func infoTrace(stdout io.Writer, path string) error {
	in, closeIn, err := openIn(path)
	if err != nil {
		return err
	}
	defer closeIn()
	r, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	var accs, instRecs, insts uint64
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if ev.Insts > 0 {
			instRecs++
			insts += ev.Insts
		} else {
			accs++
		}
	}
	fmt.Fprintf(stdout, "%s: %d accesses, %d instruction records (%d instructions)\n",
		path, accs, instRecs, insts)
	return nil
}
