package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNoModeFails(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("no mode flag should fail")
	}
}

func TestRecordRequiresOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "is"}, &out, &errb); err == nil {
		t.Fatal("-workload without -o should fail")
	}
}

func TestRecordInfoReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "is.trace")
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "is", "-o", path, "-scale", "0.05"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "time-sampled") {
		t.Errorf("record output missing sampling note: %s", out.String())
	}

	out.Reset()
	if err := run([]string{"-info", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "accesses") {
		t.Errorf("info output: %s", out.String())
	}

	out.Reset()
	if err := run([]string{"-replay", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stream hit rate") {
		t.Errorf("replay output: %s", out.String())
	}
}

func TestGzipRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "is.trace.gz")
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "is", "-o", path, "-scale", "0.05", "-full"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "time-sampled") {
		t.Error("-full should disable sampling")
	}
	out.Reset()
	if err := run([]string{"-replay", path}, &out, &errb); err != nil {
		t.Fatalf("gzipped replay: %v", err)
	}
	if !strings.Contains(out.String(), "stream hit rate") {
		t.Errorf("replay output: %s", out.String())
	}
}

func TestBadSizeRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "is", "-o", path, "-size", "jumbo"}, &out, &errb); err == nil {
		t.Fatal("bad size should fail")
	}
}

func TestReplayMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-replay", "/nonexistent/x.trace"}, &out, &errb); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestInfoRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := writeFile(path, []byte("not a trace")); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-info", path}, &out, &errb); err == nil {
		t.Fatal("garbage file should fail header validation")
	}
}

// writeFile is a tiny helper (os.WriteFile with default mode).
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
