package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMissingWorkloadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), nil, &out, &errb); err == nil {
		t.Fatal("missing -workload should fail")
	}
	if !strings.Contains(errb.String(), "mgrid") {
		t.Error("error path should list available benchmarks")
	}
}

func TestUnknownWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "nosuch"}, &out, &errb); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestBadSize(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "mgrid", "-size", "huge"}, &out, &errb); err == nil {
		t.Fatal("bad size should fail")
	}
}

func TestBadStrideScheme(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "mgrid", "-stride", "magic"}, &out, &errb); err == nil {
		t.Fatal("bad stride scheme should fail")
	}
}

func TestSingleBenchmarkRun(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "is", "-scale", "0.05"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "benchmark") || !strings.Contains(s, "is") {
		t.Errorf("output missing table:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 2 {
		t.Errorf("want header + one row:\n%s", s)
	}
}

func TestStreamsDisabled(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "is", "-streams", "0", "-scale", "0.05"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	// Hit rate column should be 0.0 with streams off.
	if !strings.Contains(out.String(), "0.0") {
		t.Errorf("expected zero hit rate:\n%s", out.String())
	}
}

func TestVerboseOutput(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "is", "-scale", "0.05", "-v"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"L1D:", "streams:", "bandwidth:", "instructions:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose output missing %q", want)
		}
	}
}

func TestVictimAndPartitionedFlags(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "is", "-scale", "0.05",
		"-assoc", "1", "-victim", "4", "-partitioned"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "is") {
		t.Error("run with victim/partitioned flags produced no row")
	}
}

func TestMinDeltaScheme(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "trfd", "-stride", "mindelta", "-scale", "0.05"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
}

func TestConfigFileWithOverride(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"preset": "section5", "streams": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	// -filter typed explicitly overrides the file's no-filter preset.
	err := run(context.Background(), []string{"-workload", "is", "-scale", "0.05",
		"-config", path, "-filter", "16", "-v"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "16-entry filter") {
		t.Errorf("explicit -filter should override the file:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "2 streams") {
		t.Errorf("file's stream count should survive:\n%s", out.String())
	}
}

func TestConfigFileMissing(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "is", "-config", "/no/such.json"}, &out, &errb); err == nil {
		t.Fatal("missing config file should fail")
	}
}
