// Client mode: `streamsim submit` and `streamsim wait` talk to a
// running simd daemon over the shared internal/service/api codec, so
// long experiments can run on a server while the CLI follows (or
// detaches from) the job.
//
//	streamsim submit -exp fig3 -scale 0.5 -wait
//	streamsim submit -workload mgrid -param streams -values 1,2,4,8
//	streamsim wait job-1 -csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"streamsim/internal/service/api"
	"streamsim/internal/sweeprun"
)

// newClient builds the API client for a -server flag value.
func newClient(server string) *api.Client {
	return &api.Client{Base: strings.TrimRight(server, "/")}
}

// parseValues parses a -values list.
func parseValues(s string) ([]int, error) {
	var vals []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// runSubmit implements `streamsim submit`.
func runSubmit(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("streamsim submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server = fs.String("server", "http://127.0.0.1:8210", "simd base URL")
		exp    = fs.String("exp", "", "paper experiment ID (see paperexp -list)")
		scale  = fs.Float64("scale", 0, "workload scale in (0, 1]; 0 means the default")
		name   = fs.String("workload", "", "sweep: benchmark name")
		param  = fs.String("param", "", "sweep: parameter to vary: "+sweeprun.ParamNames())
		values = fs.String("values", "", "sweep: comma-separated integer values")
		metric = fs.String("metric", "", "sweep: metric (hit, eb, missrate or cpi)")
		sizeS  = fs.String("size", "", "sweep: input size (small or large)")
		wait   = fs.Bool("wait", false, "follow the job and print its result")
		csv    = fs.Bool("csv", false, "with -wait, print the result as CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var req api.SubmitRequest
	switch {
	case *exp != "" && *name != "":
		return fmt.Errorf("-exp and -workload are mutually exclusive")
	case *exp != "":
		req = api.SubmitRequest{Experiment: *exp, Scale: *scale}
	case *name != "":
		if *param == "" || *values == "" {
			return fmt.Errorf("sweep submission needs -param and -values")
		}
		vals, err := parseValues(*values)
		if err != nil {
			return err
		}
		spec := sweeprun.Spec{
			Workload: *name, Size: *sizeS,
			Param: *param, Values: vals,
			Metric: *metric, Scale: *scale,
		}
		req = api.SubmitRequest{Sweep: &spec}
	default:
		return fmt.Errorf("nothing to submit: give -exp or -workload/-param/-values")
	}
	cl := newClient(*server)
	st, err := cl.Submit(ctx, req)
	if err != nil {
		return err
	}
	if st.Cached {
		fmt.Fprintf(stdout, "%s %s (cached)\n", st.ID, st.State)
	} else {
		fmt.Fprintf(stdout, "%s %s\n", st.ID, st.State)
	}
	if !*wait {
		return nil
	}
	if !st.State.Terminal() {
		if st, err = cl.Wait(ctx, st.ID); err != nil {
			return err
		}
	}
	return printResult(stdout, st, *csv)
}

// runWait implements `streamsim wait <job-id>`.
func runWait(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("streamsim wait", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server = fs.String("server", "http://127.0.0.1:8210", "simd base URL")
		csv    = fs.Bool("csv", false, "print the result as CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: streamsim wait [-server URL] [-csv] <job-id>")
	}
	st, err := newClient(*server).Wait(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	return printResult(stdout, st, *csv)
}

// printResult renders a terminal job, turning failed and cancelled
// states into errors so the process exit code reflects them.
func printResult(w io.Writer, st api.JobStatus, csv bool) error {
	switch st.State {
	case api.StateDone:
		if csv {
			fmt.Fprint(w, st.CSV)
		} else {
			fmt.Fprint(w, st.Text)
		}
		return nil
	case api.StateCancelled:
		return fmt.Errorf("job %s was cancelled", st.ID)
	case api.StateFailed:
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	default:
		return fmt.Errorf("job %s ended in unexpected state %s", st.ID, st.State)
	}
}
