package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"streamsim/internal/service"
	"streamsim/internal/service/api"
	"streamsim/internal/sweeprun"
	"streamsim/internal/tab"
)

// startFakeService runs a service with a canned runner and returns
// its base URL. The runner records the last request it saw.
func startFakeService(t *testing.T) (string, *api.SubmitRequest) {
	t.Helper()
	var last api.SubmitRequest
	svc := service.New(service.Config{
		Workers: 1,
		RunJob: func(_ context.Context, req api.SubmitRequest) (*tab.Table, error) {
			last = req
			tbl := &tab.Table{Title: "fake result", Columns: []string{"k", "v"}}
			tbl.AddRow("hit", "99.9")
			return tbl, nil
		},
	})
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(svc.Abort)
	return hs.URL, &last
}

func TestSubmitWaitExperiment(t *testing.T) {
	url, last := startFakeService(t)
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"submit", "-server", url, "-exp", "fig3", "-scale", "0.5", "-wait"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "job-1") || !strings.Contains(s, "fake result") {
		t.Errorf("output missing job id or result table:\n%s", s)
	}
	if last.Experiment != "fig3" || last.Scale != 0.5 {
		t.Errorf("service saw request %+v, want fig3 at 0.5", *last)
	}
}

func TestSubmitDetachedThenWait(t *testing.T) {
	url, _ := startFakeService(t)
	var out, errb bytes.Buffer
	ctx := context.Background()
	if err := run(ctx, []string{"submit", "-server", url, "-exp", "table1"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	id := strings.Fields(out.String())[0]
	out.Reset()
	if err := run(ctx, []string{"wait", "-server", url, "-csv", id}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hit,99.9") {
		t.Errorf("wait -csv output:\n%s", out.String())
	}
}

func TestSubmitSweepFlags(t *testing.T) {
	url, last := startFakeService(t)
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"submit", "-server", url, "-workload", "mgrid", "-param", "streams",
		"-values", "1,2,4", "-metric", "eb", "-wait"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	want := sweeprun.Spec{Workload: "mgrid", Param: "streams", Values: []int{1, 2, 4}, Metric: "eb"}.WithDefaults()
	got := last.Sweep
	if got == nil {
		t.Fatalf("service saw no sweep: %+v", *last)
	}
	if got.Workload != want.Workload || got.Param != want.Param || got.Metric != want.Metric ||
		got.Scale != want.Scale || len(got.Values) != 3 {
		t.Errorf("service saw sweep %+v, want %+v", *got, want)
	}
}

func TestSubmitMemoizedResponse(t *testing.T) {
	url, _ := startFakeService(t)
	ctx := context.Background()
	var out, errb bytes.Buffer
	if err := run(ctx, []string{"submit", "-server", url, "-exp", "table1", "-wait"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(ctx, []string{"submit", "-server", url, "-exp", "table1", "-wait"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(cached)") {
		t.Errorf("second submission should be marked cached:\n%s", out.String())
	}
}

func TestSubmitArgumentErrors(t *testing.T) {
	ctx := context.Background()
	var out, errb bytes.Buffer
	if err := run(ctx, []string{"submit", "-server", "http://x"}, &out, &errb); err == nil {
		t.Error("submit with nothing to run should fail")
	}
	if err := run(ctx, []string{"submit", "-server", "http://x", "-exp", "fig3", "-workload", "mgrid"}, &out, &errb); err == nil {
		t.Error("submit with both -exp and -workload should fail")
	}
	if err := run(ctx, []string{"submit", "-server", "http://x", "-workload", "mgrid"}, &out, &errb); err == nil {
		t.Error("sweep submit without -param/-values should fail")
	}
	if err := run(ctx, []string{"wait", "-server", "http://x"}, &out, &errb); err == nil {
		t.Error("wait without a job id should fail")
	}
}

func TestWaitFailedJobIsError(t *testing.T) {
	var svcURL string
	svc := service.New(service.Config{
		Workers: 1,
		RunJob: func(context.Context, api.SubmitRequest) (*tab.Table, error) {
			return nil, context.DeadlineExceeded
		},
	})
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(svc.Abort)
	svcURL = hs.URL
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"submit", "-server", svcURL, "-exp", "fig3", "-wait"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("waiting on a failed job: err = %v, want failure", err)
	}
}
