// Command streamsim runs one benchmark workload through a configured
// stream-buffer memory system and prints the paper's metrics: L1
// behaviour, stream hit rate, extra bandwidth and the stream-length
// distribution.
//
// Usage:
//
//	streamsim -workload mgrid [-streams 10] [-depth 2] [-filter 16]
//	          [-stride czone|mindelta|none] [-czone 16] [-size small|large]
//	          [-assoc 4] [-victim 0] [-partitioned] [-scale 1.0] [-v]
//
// With -workload all, every Table 1 benchmark is run in sequence.
//
// The subcommands `streamsim submit` and `streamsim wait` instead talk
// to a running simd job service; see client.go.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"streamsim/internal/config"
	"streamsim/internal/core"
	"streamsim/internal/stream"
	"streamsim/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "streamsim:", err)
		os.Exit(1)
	}
}

// run parses args and executes; separated from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "submit":
			return runSubmit(ctx, args[1:], stdout, stderr)
		case "wait":
			return runWait(ctx, args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("streamsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("workload", "", "benchmark name from the paper's Table 1, or 'all'")
		streams = fs.Int("streams", 10, "number of stream buffers (0 disables streams)")
		depth   = fs.Int("depth", 2, "stream buffer FIFO depth")
		filt    = fs.Int("filter", 16, "unit-stride filter entries (0 disables)")
		stride  = fs.String("stride", "czone", "non-unit-stride scheme: czone, mindelta or none")
		czone   = fs.Uint("czone", 16, "czone size in word-address bits")
		sizeStr = fs.String("size", "small", "input size: small or large (Table 4 benchmarks only)")
		scale   = fs.Float64("scale", 1.0, "iteration scale factor in (0, 1]")
		part    = fs.Bool("partitioned", false, "separate instruction and data stream sets (MacroTek style)")
		vic     = fs.Int("victim", 0, "victim cache entries per L1 (0 disables)")
		assoc   = fs.Uint("assoc", 4, "L1 associativity (1 = direct-mapped)")
		cfgPath = fs.String("config", "", "JSON configuration file (flags given explicitly override it)")
		verbose = fs.Bool("v", false, "print the full statistics breakdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *name == "" {
		fmt.Fprintln(stderr, "available benchmarks:")
		for _, n := range workload.Names() {
			fmt.Fprintf(stderr, "  %s\n", n)
		}
		return fmt.Errorf("-workload is required")
	}

	names := []string{*name}
	if *name == "all" {
		names = workload.Names()
	}

	size := workload.SizeSmall
	switch *sizeStr {
	case "small":
	case "large":
		size = workload.SizeLarge
	default:
		return fmt.Errorf("unknown size %q (small or large)", *sizeStr)
	}

	cfg := core.DefaultConfig()
	if *cfgPath != "" {
		var err error
		if cfg, err = config.Load(*cfgPath); err != nil {
			return err
		}
	}
	// Flags the user actually typed override the file (or, without a
	// file, configure the default system).
	set := func(name string) bool { return *cfgPath == "" || explicit[name] }
	if set("streams") || set("depth") {
		cfg.Streams = stream.Config{Streams: *streams, Depth: *depth}
	}
	if set("partitioned") {
		cfg.PartitionedStreams = *part && cfg.Streams.Streams > 0
	}
	if set("victim") {
		cfg.VictimEntries = *vic
	}
	if set("assoc") {
		cfg.L1I.Assoc = *assoc
		cfg.L1D.Assoc = *assoc
	}
	if cfg.Streams.Streams == 0 {
		cfg.Streams = stream.Config{}
		cfg.UnitFilterEntries = 0
		cfg.Stride = core.NoStrideDetection
	} else {
		if set("filter") {
			cfg.UnitFilterEntries = *filt
		}
		if set("czone") {
			cfg.CzoneBits = *czone
		}
		if set("stride") {
			switch *stride {
			case "czone":
				cfg.Stride = core.CzoneScheme
			case "mindelta":
				cfg.Stride = core.MinDeltaScheme
			case "none":
				cfg.Stride = core.NoStrideDetection
			default:
				return fmt.Errorf("unknown stride scheme %q (czone, mindelta or none)", *stride)
			}
		}
	}
	if *verbose {
		fmt.Fprintln(stdout, "system:", config.Describe(cfg))
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tD-miss%\tMPI%\thit%\tEB%\tprobes\tallocs\tshort%\tlong%")
	for _, n := range names {
		w, err := workload.New(n, size)
		if err != nil {
			return err
		}
		sys, err := core.New(cfg)
		if err != nil {
			return err
		}
		if err := w.RunContext(ctx, sys, *scale); err != nil {
			return err
		}
		r := sys.Results()
		dist := r.Streams.Lengths.Percent()
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.1f\t%d\t%d\t%.0f\t%.0f\n",
			n, r.DataMissRate(), r.MPI(), r.StreamHitRate(), r.ExtraBandwidth(),
			r.Streams.Probes, r.Streams.Allocations, dist[0], dist[4])
		if *verbose {
			tw.Flush()
			printVerbose(stdout, r)
		}
	}
	return tw.Flush()
}

// printVerbose dumps the full statistics of one run.
func printVerbose(w io.Writer, r core.Results) {
	fmt.Fprintf(w, "  L1I: %+v\n", r.L1I)
	fmt.Fprintf(w, "  L1D: %+v\n", r.L1D)
	fmt.Fprintf(w, "  streams: %+v\n", r.Streams)
	if r.StreamsI.Probes > 0 {
		fmt.Fprintf(w, "  streams (I): %+v\n", r.StreamsI)
		fmt.Fprintf(w, "  streams (D): %+v\n", r.StreamsD)
	}
	if r.VictimD.Probes > 0 || r.VictimI.Probes > 0 {
		fmt.Fprintf(w, "  victim (I): %+v\n", r.VictimI)
		fmt.Fprintf(w, "  victim (D): %+v\n", r.VictimD)
	}
	fmt.Fprintf(w, "  unit filter: %+v\n", r.UnitFilter)
	fmt.Fprintf(w, "  czone filter: %+v\n", r.CzoneFilter)
	fmt.Fprintf(w, "  min-delta: %+v\n", r.MinDelta)
	fmt.Fprintf(w, "  bandwidth: %+v  traffic=%d required=%d\n",
		r.Bandwidth, r.MemoryTraffic(), r.RequiredTraffic())
	fmt.Fprintf(w, "  instructions: %d\n", r.Instructions)
}
