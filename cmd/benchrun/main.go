// Command benchrun is the perf-regression harness: it runs the
// repository's Go benchmarks, parses the output (standard ns/op,
// B/op, allocs/op columns plus custom b.ReportMetric columns such as
// refs/s) into a machine-readable JSON report, and optionally gates
// against a committed baseline.
//
// Usage:
//
//	benchrun -out BENCH_after.json                  # run and record
//	benchrun -baseline BENCH_after.json             # run and gate
//	benchrun -baseline BENCH_after.json -update     # refresh baseline
//	benchrun -bench 'SystemThroughput' -count 5
//
// Gating rules, designed so the same baseline file works both on the
// machine that recorded it and on arbitrary CI runners:
//
//   - allocs/op: if the baseline says zero allocations, any allocation
//     fails, on every machine — allocation counts are deterministic.
//   - ns/op and custom metrics: compared only when the host CPU string
//     matches the baseline's (same-machine runs); a >tolerance
//     slowdown (or metric drop) fails. On a different CPU the timing
//     comparison is skipped and noted, because cross-machine ns/op
//     deltas measure the hardware, not the change.
//
// With -count > 1 the report keeps the best run per benchmark (lowest
// ns/op, highest metric values): minima are far more stable than means
// on shared machines.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Report is the BENCH_*.json schema.
type Report struct {
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	CPU        string                `json:"cpu"`
	Benchmarks map[string]*BenchStat `json:"benchmarks"`
}

// BenchStat is one benchmark's result.
type BenchStat struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric columns (e.g. "refs/s"),
	// assumed higher-is-better when gating.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "SystemThroughput|TraceReplay|ReplayMulti|ReplayIntra|Fig3Sharded|Halving", "benchmark regexp passed to go test -bench")
		benchtime = fs.String("benchtime", "1s", "go test -benchtime value (e.g. 2s, 100x)")
		count     = fs.Int("count", 1, "runs per benchmark; the best is kept")
		pkg       = fs.String("pkg", ".", "package containing the benchmarks")
		out       = fs.String("out", "", "write the JSON report to this file")
		baseline  = fs.String("baseline", "", "gate against this baseline JSON")
		update    = fs.Bool("update", false, "rewrite -baseline with this run's results")
		tolerance = fs.Float64("tolerance", 20, "allowed same-machine regression, percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *update && *baseline == "" {
		return fmt.Errorf("-update requires -baseline")
	}

	cmd := exec.Command("go", "test", "-run=^$",
		"-bench="+*bench, "-benchmem",
		"-benchtime="+*benchtime,
		"-count="+strconv.Itoa(*count), *pkg)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	rep, err := parseBenchOutput(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks matched %q", *bench)
	}

	if err := writeReport(stdout, rep); err != nil {
		return err
	}
	if *out != "" {
		if err := writeReportFile(*out, rep); err != nil {
			return err
		}
	}
	if *baseline != "" {
		if *update {
			fmt.Fprintf(stdout, "updating baseline %s\n", *baseline)
			return writeReportFile(*baseline, rep)
		}
		base, err := readReport(*baseline)
		if err != nil {
			return err
		}
		problems, notes := compare(base, rep, *tolerance/100)
		for _, n := range notes {
			fmt.Fprintln(stdout, "note:", n)
		}
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(stdout, "FAIL:", p)
			}
			return fmt.Errorf("%d benchmark regression(s) vs %s", len(problems), *baseline)
		}
		fmt.Fprintf(stdout, "ok: no regressions vs %s\n", *baseline)
	}
	return nil
}

// parseBenchOutput reads `go test -bench -benchmem` output. Benchmark
// lines look like
//
//	BenchmarkSystemThroughput-4  1000  21.10 ns/op  47401659 refs/s  0 B/op  0 allocs/op
//
// with a `cpu: ...` header. The -N GOMAXPROCS suffix is stripped so
// reports from machines with different core counts stay comparable.
func parseBenchOutput(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: map[string]*BenchStat{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		st := &BenchStat{Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad benchmark value %q in %q", f[i], line)
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				st.NsPerOp = v
			case "B/op":
				st.BytesPerOp = v
			case "allocs/op":
				st.AllocsPerOp = v
			default:
				if st.Metrics == nil {
					st.Metrics = map[string]float64{}
				}
				st.Metrics[unit] = v
			}
		}
		rep.Benchmarks[name] = merge(rep.Benchmarks[name], st)
	}
	return rep, sc.Err()
}

// merge keeps the best of two runs of one benchmark: lowest ns/op and
// allocations, highest custom metrics.
func merge(old, cur *BenchStat) *BenchStat {
	if old == nil {
		return cur
	}
	if cur.NsPerOp < old.NsPerOp {
		old.NsPerOp = cur.NsPerOp
		old.Iterations = cur.Iterations
	}
	if cur.BytesPerOp < old.BytesPerOp {
		old.BytesPerOp = cur.BytesPerOp
	}
	if cur.AllocsPerOp < old.AllocsPerOp {
		old.AllocsPerOp = cur.AllocsPerOp
	}
	for k, v := range cur.Metrics {
		if v > old.Metrics[k] {
			if old.Metrics == nil {
				old.Metrics = map[string]float64{}
			}
			old.Metrics[k] = v
		}
	}
	return old
}

// minSampleNs is the least total sampled time (ns/op × iterations)
// for which ns/op is trusted: below about a millisecond the figure is
// timer overhead, not the benchmark. This is what makes a
// `-benchtime 1x` smoke run safe — a one-iteration sample of a
// nanosecond-scale benchmark skips the timing gate (with a note)
// instead of failing on noise, while a one-iteration sample of a
// whole-trace replay is still several milliseconds and gates normally.
const minSampleNs = 1e6

// compare gates cur against base and returns hard failures plus
// informational notes. tol is fractional (0.2 = 20%).
func compare(base, cur *Report, tol float64) (problems, notes []string) {
	sameCPU := base.CPU != "" && base.CPU == cur.CPU
	if !sameCPU {
		notes = append(notes, fmt.Sprintf(
			"cpu %q differs from baseline %q: timing gates skipped, allocation gates still apply",
			cur.CPU, base.CPU))
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but not in this run", name))
			continue
		}
		// Allocation counts are deterministic, so this gate holds on
		// any machine; a zero-alloc baseline is a hard invariant.
		if b.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: %v allocs/op, baseline is allocation-free", name, c.AllocsPerOp))
		}
		if !sameCPU {
			continue
		}
		if c.NsPerOp*float64(c.Iterations) < minSampleNs {
			notes = append(notes, fmt.Sprintf(
				"%s: sample too short to time reliably, timing gate skipped (raise -benchtime)", name))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			problems = append(problems, fmt.Sprintf(
				"%s: %.4g ns/op is %.0f%% over baseline %.4g",
				name, c.NsPerOp, (c.NsPerOp/b.NsPerOp-1)*100, b.NsPerOp))
		}
		for unit, bv := range b.Metrics {
			if cv, ok := c.Metrics[unit]; ok && bv > 0 && cv < bv*(1-tol) {
				problems = append(problems, fmt.Sprintf(
					"%s: %.4g %s is %.0f%% under baseline %.4g",
					name, cv, unit, (1-cv/bv)*100, bv))
			}
		}
	}
	return problems, notes
}

func writeReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func writeReportFile(path string, rep *Report) error {
	var buf bytes.Buffer
	if err := writeReport(&buf, rep); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
