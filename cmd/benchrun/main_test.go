package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: streamsim
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSystemThroughput-4     	100000000	        21.10 ns/op	  47401659 refs/s	       0 B/op	       0 allocs/op
BenchmarkSystemThroughput-4     	120000000	        19.27 ns/op	  51892474 refs/s	       0 B/op	       0 allocs/op
BenchmarkTraceReplay-4          	     280	   8567566 ns/op	  52584903 refs/s	       3 B/op	       0 allocs/op
PASS
ok  	streamsim	31.816s
`

func parseSample(t *testing.T) *Report {
	t.Helper()
	rep, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchOutput(t *testing.T) {
	rep := parseSample(t)
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.GOOS, rep.GOARCH)
	}
	if rep.CPU != "Intel(R) Xeon(R) CPU @ 2.10GHz" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	st := rep.Benchmarks["SystemThroughput"]
	if st == nil {
		t.Fatal("SystemThroughput missing (GOMAXPROCS suffix not stripped?)")
	}
	// Two counts: the merged stat keeps the best of each column.
	if st.NsPerOp != 19.27 {
		t.Errorf("ns/op = %v, want best-of 19.27", st.NsPerOp)
	}
	if got := st.Metrics["refs/s"]; got != 51892474 {
		t.Errorf("refs/s = %v, want best-of 51892474", got)
	}
	if st.AllocsPerOp != 0 || st.BytesPerOp != 0 {
		t.Errorf("allocs/op=%v B/op=%v, want 0/0", st.AllocsPerOp, st.BytesPerOp)
	}
	if tr := rep.Benchmarks["TraceReplay"]; tr == nil || tr.NsPerOp != 8567566 {
		t.Errorf("TraceReplay = %+v", tr)
	}
}

func TestCompareSameCPU(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)

	// Identical runs: clean.
	if problems, _ := compare(base, cur, 0.2); len(problems) != 0 {
		t.Errorf("identical reports fail: %v", problems)
	}

	// 30% slowdown and a matching metric drop: two timing failures.
	cur = parseSample(t)
	cur.Benchmarks["SystemThroughput"].NsPerOp *= 1.3
	cur.Benchmarks["SystemThroughput"].Metrics["refs/s"] /= 1.3
	problems, _ := compare(base, cur, 0.2)
	if len(problems) != 2 {
		t.Errorf("got %d problems, want 2 (ns/op + refs/s): %v", len(problems), problems)
	}

	// 10% slowdown: inside the 20% tolerance.
	cur = parseSample(t)
	cur.Benchmarks["SystemThroughput"].NsPerOp *= 1.1
	if problems, _ := compare(base, cur, 0.2); len(problems) != 0 {
		t.Errorf("10%% slowdown fails a 20%% gate: %v", problems)
	}

	// New allocation on a zero-alloc baseline: hard failure.
	cur = parseSample(t)
	cur.Benchmarks["SystemThroughput"].AllocsPerOp = 1
	if problems, _ := compare(base, cur, 0.2); len(problems) != 1 {
		t.Errorf("allocation regression not caught: %v", problems)
	}

	// Missing benchmark: hard failure.
	cur = parseSample(t)
	delete(cur.Benchmarks, "TraceReplay")
	if problems, _ := compare(base, cur, 0.2); len(problems) != 1 {
		t.Errorf("missing benchmark not caught: %v", problems)
	}
}

func TestCompareShortSample(t *testing.T) {
	base := parseSample(t)
	// A smoke run: one iteration of a ~20ns benchmark is timer noise,
	// so its (terrible) timing must be noted, not failed; the
	// whole-trace replay's single 8.5ms iteration still gates.
	cur := parseSample(t)
	st := cur.Benchmarks["SystemThroughput"]
	st.Iterations = 1
	st.NsPerOp = 3263
	st.Metrics["refs/s"] = 394789
	problems, notes := compare(base, cur, 0.2)
	if len(problems) != 0 {
		t.Errorf("one-iteration noise failed the gate: %v", problems)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "SystemThroughput") {
			found = true
		}
	}
	if !found {
		t.Errorf("no skip note for the short sample: %v", notes)
	}

	// The replay benchmark at one iteration is still > 1ms of sample:
	// a 30% slowdown there must fail.
	cur = parseSample(t)
	tr := cur.Benchmarks["TraceReplay"]
	tr.Iterations = 1
	tr.NsPerOp *= 1.3
	tr.Metrics["refs/s"] /= 1.3
	if problems, _ := compare(base, cur, 0.2); len(problems) != 2 {
		t.Errorf("slow >1ms sample not gated: %v", problems)
	}
}

func TestCompareDifferentCPU(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)
	cur.CPU = "AMD EPYC 7B13"
	// Timings are incomparable across machines: a huge slowdown is
	// noted but not failed...
	cur.Benchmarks["SystemThroughput"].NsPerOp *= 10
	problems, notes := compare(base, cur, 0.2)
	if len(problems) != 0 {
		t.Errorf("cross-CPU timing delta failed the gate: %v", problems)
	}
	if len(notes) == 0 {
		t.Error("cross-CPU comparison produced no note")
	}
	// ...but the deterministic allocation gate still applies.
	cur.Benchmarks["SystemThroughput"].AllocsPerOp = 2
	if problems, _ := compare(base, cur, 0.2); len(problems) != 1 {
		t.Errorf("cross-CPU allocation regression not caught: %v", problems)
	}
}
