package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func doRun(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(context.Background(), args, &out, &errb)
	return out.String(), err
}

func TestRequiredFlags(t *testing.T) {
	if _, err := doRun(t); err == nil {
		t.Fatal("missing flags should fail")
	}
	if _, err := doRun(t, "-workload", "is", "-param", "streams"); err == nil {
		t.Fatal("missing -values should fail")
	}
}

func TestUnknownParam(t *testing.T) {
	_, err := doRun(t, "-workload", "is", "-param", "warp", "-values", "1")
	if err == nil || !strings.Contains(err.Error(), "streams") {
		t.Fatalf("unknown param error should list options, got %v", err)
	}
}

func TestBadValues(t *testing.T) {
	if _, err := doRun(t, "-workload", "is", "-param", "streams", "-values", "1,two"); err == nil {
		t.Fatal("non-integer value should fail")
	}
}

func TestUnknownMetric(t *testing.T) {
	if _, err := doRun(t, "-workload", "is", "-param", "streams",
		"-values", "1", "-metric", "joy", "-scale", "0.05"); err == nil {
		t.Fatal("unknown metric should fail")
	}
}

func TestStreamsSweep(t *testing.T) {
	out, err := doRun(t, "-workload", "is", "-param", "streams",
		"-values", "1,4,10", "-scale", "0.05")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hit vs streams") {
		t.Errorf("title missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 6 {
		t.Errorf("expected 3 data rows:\n%s", out)
	}
}

func TestCzoneSweepWithPlot(t *testing.T) {
	out, err := doRun(t, "-workload", "custom:0,1,0", "-param", "czone",
		"-values", "8,12,16", "-plot", "-scale", "0.05")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+--") {
		t.Errorf("plot frame missing:\n%s", out)
	}
}

func TestCustomMix(t *testing.T) {
	out, err := doRun(t, "-workload", "custom:1,0,0", "-param", "streams",
		"-values", "2", "-scale", "0.05")
	if err != nil {
		t.Fatal(err)
	}
	// Pure sequential: near-100% hit.
	if !strings.Contains(out, "100.0") && !strings.Contains(out, "99.") {
		t.Errorf("custom sequential sweep output:\n%s", out)
	}
}

func TestCustomMixMalformed(t *testing.T) {
	if _, err := doRun(t, "-workload", "custom:1,2", "-param", "streams",
		"-values", "2"); err == nil {
		t.Fatal("two-share custom mix should fail")
	}
}

func TestCPIMetric(t *testing.T) {
	out, err := doRun(t, "-workload", "is", "-param", "depth",
		"-values", "1,4", "-metric", "cpi", "-scale", "0.05")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cpi vs depth") {
		t.Errorf("output:\n%s", out)
	}
}

func TestZeroStreamsRejected(t *testing.T) {
	if _, err := doRun(t, "-workload", "is", "-param", "streams",
		"-values", "0", "-scale", "0.05"); err == nil {
		t.Fatal("streams=0 in a sweep should fail")
	}
}

func TestEBMetricAndVictimParam(t *testing.T) {
	out, err := doRun(t, "-workload", "is", "-param", "victim",
		"-values", "0,8", "-metric", "eb", "-scale", "0.05")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "eb vs victim") {
		t.Errorf("output:\n%s", out)
	}
}

func TestLatencyAndFilterParams(t *testing.T) {
	if _, err := doRun(t, "-workload", "is", "-param", "latency",
		"-values", "0,50", "-scale", "0.05"); err != nil {
		t.Fatal(err)
	}
	if _, err := doRun(t, "-workload", "is", "-param", "filter",
		"-values", "0,16", "-metric", "eb", "-scale", "0.05"); err != nil {
		t.Fatal(err)
	}
	// Negative latency and zero czone are rejected by the mutators.
	if _, err := doRun(t, "-workload", "is", "-param", "latency",
		"-values", "-5", "-scale", "0.05"); err == nil {
		t.Fatal("negative latency should fail")
	}
	if _, err := doRun(t, "-workload", "is", "-param", "czone",
		"-values", "0", "-scale", "0.05"); err == nil {
		t.Fatal("zero czone should fail")
	}
	if _, err := doRun(t, "-workload", "is", "-param", "assoc",
		"-values", "0", "-scale", "0.05"); err == nil {
		t.Fatal("zero associativity should fail")
	}
}

func TestMissRateMetricAndSizeFlag(t *testing.T) {
	if _, err := doRun(t, "-workload", "mgrid", "-param", "assoc",
		"-values", "1,4", "-metric", "missrate", "-size", "large", "-scale", "0.02"); err != nil {
		t.Fatal(err)
	}
	if _, err := doRun(t, "-workload", "mgrid", "-param", "assoc",
		"-values", "1", "-size", "gigantic"); err == nil {
		t.Fatal("bad size should fail")
	}
}

func TestDuplicateValuesRejected(t *testing.T) {
	_, err := doRun(t, "-workload", "is", "-param", "streams",
		"-values", "1,4,4", "-scale", "0.05")
	if err == nil || !strings.Contains(err.Error(), "duplicate value 4") {
		t.Fatalf("duplicate -values should fail clearly, got %v", err)
	}
}

func TestOptimizeMode(t *testing.T) {
	args := []string{"-optimize", "-workload", "is", "-scale", "0.05",
		"-space", "streams=1,4,8;depth=1,2", "-budget", "12", "-seed", "3"}
	out, err := doRun(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "winner: streams=") {
		t.Errorf("winner line missing:\n%s", out)
	}
	if !strings.Contains(out, "optimize hit over streams,depth (halving)") {
		t.Errorf("front table title missing:\n%s", out)
	}
	// Bit-reproducible for a fixed seed, at any -parallel width.
	for _, extra := range [][]string{nil, {"-parallel", "3"}, {"-parallel", "0"}} {
		got, err := doRun(t, append(append([]string{}, args...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		if got != out {
			t.Errorf("output diverged with %v:\n%s\nvs\n%s", extra, got, out)
		}
	}
	// A different seed is a different (but still valid) run.
	reseeded, err := doRun(t, append(append([]string{}, args...), "-seed", "99")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reseeded, "winner:") {
		t.Errorf("reseeded run lost the winner line:\n%s", reseeded)
	}
}

func TestOptimizeConstraintFlag(t *testing.T) {
	out, err := doRun(t, "-optimize", "-workload", "is", "-scale", "0.05",
		"-space", "streams=1,8", "-strategy", "grid", "-budget", "2",
		"-constraint", "cost<=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "winner: none") {
		t.Errorf("unsatisfiable constraint should yield no winner:\n%s", out)
	}
	if !strings.Contains(out, "constraint: cost<=0.5") {
		t.Errorf("constraint note missing:\n%s", out)
	}
}

func TestOptimizeFlagValidation(t *testing.T) {
	if _, err := doRun(t, "-optimize", "-workload", "is"); err == nil {
		t.Fatal("missing -space should fail")
	}
	if _, err := doRun(t, "-optimize", "-space", "streams=1,2"); err == nil {
		t.Fatal("missing -workload should fail")
	}
	if _, err := doRun(t, "-optimize", "-workload", "is",
		"-space", "streams"); err == nil {
		t.Fatal("malformed -space should fail")
	}
	if _, err := doRun(t, "-optimize", "-workload", "is",
		"-space", "streams=1,two"); err == nil {
		t.Fatal("non-integer space value should fail")
	}
	if _, err := doRun(t, "-optimize", "-workload", "is",
		"-space", "streams=1,1"); err == nil {
		t.Fatal("duplicate space value should fail")
	}
	if _, err := doRun(t, "-optimize", "-workload", "is",
		"-space", "streams=1,2", "-constraint", "eb=30"); err == nil {
		t.Fatal("malformed -constraint should fail")
	}
	if _, err := doRun(t, "-optimize", "-workload", "is",
		"-space", "streams=1,2", "-metric", "cpi", "-scale", "0.05"); err == nil {
		t.Fatal("cpi is not an optimizer objective and should fail")
	}
}

func TestParallelFlagMatchesSequential(t *testing.T) {
	seq, err := doRun(t, "-workload", "is", "-param", "streams",
		"-values", "1,4,10", "-scale", "0.05")
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []string{"3", "0"} { // explicit width and one-per-CPU
		got, err := doRun(t, "-workload", "is", "-param", "streams",
			"-values", "1,4,10", "-scale", "0.05", "-parallel", par)
		if err != nil {
			t.Fatal(err)
		}
		if got != seq {
			t.Errorf("-parallel %s output diverged:\nsequential:\n%s\nparallel:\n%s", par, seq, got)
		}
	}
	if _, err := doRun(t, "-workload", "is", "-param", "streams",
		"-values", "1", "-parallel", "-2", "-scale", "0.05"); err == nil {
		t.Fatal("negative -parallel should fail")
	}
}
