// Command sweep varies one memory-system parameter over a benchmark
// and tabulates (or plots) a chosen metric — the exploration loop
// behind every figure in the paper, generalized. The engine lives in
// internal/sweeprun, shared with the simd job service; this command
// adds flag parsing, profiling hooks and ASCII plotting.
//
// Usage:
//
//	sweep -workload mgrid -param streams -values 1,2,4,8,16
//	sweep -workload fftpde -param czone -values 10,12,14,16,18,20 -metric hit -plot
//	sweep -workload appbt -param depth -values 1,2,4,8 -metric eb
//	sweep -workload cgm -param assoc -values 1,2,4 -metric missrate
//
// Parameters: streams, depth, filter, czone, assoc, victim, latency.
// Metrics: hit (stream hit rate %), eb (extra bandwidth %),
// missrate (L1D miss %), cpi (effective CPI under default latencies).
//
// With -optimize the command searches a multi-dimensional space
// (internal/search) instead of sweeping one parameter, and answers
// the paper's cost-effectiveness questions:
//
//	sweep -optimize -workload mgrid -space 'streams=1,2,4,8;depth=1,2' -budget 32
//	sweep -optimize -workload mgrid -space 'streams=1,2,4,8' -strategy pareto \
//	      -constraint 'eb<=30' -seed 7
//
// Optimizer output is bit-reproducible for a fixed -seed at any
// -parallel width.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"streamsim/internal/plot"
	"streamsim/internal/profiling"
	"streamsim/internal/search"
	"streamsim/internal/sweeprun"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes; separated from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name   = fs.String("workload", "", "benchmark name (or 'custom:<seq>,<stride>,<random>' mix shares)")
		param  = fs.String("param", "", "parameter to sweep: "+sweeprun.ParamNames())
		values = fs.String("values", "", "comma-separated integer values")
		metric = fs.String("metric", "hit", "metric: hit, eb, missrate or cpi")
		scale  = fs.Float64("scale", 0.5, "workload iteration scale in (0, 1]")
		sizeS  = fs.String("size", "small", "input size: small or large")
		par    = fs.Int("parallel", 1, "max sweep points measured concurrently (0 = one per CPU); results are identical at any width")
		plotIt = fs.Bool("plot", false, "render the sweep as an ASCII chart")
		cpupr  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mempr  = fs.String("memprofile", "", "write a heap profile to this file")

		optimize = fs.Bool("optimize", false, "search a multi-dimensional config space instead of sweeping one parameter")
		space    = fs.String("space", "", "optimizer space: 'param=v1,v2,...;param=...' (see -param for names)")
		strategy = fs.String("strategy", "halving", "optimizer strategy: halving, pareto or grid")
		seed     = fs.Int64("seed", 1, "optimizer sampling seed; a fixed seed is bit-reproducible at any -parallel width")
		budget   = fs.Int("budget", 256, "optimizer evaluation budget")
		scratch  = fs.Bool("scratch", false, "disable the optimizer's checkpointed incremental replay (same results, every rung re-simulated from window 0)")
	)
	var constraints []search.Constraint
	fs.Func("constraint", "optimizer winner constraint 'metric<=value' or 'metric>=value' over hit, eb, missrate or cost (repeatable)", func(v string) error {
		c, err := search.ParseConstraint(v)
		if err != nil {
			return err
		}
		constraints = append(constraints, c)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := profiling.Start(*cpupr, *mempr)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stop(); err == nil {
			err = perr
		}
	}()
	if *optimize {
		parallel := *par
		if parallel == 0 {
			parallel = runtime.GOMAXPROCS(0)
		}
		if parallel < 0 {
			return fmt.Errorf("-parallel must be >= 0")
		}
		return runOptimize(ctx, optimizeArgs{
			workload: *name, size: *sizeS, scale: *scale, metric: *metric,
			space: *space, strategy: *strategy, seed: *seed, budget: *budget,
			constraints: constraints, parallel: parallel, scratch: *scratch,
		}, stdout, stderr)
	}
	if *name == "" || *param == "" || *values == "" {
		return fmt.Errorf("-workload, -param and -values are required")
	}
	var vals []int
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad value %q: %w", s, err)
		}
		vals = append(vals, v)
	}

	parallel := *par
	if parallel == 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	spec := sweeprun.Spec{
		Workload: *name,
		Size:     *sizeS,
		Param:    *param,
		Values:   vals,
		Metric:   *metric,
		Scale:    *scale,
		Parallel: parallel,
	}
	t, series, err := sweeprun.Run(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, t.Render())
	if *plotIt {
		ticks := make([]string, 0, len(vals))
		for _, v := range vals {
			ticks = append(ticks, strconv.Itoa(v))
		}
		chart := &plot.Chart{
			Title:  t.Title,
			XLabel: *param, YLabel: *metric,
			XTicks: ticks,
			Series: []plot.Series{{Name: *name, Values: series}},
			Height: 16,
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, chart.Render())
	}
	return nil
}

// optimizeArgs carries the parsed -optimize flags.
type optimizeArgs struct {
	workload, size, metric string
	space, strategy        string
	scale                  float64
	seed                   int64
	budget, parallel       int
	constraints            []search.Constraint
	scratch                bool
}

// runOptimize executes the optimizer mode: the front table and winner
// line go to stdout (bit-reproducible for a fixed seed — and identical
// with or without -scratch), generation progress and the replay-cost
// summary to stderr.
func runOptimize(ctx context.Context, a optimizeArgs, stdout, stderr io.Writer) error {
	if a.workload == "" || a.space == "" {
		return fmt.Errorf("-workload and -space are required with -optimize")
	}
	dims, err := parseSpace(a.space)
	if err != nil {
		return err
	}
	spec := search.Spec{
		Workload: a.workload, Size: a.size, Scale: a.scale, Metric: a.metric,
		Space: dims, Strategy: a.strategy, Budget: a.budget, Seed: a.seed,
		Constraints: a.constraints, Parallel: a.parallel, Scratch: a.scratch,
	}
	res, err := search.RunProgress(ctx, spec, func(p search.Progress) {
		fmt.Fprintf(stderr, "gen %d: %d/%d evals, front %d", p.Generation, p.Evals, p.Budget, p.FrontSize)
		if p.WindowsResumed > 0 {
			fmt.Fprintf(stderr, ", windows %d resumed + %d replayed", p.WindowsResumed, p.WindowsReplayed)
		}
		fmt.Fprintln(stderr)
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Table().Render())
	fmt.Fprintln(stdout, res.Summary())
	if res.RefsScratch > 0 {
		saved := float64(res.RefsScratch) / float64(max64(res.RefsSimulated, 1))
		fmt.Fprintf(stderr, "refs: simulated %d of %d scratch (%.2fx saved), eval cache hits %d\n",
			res.RefsSimulated, res.RefsScratch, saved, res.CacheHits)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// parseSpace parses 'param=v1,v2;param=v3,v4' into dimensions.
func parseSpace(s string) ([]search.Dim, error) {
	var dims []search.Dim
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, list, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad space dimension %q: want param=v1,v2,...", part)
		}
		d := search.Dim{Param: strings.TrimSpace(name)}
		for _, vs := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(vs))
			if err != nil {
				return nil, fmt.Errorf("bad value %q in dimension %q: %w", vs, d.Param, err)
			}
			d.Values = append(d.Values, v)
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("-space is empty")
	}
	return dims, nil
}
