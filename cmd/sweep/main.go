// Command sweep varies one memory-system parameter over a benchmark
// and tabulates (or plots) a chosen metric — the exploration loop
// behind every figure in the paper, generalized. The engine lives in
// internal/sweeprun, shared with the simd job service; this command
// adds flag parsing, profiling hooks and ASCII plotting.
//
// Usage:
//
//	sweep -workload mgrid -param streams -values 1,2,4,8,16
//	sweep -workload fftpde -param czone -values 10,12,14,16,18,20 -metric hit -plot
//	sweep -workload appbt -param depth -values 1,2,4,8 -metric eb
//	sweep -workload cgm -param assoc -values 1,2,4 -metric missrate
//
// Parameters: streams, depth, filter, czone, assoc, victim, latency.
// Metrics: hit (stream hit rate %), eb (extra bandwidth %),
// missrate (L1D miss %), cpi (effective CPI under default latencies).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"streamsim/internal/plot"
	"streamsim/internal/profiling"
	"streamsim/internal/sweeprun"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes; separated from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name   = fs.String("workload", "", "benchmark name (or 'custom:<seq>,<stride>,<random>' mix shares)")
		param  = fs.String("param", "", "parameter to sweep: "+sweeprun.ParamNames())
		values = fs.String("values", "", "comma-separated integer values")
		metric = fs.String("metric", "hit", "metric: hit, eb, missrate or cpi")
		scale  = fs.Float64("scale", 0.5, "workload iteration scale in (0, 1]")
		sizeS  = fs.String("size", "small", "input size: small or large")
		par    = fs.Int("parallel", 1, "max sweep points measured concurrently (0 = one per CPU); results are identical at any width")
		plotIt = fs.Bool("plot", false, "render the sweep as an ASCII chart")
		cpupr  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mempr  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := profiling.Start(*cpupr, *mempr)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stop(); err == nil {
			err = perr
		}
	}()
	if *name == "" || *param == "" || *values == "" {
		return fmt.Errorf("-workload, -param and -values are required")
	}
	var vals []int
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad value %q: %w", s, err)
		}
		vals = append(vals, v)
	}

	parallel := *par
	if parallel == 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	spec := sweeprun.Spec{
		Workload: *name,
		Size:     *sizeS,
		Param:    *param,
		Values:   vals,
		Metric:   *metric,
		Scale:    *scale,
		Parallel: parallel,
	}
	t, series, err := sweeprun.Run(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, t.Render())
	if *plotIt {
		ticks := make([]string, 0, len(vals))
		for _, v := range vals {
			ticks = append(ticks, strconv.Itoa(v))
		}
		chart := &plot.Chart{
			Title:  t.Title,
			XLabel: *param, YLabel: *metric,
			XTicks: ticks,
			Series: []plot.Series{{Name: *name, Values: series}},
			Height: 16,
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, chart.Render())
	}
	return nil
}
