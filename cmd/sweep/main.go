// Command sweep varies one memory-system parameter over a benchmark
// and tabulates (or plots) a chosen metric — the exploration loop
// behind every figure in the paper, generalized.
//
// Usage:
//
//	sweep -workload mgrid -param streams -values 1,2,4,8,16
//	sweep -workload fftpde -param czone -values 10,12,14,16,18,20 -metric hit -plot
//	sweep -workload appbt -param depth -values 1,2,4,8 -metric eb
//	sweep -workload cgm -param assoc -values 1,2,4 -metric missrate
//
// Parameters: streams, depth, filter, czone, assoc, victim, latency.
// Metrics: hit (stream hit rate %), eb (extra bandwidth %),
// missrate (L1D miss %), cpi (effective CPI under default latencies).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"streamsim/internal/core"
	"streamsim/internal/plot"
	"streamsim/internal/profiling"
	"streamsim/internal/tab"
	"streamsim/internal/timing"
	"streamsim/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// params maps a -param name to a config mutator.
var params = map[string]func(cfg *core.Config, v int) error{
	"streams": func(cfg *core.Config, v int) error {
		if v == 0 {
			return fmt.Errorf("streams must be >= 1 in a sweep")
		}
		cfg.Streams.Streams = v
		return nil
	},
	"depth": func(cfg *core.Config, v int) error {
		cfg.Streams.Depth = v
		return nil
	},
	"filter": func(cfg *core.Config, v int) error {
		cfg.UnitFilterEntries = v
		return nil
	},
	"czone": func(cfg *core.Config, v int) error {
		if v < 1 {
			return fmt.Errorf("czone bits must be positive")
		}
		cfg.CzoneBits = uint(v)
		return nil
	},
	"assoc": func(cfg *core.Config, v int) error {
		if v < 1 {
			return fmt.Errorf("associativity must be positive")
		}
		cfg.L1I.Assoc = uint(v)
		cfg.L1D.Assoc = uint(v)
		return nil
	},
	"victim": func(cfg *core.Config, v int) error {
		cfg.VictimEntries = v
		return nil
	},
	"latency": func(cfg *core.Config, v int) error {
		if v < 0 {
			return fmt.Errorf("latency must be non-negative")
		}
		cfg.Streams.Latency = uint64(v)
		return nil
	},
}

// paramNames lists the sweepable parameters for error messages.
func paramNames() string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	// Stable order for messages.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}

// run parses args and executes; separated from main for testing.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name   = fs.String("workload", "", "benchmark name (or 'custom:<seq>,<stride>,<random>' mix shares)")
		param  = fs.String("param", "", "parameter to sweep: "+paramNames())
		values = fs.String("values", "", "comma-separated integer values")
		metric = fs.String("metric", "hit", "metric: hit, eb, missrate or cpi")
		scale  = fs.Float64("scale", 0.5, "workload iteration scale in (0, 1]")
		sizeS  = fs.String("size", "small", "input size: small or large")
		plotIt = fs.Bool("plot", false, "render the sweep as an ASCII chart")
		cpupr  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mempr  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := profiling.Start(*cpupr, *mempr)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stop(); err == nil {
			err = perr
		}
	}()
	if *name == "" || *param == "" || *values == "" {
		return fmt.Errorf("-workload, -param and -values are required")
	}
	mutate, ok := params[*param]
	if !ok {
		return fmt.Errorf("unknown parameter %q (available: %s)", *param, paramNames())
	}
	var vals []int
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad value %q: %w", s, err)
		}
		vals = append(vals, v)
	}

	w, err := buildWorkload(*name, *sizeS)
	if err != nil {
		return err
	}

	t := &tab.Table{
		Title:   fmt.Sprintf("%s: %s vs %s", w.Name, *metric, *param),
		Columns: []string{*param, *metric},
	}
	var series plot.Series
	series.Name = w.Name
	ticks := make([]string, 0, len(vals))
	for _, v := range vals {
		cfg := core.DefaultConfig()
		if err := mutate(&cfg, v); err != nil {
			return err
		}
		m, err := measure(w, cfg, *metric, *scale)
		if err != nil {
			return err
		}
		t.AddRow(strconv.Itoa(v), tab.F(m))
		series.Values = append(series.Values, m)
		ticks = append(ticks, strconv.Itoa(v))
	}
	fmt.Fprint(stdout, t.Render())
	if *plotIt {
		chart := &plot.Chart{
			Title:  t.Title,
			XLabel: *param, YLabel: *metric,
			XTicks: ticks,
			Series: []plot.Series{series},
			Height: 16,
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, chart.Render())
	}
	return nil
}

// buildWorkload resolves a benchmark name or a custom:<mix> spec.
func buildWorkload(name, sizeS string) (*workload.Workload, error) {
	if mix, ok := strings.CutPrefix(name, "custom:"); ok {
		parts := strings.Split(mix, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("custom mix wants 3 comma-separated shares (seq,stride,random), got %q", mix)
		}
		var shares [3]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad share %q: %w", p, err)
			}
			shares[i] = v
		}
		return workload.Custom(workload.CustomParams{
			SequentialShare: shares[0],
			StrideShare:     shares[1],
			RandomShare:     shares[2],
		})
	}
	size := workload.SizeSmall
	switch sizeS {
	case "small":
	case "large":
		size = workload.SizeLarge
	default:
		return nil, fmt.Errorf("unknown size %q (small or large)", sizeS)
	}
	return workload.New(name, size)
}

// measure runs the workload through cfg and extracts the metric.
func measure(w *workload.Workload, cfg core.Config, metric string, scale float64) (float64, error) {
	switch metric {
	case "hit", "eb", "missrate":
		sys, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		if err := w.Run(sys, scale); err != nil {
			return 0, err
		}
		r := sys.Results()
		switch metric {
		case "hit":
			return r.StreamHitRate(), nil
		case "eb":
			return r.ExtraBandwidth(), nil
		default:
			return r.DataMissRate(), nil
		}
	case "cpi":
		m, err := timing.New(cfg, timing.DefaultLatencies())
		if err != nil {
			return 0, err
		}
		if err := w.Run(m, scale); err != nil {
			return 0, err
		}
		return m.Stats().CPI(), nil
	default:
		return 0, fmt.Errorf("unknown metric %q (hit, eb, missrate or cpi)", metric)
	}
}
