package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(analyzers) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v; want %d", len(all), err, len(analyzers))
	}
	two, err := selectAnalyzers("seededrand, maporder")
	if err != nil {
		t.Fatalf("selectAnalyzers: %v", err)
	}
	if len(two) != 2 || two[0].Name != "seededrand" || two[1].Name != "maporder" {
		t.Fatalf("selectAnalyzers picked %v", two)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("selectAnalyzers accepted an unknown analyzer")
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, stderr.String())
	}
	for _, a := range analyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

// TestRepoIsClean locks in the tentpole's acceptance criterion from the
// driver's own test suite: the simulator sources must be free of
// findings. It lints a representative slice of the hot paths rather
// than ./... to keep the test fast.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain via go list")
	}
	findings, err := Lint("../..", analyzers,
		"./internal/core/...", "./internal/mem/...", "./internal/cache/...")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
