package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/directives"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("", "")
	if err != nil || len(all) != len(analyzers) {
		t.Fatalf("selectAnalyzers(\"\", \"\") = %d analyzers, err %v; want %d", len(all), err, len(analyzers))
	}
	two, err := selectAnalyzers("seededrand, maporder", "")
	if err != nil {
		t.Fatalf("selectAnalyzers: %v", err)
	}
	if len(two) != 2 || two[0].Name != "seededrand" || two[1].Name != "maporder" {
		t.Fatalf("selectAnalyzers picked %v", two)
	}
	skipped, err := selectAnalyzers("", "hotpath, ctxflow")
	if err != nil {
		t.Fatalf("selectAnalyzers(skip): %v", err)
	}
	if len(skipped) != len(analyzers)-2 {
		t.Fatalf("skip left %d analyzers, want %d", len(skipped), len(analyzers)-2)
	}
	for _, a := range skipped {
		if a.Name == "hotpath" || a.Name == "ctxflow" {
			t.Errorf("skipped analyzer %s still selected", a.Name)
		}
	}
	both, err := selectAnalyzers("hotpath,lockdisc", "hotpath")
	if err != nil {
		t.Fatalf("selectAnalyzers(only+skip): %v", err)
	}
	if len(both) != 1 || both[0].Name != "lockdisc" {
		t.Fatalf("only+skip picked %v", both)
	}
	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Fatal("selectAnalyzers accepted an unknown analyzer")
	}
	if _, err := selectAnalyzers("", "nosuch"); err == nil {
		t.Fatal("selectAnalyzers accepted an unknown skip")
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, stderr.String())
	}
	for _, a := range analyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("sim.go", -1, 100)
	finding := analysis.Finding{
		Analyzer: analyzers[0],
		Pkg:      &analysis.Package{Fset: fset},
		Diag:     analysis.Diagnostic{Pos: f.Pos(10), Message: "boom"},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, toRecords([]analysis.Finding{finding}, "/nowhere")); err != nil {
		t.Fatal(err)
	}
	var got []record
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].File != "sim.go" || got[0].Line != 1 ||
		got[0].Analyzer != analyzers[0].Name || got[0].Message != "boom" ||
		got[0].Severity != analyzers[0].EffectiveSeverity() {
		t.Fatalf("decoded %+v", got)
	}
	buf.Reset()
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty findings encode as %q, want []", buf.String())
	}
}

// TestRecordOrderingAndDedup locks in the diff-stability contract:
// records sort by file, line, column, analyzer and message, and exact
// duplicates collapse to one.
func TestRecordOrderingAndDedup(t *testing.T) {
	fset := token.NewFileSet()
	fb := fset.AddFile("b.go", -1, 100)
	fa := fset.AddFile("a.go", -1, 100)
	pkg := &analysis.Package{Fset: fset}
	mk := func(a *analysis.Analyzer, pos token.Pos, msg string) analysis.Finding {
		return analysis.Finding{Analyzer: a, Pkg: pkg, Diag: analysis.Diagnostic{Pos: pos, Message: msg}}
	}
	findings := []analysis.Finding{
		mk(analyzers[1], fb.Pos(10), "later file"),
		mk(analyzers[1], fa.Pos(10), "zzz same pos, later analyzer... or not"),
		mk(analyzers[0], fa.Pos(10), "same pos, first analyzer"),
		mk(analyzers[0], fa.Pos(10), "same pos, first analyzer"), // exact duplicate
		mk(analyzers[0], fa.Pos(2), "earlier line"),
	}
	records := toRecords(findings, "/nowhere")
	if len(records) != 4 {
		t.Fatalf("got %d records, want 4 (duplicate dropped): %+v", len(records), records)
	}
	wantFiles := []string{"a.go", "a.go", "a.go", "b.go"}
	for i, r := range records {
		if r.File != wantFiles[i] {
			t.Fatalf("record %d in file %s, want %s (%+v)", i, r.File, wantFiles[i], records)
		}
	}
	if records[0].Line != 1 {
		t.Errorf("records not line-ordered: %+v", records)
	}
	if records[1].Analyzer != "pow2size" || records[2].Analyzer != "seededrand" {
		t.Errorf("same-position records not analyzer-ordered: %+v", records)
	}
}

// TestBaselineRoundTrip covers -write-baseline/-baseline: a saved
// baseline waives exactly its recorded findings, by file, analyzer
// and message — not by line, so findings that merely move stay
// waived.
func TestBaselineRoundTrip(t *testing.T) {
	records := []record{
		{File: "a.go", Line: 3, Col: 1, Analyzer: "maporder", Severity: "warn", Message: "m1"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "detflow", Severity: "error", Message: "m2"},
	}
	path := t.TempDir() + "/baseline.json"
	if err := saveBaseline(path, records); err != nil {
		t.Fatal(err)
	}
	waived, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	moved := []record{
		{File: "a.go", Line: 30, Col: 7, Analyzer: "maporder", Severity: "warn", Message: "m1"}, // moved: still waived
		{File: "a.go", Line: 9, Col: 1, Analyzer: "detflow", Severity: "error", Message: "m3"},  // new message: kept
	}
	got := filterBaseline(moved, waived)
	if len(got) != 1 || got[0].Message != "m3" {
		t.Fatalf("filterBaseline kept %+v, want only m3", got)
	}
}

// TestSeverityTiers pins the tier assignment: maporder is the one
// warn-tier analyzer (detflow subsumes it), everything else errors.
func TestSeverityTiers(t *testing.T) {
	for _, a := range analyzers {
		want := analysis.SeverityError
		if a.Name == "maporder" {
			want = analysis.SeverityWarn
		}
		if got := a.EffectiveSeverity(); got != want {
			t.Errorf("%s severity = %q, want %q", a.Name, got, want)
		}
	}
}

// TestSuiteMatchesDirectivesList keeps the directives analyzer's
// hard-coded name list in lockstep with the registered suite, so a
// renamed or added analyzer cannot silently invalidate
// //simlint:ignore validation.
func TestSuiteMatchesDirectivesList(t *testing.T) {
	suite := map[string]bool{}
	for _, a := range analyzers {
		suite[a.Name] = true
	}
	listed := map[string]bool{}
	for _, n := range directives.KnownAnalyzers {
		listed[n] = true
		if !suite[n] {
			t.Errorf("directives.KnownAnalyzers lists %q, which is not in the simlint suite", n)
		}
	}
	for _, a := range analyzers {
		if !listed[a.Name] {
			t.Errorf("analyzer %q is missing from directives.KnownAnalyzers", a.Name)
		}
	}
}

// TestRepoIsClean locks in the tentpole's acceptance criterion from the
// driver's own test suite: the simulator sources must be free of
// findings. It lints a representative slice of the hot paths rather
// than ./... to keep the test fast.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain via go list")
	}
	findings, err := Lint("../..", analyzers,
		"./internal/core/...", "./internal/mem/...", "./internal/cache/...")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s: [%s] %s",
			f.Pkg.Fset.Position(f.Diag.Pos), f.Analyzer.Name, f.Diag.Message)
	}
}
