package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"streamsim/internal/analysis"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("", "")
	if err != nil || len(all) != len(analyzers) {
		t.Fatalf("selectAnalyzers(\"\", \"\") = %d analyzers, err %v; want %d", len(all), err, len(analyzers))
	}
	two, err := selectAnalyzers("seededrand, maporder", "")
	if err != nil {
		t.Fatalf("selectAnalyzers: %v", err)
	}
	if len(two) != 2 || two[0].Name != "seededrand" || two[1].Name != "maporder" {
		t.Fatalf("selectAnalyzers picked %v", two)
	}
	skipped, err := selectAnalyzers("", "hotpath, ctxflow")
	if err != nil {
		t.Fatalf("selectAnalyzers(skip): %v", err)
	}
	if len(skipped) != len(analyzers)-2 {
		t.Fatalf("skip left %d analyzers, want %d", len(skipped), len(analyzers)-2)
	}
	for _, a := range skipped {
		if a.Name == "hotpath" || a.Name == "ctxflow" {
			t.Errorf("skipped analyzer %s still selected", a.Name)
		}
	}
	both, err := selectAnalyzers("hotpath,lockdisc", "hotpath")
	if err != nil {
		t.Fatalf("selectAnalyzers(only+skip): %v", err)
	}
	if len(both) != 1 || both[0].Name != "lockdisc" {
		t.Fatalf("only+skip picked %v", both)
	}
	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Fatal("selectAnalyzers accepted an unknown analyzer")
	}
	if _, err := selectAnalyzers("", "nosuch"); err == nil {
		t.Fatal("selectAnalyzers accepted an unknown skip")
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, stderr.String())
	}
	for _, a := range analyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("sim.go", -1, 100)
	finding := analysis.Finding{
		Analyzer: analyzers[0],
		Pkg:      &analysis.Package{Fset: fset},
		Diag:     analysis.Diagnostic{Pos: f.Pos(10), Message: "boom"},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, []analysis.Finding{finding}); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].File != "sim.go" || got[0].Line != 1 ||
		got[0].Analyzer != analyzers[0].Name || got[0].Message != "boom" {
		t.Fatalf("decoded %+v", got)
	}
	buf.Reset()
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty findings encode as %q, want []", buf.String())
	}
}

// TestRepoIsClean locks in the tentpole's acceptance criterion from the
// driver's own test suite: the simulator sources must be free of
// findings. It lints a representative slice of the hot paths rather
// than ./... to keep the test fast.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain via go list")
	}
	findings, err := Lint("../..", analyzers,
		"./internal/core/...", "./internal/mem/...", "./internal/cache/...")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s: [%s] %s",
			f.Pkg.Fset.Position(f.Diag.Pos), f.Analyzer.Name, f.Diag.Message)
	}
}
