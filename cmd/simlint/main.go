// Command simlint is the simulator's invariant checker: a multichecker
// driver for the custom static-analysis passes in internal/analysis.
//
// Each pass encodes an invariant of the paper's methodology that the
// type system cannot express:
//
//	seededrand  deterministic, config-seeded randomness
//	pow2size    power-of-two block/cache/czone geometry
//	maporder    no map-iteration order in simulation hot paths
//	ledgerpost  bandwidth ledger and traffic hook in lockstep
//	errdiscard  no dropped trace/config errors
//
// Usage:
//
//	simlint [-list] [-run name,name] [packages]
//
// Packages default to ./...; the exit status is 0 when clean, 1 when
// findings were reported, 2 on usage or load errors. `make lint` and CI
// run it over the whole repository.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/errdiscard"
	"streamsim/internal/analysis/ledgerpost"
	"streamsim/internal/analysis/maporder"
	"streamsim/internal/analysis/pow2size"
	"streamsim/internal/analysis/seededrand"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	seededrand.Analyzer,
	pow2size.Analyzer,
	maporder.Analyzer,
	ledgerpost.Analyzer,
	errdiscard.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the driver; separated from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(".", suite, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -run flag against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

// Lint loads the packages matching patterns under dir and applies every
// applicable analyzer, returning formatted findings.
func Lint(dir string, suite []*analysis.Analyzer, patterns ...string) ([]string, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, pkg := range pkgs {
		for _, a := range suite {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				findings = append(findings, fmt.Sprintf("%s: [%s] %s",
					pkg.Fset.Position(d.Pos), a.Name, d.Message))
			}
		}
	}
	return findings, nil
}
