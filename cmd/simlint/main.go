// Command simlint is the simulator's invariant checker: a multichecker
// driver for the custom static-analysis passes in internal/analysis.
//
// Each pass encodes an invariant of the paper's methodology that the
// type system cannot express:
//
//	seededrand  deterministic, config-seeded randomness
//	pow2size    power-of-two block/cache/czone geometry
//	maporder    no map-iteration order in simulation hot paths
//	ledgerpost  bandwidth ledger and traffic hook in lockstep
//	errdiscard  no dropped trace/config errors
//	hotpath     //simlint:hotpath functions transitively allocation-free
//	ctxflow     received contexts flow onward; no stray Background/TODO
//	lockdisc    mutex discipline in the service and sweep layers
//
// The last three are call-graph-aware: they share one set of module
// facts (internal/analysis/callgraph) built per run over every loaded
// package.
//
// Usage:
//
//	simlint [-list] [-json] [-only name,name] [-skip name,name] [packages]
//
// Packages default to ./...; the exit status is 0 when clean, 1 when
// findings were reported, 2 on usage or load errors. `make lint` and CI
// run it over the whole repository.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/ctxflow"
	"streamsim/internal/analysis/errdiscard"
	"streamsim/internal/analysis/hotpath"
	"streamsim/internal/analysis/ledgerpost"
	"streamsim/internal/analysis/lockdisc"
	"streamsim/internal/analysis/maporder"
	"streamsim/internal/analysis/pow2size"
	"streamsim/internal/analysis/seededrand"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	seededrand.Analyzer,
	pow2size.Analyzer,
	maporder.Analyzer,
	ledgerpost.Analyzer,
	errdiscard.Analyzer,
	hotpath.Analyzer,
	ctxflow.Analyzer,
	lockdisc.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the driver; separated from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	runAlias := fs.String("run", "", "alias for -only (kept for compatibility)")
	skip := fs.String("skip", "", "comma-separated analyzer names to skip")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (file/line/analyzer/message)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only == "" {
		*only = *runAlias
	} else if *runAlias != "" {
		fmt.Fprintln(stderr, "simlint: -run and -only are aliases; pass one")
		return 2
	}
	suite, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(".", suite, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			pos := f.Pkg.Fset.Position(f.Diag.Pos)
			fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, f.Analyzer.Name, f.Diag.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as one JSON array. An empty run prints
// [] rather than null so consumers can always range over the result.
func writeJSON(w io.Writer, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		out = append(out, jsonFinding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: f.Analyzer.Name,
			Message:  f.Diag.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -only/-skip flags against the suite.
func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		var out []string
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			out = append(out, name)
		}
		return out, nil
	}
	onlyNames, err := names(only)
	if err != nil {
		return nil, err
	}
	skipNames, err := names(skip)
	if err != nil {
		return nil, err
	}
	skipped := map[string]bool{}
	for _, n := range skipNames {
		skipped[n] = true
	}
	var suite []*analysis.Analyzer
	if onlyNames == nil {
		for _, a := range analyzers {
			if !skipped[a.Name] {
				suite = append(suite, a)
			}
		}
		return suite, nil
	}
	for _, n := range onlyNames {
		if !skipped[n] {
			suite = append(suite, byName[n])
		}
	}
	return suite, nil
}

// Lint loads the packages matching patterns under dir and applies every
// applicable analyzer through the facts-sharing suite driver.
func Lint(dir string, suite []*analysis.Analyzer, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunSuite(pkgs, suite)
}
