// Command simlint is the simulator's invariant checker: a multichecker
// driver for the custom static-analysis passes in internal/analysis.
//
// Each pass encodes an invariant of the paper's methodology that the
// type system cannot express:
//
//	seededrand  deterministic, config-seeded randomness
//	pow2size    power-of-two block/cache/czone geometry
//	maporder    no map-iteration order in simulation hot paths (warn;
//	            subsumed by detflow's flow-aware rule)
//	ledgerpost  bandwidth ledger and traffic hook in lockstep
//	errdiscard  no dropped trace/config errors
//	hotpath     //simlint:hotpath functions transitively allocation-free
//	ctxflow     received contexts flow onward; no stray Background/TODO
//	lockdisc    mutex discipline in the service and sweep layers
//	borrowck    //simlint:borrowed parameters not retained past the call
//	detflow     //simlint:deterministic roots transitively deterministic
//	statecov    //simlint:statefull handlers cover every //simlint:state field
//	mergesound  merge-class handlers combine counters additively, never overwrite
//	directives  every //simlint:* comment parses, resolves and attaches
//
// The call-graph-aware passes (hotpath, ctxflow, lockdisc, borrowck,
// detflow, statecov, mergesound) share one set of module facts
// (internal/analysis/callgraph) built per run over every loaded
// package.
//
// Usage:
//
//	simlint [-list] [-json] [-only name,name] [-skip name,name]
//	        [-baseline file] [-write-baseline file] [packages]
//
// Packages default to ./...; findings are sorted by file/line/column/
// analyzer and exactly-duplicate findings are dropped, so -json output
// is diff-stable. A baseline file (see -write-baseline and `make
// lint-baseline`) waives its recorded findings by (file, analyzer,
// message), letting a new analyzer land strict without blocking on
// pre-existing findings; entries carry no line numbers, so unrelated
// edits do not invalidate them. The exit status is 0 when clean (or
// when only warn-severity findings remain), 1 when error-severity
// findings were reported, 2 on usage or load errors. `make lint` and
// CI run it over the whole repository with the committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/borrowck"
	"streamsim/internal/analysis/ctxflow"
	"streamsim/internal/analysis/detflow"
	"streamsim/internal/analysis/directives"
	"streamsim/internal/analysis/errdiscard"
	"streamsim/internal/analysis/hotpath"
	"streamsim/internal/analysis/ledgerpost"
	"streamsim/internal/analysis/lockdisc"
	"streamsim/internal/analysis/maporder"
	"streamsim/internal/analysis/mergesound"
	"streamsim/internal/analysis/pow2size"
	"streamsim/internal/analysis/seededrand"
	"streamsim/internal/analysis/statecov"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	seededrand.Analyzer,
	pow2size.Analyzer,
	maporder.Analyzer,
	ledgerpost.Analyzer,
	errdiscard.Analyzer,
	hotpath.Analyzer,
	ctxflow.Analyzer,
	lockdisc.Analyzer,
	borrowck.Analyzer,
	detflow.Analyzer,
	statecov.Analyzer,
	mergesound.Analyzer,
	directives.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the driver; separated from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	runAlias := fs.String("run", "", "alias for -only (kept for compatibility)")
	skip := fs.String("skip", "", "comma-separated analyzer names to skip")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/severity/message)")
	baseline := fs.String("baseline", "", "waive findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only == "" {
		*only = *runAlias
	} else if *runAlias != "" {
		fmt.Fprintln(stderr, "simlint: -run and -only are aliases; pass one")
		return 2
	}
	suite, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(".", suite, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	records := toRecords(findings, mustAbs("."))
	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, records); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "simlint: baseline %s: %d entries\n", *writeBaseline, len(records))
		return 0
	}
	if *baseline != "" {
		waived, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		records = filterBaseline(records, waived)
	}
	if *jsonOut {
		if err := writeJSON(stdout, records); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, r := range records {
			// Warn-tier findings carry a "warning:" marker so the CI
			// problem matcher annotates them at the right severity;
			// error-tier lines keep the bare format.
			sev := ""
			if r.Severity == analysis.SeverityWarn {
				sev = "warning: "
			}
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s%s\n", r.File, r.Line, r.Col, r.Analyzer, sev, r.Message)
		}
	}
	errs, warns := 0, 0
	for _, r := range records {
		if r.Severity == analysis.SeverityWarn {
			warns++
		} else {
			errs++
		}
	}
	if warns > 0 {
		fmt.Fprintf(stderr, "simlint: %d warning(s)\n", warns)
	}
	if errs > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", errs)
		return 1
	}
	return 0
}

// record is one finding in driver form: a repo-relative path and the
// fields every output mode (text, JSON, baseline) agrees on.
type record struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// toRecords converts suite findings to records: paths relativized to
// baseDir, sorted by file/line/col/analyzer/message, exact duplicates
// dropped. The order is a total one over every field that reaches the
// output, so -json and the baseline are diff-stable run to run.
func toRecords(findings []analysis.Finding, baseDir string) []record {
	out := make([]record, 0, len(findings))
	for _, f := range findings {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(baseDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, record{
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: f.Analyzer.Name,
			Severity: f.Analyzer.EffectiveSeverity(),
			Message:  f.Diag.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.File != b.File:
			return a.File < b.File
		case a.Line != b.Line:
			return a.Line < b.Line
		case a.Col != b.Col:
			return a.Col < b.Col
		case a.Analyzer != b.Analyzer:
			return a.Analyzer < b.Analyzer
		default:
			return a.Message < b.Message
		}
	})
	dedup := out[:0]
	for i, r := range out {
		if i > 0 && r == out[i-1] {
			continue
		}
		dedup = append(dedup, r)
	}
	return dedup
}

// mustAbs resolves dir or falls back to it verbatim (relativization
// then simply keeps absolute paths).
func mustAbs(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	return abs
}

// baselineEntry is one waived finding. No line or column: a baseline
// survives unrelated edits to the file, and a waived finding that
// moves is still the same finding.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// loadBaseline reads a baseline file written by -write-baseline.
func loadBaseline(path string) (map[baselineEntry]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	waived := make(map[baselineEntry]bool, len(entries))
	for _, e := range entries {
		waived[e] = true
	}
	return waived, nil
}

// filterBaseline drops records the baseline waives.
func filterBaseline(records []record, waived map[baselineEntry]bool) []record {
	out := records[:0]
	for _, r := range records {
		if waived[baselineEntry{r.File, r.Analyzer, r.Message}] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// saveBaseline writes the current findings as a baseline. Entries are
// unique and inherit toRecords's ordering, so regeneration is
// diff-stable.
func saveBaseline(path string, records []record) error {
	entries := make([]baselineEntry, 0, len(records))
	seen := map[baselineEntry]bool{}
	for _, r := range records {
		e := baselineEntry{r.File, r.Analyzer, r.Message}
		if seen[e] {
			continue
		}
		seen[e] = true
		entries = append(entries, e)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeJSON emits the records as one JSON array. An empty run prints
// [] rather than null so consumers can always range over the result.
func writeJSON(w io.Writer, records []record) error {
	if records == nil {
		records = []record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// selectAnalyzers resolves the -only/-skip flags against the suite.
func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		var out []string
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			out = append(out, name)
		}
		return out, nil
	}
	onlyNames, err := names(only)
	if err != nil {
		return nil, err
	}
	skipNames, err := names(skip)
	if err != nil {
		return nil, err
	}
	skipped := map[string]bool{}
	for _, n := range skipNames {
		skipped[n] = true
	}
	var suite []*analysis.Analyzer
	if onlyNames == nil {
		for _, a := range analyzers {
			if !skipped[a.Name] {
				suite = append(suite, a)
			}
		}
		return suite, nil
	}
	for _, n := range onlyNames {
		if !skipped[n] {
			suite = append(suite, byName[n])
		}
	}
	return suite, nil
}

// Lint loads the packages matching patterns under dir and applies every
// applicable analyzer through the facts-sharing suite driver.
func Lint(dir string, suite []*analysis.Analyzer, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunSuite(pkgs, suite)
}
