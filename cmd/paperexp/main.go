// Command paperexp regenerates the paper's tables and figures.
//
// Usage:
//
//	paperexp -exp all            # every artefact, paper order
//	paperexp -exp fig3           # one artefact
//	paperexp -exp fig3,fig9      # several
//	paperexp -exp fig9 -plot     # figures as ASCII charts too
//	paperexp -exp table4 -scale 0.5
//	paperexp -exp table2 -format csv
//	paperexp -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamsim/internal/experiments"
	"streamsim/internal/profiling"
)

func main() {
	// Interrupts cancel the in-flight experiment within one replay
	// batch instead of killing the process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "paperexp:", err)
		os.Exit(1)
	}
}

// run parses args and executes; separated from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("paperexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		scale  = fs.Float64("scale", 1.0, "workload iteration scale in (0, 1]")
		shards = fs.Int("shards", 0, "window-shard count for hit-rate replays (0 = derive from trace, 1 = exact sequential)")
		list   = fs.Bool("list", false, "list available experiments and exit")
		timed  = fs.Bool("time", false, "print per-experiment wall time")
		plotIt = fs.Bool("plot", false, "render figure experiments as ASCII charts too")
		format = fs.String("format", "text", "output format: text or csv")
		cpupr  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mempr  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, err := profiling.Start(*cpupr, *mempr)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stop(); err == nil {
			err = perr
		}
	}()
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q (text or csv)", *format)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Paper)
		}
		return nil
	}

	opt := experiments.Options{Scale: *scale, Shards: *shards}
	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			todo = append(todo, e)
		}
	}

	for i, e := range todo {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		start := time.Now()
		t, err := e.Run(ctx, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *format == "csv" {
			fmt.Fprint(stdout, t.CSV())
		} else {
			fmt.Fprint(stdout, t.Render())
		}
		if *plotIt {
			if chart, ok := experiments.ChartFor(e.ID, t); ok {
				fmt.Fprintln(stdout)
				fmt.Fprint(stdout, chart.Render())
			}
		}
		if *timed {
			fmt.Fprintf(stdout, "(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
