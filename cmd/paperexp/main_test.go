package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig3", "table4", "extcpi", "extbase", "extcost"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list missing %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "fig42"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestBadFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-format", "xml"}, &out, &errb); err == nil {
		t.Fatal("bad format should fail")
	}
}

func TestSingleExperimentText(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "table2", "-scale", "0.05"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 2") || !strings.Contains(s, "trfd") {
		t.Errorf("table output incomplete:\n%s", s)
	}
}

func TestCSVFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "table2", "-scale", "0.05", "-format", "csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "# Table 2") {
		t.Errorf("CSV should start with a title comment:\n%s", s)
	}
	if !strings.Contains(s, "benchmark,EB %") {
		t.Errorf("CSV header missing:\n%s", s)
	}
}

func TestPlotFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "fig9", "-scale", "0.05", "-plot"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "+--") {
		t.Errorf("plot frame missing:\n%s", s)
	}
	if !strings.Contains(s, "czone size") {
		t.Errorf("axis label missing:\n%s", s)
	}
}

func TestTimedFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "table2", "-scale", "0.05", "-time"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(table2 in ") {
		t.Errorf("timing line missing:\n%s", out.String())
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "table2,table3", "-scale", "0.05"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 2") || !strings.Contains(s, "Table 3") {
		t.Errorf("both experiments should run:\n%s", s)
	}
}
