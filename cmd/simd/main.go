// Command simd is the simulation service daemon: it serves the
// internal/service HTTP JSON API, accepting experiment and sweep jobs
// on a bounded worker pool with memoized results, NDJSON progress
// streams and expvar metrics.
//
// Usage:
//
//	simd -addr :8210
//	simd -addr :8210 -workers 4 -backlog 64
//	simd -selftest            # end-to-end smoke against an in-process server
//
// Endpoints:
//
//	POST   /v1/jobs           submit {"experiment":"fig3","scale":0.5} or {"sweep":{...}}
//	GET    /v1/jobs           list all jobs
//	GET    /v1/jobs/{id}      job status (result table when done)
//	GET    /v1/jobs/{id}/stream  NDJSON status lines until terminal
//	DELETE /v1/jobs/{id}      cancel
//	GET    /healthz           liveness (503 while draining)
//	GET    /metrics           expvar-backed counters
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, waits up to
// -drain for queued and running jobs to finish, then cancels whatever
// remains and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamsim/internal/experiments"
	"streamsim/internal/service"
	"streamsim/internal/service/api"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

// run parses args and executes; separated from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8210", "listen address")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		backlog  = fs.Int("backlog", 256, "job queue depth beyond running jobs")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-drain window on shutdown")
		selftest = fs.Bool("selftest", false, "run the end-to-end self-test and exit")
		scale    = fs.Float64("selftest-scale", 0.1, "workload scale the self-test runs experiments at")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *selftest {
		return runSelfTest(ctx, *scale, stdout)
	}
	return serve(ctx, *addr, *workers, *backlog, *drain, stdout)
}

// serve runs the daemon until ctx is cancelled, then drains.
func serve(ctx context.Context, addr string, workers, backlog int, drain time.Duration, out io.Writer) error {
	svc := service.New(service.Config{Workers: workers, Backlog: backlog})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(out, "simd: listening on %s\n", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "simd: draining (up to %s)\n", drain)
	done := make(chan struct{})
	go func() { svc.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(drain):
		fmt.Fprintln(out, "simd: drain window expired, cancelling remaining jobs")
		svc.Abort()
	}
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shctx)
}

// runSelfTest starts an in-process server on an ephemeral port and
// exercises the acceptance path end to end: every experiment's
// service result must be byte-identical to the in-process run, a
// repeat submission must be served from the memoized store, and an
// in-flight job must cancel promptly.
func runSelfTest(ctx context.Context, scale float64, out io.Writer) error {
	svc := service.New(service.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go httpSrv.Serve(ln) // Serve's error surfaces as client failures below
	defer httpSrv.Close()
	cl := &api.Client{Base: "http://" + ln.Addr().String()}
	if err := cl.Health(ctx); err != nil {
		return err
	}
	fmt.Fprintf(out, "simd selftest: server up on %s\n", ln.Addr())

	// 1. Every experiment through the service, byte-identical to the
	// direct in-process run.
	for _, e := range experiments.All() {
		st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: e.ID, Scale: scale})
		if err != nil {
			return fmt.Errorf("submit %s: %w", e.ID, err)
		}
		st, err = cl.Wait(ctx, st.ID)
		if err != nil {
			return fmt.Errorf("wait %s: %w", e.ID, err)
		}
		if st.State != api.StateDone {
			return fmt.Errorf("%s: state %s (error: %s)", e.ID, st.State, st.Error)
		}
		want, err := e.Run(ctx, experiments.Options{Scale: scale})
		if err != nil {
			return fmt.Errorf("direct run %s: %w", e.ID, err)
		}
		if st.Text != want.Render() {
			return fmt.Errorf("%s: service table differs from in-process run", e.ID)
		}
		fmt.Fprintf(out, "simd selftest: %-8s ok (%d rows, matches in-process run)\n", e.ID, len(want.Rows))
	}

	// 2. A repeat submission must be answered from the memoized store.
	first := experiments.All()[0].ID
	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: first, Scale: scale})
	if err != nil {
		return err
	}
	if !st.Cached || st.State != api.StateDone {
		return fmt.Errorf("resubmitted %s: cached=%v state=%s, want memoized done job", first, st.Cached, st.State)
	}
	fmt.Fprintf(out, "simd selftest: resubmitted %s served from memo store\n", first)

	// 3. An in-flight full-scale job must cancel promptly.
	st, err = cl.Submit(ctx, api.SubmitRequest{Experiment: "fig3", Scale: 1.0})
	if err != nil {
		return err
	}
	id := st.ID
	for st.State == api.StateQueued {
		time.Sleep(10 * time.Millisecond)
		if st, err = cl.Get(ctx, id); err != nil {
			return err
		}
	}
	time.Sleep(100 * time.Millisecond) // let the replay loops spin up
	cancelAt := time.Now()
	if _, err := cl.Cancel(ctx, id); err != nil {
		return err
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if st, err = cl.Wait(wctx, id); err != nil {
		return fmt.Errorf("waiting for cancelled job: %w", err)
	}
	if st.State != api.StateCancelled {
		return fmt.Errorf("cancelled job ended in state %s", st.State)
	}
	fmt.Fprintf(out, "simd selftest: in-flight fig3 cancelled in %s\n", time.Since(cancelAt).Round(time.Millisecond))

	fmt.Fprintln(out, "simd selftest: PASS")
	return nil
}
