# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test lint vet race fuzz fuzz-smoke bench paper quick examples clean

all: build lint test

build:
	$(GO) build ./...

# lint runs go vet plus simlint, the simulator's own invariant checkers
# (see internal/analysis and `go run ./cmd/simlint -list`).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/simlint ./...

# vet is kept as an alias for muscle memory; prefer `make lint`.
vet: lint

test:
	$(GO) test ./...

# race runs the full suite under the race detector.
race:
	$(GO) test -race ./...

# Short fuzz pass over the property surfaces (codec, cache ops).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzReader -fuzztime=30s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzCacheOps -fuzztime=30s ./internal/cache/

# The same at CI scale: 10 seconds per target.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzReader -fuzztime=10s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzCacheOps -fuzztime=10s ./internal/cache/

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure of the paper at full scale.
paper:
	$(GO) run ./cmd/paperexp -exp all -time

# The same, at reduced scale for a fast smoke pass.
quick:
	$(GO) run ./cmd/paperexp -exp all -scale 0.1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/strided
	$(GO) run ./examples/filtering
	$(GO) run ./examples/cachecompare
	$(GO) run ./examples/timing

clean:
	$(GO) clean ./...
