# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test lint lint-baseline lint-fixtures vet race fuzz fuzz-smoke bench bench-smoke bench-check bench-update sweep-smoke optimize-smoke paper quick examples serve service-smoke clean

all: build lint test

build:
	$(GO) build ./...

# lint runs go vet plus simlint, the simulator's own invariant checkers
# (see internal/analysis and `go run ./cmd/simlint -list`). Findings
# recorded in .simlint-baseline.json are waived; the committed baseline
# is empty, so any entry appearing there is a conscious debt decision.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/simlint -baseline .simlint-baseline.json ./...

# lint-baseline rewrites the committed baseline from the current
# findings, for adopting a new analyzer before its findings are fixed.
lint-baseline:
	$(GO) run ./cmd/simlint -write-baseline .simlint-baseline.json ./...

# lint-fixtures runs the analyzers' own test suites: the analysistest
# fixtures under internal/analysis/*/testdata (flagged and allowed code
# for every rule, including statecov's dropped-field and mergesound's
# clobbered-counter snapshot fixtures), the driver and call-graph unit
# tests, and the static-vs-runtime set matches at the repo root
# (hot-path vs alloc gates, deterministic roots vs equivalence gates).
lint-fixtures:
	$(GO) test ./internal/analysis/... ./cmd/simlint
	$(GO) test -run 'TestHotpathStaticMatchesAllocGates|TestDetflowStaticMatchesEquivalenceGates' .

# vet is kept as an alias for muscle memory; prefer `make lint`.
vet: lint

test:
	$(GO) test ./...

# race runs the full suite under the race detector.
race:
	$(GO) test -race ./...

# Short fuzz pass over the property surfaces (codec, cache ops).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzReader -fuzztime=30s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzCacheOps -fuzztime=30s ./internal/cache/

# The same at CI scale: 10 seconds per target.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzReader -fuzztime=10s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzCacheOps -fuzztime=10s ./internal/cache/

bench:
	$(GO) test -bench=. -benchmem .

# Hot-path benchmark regexp shared by the bench-* gates below.
BENCH_HOT = SystemThroughput$$|SystemThroughputBatch$$|TraceReplay$$|TraceReplayScalar$$|ReplayMulti2$$|ReplayMulti8$$|ReplayIntra2$$|ReplayIntra8$$|Fig3Sharded$$|HalvingScratch$$|HalvingIncremental$$

# bench-smoke is the CI gate: one iteration per hot-path benchmark,
# checked against the committed baseline (BENCH_after.json) by
# cmd/benchrun. Allocation regressions fail on any machine; timing
# regressions >20% fail only where the sample is long enough to trust
# and the CPU matches the baseline's (see cmd/benchrun docs).
bench-smoke:
	$(GO) run ./cmd/benchrun -bench '$(BENCH_HOT)' -benchtime 1x -baseline BENCH_after.json

# bench-check is the same gate with real timings, for same-machine use
# before sending a performance-sensitive change.
bench-check:
	$(GO) run ./cmd/benchrun -bench '$(BENCH_HOT)' -benchtime 2s -count 3 -baseline BENCH_after.json

# bench-update refreshes the committed baseline on this machine.
bench-update:
	$(GO) run ./cmd/benchrun -bench '$(BENCH_HOT)' -benchtime 2s -count 5 -baseline BENCH_after.json -update

# replay-smoke exercises the window-sharded replay engine end to end:
# the same fig3 regeneration runs at a forced eight-way chunk plan on
# one worker and on every core; the two tables must be byte-identical
# (the chunk plan is a function of the trace alone, so worker width
# changes wall-clock time only). Closeness of the sharded statistics
# to the exact sequential ones is pinned separately by the ShardExact
# oracle and the bounded-divergence test in internal/core.
replay-smoke:
	GOMAXPROCS=1 $(GO) run ./cmd/paperexp -exp fig3 -scale 0.1 -shards 8 > replay-1worker.out
	$(GO) run ./cmd/paperexp -exp fig3 -scale 0.1 -shards 8 > replay-nworker.out
	cmp replay-1worker.out replay-nworker.out
	rm -f replay-1worker.out replay-nworker.out

# sweep-smoke exercises the parallel sweep scheduler end to end: the
# same 8-value stream-count sweep runs serial (-parallel 1) and at one
# worker per CPU (-parallel 0); the two outputs must be byte-identical
# (the scheduler preserves deterministic value order at any width).
SWEEP_SMOKE_ARGS = -workload mgrid -param streams -values 1,2,3,4,6,8,12,16 -scale 0.1
sweep-smoke:
	$(GO) run ./cmd/sweep $(SWEEP_SMOKE_ARGS) -parallel 1 > sweep-serial.out
	$(GO) run ./cmd/sweep $(SWEEP_SMOKE_ARGS) -parallel 0 > sweep-parallel.out
	cmp sweep-serial.out sweep-parallel.out
	rm -f sweep-serial.out sweep-parallel.out

# optimize-smoke is the config-space optimizer gate: on a space small
# enough to enumerate, seeded successive halving must converge on the
# same winner the exhaustive grid finds, and a repeated seeded run (at
# a different -parallel width) must be byte-identical.
#
# The incremental legs gate the checkpointed replay layer (DESIGN.md
# §12) on a config whose rung schedule floors (applu's small input is
# an 8-window trace): the checkpointed run must print byte-identical
# results to a -scratch run — extended-rung scores equal from-scratch
# prefix scores — and again at any -parallel width, while its stderr
# replay-cost line reports at least a 2x refs saving and a nonzero
# eval-memo hit count.
OPTIMIZE_SMOKE_ARGS = -optimize -workload mgrid -space 'streams=1,2,4,8' -budget 16 -seed 3 -scale 0.1
OPTIMIZE_INCR_ARGS = -optimize -workload applu -space 'streams=1,2,3,4,5,6,8,12,16' -budget 24 -seed 3 -scale 0.05
optimize-smoke:
	$(GO) run ./cmd/sweep $(OPTIMIZE_SMOKE_ARGS) -strategy grid > optimize-grid.out
	$(GO) run ./cmd/sweep $(OPTIMIZE_SMOKE_ARGS) -strategy halving -parallel 1 > optimize-halving.out
	$(GO) run ./cmd/sweep $(OPTIMIZE_SMOKE_ARGS) -strategy halving -parallel 0 > optimize-again.out
	cmp optimize-halving.out optimize-again.out
	grep '^winner:' optimize-grid.out > optimize-grid.winner
	grep '^winner:' optimize-halving.out > optimize-halving.winner
	cmp optimize-grid.winner optimize-halving.winner
	$(GO) run ./cmd/sweep $(OPTIMIZE_INCR_ARGS) > optimize-incr.out 2> optimize-incr.err
	$(GO) run ./cmd/sweep $(OPTIMIZE_INCR_ARGS) -scratch > optimize-scratch.out 2> /dev/null
	cmp optimize-incr.out optimize-scratch.out
	$(GO) run ./cmd/sweep $(OPTIMIZE_INCR_ARGS) -parallel 0 > optimize-incr-par.out 2> /dev/null
	cmp optimize-incr.out optimize-incr-par.out
	awk '/^refs:/ { if (2*$$3 <= $$5 && $$NF+0 > 0) ok=1 } END { exit !ok }' optimize-incr.err
	rm -f optimize-grid.out optimize-halving.out optimize-again.out optimize-grid.winner optimize-halving.winner \
		optimize-incr.out optimize-incr.err optimize-scratch.out optimize-incr-par.out

# serve runs the simd job-service daemon (SIGINT/SIGTERM drain
# gracefully; see cmd/simd and internal/service).
serve:
	$(GO) run ./cmd/simd -addr :8210

# service-smoke is the end-to-end service gate: an in-process simd
# self-test that checks every experiment's service result is
# byte-identical to the direct in-process run, that a resubmission is
# served from the memoized job store, and that an in-flight job
# cancels promptly.
service-smoke:
	$(GO) run ./cmd/simd -selftest -selftest-scale 0.05

# Regenerate every table and figure of the paper at full scale.
paper:
	$(GO) run ./cmd/paperexp -exp all -time

# The same, at reduced scale for a fast smoke pass.
quick:
	$(GO) run ./cmd/paperexp -exp all -scale 0.1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/strided
	$(GO) run ./examples/filtering
	$(GO) run ./examples/cachecompare
	$(GO) run ./examples/timing

clean:
	$(GO) clean ./...
