# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet fuzz bench paper quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short fuzz pass over the property surfaces (codec, cache ops).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzReader -fuzztime=30s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/trace/
	$(GO) test -run=Fuzz -fuzz=FuzzCacheOps -fuzztime=30s ./internal/cache/

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure of the paper at full scale.
paper:
	$(GO) run ./cmd/paperexp -exp all -time

# The same, at reduced scale for a fast smoke pass.
quick:
	$(GO) run ./cmd/paperexp -exp all -scale 0.1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/strided
	$(GO) run ./examples/filtering
	$(GO) run ./examples/cachecompare
	$(GO) run ./examples/timing

clean:
	$(GO) clean ./...
