module streamsim

go 1.22
