package bench

import (
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

// detGateFiles hold the repo's byte-identical equivalence tests: the
// golden service pass, the parallel-vs-sequential sweep comparison and
// the trace codec round trips. Each carries a
// `//simlint:deterministic <function>` directive naming the
// result-producing root it exercises, in types.Func.FullName form.
var detGateFiles = []string{
	"internal/core/replay_prefix_test.go",
	"internal/core/replay_resume_test.go",
	"internal/core/replay_window_test.go",
	"internal/search/search_test.go",
	"internal/service/golden_test.go",
	"internal/sweeprun/sweeprun_test.go",
	"internal/trace/store_test.go",
}

// TestDetflowStaticMatchesEquivalenceGates ties the two halves of the
// determinism story together. The static half is the set of
// //simlint:deterministic-annotated functions that cmd/simlint's
// detflow analyzer proves transitively free of nondeterministic
// constructs. The runtime half is the set of entry points the
// equivalence tests replay and diff byte-for-byte. This test asserts
// they describe the same roots:
//
//  1. every root a gate file declares resolves to a function in the
//     module call graph (no stale directives after a rename) and is
//     actually annotated //simlint:deterministic — an equivalence test
//     must not exercise an entry point the static suite leaves
//     unverified, and
//  2. every //simlint:deterministic-annotated function is declared by
//     some gate — the static guarantee never covers a root no runtime
//     equivalence test measures.
//
// Unlike the hotpath gate test, the match is exact set equality rather
// than reachability: deterministic roots are the specific functions
// whose outputs the golden tests diff, not a closure over callees
// (callees are covered by detflow's own traversal).
//
// Directives in _test.go files are invisible to the simlint driver
// (package loading excludes test files), so naming a root here imposes
// no static obligation on the tests themselves.
func TestDetflowStaticMatchesEquivalenceGates(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the module via go list")
	}
	pkgs, err := analysis.Load(".", "./internal/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	g := callgraph.Build(pkgs)

	roots := detGateRoots(t)
	if len(roots) == 0 {
		t.Fatal("no //simlint:deterministic directives found in the gate files")
	}

	// Rule 1: every declared root must exist and carry the annotation.
	declared := map[string]bool{}
	for _, name := range roots {
		declared[name] = true
		fn, ok := g.Funcs[name]
		if !ok {
			t.Errorf("gate directive names %s, which is not in the module call graph (renamed or removed?)", name)
			continue
		}
		if !fn.Deterministic {
			t.Errorf("gate directive names %s, but it is not annotated //simlint:deterministic; annotate it or drop the gate", name)
		}
	}

	// Rule 2: every statically-verified deterministic root is gated.
	var ungated []string
	for name, fn := range g.Funcs {
		if fn.Deterministic && !declared[name] {
			ungated = append(ungated, name)
		}
	}
	sort.Strings(ungated)
	for _, name := range ungated {
		t.Errorf("%s is //simlint:deterministic but no byte-identical equivalence test declares it; add a gate or drop the annotation", name)
	}
}

// detGateRoots parses the gate files and collects the function names
// declared by their //simlint:deterministic directives.
func detGateRoots(t *testing.T) []string {
	t.Helper()
	const prefix = "//simlint:deterministic "
	var roots []string
	fset := token.NewFileSet()
	for _, path := range detGateFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, prefix); ok {
					name := strings.TrimSpace(rest)
					if name == "" {
						t.Errorf("%s: bare //simlint:deterministic directive; gate files must name the root", fset.Position(c.Pos()))
						continue
					}
					roots = append(roots, name)
				}
			}
		}
	}
	return roots
}
