// Package bench is the paper's benchmark harness: one testing.B
// benchmark per evaluation table and figure (regenerating the artefact
// at a reduced trace scale and reporting its headline metric), the
// ablation benches DESIGN.md calls out, and microbenchmarks of the
// simulator's hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The artefact benches report custom metrics (hit rates, EB) via
// b.ReportMetric, so `-bench` output doubles as a compact results
// summary. For full-scale tables use cmd/paperexp.
package bench

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"streamsim/internal/cache"
	"streamsim/internal/core"
	"streamsim/internal/experiments"
	"streamsim/internal/filter"
	"streamsim/internal/mem"
	"streamsim/internal/search"
	"streamsim/internal/stream"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// benchScale keeps each artefact bench iteration around a second.
const benchScale = 0.1

// benchOpts are shared by the artefact benches.
var benchOpts = experiments.Options{Scale: benchScale}

// runExperiment is the shared body of the per-artefact benches.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (benchmark characteristics).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig3 regenerates Figure 3 (hit rate vs number of streams).
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkTable2 regenerates Table 2 (extra bandwidth of ordinary
// streams).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig5 regenerates Figure 5 (filter effect on hit rate/EB).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable3 regenerates Table 3 (stream length distribution).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig8 regenerates Figure 8 (non-unit stride detection).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (czone size sensitivity).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable4 regenerates Table 4 (streams vs secondary cache).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// --- ablation benches -------------------------------------------------

// ablationWorkloads are a representative spread: one long-stream code,
// one short-stream code, one strided code, one irregular code.
var ablationWorkloads = []string{"mgrid", "appbt", "fftpde", "bdna"}

// runAblation traces each ablation workload through cfg and reports
// the mean stream hit rate as a custom metric.
func runAblation(b *testing.B, cfg core.Config) {
	b.Helper()
	var hit float64
	for i := 0; i < b.N; i++ {
		hit = 0
		for _, name := range ablationWorkloads {
			w, err := workload.New(name, workload.SizeSmall)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Run(sys, benchScale); err != nil {
				b.Fatal(err)
			}
			hit += sys.Results().StreamHitRate()
		}
		hit /= float64(len(ablationWorkloads))
	}
	b.ReportMetric(hit, "hit%")
}

// BenchmarkAblationDepth sweeps the stream FIFO depth the paper fixes
// at two. Depth only matters against memory latency ("a stream should
// be deep enough so that it can cover the main memory latency"), so
// this ablation models a 30-reference prefetch latency and reports the
// ready-hit rate: hits whose data had actually returned.
func BenchmarkAblationDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Streams = stream.Config{Streams: 10, Depth: depth, Latency: 30}
			var ready float64
			for i := 0; i < b.N; i++ {
				ready = 0
				for _, name := range ablationWorkloads {
					w, err := workload.New(name, workload.SizeSmall)
					if err != nil {
						b.Fatal(err)
					}
					sys, err := core.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if err := w.Run(sys, benchScale); err != nil {
						b.Fatal(err)
					}
					r := sys.Results()
					if r.Streams.Probes > 0 {
						ready += 100 * float64(r.Streams.Hits-r.Streams.PendingHits) /
							float64(r.Streams.Probes)
					}
				}
				ready /= float64(len(ablationWorkloads))
			}
			b.ReportMetric(ready, "ready-hit%")
		})
	}
}

// BenchmarkAblationFilterSize sweeps the unit-stride filter size
// around the paper's 8-16 sweet spot.
func BenchmarkAblationFilterSize(b *testing.B) {
	for _, size := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.UnitFilterEntries = size
			runAblation(b, cfg)
		})
	}
}

// BenchmarkAblationFilterOrder compares the paper's arrangement (czone
// filter behind the unit-stride filter) with the czone scheme alone.
func BenchmarkAblationFilterOrder(b *testing.B) {
	b.Run("czone-behind-unit-filter", func(b *testing.B) {
		runAblation(b, core.DefaultConfig())
	})
	b.Run("czone-alone", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.UnitFilterEntries = 0
		runAblation(b, cfg)
	})
}

// BenchmarkAblationRealloc compares LRU stream reallocation (the
// paper's policy) with FIFO.
func BenchmarkAblationRealloc(b *testing.B) {
	for _, pol := range []stream.Realloc{stream.ReallocLRU, stream.ReallocFIFO} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Streams.Realloc = pol
			runAblation(b, cfg)
		})
	}
}

// BenchmarkAblationMinDelta compares the czone partition scheme with
// the minimum-delta alternative the paper rejected on hardware cost.
func BenchmarkAblationMinDelta(b *testing.B) {
	b.Run("czone", func(b *testing.B) {
		runAblation(b, core.DefaultConfig())
	})
	b.Run("min-delta", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Stride = core.MinDeltaScheme
		runAblation(b, cfg)
	})
}

// BenchmarkAblationPartitioned verifies the paper's finding that
// partitioned instruction/data streams (the MacroTek arrangement) are
// not beneficial: the large on-chip instruction cache leaves too few
// instruction misses to justify a second set.
func BenchmarkAblationPartitioned(b *testing.B) {
	for _, part := range []bool{false, true} {
		name := "unified"
		if part {
			name = "partitioned"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.PartitionedStreams = part
			runAblation(b, cfg)
		})
	}
}

// BenchmarkAblationVictimDM measures Jouppi's victim cache on a
// direct-mapped L1 (the configuration the paper's 4-way choice
// sidesteps): the victim buffer recovers conflict misses the streams
// cannot.
func BenchmarkAblationVictimDM(b *testing.B) {
	for _, entries := range []int{0, 4, 16} {
		b.Run(fmt.Sprintf("victim=%d", entries), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.L1I.Assoc = 1
			cfg.L1I.Replacement = cache.LRU
			cfg.L1D.Assoc = 1
			cfg.L1D.Replacement = cache.LRU
			cfg.VictimEntries = entries
			var miss float64
			for i := 0; i < b.N; i++ {
				miss = 0
				for _, name := range ablationWorkloads {
					w, err := workload.New(name, workload.SizeSmall)
					if err != nil {
						b.Fatal(err)
					}
					sys, err := core.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if err := w.Run(sys, benchScale); err != nil {
						b.Fatal(err)
					}
					r := sys.Results()
					// Effective miss rate: misses the victim cache
					// could not recover.
					if r.L1D.Accesses > 0 {
						miss += 100 * float64(r.L1D.Misses-r.VictimD.Hits) /
							float64(r.L1D.Accesses)
					}
				}
				miss /= float64(len(ablationWorkloads))
			}
			b.ReportMetric(miss, "eff-miss%")
		})
	}
}

// --- microbenchmarks ---------------------------------------------------

// BenchmarkCacheAccess measures the set-associative lookup hot path.
//
//simlint:hotpath (*streamsim/internal/cache.Cache).Read
func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.Config{
		Name: "L1D", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i%4096) * 64)
	}
}

// BenchmarkStreamProbe measures the multi-way head-compare path on a
// hitting stream.
func BenchmarkStreamProbe(b *testing.B) {
	s, err := stream.NewSet(mem.DefaultGeometry(), stream.Config{Streams: 10, Depth: 2})
	if err != nil {
		b.Fatal(err)
	}
	s.AllocateUnit(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Probe(mem.Addr(i + 1)) {
			b.Fatal("bench stream broke")
		}
	}
}

// BenchmarkUnitFilterLookup measures the filter's history search.
func BenchmarkUnitFilterLookup(b *testing.B) {
	f, err := filter.NewUnitStride(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(mem.Addr(i * 977)) // never consecutive: worst case
	}
}

// BenchmarkCzoneObserve measures the non-unit-stride FSM.
func BenchmarkCzoneObserve(b *testing.B) {
	f, err := filter.NewNonUnitStride(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(mem.Addr(1<<20 + i*300))
	}
}

// BenchmarkSystemThroughput measures full-system references per second
// on a mixed (sweep + scatter) synthetic stream.
//
//simlint:hotpath (*streamsim/internal/core.System).Access
func BenchmarkSystemThroughput(b *testing.B) {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Addr(1<<24 + i*8)
		if i&7 == 0 {
			a = mem.Addr(1<<26 + (i*7919)&(1<<22-1))
		}
		sys.Access(mem.Access{Addr: a, Kind: mem.Read})
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkSystemThroughputBatch is BenchmarkSystemThroughput through
// the batched entry point: the same reference stream delivered in
// trace.ReplayBatchLen chunks via System.AccessBatch, the shape every
// replay loop uses.
//
//simlint:hotpath (*streamsim/internal/core.System).AccessBatch
func BenchmarkSystemThroughputBatch(b *testing.B) {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]mem.Access, trace.ReplayBatchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		n := len(batch)
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			k := i + j
			a := mem.Addr(1<<24 + k*8)
			if k&7 == 0 {
				a = mem.Addr(1<<26 + (k*7919)&(1<<22-1))
			}
			batch[j] = mem.Access{Addr: a, Kind: mem.Read}
		}
		sys.AccessBatch(batch[:n])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// replayTrace memoizes one recorded workload trace for the replay
// benchmarks: mgrid at full experiment scale — long unit-stride
// streams with stencil reuse, the trace shape every experiment
// replays most. Full scale matters for the replay comparison: the
// materialized []mem.Access mirror is tens of megabytes (it streams
// from DRAM, exactly as it did when the experiments kept traces that
// way), while the compact store is a few megabytes and stays
// cache-resident. A reduced-scale fixture would let the materialized
// slice sit in the last-level cache and measure a regime the
// experiments never run in.
var replayTrace struct {
	once  sync.Once
	store *trace.Store
	accs  []mem.Access
	err   error
}

func replayFixture(b *testing.B) (*trace.Store, []mem.Access) {
	b.Helper()
	replayTrace.once.Do(func() {
		w, err := workload.New("mgrid", workload.SizeSmall)
		if err != nil {
			replayTrace.err = err
			return
		}
		// A trace.Store is itself a workload.Sink, so the run records
		// straight into the compact encoding.
		st := trace.NewStore(int(workload.EstimateRefs("mgrid", workload.SizeSmall, 1.0)))
		if err := w.Run(st, 1.0); err != nil {
			replayTrace.err = err
			return
		}
		replayTrace.store = st
		buf := make([]mem.Access, trace.ReplayBatchLen)
		it := st.Iter()
		for n := it.Next(buf); n > 0; n = it.Next(buf) {
			replayTrace.accs = append(replayTrace.accs, buf[:n]...)
		}
	})
	if replayTrace.err != nil {
		b.Fatal(replayTrace.err)
	}
	return replayTrace.store, replayTrace.accs
}

// BenchmarkTraceReplay measures the experiment replay path end to end
// (core.ReplayStore): decode the compact trace store in batches — on
// the PC-skipping fast path, since a System never reads PCs — and feed
// System.AccessBatch. One op is one full-trace replay; refs/s is the
// headline simulator throughput number cmd/benchrun tracks.
//
//simlint:hotpath streamsim/internal/core.ReplayStore
func BenchmarkTraceReplay(b *testing.B) {
	store, _ := replayFixture(b)
	refs := store.Len()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.New(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := core.ReplayStore(ctx, sys, store); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkTraceReplayScalar replays the same trace the way the
// experiments did before batching existed: a materialized []mem.Access
// walked with one System.Access call per reference. Kept as the
// comparison point for BenchmarkTraceReplay (it is also the memory
// shape the compact store replaced: 24 bytes per reference).
//
//simlint:hotpath (*streamsim/internal/core.System).Access
func BenchmarkTraceReplayScalar(b *testing.B) {
	_, accs := replayFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.New(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range accs {
			sys.Access(a)
		}
	}
	b.ReportMetric(float64(len(accs))*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// benchReplayMulti measures the multi-config fan-out engine: one
// decode pass drives nSys systems (sequential mode, the shape the
// experiments use — the win being measured is decode elimination, not
// goroutines). refs/s is aggregate: trace length × nSys per op.
//
//simlint:hotpath streamsim/internal/core.ReplayStoreMultiMode
func benchReplayMulti(b *testing.B, nSys int) {
	store, _ := replayFixture(b)
	refs := store.Len()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		systems := make([]*core.System, nSys)
		for j := range systems {
			sys, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			systems[j] = sys
		}
		if err := core.ReplayStoreMultiMode(ctx, systems, store, core.FanOutSequential); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(nSys)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkReplayMulti2 fans one decode out to 2 systems — the
// fig5/fig8 shape (plain vs filtered).
func BenchmarkReplayMulti2(b *testing.B) { benchReplayMulti(b, 2) }

// BenchmarkReplayMulti8 fans one decode out to 8 systems — the
// fig3/fig9 shape (a full x-axis sweep per benchmark).
func BenchmarkReplayMulti8(b *testing.B) { benchReplayMulti(b, 8) }

// benchReplayIntra measures the window-sharded engine end to end: the
// same trace and system count as benchReplayMulti, but the trace
// itself splits into window chunks (forced to eight so the plan — and
// therefore the statistics — is identical on every host) consumed by
// GOMAXPROCS workers from forked state. refs/s counts trace length ×
// nSys, excluding the warmup replays, so the number is directly
// comparable to ReplayMultiN: the gap is the win of intra-trace
// parallelism on multi-core hosts, or its fork/warmup overhead on one
// core.
//
//simlint:hotpath streamsim/internal/core.ReplayStoreMultiWindowed
func benchReplayIntra(b *testing.B, nSys int) {
	store, _ := replayFixture(b)
	refs := store.Len()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		systems := make([]*core.System, nSys)
		for j := range systems {
			sys, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			systems[j] = sys
		}
		if err := core.ReplayStoreMultiWindowed(ctx, systems, store, core.ShardOptions{Shards: 8}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(nSys)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkReplayIntra2 window-shards a 2-system fan-out group.
func BenchmarkReplayIntra2(b *testing.B) { benchReplayIntra(b, 2) }

// BenchmarkReplayIntra8 window-shards an 8-system fan-out group — the
// fig3 shape with the trace split across the cores as well.
func BenchmarkReplayIntra8(b *testing.B) { benchReplayIntra(b, 8) }

// BenchmarkFig3Sharded regenerates Figure 3 with forced window
// sharding (the paperexp -shards path): its wall-clock per op is the
// sharded fig3 latency number BENCH_*.json tracks. One untimed run
// first warms the experiments' trace cache, so every timed op
// measures replay alone and the single-iteration CI gate sees the
// same regime the committed baseline averaged.
func BenchmarkFig3Sharded(b *testing.B) {
	e, err := experiments.Lookup("fig3")
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Scale: benchScale, Shards: 8}
	if _, err := e.Run(context.Background(), opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHalving runs one full successive-halving optimization per op —
// the optimize-smoke incremental configuration (applu's 8-window small
// input, a 9-value streams space, budget 24), whose rung schedule
// floors so the checkpoint, resume and eval-memo paths are all
// exercised. The scratch/incremental pair is the committed evidence
// for DESIGN.md §12: same spec, same result, only the replay work
// differs (~2.1x fewer references incremental).
func benchHalving(b *testing.B, scratch bool) {
	b.Helper()
	spec := search.Spec{
		Workload: "applu",
		Scale:    0.05,
		Space:    []search.Dim{{Param: "streams", Values: []int{1, 2, 3, 4, 5, 6, 8, 12, 16}}},
		Budget:   24,
		Seed:     3,
		Scratch:  scratch,
	}
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHalvingScratch re-simulates every rung from window 0 (the
// pre-checkpoint optimizer), the baseline for HalvingIncremental.
func BenchmarkHalvingScratch(b *testing.B) { benchHalving(b, true) }

// BenchmarkHalvingIncremental runs the same optimization with the
// checkpointed incremental-replay layer on.
func BenchmarkHalvingIncremental(b *testing.B) { benchHalving(b, false) }

// BenchmarkTraceDecode isolates the decode half of BenchmarkTraceReplay:
// the PC-skipping batch decode of the same recorded trace, with no
// simulator attached. The difference between this and TraceReplay is
// the simulation cost; the difference between this and zero is what
// the compact encoding charges per reference at replay time.
//
//simlint:hotpath (*streamsim/internal/trace.StoreIter).NextPacked
func BenchmarkTraceDecode(b *testing.B) {
	store, _ := replayFixture(b)
	refs := store.Len()
	buf := make([]uint64, trace.ReplayBatchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := store.Iter()
		for n := it.NextPacked(buf); n > 0; n = it.NextPacked(buf) {
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkWorkloadGeneration measures trace-generation speed (the
// front half of every experiment).
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := workload.New("mgrid", workload.SizeSmall)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := core.New(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(sys, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}
