package bench

// End-to-end integration tests across module boundaries: the paths a
// user strings together (workload -> trace file -> simulator,
// config -> system -> experiment metrics).

import (
	"bytes"
	"testing"

	"streamsim/internal/config"
	"streamsim/internal/core"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// TestTraceFileRoundTripMatchesDirectRun verifies that recording a
// benchmark to the binary trace format and replaying it produces
// byte-identical simulator results to running the benchmark directly
// (modulo instruction counts folded into records and the PC field the
// format drops — neither of which the off-chip hardware consumes).
func TestTraceFileRoundTripMatchesDirectRun(t *testing.T) {
	w, err := workload.New("is", workload.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}

	// Direct run.
	direct, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(direct, 0.1); err != nil {
		t.Fatal(err)
	}

	// Through the codec.
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	if err := w.Run(tw, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Replay(replayed); err != nil {
		t.Fatal(err)
	}

	dr, rr := direct.Results(), replayed.Results()
	if dr.Streams != rr.Streams {
		t.Errorf("stream stats diverge:\n direct  %+v\n replayed %+v", dr.Streams, rr.Streams)
	}
	if dr.L1D != rr.L1D {
		t.Errorf("L1D stats diverge:\n direct  %+v\n replayed %+v", dr.L1D, rr.L1D)
	}
	if dr.Instructions != rr.Instructions {
		t.Errorf("instruction counts diverge: %d vs %d", dr.Instructions, rr.Instructions)
	}
}

// TestConfigPresetsMatchExperimentConfigs ties the config package's
// named presets to the behaviour the experiments measure: section5
// (no filter) must waste more bandwidth than section6 (filtered) on
// the same trace.
func TestConfigPresetsMatchExperimentConfigs(t *testing.T) {
	w, err := workload.New("trfd", workload.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	eb := func(preset string) float64 {
		t.Helper()
		cfg, err := config.Read(bytes.NewReader([]byte(`{"preset": "` + preset + `"}`)))
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(sys, 0.1); err != nil {
			t.Fatal(err)
		}
		return sys.Results().ExtraBandwidth()
	}
	plain, filtered := eb("section5"), eb("section6")
	if filtered >= plain/2 {
		t.Errorf("section6 EB %.1f should be far below section5 EB %.1f (trfd: 96%% -> 11%% in the paper)",
			filtered, plain)
	}
}

// TestSampledTraceApproximatesFullTrace checks the paper's
// methodological bet: a 10%-time-sampled trace estimates the full
// trace's stream hit rate within a few points.
func TestSampledTraceApproximatesFullTrace(t *testing.T) {
	w, err := workload.New("cgm", workload.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(full, 0.2); err != nil {
		t.Fatal(err)
	}

	sampledSys, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := trace.NewTimeSampler(sampledSys, trace.DefaultOnRefs, trace.DefaultOffRefs)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(sampler, 0.2); err != nil {
		t.Fatal(err)
	}

	fh := full.Results().StreamHitRate()
	sh := sampledSys.Results().StreamHitRate()
	if diff := fh - sh; diff < -8 || diff > 8 {
		t.Errorf("sampled hit rate %.1f vs full %.1f: time sampling should track within ~8 points", sh, fh)
	}
}
