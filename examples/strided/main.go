// Strided: demonstrate the paper's Section 7 non-unit-stride
// detection on a column-major matrix walk, and sweep the czone size to
// show its Figure 9 tuning window.
//
//	go run ./examples/strided
package main

import (
	"fmt"
	"log"

	"streamsim/internal/core"
	"streamsim/internal/mem"
)

// walkColumns reads an n x n matrix of float64 column by column —
// every reference is a stride of n*8 bytes, the access pattern that
// defeats ordinary (unit-stride) stream buffers.
func walkColumns(sys *core.System, base mem.Addr, n int) {
	for col := 0; col < n; col++ {
		for row := 0; row < n; row++ {
			sys.Access(mem.Access{
				Addr: base + mem.Addr((row*n+col)*8),
				Kind: mem.Read,
			})
			sys.AddInstructions(6)
		}
	}
}

func run(cfg core.Config) core.Results {
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	walkColumns(sys, 1<<24, 1024) // 8 MB matrix, 8 KB stride
	return sys.Results()
}

func main() {
	// Unit-stride-only streams: the 8 KB stride never matches a
	// prefetched successor block.
	unitOnly := core.DefaultConfig()
	unitOnly.Stride = core.NoStrideDetection
	fmt.Printf("unit-stride only:     hit rate %5.1f%%\n", run(unitOnly).StreamHitRate())

	// The czone scheme detects the constant stride after three misses
	// in one partition and allocates a strided stream.
	strided := core.DefaultConfig()
	fmt.Printf("with czone detection: hit rate %5.1f%%\n", run(strided).StreamHitRate())

	// The minimum-delta alternative (kept for comparison; the paper
	// found similar performance at higher hardware cost).
	minDelta := core.DefaultConfig()
	minDelta.Stride = core.MinDeltaScheme
	fmt.Printf("with min-delta:       hit rate %5.1f%%\n", run(minDelta).StreamHitRate())

	// Figure 9 in miniature: the czone must be big enough that three
	// consecutive strided references share a partition (stride here is
	// 2K words, so ~12 bits is the threshold), and not so big that
	// unrelated streams interfere.
	fmt.Println("\nczone sweep (stride = 2^11 words):")
	for _, bits := range []uint{8, 10, 12, 14, 16, 20, 24} {
		cfg := core.DefaultConfig()
		cfg.CzoneBits = bits
		fmt.Printf("  czone %2d bits: hit rate %5.1f%%\n", bits, run(cfg).StreamHitRate())
	}
}
