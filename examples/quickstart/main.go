// Quickstart: build the paper's default memory system (64K+64K L1s
// backed only by ten stream buffers), run a simple array-sum loop
// through it, and print the stream hit rate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"streamsim/internal/core"
	"streamsim/internal/mem"
)

func main() {
	// The paper's baseline: 64 KB I + 64 KB D 4-way caches, ten
	// streams of depth two, 16-entry unit-stride filter, 16-entry
	// czone filter.
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A toy kernel: sum an 8 MB array. Every cache block is a
	// compulsory L1 miss, but after the filter sees two consecutive
	// misses, one stream buffer prefetches the rest of the array.
	const base = mem.Addr(1 << 24)
	const elems = 1 << 20 // 8 MB of float64
	for i := 0; i < elems; i++ {
		sys.Access(mem.Access{Addr: base + mem.Addr(i*8), Kind: mem.Read})
		sys.AddInstructions(4)
	}

	r := sys.Results()
	fmt.Printf("references:      %d\n", r.L1D.Accesses)
	fmt.Printf("L1 misses:       %d (%.2f%%)\n", r.L1D.Misses, r.DataMissRate())
	fmt.Printf("stream hits:     %d of %d probes (%.1f%%)\n",
		r.Streams.Hits, r.Streams.Probes, r.StreamHitRate())
	fmt.Printf("extra bandwidth: %.1f%%\n", r.ExtraBandwidth())
	fmt.Println()
	fmt.Println("A sequential walk misses once per block in the on-chip cache;")
	fmt.Println("the stream buffer turns all but the first few of those misses")
	fmt.Println("into hits, doing the job of a multi-megabyte secondary cache")
	fmt.Println("with two cache blocks of storage.")
}
