// Cachecompare: the paper's Section 8 argument in one program — as a
// scientific workload's data set grows, a secondary cache needs to
// grow with it to keep its hit rate, while a handful of stream buffers
// (a few hundred bytes of SRAM) keeps performing.
//
//	go run ./examples/cachecompare
package main

import (
	"fmt"
	"log"

	"streamsim/internal/cache"
	"streamsim/internal/core"
	"streamsim/internal/mem"
)

// stencilPass sweeps a 3-array Jacobi update over n doubles per array:
// the regular access pattern of the paper's scientific codes.
func stencilPass(access func(mem.Access), elems int) {
	a := mem.Addr(1 << 24)
	b := a + mem.Addr(elems*8+4096)
	c := b + mem.Addr(elems*8+8192)
	for r := 0; r < 2; r++ {
		for i := 1; i < elems-1; i++ {
			access(mem.Access{Addr: a + mem.Addr(i*8), Kind: mem.Read})
			access(mem.Access{Addr: b + mem.Addr(i*8), Kind: mem.Read})
			access(mem.Access{Addr: c + mem.Addr(i*8), Kind: mem.Write})
		}
	}
}

// streamHitRate runs the stencil against the paper's stream system.
func streamHitRate(elems int) float64 {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stencilPass(sys.Access, elems)
	return sys.Results().StreamHitRate()
}

// l2HitRate runs the stencil's L1 miss stream against a secondary
// cache of the given size.
func l2HitRate(elems int, l2Bytes uint) float64 {
	cfg := core.DefaultConfig()
	l1, err := cache.New(cfg.L1D)
	if err != nil {
		log.Fatal(err)
	}
	l2, err := cache.New(cache.Config{
		Name: "L2", SizeBytes: l2Bytes, Assoc: 4, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
	})
	if err != nil {
		log.Fatal(err)
	}
	stencilPass(func(a mem.Access) {
		var res cache.Result
		if a.Kind == mem.Write {
			res = l1.Write(uint64(a.Addr))
		} else {
			res = l1.Read(uint64(a.Addr))
		}
		if res.Hit {
			return
		}
		if res.WroteBack {
			l2.Write(res.VictimBlock << 6)
		}
		l2.Read(uint64(cfg.Geometry.BlockBase(a.Addr)))
	}, elems)
	return 100 * l2.Stats().HitRate()
}

func main() {
	fmt.Println("Jacobi stencil over three arrays, two passes; hit rates on the")
	fmt.Println("L1 miss stream (the paper's Section 8 comparison):")
	fmt.Println()
	fmt.Printf("%-12s %12s %10s %10s %10s %10s\n",
		"data set", "streams", "L2 256K", "L2 1M", "L2 4M", "L2 16M")
	for _, elems := range []int{1 << 17, 1 << 19, 1 << 21, 1 << 23} {
		dataMB := float64(3*elems*8) / (1 << 20)
		fmt.Printf("%9.0f MB %11.1f%%", dataMB, streamHitRate(elems))
		for _, l2 := range []uint{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
			fmt.Printf(" %9.1f%%", l2HitRate(elems, l2))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The second pass re-reads data evicted long ago, so the cache only")
	fmt.Println("helps once the whole data set fits; the stream buffers exploit the")
	fmt.Println("regular access pattern at any data-set size (the paper's Table 4).")
}
