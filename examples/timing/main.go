// Timing: put numbers on the paper's cost argument — run the same
// stencil kernel against a bare L1 system, the paper's stream-buffer
// system, and the streams without their filter, on machines with more
// and less memory bandwidth, and report execution time.
//
//	go run ./examples/timing
package main

import (
	"fmt"
	"log"

	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/stream"
	"streamsim/internal/timing"
)

// kernel is a three-array Jacobi pass over 2 MB per array, plus a
// scattered table lookup every few points (the reference mix that
// makes unfiltered prefetching expensive).
func kernel(m *timing.Model) {
	a := mem.Addr(1 << 24)
	b := mem.Addr(1<<24 + 5<<20)
	c := mem.Addr(1<<24 + 10<<20)
	table := mem.Addr(1 << 30)
	const elems = 256 << 10
	for i := 1; i < elems-1; i++ {
		m.Access(mem.Access{Addr: a + mem.Addr(i*8), Kind: mem.Read})
		m.Access(mem.Access{Addr: b + mem.Addr(i*8), Kind: mem.Read})
		if i%3 == 0 {
			// A scattered lookup: streams can't help, prefetching it
			// only burns bus cycles.
			m.Access(mem.Access{Addr: table + mem.Addr((i*7919)%(8<<20))&^7, Kind: mem.Read})
		}
		m.Access(mem.Access{Addr: c + mem.Addr(i*8), Kind: mem.Write})
		m.AddInstructions(14)
	}
}

// run builds a system and reports its CPI.
func run(cfg core.Config, lat timing.Latencies) timing.Stats {
	m, err := timing.New(cfg, lat)
	if err != nil {
		log.Fatal(err)
	}
	kernel(m)
	return m.Stats()
}

func main() {
	bare := core.DefaultConfig()
	bare.Streams = stream.Config{}
	bare.UnitFilterEntries = 0
	bare.Stride = core.NoStrideDetection

	unfiltered := core.DefaultConfig()
	unfiltered.UnitFilterEntries = 0
	unfiltered.Stride = core.NoStrideDetection

	filtered := core.DefaultConfig()

	for _, bus := range []struct {
		name   string
		cycles uint64
	}{
		{"ample bandwidth (2-cycle bus blocks)", 2},
		{"scarce bandwidth (24-cycle bus blocks)", 24},
	} {
		lat := timing.DefaultLatencies()
		lat.BusBlock = bus.cycles
		b := run(bare, lat)
		u := run(unfiltered, lat)
		f := run(filtered, lat)
		fmt.Printf("%s:\n", bus.name)
		fmt.Printf("  %-28s CPI %.2f\n", "no streams", b.CPI())
		fmt.Printf("  %-28s CPI %.2f  (bus-wait %4.1f%%)\n", "streams, no filter", u.CPI(),
			100*float64(u.BusWaitCycles)/float64(u.Cycles))
		fmt.Printf("  %-28s CPI %.2f  (bus-wait %4.1f%%)\n", "streams + filter (paper)", f.CPI(),
			100*float64(f.BusWaitCycles)/float64(f.Cycles))
		fmt.Printf("  speedup over bare: %.2fx\n\n", b.CPI()/f.CPI())
	}
	fmt.Println("With bandwidth to spare, filtered and unfiltered streams perform")
	fmt.Println("alike. When the bus is the bottleneck, the unfiltered system's")
	fmt.Println("wasted prefetches (Table 2's extra bandwidth) turn into bus-wait")
	fmt.Println("stalls on every demand miss — the situation the Section 6 filter")
	fmt.Println("exists for.")
}
