// Filtering: show how the Section 6 unit-stride filter cuts the
// memory bandwidth wasted by speculative prefetching on a workload
// that mixes streaming with pointer chasing.
//
//	go run ./examples/filtering
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/stream"
)

// mixedWorkload interleaves a sequential sweep (streams love it) with
// random pointer chasing (every miss is isolated; prefetching it is
// pure waste).
func mixedWorkload(sys *core.System) {
	rng := rand.New(rand.NewSource(7))
	seq := mem.Addr(1 << 24)
	heap := mem.Addr(1 << 26)
	const heapBytes = 16 << 20
	for i := 0; i < 1<<20; i++ {
		// One streaming reference...
		sys.Access(mem.Access{Addr: seq + mem.Addr(i*8), Kind: mem.Read})
		// ...and one pointer dereference somewhere in a 16 MB heap.
		p := mem.Addr(rng.Int63n(heapBytes)) &^ 7
		sys.Access(mem.Access{Addr: heap + p, Kind: mem.Read})
		sys.AddInstructions(12)
	}
}

func run(filterEntries int) core.Results {
	cfg := core.DefaultConfig()
	cfg.Streams = stream.Config{Streams: 10, Depth: 2}
	cfg.UnitFilterEntries = filterEntries
	cfg.Stride = core.NoStrideDetection
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mixedWorkload(sys)
	return sys.Results()
}

func main() {
	plain := run(0)
	filtered := run(16)

	fmt.Println("workload: alternating sequential sweep / random pointer chase")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s\n", "", "no filter", "16-entry filter")
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "stream hit rate",
		plain.StreamHitRate(), filtered.StreamHitRate())
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "extra bandwidth (EB)",
		plain.ExtraBandwidth(), filtered.ExtraBandwidth())
	fmt.Printf("%-22s %12d %12d\n", "stream allocations",
		plain.Streams.Allocations, filtered.Streams.Allocations)
	fmt.Printf("%-22s %12d %12d\n", "wasted prefetches",
		plain.Streams.PrefetchesWasted, filtered.Streams.PrefetchesWasted)
	fmt.Println()
	fmt.Println("Without the filter, every random miss flushes a stream and issues")
	fmt.Println("prefetches that are never used. The filter allocates a stream only")
	fmt.Println("after two misses to consecutive blocks, so the pointer chase stops")
	fmt.Println("polluting the buffers while the sequential sweep still streams.")
}
