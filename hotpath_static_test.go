package bench

import (
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

// gateFiles hold the repo's runtime allocation gates: benchmarks run
// with -benchmem and tests asserting testing.AllocsPerRun == 0. Each
// gate carries a `//simlint:hotpath <function>` directive naming the
// simulator entry point it exercises, in types.Func.FullName form.
var gateFiles = []string{
	"bench_test.go",
	"internal/core/alloc_test.go",
	"internal/workload/cancel_test.go",
}

// TestHotpathStaticMatchesAllocGates ties the two halves of the
// zero-allocation story together. The static half is the set of
// //simlint:hotpath-annotated functions that cmd/simlint's hotpath
// analyzer proves transitively free of allocating constructs. The
// runtime half is the set of entry points the gate files drive under an
// allocation counter. This test asserts they describe the same code:
//
//  1. every root a gate file declares resolves to a function in the
//     module call graph (no stale directives after a rename), and
//  2. every //simlint:hotpath-annotated function is reachable from
//     some declared root — i.e. the static guarantee never covers code
//     that no runtime gate measures.
//
// Directives in _test.go files are invisible to the simlint driver
// (package loading excludes test files), so naming a root here imposes
// no static obligation on the benchmarks themselves.
func TestHotpathStaticMatchesAllocGates(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the module via go list")
	}
	pkgs, err := analysis.Load(".", "./internal/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	g := callgraph.Build(pkgs)

	roots := gateRoots(t)
	if len(roots) == 0 {
		t.Fatal("no //simlint:hotpath directives found in the gate files")
	}

	// Rule 1: every declared root must exist in the graph.
	reached := map[*callgraph.Func]bool{}
	var frontier []*callgraph.Func
	for _, name := range roots {
		fn, ok := g.Funcs[name]
		if !ok {
			t.Errorf("gate directive names %s, which is not in the module call graph (renamed or removed?)", name)
			continue
		}
		if !reached[fn] {
			reached[fn] = true
			frontier = append(frontier, fn)
		}
	}

	// Transitive closure over static call edges from the gate roots.
	for len(frontier) > 0 {
		fn := frontier[0]
		frontier = frontier[1:]
		for _, call := range fn.Calls {
			if call.Callee != nil && !reached[call.Callee] {
				reached[call.Callee] = true
				frontier = append(frontier, call.Callee)
			}
		}
	}

	// Rule 2: every statically-verified hot path is runtime-gated.
	var uncovered []string
	for name, fn := range g.Funcs {
		if fn.Hotpath && !reached[fn] {
			uncovered = append(uncovered, name)
		}
	}
	sort.Strings(uncovered)
	for _, name := range uncovered {
		t.Errorf("%s is //simlint:hotpath but unreachable from every alloc-gated entry point; add a gate or drop the annotation", name)
	}
}

// gateRoots parses the gate files and collects the function names
// declared by their //simlint:hotpath directives.
func gateRoots(t *testing.T) []string {
	t.Helper()
	const prefix = "//simlint:hotpath "
	var roots []string
	fset := token.NewFileSet()
	for _, path := range gateFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, prefix); ok {
					name := strings.TrimSpace(rest)
					if name == "" {
						t.Errorf("%s: bare //simlint:hotpath directive; gate files must name the entry point", fset.Position(c.Pos()))
						continue
					}
					roots = append(roots, name)
				}
			}
		}
	}
	return roots
}
