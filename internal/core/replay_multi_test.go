package core_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/stream"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// multiConfigs is the mixed configuration set the fan-out engine is
// checked against: bare L1, plain streams at two widths, the filtered
// configuration and the czone stride scheme — one of each hardware
// shape the experiments replay through.
func multiConfigs() []core.Config {
	bare := core.DefaultConfig()
	bare.Streams = stream.Config{}
	bare.UnitFilterEntries = 0
	bare.Stride = core.NoStrideDetection

	plain := func(n int) core.Config {
		cfg := core.DefaultConfig()
		cfg.Streams = stream.Config{Streams: n, Depth: 2}
		cfg.UnitFilterEntries = 0
		cfg.Stride = core.NoStrideDetection
		return cfg
	}

	filtered := plain(10)
	filtered.UnitFilterEntries = 16

	strided := filtered
	strided.Stride = core.CzoneScheme
	strided.StrideFilterEntries = 16
	strided.CzoneBits = 16

	return []core.Config{bare, plain(2), plain(8), filtered, strided}
}

// recordTrace runs a workload at a small scale straight into a
// trace.Store (the Store is a workload.Sink).
func recordTrace(t testing.TB, name string, scale float64) *trace.Store {
	t.Helper()
	w, err := workload.New(name, workload.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.NewStore(int(workload.EstimateRefs(name, workload.SizeSmall, scale)))
	if err := w.Run(st, scale); err != nil {
		t.Fatal(err)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	return st
}

func newSystems(t testing.TB, cfgs []core.Config) []*core.System {
	t.Helper()
	systems := make([]*core.System, len(cfgs))
	for i, cfg := range cfgs {
		sys, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
	}
	return systems
}

// TestReplayStoreMultiMatchesIndependent pins the fan-out engine's
// contract: for every workload and a mixed config set, both fan-out
// modes produce per-system results identical to N independent
// ReplayStore runs.
func TestReplayStoreMultiMatchesIndependent(t *testing.T) {
	const scale = 0.05
	ctx := context.Background()
	cfgs := multiConfigs()
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			st := recordTrace(t, name, scale)

			want := make([]core.Results, len(cfgs))
			for i, sys := range newSystems(t, cfgs) {
				if err := core.ReplayStore(ctx, sys, st); err != nil {
					t.Fatal(err)
				}
				want[i] = sys.Results()
			}

			for _, mode := range []struct {
				name string
				mode core.FanOut
			}{
				{"sequential", core.FanOutSequential},
				{"sharded", core.FanOutSharded},
			} {
				systems := newSystems(t, cfgs)
				if err := core.ReplayStoreMultiMode(ctx, systems, st, mode.mode); err != nil {
					t.Fatal(err)
				}
				if got := core.LastFanOutWidth(); got != len(systems) {
					t.Errorf("%s: LastFanOutWidth = %d, want %d", mode.name, got, len(systems))
				}
				for i, sys := range systems {
					if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
						t.Errorf("%s: config %d results diverge from independent replay:\ngot  %+v\nwant %+v",
							mode.name, i, got, want[i])
					}
				}
			}
		})
	}
}

// TestReplayStoreMultiMixedFront pins the fan-out fallback: when the
// systems do NOT share an L1 front end (different L1 geometry, or a
// victim cache), the engine must replay every system in full and still
// match independent runs. multiConfigs shares one front, so this set
// deliberately breaks it three ways: a direct-mapped L1D, a victim
// cache, and the shared baseline alongside them.
func TestReplayStoreMultiMixedFront(t *testing.T) {
	ctx := context.Background()
	direct := core.DefaultConfig()
	direct.L1D.Assoc = 1
	direct.L1D.Replacement = 0 // LRU — stamped, exercises the non-deferred batch path too
	victim := core.DefaultConfig()
	victim.VictimEntries = 4
	cfgs := []core.Config{core.DefaultConfig(), direct, victim}
	for _, name := range []string{"mgrid", "cgm"} {
		t.Run(name, func(t *testing.T) {
			st := recordTrace(t, name, 0.05)
			want := make([]core.Results, len(cfgs))
			for i, sys := range newSystems(t, cfgs) {
				if err := core.ReplayStore(ctx, sys, st); err != nil {
					t.Fatal(err)
				}
				want[i] = sys.Results()
			}
			for _, mode := range []core.FanOut{core.FanOutSequential, core.FanOutSharded} {
				systems := newSystems(t, cfgs)
				if err := core.ReplayStoreMultiMode(ctx, systems, st, mode); err != nil {
					t.Fatal(err)
				}
				for i, sys := range systems {
					if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
						t.Errorf("mode %v: config %d results diverge from independent replay:\ngot  %+v\nwant %+v",
							mode, i, got, want[i])
					}
				}
			}
		})
	}
}

// syntheticStore builds a long strided trace without running a
// workload, for cancellation tests that need many batches.
func syntheticStore(nRefs int) *trace.Store {
	st := trace.NewStore(nRefs)
	a := mem.Access{Addr: 1 << 24, Kind: mem.Read}
	for i := 0; i < nRefs; i++ {
		st.Append(a)
		a.Addr += 64
	}
	return st
}

// TestReplayStoreMultiCancel checks that a cancelled context aborts
// the fan-out promptly in both modes: the call returns ctx.Err() and
// no system consumes more than one extra batch after the cancel. The
// pre-cancelled variant bounds the damage exactly; the mid-flight
// variant (cancel from another goroutine) is the shape the simd
// service exercises and runs race-clean under -race.
func TestReplayStoreMultiCancel(t *testing.T) {
	st := syntheticStore(64 * trace.ReplayBatchLen)
	cfgs := multiConfigs()

	for _, mode := range []struct {
		name string
		mode core.FanOut
	}{
		{"sequential", core.FanOutSequential},
		{"sharded", core.FanOutSharded},
	} {
		t.Run(mode.name+"/pre-cancelled", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			systems := newSystems(t, cfgs)
			if err := core.ReplayStoreMultiMode(ctx, systems, st, mode.mode); err != context.Canceled {
				t.Fatalf("ReplayStoreMultiMode = %v, want context.Canceled", err)
			}
			for i, sys := range systems {
				r := sys.Results()
				if consumed := r.L1I.Accesses + r.L1D.Accesses; consumed > trace.ReplayBatchLen {
					t.Errorf("system %d consumed %d refs after pre-cancel, want <= one batch (%d)",
						i, consumed, trace.ReplayBatchLen)
				}
			}
		})
		t.Run(mode.name+"/mid-flight", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			systems := newSystems(t, cfgs)
			var wg sync.WaitGroup
			wg.Add(1)
			errc := make(chan error, 1)
			go func() {
				defer wg.Done()
				errc <- core.ReplayStoreMultiMode(ctx, systems, st, mode.mode)
			}()
			cancel()
			wg.Wait()
			// The replay may have finished before the cancel landed;
			// either outcome is legal, but a cancelled run must report
			// context.Canceled, never a partial-success nil.
			if err := <-errc; err != nil && err != context.Canceled {
				t.Fatalf("ReplayStoreMultiMode = %v, want nil or context.Canceled", err)
			}
		})
	}
}

// TestReplayStoreMultiDegenerate covers the zero- and one-system
// shapes, which take dedicated paths.
func TestReplayStoreMultiDegenerate(t *testing.T) {
	ctx := context.Background()
	st := syntheticStore(3 * trace.ReplayBatchLen)
	if err := core.ReplayStoreMulti(ctx, nil, st); err != nil {
		t.Fatalf("empty system set: %v", err)
	}
	one := newSystems(t, multiConfigs()[:1])
	if err := core.ReplayStoreMulti(ctx, one, st); err != nil {
		t.Fatal(err)
	}
	if got := core.LastFanOutWidth(); got != 1 {
		t.Errorf("LastFanOutWidth after single-system replay = %d, want 1", got)
	}
	if consumed := one[0].Results().L1D.Accesses; consumed != uint64(st.Len()) {
		t.Errorf("single-system replay consumed %d refs, want %d", consumed, st.Len())
	}
}
