package core_test

import (
	"fmt"

	"streamsim/internal/core"
	"streamsim/internal/mem"
)

// Example runs the paper's default memory system over a sequential
// sweep: after the filter's two-miss warmup, one stream buffer
// services every subsequent on-chip miss.
func Example() {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	base := mem.Addr(16 << 20)
	for i := 0; i < 1<<16; i++ {
		sys.Access(mem.Access{Addr: base + mem.Addr(i*8), Kind: mem.Read})
	}
	r := sys.Results()
	fmt.Printf("stream hit rate: %.1f%%\n", r.StreamHitRate())
	fmt.Printf("extra bandwidth: %.1f%%\n", r.ExtraBandwidth())
	// Output:
	// stream hit rate: 100.0%
	// extra bandwidth: 0.0%
}

// ExampleSystem_AccessOutcome shows the per-access service levels a
// timing model consumes.
func ExampleSystem_AccessOutcome() {
	cfg := core.DefaultConfig()
	sys, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	a := mem.Addr(16 << 20)
	fmt.Println(sys.AccessOutcome(mem.Access{Addr: a, Kind: mem.Read}).Level)
	fmt.Println(sys.AccessOutcome(mem.Access{Addr: a, Kind: mem.Read}).Level)
	// Output:
	// memory
	// L1
}
