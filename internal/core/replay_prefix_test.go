package core_test

import (
	"context"
	"reflect"
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/trace"
)

// TestReplayStoreMultiPrefixMatchesIndependent pins the prefix
// engine's contract, which the search optimizer's determinism rests
// on: a generation of candidates evaluated together on the first w
// windows produces per-system results identical to each candidate
// replayed alone over the same prefix — regardless of how candidates
// are grouped, and through both the shared-front tap (multiConfigs)
// and the mixed-front full replay.
//
//simlint:deterministic streamsim/internal/core.ReplayStoreMultiPrefix
func TestReplayStoreMultiPrefixMatchesIndependent(t *testing.T) {
	ctx := context.Background()
	cfgs := multiConfigs()
	direct := core.DefaultConfig()
	direct.L1D.Assoc = 1
	mixed := []core.Config{core.DefaultConfig(), direct}
	for _, tc := range []struct {
		name string
		cfgs []core.Config
	}{
		{"shared-front", cfgs},
		{"mixed-front", mixed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := recordTrace(t, "mgrid", 0.05)
			for _, windows := range []int{1, 3, st.WindowCount() / 2} {
				want := make([]core.Results, len(tc.cfgs))
				for i, sys := range newSystems(t, tc.cfgs) {
					one := []*core.System{sys}
					if err := core.ReplayStoreMultiPrefix(ctx, one, st, windows); err != nil {
						t.Fatal(err)
					}
					want[i] = sys.Results()
				}
				systems := newSystems(t, tc.cfgs)
				if err := core.ReplayStoreMultiPrefix(ctx, systems, st, windows); err != nil {
					t.Fatal(err)
				}
				for i, sys := range systems {
					if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
						t.Errorf("windows=%d: config %d results diverge from solo prefix replay:\ngot  %+v\nwant %+v",
							windows, i, got, want[i])
					}
				}
			}
		})
	}
}

// TestReplayStoreMultiPrefixFullMatchesReplayStore checks the
// whole-trace degenerate cases: windows <= 0 and windows beyond the
// window count both replay the full trace byte-identically to
// ReplayStore, and the counted prefix references add up to exactly the
// windows' lengths.
func TestReplayStoreMultiPrefixFullMatchesReplayStore(t *testing.T) {
	ctx := context.Background()
	st := recordTrace(t, "cgm", 0.05)
	cfg := core.DefaultConfig()
	ref, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ReplayStore(ctx, ref, st); err != nil {
		t.Fatal(err)
	}
	want := ref.Results()
	for _, windows := range []int{0, -1, st.WindowCount(), st.WindowCount() + 7} {
		sys, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ReplayStoreMultiPrefix(ctx, []*core.System{sys}, st, windows); err != nil {
			t.Fatal(err)
		}
		if got := sys.Results(); !reflect.DeepEqual(got, want) {
			t.Errorf("windows=%d: full prefix replay diverges from ReplayStore", windows)
		}
	}

	// A true prefix consumes exactly the first windows' references.
	const w = 2
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ReplayStoreMultiPrefix(ctx, []*core.System{sys}, st, w); err != nil {
		t.Fatal(err)
	}
	wantRefs := uint64(0)
	for i := 0; i < w; i++ {
		wantRefs += uint64(st.WindowLen(i))
	}
	r := sys.Results()
	if got := r.L1I.Accesses + r.L1D.Accesses; got != wantRefs {
		t.Errorf("prefix of %d windows consumed %d refs, want %d", w, got, wantRefs)
	}
}

// TestReplayStoreMultiPrefixCancel checks prompt cancellation: a
// pre-cancelled context stops the generation within one batch.
func TestReplayStoreMultiPrefixCancel(t *testing.T) {
	st := syntheticStore(64 * trace.ReplayBatchLen)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	systems := newSystems(t, multiConfigs())
	if err := core.ReplayStoreMultiPrefix(ctx, systems, st, 0); err != context.Canceled {
		t.Fatalf("ReplayStoreMultiPrefix = %v, want context.Canceled", err)
	}
	for i, sys := range systems {
		r := sys.Results()
		if consumed := r.L1I.Accesses + r.L1D.Accesses; consumed > trace.ReplayBatchLen {
			t.Errorf("system %d consumed %d refs after pre-cancel, want <= one batch (%d)",
				i, consumed, trace.ReplayBatchLen)
		}
	}
}
