// Prefix replay for the config-space optimizer: evaluate a whole
// generation of candidate systems on only the first few sample windows
// of a recorded trace. Successive halving (internal/search) scores
// cheap early rungs this way — one decode pass feeds every candidate,
// with the shared-front tap when the configurations allow it — and
// extends survivors onto progressively longer prefixes. The From
// variant resumes a previous prefix replay at a window boundary via the
// store's O(1) seek index, so with checkpointed candidates each rung
// replays only the windows the previous rung has not seen (DESIGN.md
// §12).
package core

import (
	"context"

	"streamsim/internal/trace"
)

// ReplayStoreMultiPrefix replays the first windows sample windows of a
// recorded trace through every system, decoding each batch exactly
// once. windows <= 0 or >= the trace's window count replays the whole
// trace. The replay is sequential and exact: each system observes
// precisely the access stream a solo ReplayStore over the same prefix
// would deliver, on any host, so prefix scores are machine-independent
// and identical no matter how candidates are grouped into generations.
// On cancellation every system has consumed a prefix of the prefix and
// ctx.Err() is returned.
//
//simlint:deterministic
func ReplayStoreMultiPrefix(ctx context.Context, systems []*System, st *trace.Store, windows int) error {
	return ReplayStoreMultiPrefixFrom(ctx, systems, st, 0, windows)
}

// ReplayStoreMultiPrefixFrom replays the sample windows [fromWindow,
// toWindow) of a recorded trace through every system, seeking the
// decoder to fromWindow's boundary in O(1) via the store's window
// index. toWindow <= 0 or beyond the window count means the end of the
// trace; fromWindow is clamped to [0, toWindow]. The decoder's ring
// predictors are part of the seek state, so the delivered stream is
// byte-for-byte the suffix a from-scratch prefix replay would deliver:
// extending systems restored from a Checkpoint taken at fromWindow
// produces scores identical to replaying [0, toWindow) from scratch.
// On every exit each returned system is individually resumable — in a
// shared-front fan-out the followers adopt the leader's L1 state
// before returning (see System.adoptFront).
//
//simlint:deterministic
func ReplayStoreMultiPrefixFrom(ctx context.Context, systems []*System, st *trace.Store, fromWindow, toWindow int) error {
	if len(systems) == 0 {
		return nil
	}
	if toWindow <= 0 || toWindow > st.WindowCount() {
		toWindow = st.WindowCount()
	}
	if fromWindow < 0 {
		fromWindow = 0
	}
	if fromWindow > toWindow {
		fromWindow = toWindow
	}
	refs := st.PrefixLen(toWindow) - st.PrefixLen(fromWindow)
	if refs == 0 {
		return nil
	}
	done := ctx.Done()
	buf := make([]uint64, trace.ReplayBatchLen)
	it := st.IterAtWindow(fromWindow)
	var leader *System
	var followers []*System
	if len(systems) > 1 && sharedFront(systems) {
		leader, followers = systems[0], systems[1:]
		leader.tap = make([]uint64, 0, trace.ReplayBatchLen)
		defer func() {
			// Followers adopt the shared front on every exit — state as
			// well as statistics — so a cancelled replay still leaves each
			// system describing the same consumed prefix, and any system
			// can be checkpointed and later resume as a leader (or solo)
			// with a correct L1 of its own.
			for _, sys := range followers {
				sys.adoptFront(leader)
			}
			leader.tap = nil
		}()
	}
	for refs > 0 {
		b := buf
		if refs < len(b) {
			b = b[:refs]
		}
		n := it.NextPacked(b)
		if n == 0 {
			return nil
		}
		if leader != nil {
			leader.tap = leader.tap[:0]
			leader.AccessPacked(b[:n])
			for _, sys := range followers {
				sys.applyTap(leader.tap)
			}
		} else {
			for _, sys := range systems {
				sys.AccessPacked(b[:n])
			}
		}
		refs -= n
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}

// FullReplayResumable reports whether a zero-option full-trace replay
// of st over these systems is an exact sequential pass — the case when
// ReplayStoreMultiWindowed declines to shard (trace too small for a
// chunk plan, or hook-carrying systems). Only then may a final
// full-trace evaluation be resumed from a prefix checkpoint via
// ReplayStoreMultiPrefixFrom and still reproduce the windowed engine's
// numbers byte-for-byte; on shardable traces the windowed engine's
// warmup-bounded approximation is the score of record and callers must
// re-run it from scratch.
func FullReplayResumable(systems []*System, st *trace.Store) bool {
	return planShards(st.WindowCount(), 0) < 2 || hooked(systems)
}
