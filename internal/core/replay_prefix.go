// Prefix replay for the config-space optimizer: evaluate a whole
// generation of candidate systems on only the first few sample windows
// of a recorded trace. Successive halving (internal/search) scores
// cheap early rungs this way — one decode pass feeds every candidate,
// with the shared-front tap when the configurations allow it — and
// re-evaluates survivors on progressively longer prefixes, so most of
// the budget is spent decoding short prefixes instead of full traces.
package core

import (
	"context"

	"streamsim/internal/trace"
)

// ReplayStoreMultiPrefix replays the first windows sample windows of a
// recorded trace through every system, decoding each batch exactly
// once. windows <= 0 or >= the trace's window count replays the whole
// trace. The replay is sequential and exact: each system observes
// precisely the access stream a solo ReplayStore over the same prefix
// would deliver, on any host, so prefix scores are machine-independent
// and identical no matter how candidates are grouped into generations.
// On cancellation every system has consumed a prefix of the prefix and
// ctx.Err() is returned.
//
//simlint:deterministic
func ReplayStoreMultiPrefix(ctx context.Context, systems []*System, st *trace.Store, windows int) error {
	if len(systems) == 0 {
		return nil
	}
	refs := st.Len()
	if windows > 0 && windows < st.WindowCount() {
		refs = 0
		for w := 0; w < windows; w++ {
			refs += st.WindowLen(w)
		}
	}
	done := ctx.Done()
	buf := make([]uint64, trace.ReplayBatchLen)
	it := st.Iter()
	var leader *System
	var followers []*System
	if len(systems) > 1 && sharedFront(systems) {
		leader, followers = systems[0], systems[1:]
		leader.tap = make([]uint64, 0, trace.ReplayBatchLen)
		defer func() {
			// Followers adopt the shared-front statistics on every exit,
			// so a cancelled replay still leaves each system describing
			// the same consumed prefix.
			for _, sys := range followers {
				sys.adoptFrontStats(leader)
			}
			leader.tap = nil
		}()
	}
	for refs > 0 {
		b := buf
		if refs < len(b) {
			b = b[:refs]
		}
		n := it.NextPacked(b)
		if n == 0 {
			return nil
		}
		if leader != nil {
			leader.tap = leader.tap[:0]
			leader.AccessPacked(b[:n])
			for _, sys := range followers {
				sys.applyTap(leader.tap)
			}
		} else {
			for _, sys := range systems {
				sys.AccessPacked(b[:n])
			}
		}
		refs -= n
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}
