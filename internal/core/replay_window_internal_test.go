package core

import "testing"

// TestPlanShards pins the chunk plan's boundaries: derived plans split
// only when every chunk can carry minChunkWindows, cap at
// maxAutoChunks, and a request is honoured but never exceeds the
// window count. The plan is a function of these two inputs alone —
// that invariant is what makes sharded results machine-independent.
func TestPlanShards(t *testing.T) {
	cases := []struct {
		K, requested, want int
	}{
		{0, 0, 1},
		{1, 0, 1},
		{minChunkWindows*2 - 1, 0, 1},
		{minChunkWindows * 2, 0, 2},
		{minChunkWindows * 10, 0, 10},
		{minChunkWindows * maxAutoChunks * 4, 0, maxAutoChunks},
		{100, 7, 7},
		{5, 8, 5},
		{100, 1, 1},
		{100, -3, 1},
	}
	for _, c := range cases {
		if got := planShards(c.K, c.requested); got != c.want {
			t.Errorf("planShards(%d, %d) = %d, want %d", c.K, c.requested, got, c.want)
		}
	}
}
