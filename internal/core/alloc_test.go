package core

// Allocation-regression guards: the steady-state access path must not
// allocate, or multi-hundred-million-reference sweeps spend their time
// in the garbage collector. Any append/boxing/map-growth sneaking into
// Access, AccessBatch or AccessOutcome fails here immediately.

import (
	"testing"

	"streamsim/internal/mem"
)

// warmedSystem builds a default system (streams, filter, czones all
// active) and drives it past cold-start so steady state is measured.
func warmedSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<14; i++ {
		a := mem.Addr(1<<24 + i*8)
		sys.Access(mem.Access{Addr: a, Kind: mem.Read})
		if i%4 == 0 {
			sys.Access(mem.Access{Addr: 1<<20 + a%4096, Kind: mem.IFetch})
		}
		if i%7 == 0 {
			sys.Access(mem.Access{Addr: a, Kind: mem.Write})
		}
	}
	return sys
}

//simlint:hotpath (*streamsim/internal/core.System).Access
func TestAccessDoesNotAllocate(t *testing.T) {
	sys := warmedSystem(t)
	i := 0
	avg := testing.AllocsPerRun(10000, func() {
		a := mem.Addr(1<<24 + i*64)
		sys.Access(mem.Access{Addr: a, Kind: mem.Read})
		sys.Access(mem.Access{Addr: a + 8, Kind: mem.Write})
		sys.Access(mem.Access{Addr: 1 << 20, Kind: mem.IFetch})
		i++
	})
	if avg != 0 {
		t.Errorf("Access allocates %v times per call group; want 0", avg)
	}
}

//simlint:hotpath (*streamsim/internal/core.System).AccessOutcome
func TestAccessOutcomeDoesNotAllocate(t *testing.T) {
	sys := warmedSystem(t)
	i := 0
	avg := testing.AllocsPerRun(10000, func() {
		sys.AccessOutcome(mem.Access{Addr: mem.Addr(1<<24 + i*64), Kind: mem.Read})
		i++
	})
	if avg != 0 {
		t.Errorf("AccessOutcome allocates %v times per call; want 0", avg)
	}
}

//simlint:hotpath (*streamsim/internal/core.System).AccessBatch
func TestAccessBatchDoesNotAllocate(t *testing.T) {
	sys := warmedSystem(t)
	batch := make([]mem.Access, 256)
	base := mem.Addr(1 << 24)
	avg := testing.AllocsPerRun(1000, func() {
		for j := range batch {
			batch[j] = mem.Access{Addr: base + mem.Addr(j*8), Kind: mem.Read}
		}
		batch[0].Kind = mem.IFetch
		batch[0].Addr = 1 << 20
		sys.AccessBatch(batch)
		base += 64
	})
	if avg != 0 {
		t.Errorf("AccessBatch allocates %v times per 256-access batch; want 0", avg)
	}
}
