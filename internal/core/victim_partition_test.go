package core

import (
	"testing"

	"streamsim/internal/cache"
	"streamsim/internal/mem"
)

// dmConfig returns a small direct-mapped system where conflict misses
// dominate — the configuration Jouppi designed victim caches for.
func dmConfig(victimEntries int) Config {
	cfg := tinyConfig(4)
	cfg.VictimEntries = victimEntries
	return cfg
}

func TestVictimValidation(t *testing.T) {
	cfg := tinyConfig(2)
	cfg.VictimEntries = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative victim size should be rejected")
	}
}

func TestVictimRecoversConflictMisses(t *testing.T) {
	// Two blocks aliasing to the same direct-mapped set, accessed
	// alternately: without a victim cache every access misses; with
	// one, only the first two do.
	a, b := mem.Addr(1<<20), mem.Addr(1<<20+4096) // same set in a 4 KB DM cache
	ping := func(cfg Config) Results {
		sys := mustNew(t, cfg)
		for i := 0; i < 100; i++ {
			sys.Access(mem.Access{Addr: a, Kind: mem.Read})
			sys.Access(mem.Access{Addr: b, Kind: mem.Read})
		}
		return sys.Results()
	}
	bare := ping(dmConfig(0))
	if bare.L1D.Misses != 200 {
		t.Fatalf("bare misses = %d, want 200 (pure conflict)", bare.L1D.Misses)
	}
	with := ping(dmConfig(4))
	if with.Bandwidth.VictimFills < 190 {
		t.Errorf("victim fills = %d, want ~198", with.Bandwidth.VictimFills)
	}
	if with.Bandwidth.DemandFetches > 5 {
		t.Errorf("demand fetches = %d, want ~2 (victim absorbs the ping-pong)", with.Bandwidth.DemandFetches)
	}
}

func TestVictimPreservesDirtyData(t *testing.T) {
	// A dirty line bounced through the victim cache must come back
	// dirty, and its eventual write-back must still happen.
	cfg := dmConfig(4)
	sys := mustNew(t, cfg)
	a, b := mem.Addr(1<<20), mem.Addr(1<<20+4096)
	sys.Access(mem.Access{Addr: a, Kind: mem.Write}) // dirty A
	sys.Access(mem.Access{Addr: b, Kind: mem.Read})  // A -> victim (dirty)
	sys.Access(mem.Access{Addr: a, Kind: mem.Read})  // A back, must stay dirty
	// Evict A again and displace it out of the victim cache entirely.
	sys.Access(mem.Access{Addr: b, Kind: mem.Read}) // A -> victim again
	for i := 1; i <= 8; i++ {                       // flood the victim buffer
		sys.Access(mem.Access{Addr: b + mem.Addr(i*8192), Kind: mem.Read})
		sys.Access(mem.Access{Addr: b, Kind: mem.Read})
	}
	r := sys.Results()
	if r.Bandwidth.WriteBacks == 0 {
		t.Error("dirty line lost: no write-back ever reached memory")
	}
}

func TestVictimStatsExposed(t *testing.T) {
	sys := mustNew(t, dmConfig(4))
	a, b := mem.Addr(1<<20), mem.Addr(1<<20+4096)
	sys.Access(mem.Access{Addr: a, Kind: mem.Read})
	sys.Access(mem.Access{Addr: b, Kind: mem.Read})
	sys.Access(mem.Access{Addr: a, Kind: mem.Read})
	r := sys.Results()
	if r.VictimD.Hits != 1 {
		t.Errorf("VictimD.Hits = %d, want 1", r.VictimD.Hits)
	}
	if r.VictimI.Probes != 0 {
		t.Errorf("VictimI.Probes = %d, want 0 (no ifetches)", r.VictimI.Probes)
	}
}

func TestVictimHitBypassesStreams(t *testing.T) {
	sys := mustNew(t, dmConfig(4))
	a, b := mem.Addr(1<<20), mem.Addr(1<<20+4096)
	sys.Access(mem.Access{Addr: a, Kind: mem.Read})
	sys.Access(mem.Access{Addr: b, Kind: mem.Read})
	before := sys.Results().Streams.Probes
	sys.Access(mem.Access{Addr: a, Kind: mem.Read}) // victim hit
	if got := sys.Results().Streams.Probes; got != before {
		t.Errorf("victim hit should not probe streams (%d -> %d)", before, got)
	}
}

func TestPartitionedValidation(t *testing.T) {
	cfg := tinyConfig(0)
	cfg.PartitionedStreams = true
	if _, err := New(cfg); err == nil {
		t.Error("partitioned streams without streams should be rejected")
	}
}

func TestPartitionedStreamsSplitTraffic(t *testing.T) {
	cfg := tinyConfig(2)
	cfg.PartitionedStreams = true
	sys := mustNew(t, cfg)
	for i := 0; i < 200; i++ {
		sys.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64), Kind: mem.Read})
		sys.Access(mem.Access{Addr: mem.Addr(1<<22 + i*64), Kind: mem.IFetch})
	}
	r := sys.Results()
	if r.StreamsD.Probes == 0 || r.StreamsI.Probes == 0 {
		t.Fatalf("both partitions should see traffic: D=%d I=%d",
			r.StreamsD.Probes, r.StreamsI.Probes)
	}
	if r.Streams.Probes != r.StreamsD.Probes+r.StreamsI.Probes {
		t.Errorf("merged probes %d != D %d + I %d",
			r.Streams.Probes, r.StreamsD.Probes, r.StreamsI.Probes)
	}
	if r.StreamsI.HitRate() < 0.9 {
		t.Errorf("sequential ifetch stream hit rate = %.2f, want ~1", r.StreamsI.HitRate())
	}
}

func TestPartitionedIsolation(t *testing.T) {
	// Instruction misses must not steal data streams: a data sweep
	// interleaved with scattered ifetches keeps streaming when
	// partitioned.
	mk := func(part bool) Results {
		cfg := tinyConfig(1) // a single stream per set: worst case
		cfg.PartitionedStreams = part
		sys := mustNew(t, cfg)
		for i := 0; i < 500; i++ {
			sys.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64), Kind: mem.Read})
			// Scattered instruction fetches (e.g. a huge binary).
			sys.Access(mem.Access{Addr: mem.Addr(1<<23 + (i*7919%4096)*64), Kind: mem.IFetch})
		}
		return sys.Results()
	}
	uni := mk(false)
	part := mk(true)
	if part.StreamsD.HitRate() <= uni.Streams.HitRate() {
		t.Errorf("partitioning should protect the lone data stream: unified %.2f vs partitioned D %.2f",
			uni.Streams.HitRate(), part.StreamsD.HitRate())
	}
}

func TestUnifiedStreamsZeroPartitionStats(t *testing.T) {
	sys := mustNew(t, tinyConfig(2))
	sweep(sys, 1<<20, 50)
	r := sys.Results()
	if r.StreamsI.Probes != 0 || r.StreamsD.Probes != 0 {
		t.Error("unified configuration must leave partition stats zero")
	}
}

func TestDirectMappedWithVictimAndStreams(t *testing.T) {
	// The full Jouppi setup: direct-mapped L1 + victim cache + streams
	// on a strided-and-conflicting workload; just assert the ledger
	// still balances.
	cfg := Config{
		L1I: cache.Config{Name: "L1I", SizeBytes: 8 << 10, Assoc: 1, BlockBytes: 64,
			Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate},
		L1D: cache.Config{Name: "L1D", SizeBytes: 8 << 10, Assoc: 1, BlockBytes: 64,
			Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate},
		Streams:           DefaultConfig().Streams,
		VictimEntries:     4,
		UnitFilterEntries: 16,
	}
	sys := mustNew(t, cfg)
	for i := 0; i < 5000; i++ {
		sys.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64), Kind: mem.Read})
		sys.Access(mem.Access{Addr: mem.Addr(1<<20 + (i%128)*8192), Kind: mem.Write})
	}
	r := sys.Results()
	fills := r.L1I.Fills + r.L1D.Fills
	supplied := r.Bandwidth.DemandFetches + r.Bandwidth.StreamFills + r.Bandwidth.VictimFills
	if fills != supplied {
		t.Errorf("fill ledger broken: fills %d != demand %d + stream %d + victim %d",
			fills, r.Bandwidth.DemandFetches, r.Bandwidth.StreamFills, r.Bandwidth.VictimFills)
	}
}
