package core_test

import (
	"context"
	"reflect"
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// TestCheckpointResumeMatchesScratch pins the contract the optimizer's
// incremental rungs rest on, over every workload generator: replaying
// windows [0, F), checkpointing each system, restoring, and extending
// the restored systems over [F, K) via ReplayStoreMultiPrefixFrom
// yields Results byte-identical to one uninterrupted full replay — for
// the shared-front fan-out and for solo systems alike. It also pins
// the snapshot's isolation: extending the original systems after the
// checkpoint, and restoring the same checkpoint twice, both reproduce
// the scratch results, so neither the live system nor a previous
// restore can disturb a saved snapshot.
//
//simlint:deterministic streamsim/internal/core.ReplayStoreMultiPrefixFrom
//simlint:deterministic (*streamsim/internal/core.Checkpoint).Restore
func TestCheckpointResumeMatchesScratch(t *testing.T) {
	const scale = 0.05
	ctx := context.Background()
	cfgs := multiConfigs()
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			st := recordTrace(t, name, scale)
			K := st.WindowCount()
			F := K / 2
			if F < 1 {
				F = 1
			}

			// Scratch reference: one uninterrupted full replay per config.
			want := make([]core.Results, len(cfgs))
			for i, sys := range newSystems(t, cfgs) {
				if err := core.ReplayStoreMultiPrefix(ctx, []*core.System{sys}, st, 0); err != nil {
					t.Fatal(err)
				}
				want[i] = sys.Results()
			}

			// Prefix to F as a generation, checkpoint every system.
			systems := newSystems(t, cfgs)
			if err := core.ReplayStoreMultiPrefix(ctx, systems, st, F); err != nil {
				t.Fatal(err)
			}
			cks := make([]*core.Checkpoint, len(systems))
			for i, sys := range systems {
				cks[i] = sys.Checkpoint()
			}

			// The originals keep going: a checkpoint must not disturb the
			// live system it was taken from.
			if err := core.ReplayStoreMultiPrefixFrom(ctx, systems, st, F, K); err != nil {
				t.Fatal(err)
			}
			for i, sys := range systems {
				if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("config %d: original extended past checkpoint diverges from scratch replay:\ngot  %+v\nwant %+v",
						i, got, want[i])
				}
			}

			// Restore and resume — twice from the same snapshots, solo the
			// second time, to pin multi-restore and grouping independence.
			for round := 0; round < 2; round++ {
				restored := make([]*core.System, len(cks))
				for i, ck := range cks {
					restored[i] = ck.Restore()
				}
				if round == 0 {
					if err := core.ReplayStoreMultiPrefixFrom(ctx, restored, st, F, K); err != nil {
						t.Fatal(err)
					}
				} else {
					for _, sys := range restored {
						if err := core.ReplayStoreMultiPrefixFrom(ctx, []*core.System{sys}, st, F, K); err != nil {
							t.Fatal(err)
						}
					}
				}
				for i, sys := range restored {
					if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
						t.Errorf("config %d (restore round %d): resumed replay diverges from scratch replay:\ngot  %+v\nwant %+v",
							i, round, got, want[i])
					}
				}
			}
		})
	}
}

// TestReplayStoreMultiPrefixFromBounds checks the range clamps: an
// empty range replays nothing, toWindow <= 0 or beyond the window
// count means end of trace, and a from beyond to is clamped shut.
func TestReplayStoreMultiPrefixFromBounds(t *testing.T) {
	ctx := context.Background()
	st := recordTrace(t, "mgrid", 0.05)
	K := st.WindowCount()
	for _, tc := range []struct{ from, to int }{
		{0, 0},  // to<=0 is end-of-trace, so from 0: full replay
		{2, -1}, // negative to is end-of-trace too
		{K, K + 3},
		{3, 3},
		{5, 2},
	} {
		sys, err := core.New(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ReplayStoreMultiPrefixFrom(ctx, []*core.System{sys}, st, tc.from, tc.to); err != nil {
			t.Fatal(err)
		}
		from, to := tc.from, tc.to
		if to <= 0 || to > K {
			to = K
		}
		if from < 0 {
			from = 0
		}
		if from > to {
			from = to
		}
		wantRefs := uint64(st.PrefixLen(to) - st.PrefixLen(from))
		r := sys.Results()
		if got := r.L1I.Accesses + r.L1D.Accesses; got != wantRefs {
			t.Errorf("From(%d, %d): consumed %d refs, want %d", tc.from, tc.to, got, wantRefs)
		}
	}
}

// TestReplayStoreMultiPrefixFromCancel checks prompt cancellation of a
// resumed replay: a pre-cancelled context stops the generation within
// one batch past the resume point.
func TestReplayStoreMultiPrefixFromCancel(t *testing.T) {
	st := syntheticStore(64 * trace.ReplayBatchLen)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	systems := newSystems(t, multiConfigs())
	if err := core.ReplayStoreMultiPrefixFrom(ctx, systems, st, 2, 0); err != context.Canceled {
		t.Fatalf("ReplayStoreMultiPrefixFrom = %v, want context.Canceled", err)
	}
	for i, sys := range systems {
		r := sys.Results()
		if consumed := r.L1I.Accesses + r.L1D.Accesses; consumed > trace.ReplayBatchLen {
			t.Errorf("system %d consumed %d refs after pre-cancel, want <= one batch (%d)",
				i, consumed, trace.ReplayBatchLen)
		}
	}
}

// TestFullReplayResumable pins the predicate the optimizer's final
// rung uses to decide between resuming a checkpoint and re-running the
// windowed engine from scratch: small traces (no viable chunk plan)
// are resumable, and the threshold agrees with the windowed engine's
// own exact-sequential fallback.
func TestFullReplayResumable(t *testing.T) {
	systems := newSystems(t, multiConfigs())
	small := syntheticStore(4 * trace.WindowRefs)
	if !core.FullReplayResumable(systems, small) {
		t.Error("4-window trace reported not resumable; the windowed engine would replay it exactly")
	}
	big := syntheticStore(64 * trace.WindowRefs)
	if core.FullReplayResumable(systems, big) {
		t.Error("64-window trace reported resumable; the windowed engine shards it approximately")
	}
}
