// Fork/merge support for the window-sharded replay engine: a System
// can be deep-copied (architectural state only, statistics zeroed) so
// that disjoint runs of trace windows simulate concurrently, and the
// per-chunk statistic deltas merge back additively. See replay_window.go
// for the engine and DESIGN.md §10 for the exactness argument.
package core

// Fork returns a system with a deep copy of s's architectural state —
// cache tags and replacement stamps, stream-buffer FIFOs and
// address generators, victim entries, filter histories, every
// replacement clock and RNG — and all statistics counters zeroed. A
// fork therefore accumulates pure deltas: whatever its counters read
// later is exactly the work done since the fork. The retired-
// instruction counter starts at zero too, and the configuration
// (including any hooks) is shared with the original.
//
//simlint:statefull fork
func (s *System) Fork() *System {
	n := &System{cfg: s.cfg, geom: s.geom, l1i: s.l1i.Clone(), l1d: s.l1d.Clone()}
	// Zero values of the composite literal, written out so the fork
	// visibly decides the replay position and completion flag rather
	// than inheriting whatever the literal omits.
	n.instructions, n.finished = 0, false
	if s.victimI != nil {
		n.victimI, n.victimD = s.victimI.Clone(), s.victimD.Clone()
	}
	if s.streams != nil {
		n.streams = s.streams.Clone()
	}
	if s.streamsI != nil {
		n.streamsI = s.streamsI.Clone()
	}
	if s.uf != nil {
		n.uf = s.uf.Clone()
	}
	if s.nf != nil {
		n.nf = s.nf.Clone()
	}
	if s.md != nil {
		n.md = s.md.Clone()
	}
	n.ResetStats()
	return n
}

// ResetStats zeroes every statistics counter — bandwidth ledger, cache,
// stream, victim and filter counts — while leaving the architectural
// state, the retired-instruction counter and the finished flag
// untouched. The window-sharded engine calls it on a fork after the
// warmup windows so the counted windows start from clean counters on
// warm state.
//
//simlint:statefull reset
func (s *System) ResetStats() {
	s.bw = Bandwidth{}
	s.out = Outcome{}
	s.l1i.ResetStats()
	s.l1d.ResetStats()
	if s.victimI != nil {
		s.victimI.ResetStats()
		s.victimD.ResetStats()
	}
	if s.streams != nil {
		s.streams.ResetStats()
	}
	if s.streamsI != nil {
		s.streamsI.ResetStats()
	}
	if s.uf != nil {
		s.uf.ResetStats()
	}
	if s.nf != nil {
		s.nf.ResetStats()
	}
	if s.md != nil {
		s.md.ResetStats()
	}
}

// Merge accumulates o's statistics counters into s. Every counter the
// simulator maintains is additive over a partition of the reference
// stream, so merging per-chunk deltas in any order reproduces the
// totals a single pass would have counted for the same per-chunk
// work. Architectural state, the instruction counter and the scratch
// outcome are not touched; o is read-only.
//
//simlint:deterministic
//simlint:statefull merge
func (s *System) Merge(o *System) {
	// Whole-ledger consolidation, not a transfer event: every block in
	// o's ledger was posted to the traffic hook when the chunk booked
	// it (and hook-carrying systems never shard in the first place), so
	// no post accompanies the sum.
	s.bw = Bandwidth{
		DemandFetches: s.bw.DemandFetches + o.bw.DemandFetches,
		StreamFills:   s.bw.StreamFills + o.bw.StreamFills,
		VictimFills:   s.bw.VictimFills + o.bw.VictimFills,
		WriteBacks:    s.bw.WriteBacks + o.bw.WriteBacks,
	}
	s.l1i.AddStats(o.l1i.Stats())
	s.l1d.AddStats(o.l1d.Stats())
	if s.victimI != nil && o.victimI != nil {
		s.victimI.AddStats(o.victimI.Stats())
		s.victimD.AddStats(o.victimD.Stats())
	}
	if s.streams != nil && o.streams != nil {
		s.streams.AddStats(o.streams.Stats())
	}
	if s.streamsI != nil && o.streamsI != nil {
		s.streamsI.AddStats(o.streamsI.Stats())
	}
	if s.uf != nil && o.uf != nil {
		s.uf.AddStats(o.uf.Stats())
	}
	if s.nf != nil && o.nf != nil {
		s.nf.AddStats(o.nf.Stats())
	}
	if s.md != nil && o.md != nil {
		s.md.AddStats(o.md.Stats())
	}
}

// adoptState swaps o's architectural state into s while keeping s's
// accumulated statistics: after the window-sharded engine merges every
// chunk's counter deltas into the caller's system, the final chunk's
// fork holds the trace-end cache and stream contents, and this makes
// the caller's system carry both. o must have been merged into s
// already (its counters are restored over the adopted components) and
// must not be used afterwards.
//
//simlint:statefull adopt
func (s *System) adoptState(o *System) {
	li, ld := s.l1i.Stats(), s.l1d.Stats()
	s.l1i, s.l1d = o.l1i, o.l1d
	s.l1i.SetStats(li)
	s.l1d.SetStats(ld)
	if s.victimI != nil && o.victimI != nil {
		vi, vd := s.victimI.Stats(), s.victimD.Stats()
		s.victimI, s.victimD = o.victimI, o.victimD
		s.victimI.SetStats(vi)
		s.victimD.SetStats(vd)
	}
	if s.streams != nil && o.streams != nil {
		st := s.streams.Stats()
		s.streams = o.streams
		s.streams.SetStats(st)
	}
	if s.streamsI != nil && o.streamsI != nil {
		st := s.streamsI.Stats()
		s.streamsI = o.streamsI
		s.streamsI.SetStats(st)
	}
	if s.uf != nil && o.uf != nil {
		st := s.uf.Stats()
		s.uf = o.uf
		s.uf.SetStats(st)
	}
	if s.nf != nil && o.nf != nil {
		st := s.nf.Stats()
		s.nf = o.nf
		s.nf.SetStats(st)
	}
	if s.md != nil && o.md != nil {
		st := s.md.Stats()
		s.md = o.md
		s.md.SetStats(st)
	}
}
