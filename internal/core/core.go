// Package core assembles the paper's memory system: split on-chip L1
// instruction and data caches backed *only* by a set of stream buffers
// and main memory (Figure 1). References flow L1 → streams → memory;
// stream misses use the fast path directly to memory; write-backs
// bypass the streams and invalidate stale stream copies.
//
// The package wires together the cache, stream and filter models and
// keeps the bandwidth ledger from which the paper's metrics — stream
// hit rate, extra bandwidth (EB), stream-length distribution — are
// derived. It is the simulator the paper's Section 4 describes, minus
// the Shade front end (see internal/workload for the trace source).
package core

import (
	"fmt"

	"streamsim/internal/cache"
	"streamsim/internal/filter"
	"streamsim/internal/mem"
	"streamsim/internal/stats"
	"streamsim/internal/stream"
	"streamsim/internal/victim"
)

// StrideScheme selects the non-unit-stride detection hardware.
type StrideScheme uint8

// Available stride-detection schemes.
const (
	// NoStrideDetection disables non-unit-stride streams.
	NoStrideDetection StrideScheme = iota
	// CzoneScheme is the Section 7 partition scheme (the paper's
	// preferred design).
	CzoneScheme
	// MinDeltaScheme is the Section 7 alternative kept for comparison.
	MinDeltaScheme
)

// String names the scheme.
func (s StrideScheme) String() string {
	switch s {
	case NoStrideDetection:
		return "none"
	case CzoneScheme:
		return "czone"
	case MinDeltaScheme:
		return "min-delta"
	default:
		return fmt.Sprintf("StrideScheme(%d)", uint8(s))
	}
}

// Config describes a complete memory system. DefaultConfig returns the
// paper's baseline; zero values elsewhere mean "disabled".
type Config struct {
	// Geometry fixes word and block sizes (default 4/64 bytes).
	Geometry mem.Geometry

	// L1I and L1D configure the on-chip caches. The paper uses
	// 64 KB 4-way with random replacement for both; the data cache is
	// write-back, write-allocate.
	L1I cache.Config
	L1D cache.Config

	// Streams configures the stream buffer set. Streams.Streams == 0
	// disables stream buffers entirely (L1 + memory only).
	Streams stream.Config

	// PartitionedStreams gives instruction and data misses separate
	// stream sets (each of Streams.Streams buffers), as the MacroTek
	// PowerPC memory controller does. The paper found partitioning
	// unhelpful — the large on-chip I cache leaves too few instruction
	// misses — and uses unified streams; the ablation benches verify.
	PartitionedStreams bool

	// VictimEntries adds a Jouppi victim cache of this many fully-
	// associative entries behind each L1. The paper's 4-way L1s don't
	// need one ("in a direct-mapped cache, Jouppi's victim buffers may
	// also be needed"); direct-mapped configurations do.
	VictimEntries int

	// UnitFilterEntries enables the Section 6 unit-stride filter when
	// > 0 (the paper uses 16 entries for its filtered results).
	UnitFilterEntries int

	// Stride selects the non-unit-stride scheme; it observes only
	// references that the unit-stride filter rejects (or, with the
	// unit filter disabled, every stream miss).
	Stride StrideScheme
	// StrideFilterEntries sizes the czone or min-delta history
	// (16 in the paper).
	StrideFilterEntries int
	// CzoneBits sets the czone size in word-address bits (Figure 9
	// sweeps 10-26).
	CzoneBits uint
	// MinDeltaMax bounds accepted min-delta strides in words
	// (0 = unbounded).
	MinDeltaMax int64

	// OnMemoryTraffic, when set, observes every block the system moves
	// over the memory interface on the demand side — fast-path fetches
	// and write-backs. Prefetch traffic is observed via
	// Streams.OnPrefetch; together they are the full traffic sequence
	// bank-interleaving analyses replay (see internal/memctl).
	OnMemoryTraffic func(blk mem.Addr)
}

// DefaultConfig is the paper's baseline: 64K+64K 4-way random-
// replacement L1s, ten streams of depth two, both filters at sixteen
// entries, czone of sixteen bits.
func DefaultConfig() Config {
	return Config{
		Geometry: mem.DefaultGeometry(),
		L1I: cache.Config{
			Name: "L1I", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64,
			Replacement: cache.Random, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
			Seed: 1,
		},
		L1D: cache.Config{
			Name: "L1D", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64,
			Replacement: cache.Random, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
			Seed: 2,
		},
		Streams:             stream.Config{Streams: 10, Depth: 2},
		UnitFilterEntries:   16,
		Stride:              CzoneScheme,
		StrideFilterEntries: 16,
		CzoneBits:           16,
	}
}

// System is a running memory system. It is not safe for concurrent use.
//
// tap is exempt from snapshot coverage everywhere: it is a wiring
// hook, and the replay engine never shards or checkpoints a
// hook-carrying system. bw is exempt in adopt only — an adopter keeps
// its own traffic ledger while taking the front end.
//
//simlint:state
//simlint:statederived tap
//simlint:statederived bw adopt
type System struct {
	cfg      Config
	geom     mem.Geometry
	l1i      *cache.Cache
	l1d      *cache.Cache
	victimI  *victim.Cache
	victimD  *victim.Cache
	streams  *stream.Set // unified, or the data set when partitioned
	streamsI *stream.Set // instruction set when partitioned
	uf       *filter.UnitStride
	nf       *filter.NonUnitStride
	md       *filter.MinDelta

	instructions uint64
	finished     bool
	bw           Bandwidth
	out          Outcome // scratch for AccessOutcome

	// tap, when non-nil, records every backend event missVia generates
	// (L1 miss fills and write-backs) as packed words. The multi-config
	// replay engine enables it on one leader system when every system
	// in a fan-out shares the same L1 front end: the followers then
	// replay only the tapped events through their stream-side state
	// instead of re-simulating an identical L1 (see applyTap).
	tap []uint64
}

// Backend event words carried in System.tap, low bits first: bit 0 is
// the event type, bit 1 the ifetch flag of a fill, the rest the
// address.
const (
	tapWriteBack = 1 // bits 2..: written-back block address
	tapIFetch    = 2 // fill events only: the miss was an ifetch
)

// Bandwidth is the block-traffic ledger. All counts are in cache
// blocks moved between the chip and main memory.
//
//simlint:state counters
type Bandwidth struct {
	// DemandFetches counts blocks fetched over the fast path (stream
	// misses, and every fill when streams are disabled).
	DemandFetches uint64
	// StreamFills counts blocks delivered to L1 from the streams.
	StreamFills uint64
	// VictimFills counts blocks recovered from a victim cache (no
	// off-chip traffic).
	VictimFills uint64
	// WriteBacks counts dirty blocks written to memory.
	WriteBacks uint64
}

// New builds a System from cfg. Geometry defaults to the paper's; the
// L1 block sizes must agree with the geometry's block size.
func New(cfg Config) (*System, error) {
	if cfg.Geometry == (mem.Geometry{}) {
		cfg.Geometry = mem.DefaultGeometry()
	}
	if cfg.L1I.BlockBytes != cfg.Geometry.BlockBytes() || cfg.L1D.BlockBytes != cfg.Geometry.BlockBytes() {
		return nil, fmt.Errorf("core: L1 block sizes (%d, %d) must match geometry block size %d",
			cfg.L1I.BlockBytes, cfg.L1D.BlockBytes, cfg.Geometry.BlockBytes())
	}
	s := &System{cfg: cfg, geom: cfg.Geometry}
	var err error
	if s.l1i, err = cache.New(cfg.L1I); err != nil {
		return nil, err
	}
	if s.l1d, err = cache.New(cfg.L1D); err != nil {
		return nil, err
	}
	if cfg.Streams.Streams > 0 {
		if s.streams, err = stream.NewSet(cfg.Geometry, cfg.Streams); err != nil {
			return nil, err
		}
		if cfg.PartitionedStreams {
			if s.streamsI, err = stream.NewSet(cfg.Geometry, cfg.Streams); err != nil {
				return nil, err
			}
		}
	} else if cfg.PartitionedStreams {
		return nil, fmt.Errorf("core: partitioned streams configured without streams")
	}
	if cfg.VictimEntries > 0 {
		if s.victimI, err = victim.New(cfg.VictimEntries); err != nil {
			return nil, err
		}
		if s.victimD, err = victim.New(cfg.VictimEntries); err != nil {
			return nil, err
		}
	} else if cfg.VictimEntries < 0 {
		return nil, fmt.Errorf("core: negative victim cache size %d", cfg.VictimEntries)
	}
	if cfg.UnitFilterEntries > 0 {
		if s.streams == nil {
			return nil, fmt.Errorf("core: unit-stride filter configured without streams")
		}
		if s.uf, err = filter.NewUnitStride(cfg.UnitFilterEntries); err != nil {
			return nil, err
		}
	}
	switch cfg.Stride {
	case NoStrideDetection:
	case CzoneScheme:
		if s.streams == nil {
			return nil, fmt.Errorf("core: stride detection configured without streams")
		}
		if s.nf, err = filter.NewNonUnitStride(cfg.StrideFilterEntries, cfg.CzoneBits); err != nil {
			return nil, err
		}
	case MinDeltaScheme:
		if s.streams == nil {
			return nil, fmt.Errorf("core: stride detection configured without streams")
		}
		if s.md, err = filter.NewMinDelta(cfg.StrideFilterEntries, cfg.MinDeltaMax); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown stride scheme %v", cfg.Stride)
	}
	return s, nil
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// SetCzoneBits retunes the czone at run time (the paper's memory-mapped
// mask store). It fails unless the czone scheme is active.
func (s *System) SetCzoneBits(bits uint) error {
	if s.nf == nil {
		return fmt.Errorf("core: czone scheme not configured")
	}
	return s.nf.SetCzoneBits(bits)
}

// AddInstructions advances the retired-instruction counter; workloads
// call this so Table 1's MPI column can be computed.
func (s *System) AddInstructions(n uint64) { s.instructions += n }

// Instructions returns the retired-instruction count.
func (s *System) Instructions() uint64 { return s.instructions }

// Level says where an access was satisfied.
type Level uint8

// Service levels, nearest first.
const (
	// LevelUnsampled means set sampling skipped the reference.
	LevelUnsampled Level = iota
	// LevelL1 is an on-chip cache hit.
	LevelL1
	// LevelVictim is a victim-buffer hit (no off-chip traffic).
	LevelVictim
	// LevelStream is a stream-buffer hit.
	LevelStream
	// LevelMemory is a fast-path fetch from main memory.
	LevelMemory
	// LevelNone is a no-write-allocate store forwarded to memory.
	LevelNone
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelUnsampled:
		return "unsampled"
	case LevelL1:
		return "L1"
	case LevelVictim:
		return "victim"
	case LevelStream:
		return "stream"
	case LevelMemory:
		return "memory"
	case LevelNone:
		return "none"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Outcome describes what one access did, for timing models layered on
// top of the functional simulator.
type Outcome struct {
	// Level is where the data came from.
	Level Level
	// Pending is set for stream hits whose prefetch had not yet
	// returned (the paper's Section 8 caveat).
	Pending bool
	// WroteBack is set when the access displaced a dirty block to
	// memory (directly or out of the victim buffer).
	WroteBack bool
	// Prefetches counts stream prefetches issued as a side effect.
	Prefetches uint64
}

// Access presents one memory reference to the system.
//
// The L1 probe is inlined here (and in AccessBatch) rather than
// delegated: the stream workloads hit L1 on the vast majority of
// references, and finishing a hit without a second call frame is
// worth the small duplication with AccessBatch.
//
//simlint:hotpath
func (s *System) Access(a mem.Access) {
	c, write, ifetch := s.l1d, a.Kind == mem.Write, false
	if a.Kind == IFetchKind {
		c, write, ifetch = s.l1i, false, true
	}
	if way, st := c.Probe(uint64(a.Addr)); st == cache.ProbeHit {
		c.HitAt(way, write)
		s.out.Level = LevelL1
	} else {
		s.missVia(c, a.Addr, write, ifetch, st)
	}
}

// AccessBatch presents a slice of references in order. It is the replay
// fast path: one call replaces len(accs) interface dispatches. The
// statistics produced are byte-identical to calling Access in a loop.
//
//simlint:hotpath
//simlint:borrowed accs
func (s *System) AccessBatch(accs []mem.Access) {
	for i := range accs {
		a := &accs[i]
		c, write, ifetch := s.l1d, a.Kind == mem.Write, false
		if a.Kind == IFetchKind {
			c, write, ifetch = s.l1i, false, true
		}
		way, st := c.Probe(uint64(a.Addr))
		if st == cache.ProbeHit {
			c.HitAt(way, write)
			s.out.Level = LevelL1
			continue
		}
		s.missVia(c, a.Addr, write, ifetch, st)
	}
}

// AccessPacked presents packed references — uint64(addr)<<2 |
// uint64(kind), the trace.(*StoreIter).NextPacked layout — in order.
// It is the trace-replay hot path: the statistics produced are
// byte-identical to AccessBatch over the equivalent mem.Access slice,
// but each reference is a single word unpacked straight into the
// probe, with no struct materialization between decode and simulation.
//
//simlint:hotpath
//simlint:borrowed words
func (s *System) AccessPacked(words []uint64) {
	// Stack-resident probe snapshots: the compiler can prove the
	// bookkeeping calls below never write through them, so the cache
	// geometry loads hoist out of the loop instead of being reissued
	// for every reference (see cache.Prober).
	ld, li := s.l1d, s.l1i
	pd, pi := ld.Prober(), li.Prober()
	if !pd.DeferHits() || !pi.DeferHits() {
		// Stamped replacement: every hit must update its way's stamp,
		// so run the full per-reference bookkeeping.
		for _, w := range words {
			c, p, write, ifetch := ld, &pd, w&3 == uint64(mem.Write), false
			if w&3 == uint64(IFetchKind) {
				c, p, write, ifetch = li, &pi, false, true
			}
			way, st := p.Probe(w >> 2)
			if st == cache.ProbeHit {
				c.HitAt(way, write)
				continue
			}
			s.missVia(c, mem.Addr(w>>2), write, ifetch, st)
		}
		return
	}
	// Random replacement (the paper's L1s): a read hit's only effect is
	// the hit counter, so the dominant path of the loop accumulates in
	// registers and flushes once per batch — no per-reference stores at
	// all on a read hit.
	var hitsD, hitsI uint64
	for _, w := range words {
		if w&3 == uint64(IFetchKind) {
			if _, st := pi.Probe(w >> 2); st == cache.ProbeHit {
				hitsI++
			} else {
				s.missVia(li, mem.Addr(w>>2), false, true, st)
			}
			continue
		}
		write := w&3 == uint64(mem.Write)
		way, st := pd.Probe(w >> 2)
		switch {
		case st != cache.ProbeHit:
			s.missVia(ld, mem.Addr(w>>2), write, false, st)
		case write:
			ld.HitAt(way, true)
		default:
			hitsD++
		}
	}
	ld.AddHits(hitsD)
	li.AddHits(hitsI)
}

// AccessOutcome is Access plus a report of how the reference was
// serviced; timing models use it to charge latencies. The outcome is
// accounted incrementally inside missVia (each step records what it
// did as it happens), so the cost is O(1) per access regardless of the
// number of streams — and zero when no stream set is configured.
//
//simlint:hotpath
func (s *System) AccessOutcome(a mem.Access) Outcome {
	// Clear the event fields here rather than in missVia: plain
	// Access calls never read them, so the common replay path skips
	// the per-reference reset. Access always sets Level.
	s.out = Outcome{}
	s.Access(a)
	return s.out
}

// IFetchKind re-exports mem.IFetch for the convenience of callers that
// already import core.
const IFetchKind = mem.IFetch

// missVia continues a reference that did not hit in the on-chip cache
// c (st is the probe status Access observed): the victim buffer →
// streams → memory flow. It accounts s.out incrementally as it goes:
// every step that issues prefetches or writes back records it here, so
// AccessOutcome needs no before/after stats diffing. The event fields
// of s.out are only valid when the caller (AccessOutcome) cleared
// them first; Level is written on every path.
//
//simlint:hotpath
func (s *System) missVia(c *cache.Cache, addr mem.Addr, write, ifetch bool, st cache.ProbeStatus) {
	if st == cache.ProbeUnsampled {
		c.NoteUnsampled()
		s.out.Level = LevelUnsampled
		return
	}
	res := c.MissAt(uint64(addr), write)
	// On-chip miss. Route the displaced line first.
	vc := s.victimD
	if ifetch {
		vc = s.victimI
	}
	switch {
	case res.Evicted && vc != nil:
		// The evicted line (clean or dirty) moves into the victim
		// buffer; a dirty line displaced *out* of the buffer continues
		// to memory, bypassing and invalidating the streams.
		if wbBlock, wb := vc.Insert(res.VictimBlock, res.EvictedDirty); wb {
			s.bw.WriteBacks++
			s.out.WroteBack = true
			s.noteTraffic(mem.Addr(wbBlock))
			s.invalidateStreams(mem.Addr(wbBlock))
			if s.tap != nil {
				s.tapEvent(wbBlock<<2 | tapWriteBack)
			}
		}
	case res.WroteBack:
		// No victim buffer: the dirty line goes straight to memory.
		s.bw.WriteBacks++
		s.out.WroteBack = true
		s.noteTraffic(mem.Addr(res.VictimBlock))
		s.invalidateStreams(mem.Addr(res.VictimBlock))
		if s.tap != nil {
			s.tapEvent(res.VictimBlock<<2 | tapWriteBack)
		}
	}
	if !res.Filled {
		// No-write-allocate store miss: the store itself goes to
		// memory (already counted by the cache's WriteBacks); nothing
		// to fetch.
		s.out.Level = LevelNone
		return
	}
	blk := s.geom.BlockAddr(addr)
	// The victim buffer is closer than the streams: a hit swaps the
	// line back with no off-chip traffic.
	if vc != nil {
		if hit, dirty := vc.Probe(uint64(blk)); hit {
			s.bw.VictimFills++
			s.out.Level = LevelVictim
			if dirty && !write {
				c.SetDirty(uint64(addr))
			}
			return
		}
	}
	if s.tap != nil {
		ev := uint64(addr) << 2
		if ifetch {
			ev |= tapIFetch
		}
		s.tapEvent(ev)
	}
	set := s.streams
	if ifetch && s.streamsI != nil {
		set = s.streamsI
	}
	if set == nil {
		s.bw.DemandFetches++
		s.out.Level = LevelMemory
		s.noteTraffic(blk)
		return
	}
	if pr := set.ProbeOutcome(blk); pr.Hit {
		// Block supplied by a stream buffer; its fetch was already
		// accounted when the prefetch was issued.
		s.bw.StreamFills++
		s.out.Level = LevelStream
		s.out.Pending = pr.Pending
		s.out.Prefetches += pr.Issued
		return
	}
	// Stream miss: fetch over the fast path, then decide allocation.
	s.bw.DemandFetches++
	s.out.Level = LevelMemory
	s.noteTraffic(blk)
	s.allocatePolicy(set, addr, blk)
}

// noteTraffic reports a demand-side block transfer to the hook.
func (s *System) noteTraffic(blk mem.Addr) {
	if s.cfg.OnMemoryTraffic != nil {
		s.cfg.OnMemoryTraffic(blk)
	}
}

// invalidateStreams clears a written-back block from every stream set.
func (s *System) invalidateStreams(blk mem.Addr) {
	if s.streams != nil {
		s.streams.InvalidateBlock(blk)
	}
	if s.streamsI != nil {
		s.streamsI.InvalidateBlock(blk)
	}
}

// tapEvent records one backend event for a multi-config fan-out
// leader. Outlined from missVia so the //simlint:hotpath closure stays
// free of allocating constructs: the append runs only when a fan-out
// replay armed the tap (s.tap != nil), never on the single-system
// steady state, and the leader preallocates the buffer to the batch
// length so growth is the rare case even then.
//
//simlint:coldpath
func (s *System) tapEvent(ev uint64) {
	s.tap = append(s.tap, ev)
}

// applyTap replays a leader system's tapped backend events (see
// System.tap) through this system's stream-side state: write-backs
// invalidate streams and fill misses run the victim-less routing tail
// of missVia. The caller guarantees this system's L1 front end is
// configured identically to the leader's and has no victim cache, so
// every L1 decision the leader made holds here verbatim; the L1
// statistics themselves are copied once at the end of the replay
// (adoptFrontStats) instead of being re-simulated.
//
//simlint:hotpath
//simlint:borrowed events
func (s *System) applyTap(events []uint64) {
	for _, ev := range events {
		if ev&tapWriteBack != 0 {
			blk := mem.Addr(ev >> 2)
			s.bw.WriteBacks++
			s.noteTraffic(blk)
			s.invalidateStreams(blk)
			continue
		}
		addr := mem.Addr(ev >> 2)
		ifetch := ev&tapIFetch != 0
		blk := s.geom.BlockAddr(addr)
		set := s.streams
		if ifetch && s.streamsI != nil {
			set = s.streamsI
		}
		if set == nil {
			s.bw.DemandFetches++
			s.noteTraffic(blk)
			continue
		}
		if pr := set.ProbeOutcome(blk); pr.Hit {
			s.bw.StreamFills++
			continue
		}
		s.bw.DemandFetches++
		s.noteTraffic(blk)
		s.allocatePolicy(set, addr, blk)
	}
}

// adoptFrontStats copies the shared-front L1 statistics from the
// leader of a fan-out replay onto this follower, whose own L1 state
// was never exercised (applyTap fed it backend events only). Identical
// configuration and an identical reference stream make the leader's
// L1 counters exactly what this system's would have been.
func (s *System) adoptFrontStats(leader *System) {
	s.l1i.SetStats(leader.l1i.Stats())
	s.l1d.SetStats(leader.l1d.Stats())
}

// adoptFront copies the leader's whole L1 front end — architectural
// state and statistics — onto this follower. The prefix replay engine
// uses it instead of adoptFrontStats so every system it returns is
// individually checkpointable: a follower's own L1 was never exercised
// (applyTap fed it backend events only), and a checkpoint that froze
// that pristine front could not resume as a leader or solo system. The
// clone is exactly the L1 a solo replay would have left, because the
// shared front guarantees identical configuration over an identical
// reference stream.
func (s *System) adoptFront(leader *System) {
	s.l1i = leader.l1i.Clone()
	s.l1d = leader.l1d.Clone()
}

// allocatePolicy implements the paper's allocation pipeline: no filter
// means allocate-on-every-miss; with the unit-stride filter a stream is
// allocated only on a filter hit; references rejected by the unit
// filter flow to the non-unit-stride scheme when one is configured.
// set is the stream set the miss belongs to (partitioned systems share
// one filter pipeline, as the MacroTek part does).
func (s *System) allocatePolicy(set *stream.Set, addr, blk mem.Addr) {
	if s.uf == nil {
		// Ordinary streams (Section 5): every miss allocates. A
		// configured stride scheme still observes the miss so purely
		// strided programs can profit (used by ablation benches only;
		// the paper always pairs stride detection with the filter).
		if s.nf != nil || s.md != nil {
			s.observeStride(set, addr)
		}
		s.out.Prefetches += set.AllocateUnit(blk)
		return
	}
	if s.uf.Lookup(blk) {
		s.out.Prefetches += set.AllocateUnit(blk)
		return
	}
	s.observeStride(set, addr)
}

// observeStride feeds the configured non-unit-stride detector and
// allocates a strided stream on verification.
func (s *System) observeStride(set *stream.Set, addr mem.Addr) {
	word := s.geom.WordAddr(addr)
	switch {
	case s.nf != nil:
		if ok, last, stride := s.nf.Observe(word); ok {
			s.out.Prefetches += set.AllocateStrided(last, stride)
		}
	case s.md != nil:
		if ok, stride := s.md.Observe(word); ok {
			s.out.Prefetches += set.AllocateStrided(word, stride)
		}
	}
}

// Finish closes the bandwidth ledger: in-flight prefetches count as
// wasted and live stream lengths are recorded. Call once, after the
// last access; Results calls it implicitly.
func (s *System) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	if s.streams != nil {
		s.streams.Finish()
	}
	if s.streamsI != nil {
		s.streamsI.Finish()
	}
}

// Results summarizes a finished run.
type Results struct {
	// L1I and L1D are the cache-level statistics.
	L1I cache.Stats
	L1D cache.Stats
	// Streams is the stream-set statistics: the unified set, or the
	// merged instruction + data sets when partitioned.
	Streams stream.Stats
	// StreamsI and StreamsD split the partitioned sets (zero when the
	// streams are unified).
	StreamsI stream.Stats
	StreamsD stream.Stats
	// VictimI and VictimD are the per-cache victim buffer statistics
	// (zero when no victim cache is configured).
	VictimI victim.Stats
	VictimD victim.Stats
	// UnitFilter and StrideFilter are filter statistics (zero when the
	// corresponding hardware is disabled).
	UnitFilter  filter.UnitStrideStats
	CzoneFilter filter.NonUnitStrideStats
	MinDelta    filter.MinDeltaStats
	// Bandwidth is the block-traffic ledger.
	Bandwidth Bandwidth
	// Instructions is the retired-instruction count workloads reported.
	Instructions uint64
}

// Results finalizes the run and returns its summary.
func (s *System) Results() Results {
	s.Finish()
	r := Results{
		L1I:          s.l1i.Stats(),
		L1D:          s.l1d.Stats(),
		Bandwidth:    s.bw,
		Instructions: s.instructions,
	}
	if s.streams != nil {
		r.Streams = s.streams.Stats()
		if s.streamsI != nil {
			r.StreamsD = r.Streams
			r.StreamsI = s.streamsI.Stats()
			r.Streams = r.StreamsD.Add(r.StreamsI)
		}
	}
	if s.victimI != nil {
		r.VictimI = s.victimI.Stats()
		r.VictimD = s.victimD.Stats()
	}
	if s.uf != nil {
		r.UnitFilter = s.uf.Stats()
	}
	if s.nf != nil {
		r.CzoneFilter = s.nf.Stats()
	}
	if s.md != nil {
		r.MinDelta = s.md.Stats()
	}
	return r
}

// StreamHitRate is the paper's primary metric: the fraction of on-chip
// misses that hit in the streams, in percent.
func (r Results) StreamHitRate() float64 {
	return 100 * r.Streams.HitRate()
}

// DataMissRate is the L1D miss rate in percent (Table 1).
func (r Results) DataMissRate() float64 {
	return 100 * r.L1D.MissRate()
}

// MPI is misses per instruction in percent (Table 1's final column),
// over both caches.
func (r Results) MPI() float64 {
	return stats.Percent(r.L1I.Misses+r.L1D.Misses, r.Instructions)
}

// ExtraBandwidth is the Section 5/6 EB metric in percent: prefetched
// blocks never consumed, relative to the blocks the program itself
// fetches (its required bandwidth without streams).
func (r Results) ExtraBandwidth() float64 {
	required := r.L1I.Fills + r.L1D.Fills
	return stats.ExtraBandwidth(r.Streams.PrefetchesWasted, required)
}

// MemoryTraffic returns total blocks moved to/from memory: demand
// fetches, prefetches and write-backs.
func (r Results) MemoryTraffic() uint64 {
	return r.Bandwidth.DemandFetches + r.Streams.PrefetchesIssued + r.Bandwidth.WriteBacks
}

// RequiredTraffic returns the blocks the program would move without
// streams: every fill plus every write-back.
func (r Results) RequiredTraffic() uint64 {
	return r.L1I.Fills + r.L1D.Fills + r.Bandwidth.WriteBacks
}
