package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"streamsim/internal/cache"
	"streamsim/internal/core"
	"streamsim/internal/stream"
)

// randomConfig derives a valid Config from r, spanning every front
// shape the replay engine can checkpoint: bare L1s, plain and
// partitioned streams, victim caches, the unit-stride filter and all
// three stride schemes, over varied cache geometries and replacement
// policies. The draw respects core.New's validation rules (filters
// and partitioning require streams; czone bits stay in range).
func randomConfig(r *rand.Rand) core.Config {
	cfg := core.DefaultConfig()

	sizes := []uint{16 << 10, 32 << 10, 64 << 10}
	assocs := []uint{1, 2, 4}
	repls := []cache.Replacement{cache.LRU, cache.Random, cache.FIFO}
	for _, c := range []*cache.Config{&cfg.L1I, &cfg.L1D} {
		c.SizeBytes = sizes[r.Intn(len(sizes))]
		c.Assoc = assocs[r.Intn(len(assocs))]
		c.Replacement = repls[r.Intn(len(repls))]
		c.Seed = 1 + r.Int63n(1<<20)
	}

	if n := r.Intn(11); n > 0 {
		cfg.Streams = stream.Config{Streams: n, Depth: 1 + r.Intn(3)}
		if r.Intn(2) == 1 {
			cfg.Streams.Realloc = stream.ReallocFIFO
		}
		cfg.PartitionedStreams = r.Intn(2) == 1
	} else {
		cfg.Streams = stream.Config{}
		cfg.PartitionedStreams = false
	}

	cfg.VictimEntries = []int{0, 1, 4, 8}[r.Intn(4)]

	// Filter fronts only make sense in front of streams.
	cfg.UnitFilterEntries = 0
	cfg.Stride = core.NoStrideDetection
	cfg.StrideFilterEntries = 0
	cfg.CzoneBits = 0
	cfg.MinDeltaMax = 0
	if cfg.Streams.Streams > 0 {
		cfg.UnitFilterEntries = []int{0, 8, 16}[r.Intn(3)]
		switch r.Intn(3) {
		case 1:
			cfg.Stride = core.CzoneScheme
			cfg.StrideFilterEntries = 4 + r.Intn(16)
			cfg.CzoneBits = uint(10 + r.Intn(17)) // paper's 10..26-bit range
		case 2:
			cfg.Stride = core.MinDeltaScheme
			cfg.StrideFilterEntries = 4 + r.Intn(16)
			cfg.MinDeltaMax = int64(1 + r.Intn(512))
		}
	}
	return cfg
}

// describeConfig renders the front shape for failure messages.
func describeConfig(cfg core.Config) string {
	return fmt.Sprintf("streams=%d/%d part=%v victim=%d ufilter=%d stride=%v/%d",
		cfg.Streams.Streams, cfg.Streams.Depth, cfg.PartitionedStreams,
		cfg.VictimEntries, cfg.UnitFilterEntries, cfg.Stride, cfg.StrideFilterEntries)
}

// TestCheckpointResumeRandomConfigs is the randomized complement to
// TestCheckpointResumeMatchesScratch's fixed grid: for seeded-random
// configurations — including victim-cache and filter fronts the grid
// holds fixed — replaying a prefix, checkpointing, restoring and
// replaying the tail must be byte-identical to one uninterrupted
// sequential replay. Any snapshot handler that drops or double-counts
// a piece of System state shows up here as a Results mismatch.
//
//simlint:deterministic streamsim/internal/core.ReplayStoreMultiPrefixFrom
//simlint:deterministic (*streamsim/internal/core.Checkpoint).Restore
func TestCheckpointResumeRandomConfigs(t *testing.T) {
	const (
		seed     = 0x5eedc0de
		nConfigs = 12
		scale    = 0.05
	)
	ctx := context.Background()
	r := rand.New(rand.NewSource(seed))

	st := recordTrace(t, "mgrid", scale)
	K := st.WindowCount()
	if K < 2 {
		t.Fatalf("trace has %d windows; the property needs a non-empty prefix and tail", K)
	}

	sawVictim, sawFilter, sawStride := false, false, false
	for i := 0; i < nConfigs; i++ {
		cfg := randomConfig(r)
		sawVictim = sawVictim || cfg.VictimEntries > 0
		sawFilter = sawFilter || cfg.UnitFilterEntries > 0
		sawStride = sawStride || cfg.Stride != core.NoStrideDetection
		// A split point anywhere strictly inside (0, K) — not just the
		// fixed grid's midpoint.
		F := 1 + r.Intn(K-1)

		// Scratch reference: one uninterrupted sequential replay.
		ref, err := core.New(cfg)
		if err != nil {
			t.Fatalf("config %d (%s): %v", i, describeConfig(cfg), err)
		}
		if err := core.ReplayStore(ctx, ref, st); err != nil {
			t.Fatalf("config %d (%s): scratch replay: %v", i, describeConfig(cfg), err)
		}
		want := ref.Results()

		// Prefix, checkpoint, restore, tail.
		sys, err := core.New(cfg)
		if err != nil {
			t.Fatalf("config %d (%s): %v", i, describeConfig(cfg), err)
		}
		if err := core.ReplayStoreMultiPrefix(ctx, []*core.System{sys}, st, F); err != nil {
			t.Fatalf("config %d (%s): prefix replay: %v", i, describeConfig(cfg), err)
		}
		restored := sys.Checkpoint().Restore()
		if err := core.ReplayStoreMultiPrefixFrom(ctx, []*core.System{restored}, st, F, K); err != nil {
			t.Fatalf("config %d (%s): tail replay: %v", i, describeConfig(cfg), err)
		}
		if got := restored.Results(); !reflect.DeepEqual(got, want) {
			t.Errorf("config %d (%s), split at window %d/%d: checkpoint-resume diverges from sequential replay:\ngot  %+v\nwant %+v",
				i, describeConfig(cfg), F, K, got, want)
		}
	}

	// The draw must actually have exercised the fronts the fixed grid
	// pins down individually; a sampler regression that stops emitting
	// them would quietly weaken the property.
	if !sawVictim || !sawFilter || !sawStride {
		t.Errorf("random draw missed a front shape: victim=%v filter=%v stride=%v (seed %#x, %d configs)",
			sawVictim, sawFilter, sawStride, seed, nConfigs)
	}
}
