// Window-sharded intra-trace replay: one configuration (or one
// fan-out group) simulated by several workers, each owning a
// contiguous run of the trace's sample windows.
//
// The trace package's window seek index makes the decode side trivial
// — any worker can start decoding at any window boundary in O(1). The
// simulator side is where the approximation lives: a chunk that does
// not start at the beginning of the trace forks the caller's entry
// state (System.Fork, statistics zeroed), replays a few warmup windows
// to heat the forked caches and stream buffers, resets its counters,
// and only then counts its own windows. Outcome counters are additive
// over a partition of the reference stream, so the per-chunk deltas
// merge back exactly (System.Merge); the only divergence from a
// sequential replay is the residual cache state at each chunk's first
// counted window, bounded by the warmup. ShardExact trades the
// parallelism away to prove the decode half: it replays every window
// serially from a fresh seek and must be byte-identical to a plain
// sequential replay.
//
// The chunk plan is a function of the trace alone (window count and
// the requested shard count) — never of GOMAXPROCS — so results are
// machine-independent: worker width changes wall-clock time only.
package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"streamsim/internal/trace"
)

// ShardMode selects how the window-sharded engine trades exactness for
// parallelism.
type ShardMode int

const (
	// ShardAuto runs warmup-approximate parallel chunks when the trace
	// has enough windows, falling back to an exact sequential replay
	// otherwise (small traces, forced single shard, or traffic hooks
	// that cannot be shared across goroutines).
	ShardAuto ShardMode = iota
	// ShardExact replays window by window from fresh index seeks, on
	// one goroutine. Results are byte-identical to a sequential replay;
	// it exists as the oracle that proves every index checkpoint.
	ShardExact
)

// ShardOptions tunes the window-sharded engine. The zero value picks
// everything automatically.
type ShardOptions struct {
	// Mode selects approximate-parallel (ShardAuto) or the exact
	// serial oracle (ShardExact).
	Mode ShardMode
	// Shards forces the chunk count: 0 derives it from the trace's
	// window count, 1 disables sharding (exact sequential replay).
	// The chunk plan never depends on the host's core count.
	Shards int
	// Workers caps the goroutines consuming chunks; 0 means
	// GOMAXPROCS. Affects wall-clock time only, never results.
	Workers int
	// WarmupWindows is how many windows each chunk replays to heat its
	// forked state before counting: 0 means DefaultWarmupWindows,
	// negative means none.
	WarmupWindows int
}

// DefaultWarmupWindows is the per-chunk warmup: enough references
// (4 x trace.WindowRefs) to refill the paper's 64 KB L1s and stream
// buffers from a forked entry state before any window is counted.
const DefaultWarmupWindows = 4

// Auto chunk-plan shape: chunks carry at least minChunkWindows counted
// windows each (keeping the warmup overhead near warm/minChunkWindows)
// and the plan tops out at maxAutoChunks, far above any host's core
// count, so the split saturates wide machines without fragmenting the
// trace.
const (
	minChunkWindows = 32
	maxAutoChunks   = 32
)

// lastWindowShards records the chunk count of the most recent windowed
// replay, for the service /metrics gauge (1 when the engine fell back
// to an exact sequential pass).
var lastWindowShards atomic.Int64

// LastWindowShards reports the window-shard width of the most recent
// windowed replay.
func LastWindowShards() int { return int(lastWindowShards.Load()) }

// planShards returns the chunk count for a trace of K windows. The
// plan depends only on the trace and the requested count, never on the
// host, so a sharded replay computes the same statistics everywhere.
func planShards(K, requested int) int {
	t := requested
	if t == 0 {
		t = K / minChunkWindows
		if t > maxAutoChunks {
			t = maxAutoChunks
		}
	}
	if t > K {
		t = K
	}
	if t < 1 {
		t = 1
	}
	return t
}

// hooked reports whether any system carries an observation hook.
// Hooks are closures shared with the caller; a forked system would
// invoke them from worker goroutines, so the engine refuses to shard
// and replays exactly instead.
func hooked(systems []*System) bool {
	for _, sys := range systems {
		if sys.cfg.OnMemoryTraffic != nil || sys.cfg.Streams.OnPrefetch != nil {
			return true
		}
	}
	return false
}

// ReplayStoreWindowed replays a recorded trace through one system with
// window sharding; see ReplayStoreMultiWindowed.
func ReplayStoreWindowed(ctx context.Context, sys *System, st *trace.Store, opt ShardOptions) error {
	one := [1]*System{sys}
	return ReplayStoreMultiWindowed(ctx, one[:], st, opt)
}

// ReplayStoreMultiWindowed replays one recorded trace through every
// system, sharding the trace itself across workers by sample windows
// (each worker still drives all the systems, decoding every batch
// once, with the shared-front tap when the configurations allow it).
// Chunk statistics merge deterministically: counters are additive over
// the window partition, the merge order cannot change a sum, and the
// chunk plan depends only on the trace — so a completed replay yields
// identical statistics at any worker count, including one. Relative to
// an exact sequential replay the statistics differ only by each
// chunk's residual state error, bounded by the warmup windows;
// ShardExact, small traces, Shards: 1 and hook-carrying systems all
// take the exact path instead. On cancellation the systems are left
// mid-merge and only the error is meaningful.
//
//simlint:deterministic
func ReplayStoreMultiWindowed(ctx context.Context, systems []*System, st *trace.Store, opt ShardOptions) error {
	if len(systems) == 0 {
		return nil
	}
	if opt.Mode == ShardExact {
		lastWindowShards.Store(1)
		return replayWindowedExact(ctx, systems, st)
	}
	shards := planShards(st.WindowCount(), opt.Shards)
	if shards < 2 || hooked(systems) {
		lastWindowShards.Store(1)
		return ReplayStoreMultiMode(ctx, systems, st, FanOutSequential)
	}
	lastWindowShards.Store(int64(shards))
	warm := opt.WarmupWindows
	switch {
	case warm == 0:
		warm = DefaultWarmupWindows
	case warm < 0:
		warm = 0
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return replayWindowedChunks(ctx, systems, st, shards, warm, workers)
}

// replayWindowedExact is the serial oracle: every window decoded from
// a fresh index seek into the same batch loop the sequential engine
// uses. Identical results prove the index checkpoints, the O(1) seeks
// and the window-bounded decode all agree with a straight pass.
func replayWindowedExact(ctx context.Context, systems []*System, st *trace.Store) error {
	done := ctx.Done()
	buf := make([]uint64, trace.ReplayBatchLen)
	var leader *System
	var followers []*System
	if len(systems) > 1 && sharedFront(systems) {
		leader, followers = systems[0], systems[1:]
		leader.tap = make([]uint64, 0, trace.ReplayBatchLen)
		defer func() {
			for _, sys := range followers {
				sys.adoptFrontStats(leader)
			}
			leader.tap = nil
		}()
	}
	for w, count := 0, st.WindowCount(); w < count; w++ {
		it := st.IterAtWindow(w)
		refs := st.WindowLen(w)
		if leader != nil {
			replayWindowRunTap(leader, followers, &it, refs, buf)
		} else {
			replayWindowRun(systems, &it, refs, buf)
		}
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}

// replayWindowedChunks fans the chunk plan out over a worker pool.
// Every chunk forks the callers' pristine entry state (the protos,
// forked once up front so chunk 0 and chunk N see the same starting
// point), simulates its windows, and merges its counter deltas into
// the callers' systems under the merge lock as soon as it completes —
// freeing the fork's memory early. The final chunk's forks are kept
// aside: they hold the trace-end architectural state, which the
// callers adopt after the last merge so a later Results() describes a
// system that "finished" the trace.
func replayWindowedChunks(ctx context.Context, systems []*System, st *trace.Store, shards, warm, workers int) error {
	K := st.WindowCount()
	protos := make([]*System, len(systems))
	for i, sys := range systems {
		protos[i] = sys.Fork()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > shards {
		workers = shards
	}
	var (
		mu     sync.Mutex
		finals []*System
		errs   = make([]error, shards)
		wg     sync.WaitGroup
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]uint64, trace.ReplayBatchLen)
			for c := range idx {
				start, end := c*K/shards, (c+1)*K/shards
				wstart := start - warm
				if wstart < 0 {
					wstart = 0
				}
				css, err := runChunk(runCtx, protos, st, wstart, start, end, buf)
				if err != nil {
					errs[c] = err
					cancel()
					continue
				}
				mu.Lock()
				for i, cs := range css {
					systems[i].Merge(cs)
				}
				if c == shards-1 {
					finals = css
				}
				mu.Unlock()
			}
		}()
	}
	for c := 0; c < shards; c++ {
		if runCtx.Err() != nil {
			break
		}
		idx <- c
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if finals != nil {
		for i, sys := range systems {
			sys.adoptState(finals[i])
		}
	}
	return nil
}

// runChunk forks the prototype systems and replays windows
// [wstart, end), resetting the forks' statistics when the warmup
// prefix [wstart, start) ends so only [start, end) is counted. The
// iterator seeks once and decodes straight through the chunk; ctx is
// polled once per window.
func runChunk(ctx context.Context, protos []*System, st *trace.Store, wstart, start, end int, buf []uint64) ([]*System, error) {
	css := make([]*System, len(protos))
	for i, p := range protos {
		css[i] = p.Fork()
	}
	var leader *System
	var followers []*System
	if len(css) > 1 && sharedFront(css) {
		leader, followers = css[0], css[1:]
		leader.tap = make([]uint64, 0, trace.ReplayBatchLen)
		defer func() {
			for _, sys := range followers {
				sys.adoptFrontStats(leader)
			}
			leader.tap = nil
		}()
	}
	done := ctx.Done()
	it := st.IterAtWindow(wstart)
	for w := wstart; w < end; w++ {
		if w == start && w > wstart {
			for _, cs := range css {
				cs.ResetStats()
			}
		}
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
		refs := st.WindowLen(w)
		if leader != nil {
			replayWindowRunTap(leader, followers, &it, refs, buf)
		} else {
			replayWindowRun(css, &it, refs, buf)
		}
	}
	return css, nil
}

// replayWindowRun decodes exactly refs references from it and drives
// every system over each shared batch. The decoded batch is borrowed
// by the systems for the duration of the call only.
//
//simlint:hotpath
//simlint:borrowed buf
func replayWindowRun(systems []*System, it *trace.StoreIter, refs int, buf []uint64) {
	for refs > 0 {
		b := buf
		if refs < len(b) {
			b = b[:refs]
		}
		n := it.NextPacked(b)
		if n == 0 {
			return
		}
		for _, sys := range systems {
			sys.AccessPacked(b[:n])
		}
		refs -= n
	}
}

// replayWindowRunTap is replayWindowRun for a shared-front group: the
// leader simulates the L1 once per batch and the followers replay only
// its tapped backend events.
//
//simlint:hotpath
//simlint:borrowed buf
func replayWindowRunTap(leader *System, followers []*System, it *trace.StoreIter, refs int, buf []uint64) {
	for refs > 0 {
		b := buf
		if refs < len(b) {
			b = b[:refs]
		}
		n := it.NextPacked(b)
		if n == 0 {
			return
		}
		leader.tap = leader.tap[:0]
		leader.AccessPacked(b[:n])
		for _, sys := range followers {
			sys.applyTap(leader.tap)
		}
		refs -= n
	}
}
