// Checkpoint/restore support for incremental replay: a System's
// complete simulation state — architectural state and statistics — can
// be snapshotted at a window boundary and later materialized into a
// fresh System that continues the replay via ReplayStoreMultiPrefixFrom
// exactly where the snapshot left off. The optimizer's successive
// halving carries one checkpoint per surviving candidate between rungs,
// so each lineage processes each trace window at most once instead of
// re-simulating every rung from window 0 (DESIGN.md §12).
package core

// Checkpoint is an immutable snapshot of a System mid-replay. It is
// decoupled from the live system: neither continuing the original
// replay nor restoring (any number of times) can disturb it.
//
//simlint:state
type Checkpoint struct {
	sys *System
}

// Checkpoint snapshots the system's complete simulation state. Take it
// before Results/Finish: Finish closes the bandwidth ledger (in-flight
// prefetches become wasted), which is the one System mutation that is
// not an effect of replaying further accesses, so a post-Finish
// snapshot could not be extended into a longer exact replay.
//
//simlint:statefull checkpoint
func (s *System) Checkpoint() *Checkpoint {
	return &Checkpoint{sys: snapshotSystem(s)}
}

// Restore materializes a fresh System carrying the snapshot's exact
// architectural state and statistics. Replaying the remaining windows
// through it yields byte-identical Results to a from-scratch replay of
// the whole range — Fork deep-copies every replacement clock, FIFO and
// RNG, so the restored system makes the same decision at every access
// the uninterrupted one would have.
//
//simlint:deterministic
//simlint:statefull restore
func (c *Checkpoint) Restore() *System {
	return snapshotSystem(c.sys)
}

// snapshotSystem deep-copies a system's full simulation state: Fork
// clones the architectural state with zeroed counters, Merge adds the
// statistics back, and the three fields outside both (the retired-
// instruction counter, the finished flag and the scratch outcome) are
// copied explicitly.
//
//simlint:statefull checkpoint
func snapshotSystem(s *System) *System {
	n := s.Fork()
	n.Merge(s)
	n.instructions = s.instructions
	n.finished = s.finished
	n.out = s.out
	return n
}
