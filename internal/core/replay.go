// Cancellable replay of recorded traces through a System. This is the
// layer the simd job service cancels at: the per-reference hot path
// (Access/AccessBatch) stays free of any context machinery, and the
// batch loop here polls the context once per ReplayBatchLen references,
// so an in-flight run stops within one batch boundary.
package core

import (
	"context"

	"streamsim/internal/mem"
	"streamsim/internal/trace"
)

// ReplayStore replays every access of a recorded trace through the
// system on the batched hot path, polling ctx between batches. It
// returns ctx.Err() if the replay was cancelled, in which case the
// system has consumed a prefix of the trace; statistics of a completed
// replay are byte-identical to calling Access in a loop.
func ReplayStore(ctx context.Context, sys *System, st *trace.Store) error {
	done := ctx.Done()
	buf := make([]mem.Access, trace.ReplayBatchLen)
	it := st.Iter()
	for n := it.Next(buf); n > 0; n = it.Next(buf) {
		sys.AccessBatch(buf[:n])
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}
