// Cancellable replay of recorded traces through a System. This is the
// layer the simd job service cancels at: the per-reference hot path
// (Access/AccessBatch) stays free of any context machinery, and the
// batch loop here polls the context once per ReplayBatchLen references,
// so an in-flight run stops within one batch boundary.
//
// The multi-config entry points below decode each trace batch exactly
// once and fan the shared decoded slice out to N independent systems —
// the paper's whole evaluation is "one recorded reference stream, many
// memory-system configurations", so per-config decode is pure waste.
package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"streamsim/internal/trace"
)

// ReplayStore replays every access of a recorded trace through the
// system on the batched hot path, polling ctx between batches. It
// returns ctx.Err() if the replay was cancelled, in which case the
// system has consumed a prefix of the trace; statistics of a completed
// replay are byte-identical to calling Access in a loop.
//
// The decode is NextPacked: a System reads neither Access.PC nor
// Access.Size, so each reference travels as a single packed word from
// the varint stream to the cache probe — no mem.Access slice is
// materialized at all.
func ReplayStore(ctx context.Context, sys *System, st *trace.Store) error {
	done := ctx.Done()
	buf := make([]uint64, trace.ReplayBatchLen)
	it := st.Iter()
	for n := it.NextPacked(buf); n > 0; n = it.NextPacked(buf) {
		sys.AccessPacked(buf[:n])
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}

// FanOut selects how ReplayStoreMultiMode distributes one decoded
// batch across the systems.
type FanOut int

const (
	// FanOutAuto picks the split from GOMAXPROCS and the trace shape:
	// a long trace on a multi-core host goes to FanOutWindowed (the
	// trace itself shards across the cores, warmup-approximate; see
	// ReplayStoreMultiWindowed), a short one to FanOutSharded when
	// there are systems to spread (GOMAXPROCS > 1 and more than one
	// system), else FanOutSequential.
	FanOutAuto FanOut = iota
	// FanOutSequential drives every system from one goroutine, batch by
	// batch: the 512-reference decoded slice stays hot in L1 while all N
	// systems consume it. This is the right mode when the caller already
	// saturates the host's cores (experiments run benchmarks in
	// parallel) or the host has one core.
	FanOutSequential
	// FanOutSharded splits the systems into contiguous shards, one per
	// goroutine (up to GOMAXPROCS), with a single producer decoding each
	// batch once into a refcounted buffer that every shard consumes.
	// Simulator states are fully independent, so shards never
	// synchronize except on batch hand-off.
	FanOutSharded
	// FanOutWindowed shards the trace itself: workers simulate disjoint
	// runs of sample windows against forked state and the per-chunk
	// statistics merge back (ReplayStoreMultiWindowed with default
	// options). Unlike the other modes it is warmup-approximate, not
	// byte-exact, and it falls back to FanOutSequential on traces too
	// short to split.
	FanOutWindowed
)

// lastFanOut records the width of the most recent multi-config
// fan-out, for the service /metrics gauge.
var lastFanOut atomic.Int64

// LastFanOutWidth reports how many systems the most recent
// ReplayStoreMulti call drove from one decode.
func LastFanOutWidth() int { return int(lastFanOut.Load()) }

// ReplayStoreMulti replays one recorded trace through every system,
// decoding each batch exactly once, with the fan-out mode chosen by
// FanOutAuto. Each system observes exactly the access stream
// ReplayStore would deliver, so per-system statistics are
// byte-identical to N independent replays. On cancellation every
// system has consumed a prefix of the trace and ctx.Err() is returned.
func ReplayStoreMulti(ctx context.Context, systems []*System, st *trace.Store) error {
	return ReplayStoreMultiMode(ctx, systems, st, FanOutAuto)
}

// ReplayStoreMultiMode is ReplayStoreMulti with an explicit fan-out
// mode.
func ReplayStoreMultiMode(ctx context.Context, systems []*System, st *trace.Store, mode FanOut) error {
	if mode == FanOutAuto {
		mode = FanOutSequential
		if runtime.GOMAXPROCS(0) > 1 {
			mode = FanOutSharded
			if planShards(st.WindowCount(), 0) > 1 {
				mode = FanOutWindowed
			}
		}
	}
	if mode == FanOutWindowed {
		lastFanOut.Store(int64(len(systems)))
		return ReplayStoreMultiWindowed(ctx, systems, st, ShardOptions{})
	}
	switch len(systems) {
	case 0:
		return nil
	case 1:
		lastFanOut.Store(1)
		return ReplayStore(ctx, systems[0], st)
	}
	lastFanOut.Store(int64(len(systems)))
	if mode == FanOutSequential {
		return replayMultiSequential(ctx, systems, st)
	}
	return replayMultiSharded(ctx, systems, st)
}

// sharedFront reports whether every system presents an identical L1
// front end — same geometry, same L1I and L1D configuration, no victim
// cache. L1 contents evolve identically across such systems no matter
// how the stream side is configured (every L1 miss fills the cache
// whether a stream or memory supplied the block), so one leader can
// simulate the front once and the rest need only the miss and
// write-back events.
func sharedFront(systems []*System) bool {
	lead := systems[0].cfg
	if lead.VictimEntries != 0 {
		return false
	}
	for _, sys := range systems[1:] {
		cfg := sys.cfg
		if cfg.Geometry != lead.Geometry || cfg.L1I != lead.L1I ||
			cfg.L1D != lead.L1D || cfg.VictimEntries != 0 {
			return false
		}
	}
	return true
}

// replayMultiSequential decodes each batch once and walks the systems
// over the shared slice of packed words. AccessPacked never mutates
// its argument, so the decoded buffer is reused as-is by every system.
//
// When the systems share their L1 front end, only systems[0] simulates
// it: the leader taps the backend events each batch generates (L1 miss
// fills and write-backs) and the followers replay just those through
// their own stream-side state (System.applyTap), adopting the leader's
// L1 statistics at the end. The L1 probe — the dominant cost of a
// reference — then runs once per batch instead of once per system.
func replayMultiSequential(ctx context.Context, systems []*System, st *trace.Store) error {
	done := ctx.Done()
	buf := make([]uint64, trace.ReplayBatchLen)
	it := st.Iter()
	if sharedFront(systems) {
		leader, followers := systems[0], systems[1:]
		leader.tap = make([]uint64, 0, trace.ReplayBatchLen)
		defer func() {
			// Followers adopt the shared-front statistics on every
			// exit, so a cancelled replay still leaves each system
			// describing the same consumed prefix.
			for _, sys := range followers {
				sys.adoptFrontStats(leader)
			}
			leader.tap = nil
		}()
		for n := it.NextPacked(buf); n > 0; n = it.NextPacked(buf) {
			leader.tap = leader.tap[:0]
			leader.AccessPacked(buf[:n])
			for _, sys := range followers {
				sys.applyTap(leader.tap)
			}
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		return nil
	}
	for n := it.NextPacked(buf); n > 0; n = it.NextPacked(buf) {
		for _, sys := range systems {
			sys.AccessPacked(buf[:n])
		}
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}

// shardBatch is one decoded batch in flight between the producer and
// the shard workers. refs counts the workers that have not consumed it
// yet; the last one returns the buffer to the free list.
type shardBatch struct {
	buf  []uint64
	n    int
	refs atomic.Int32
}

// replayMultiSharded runs one decoding producer and up to GOMAXPROCS
// shard workers, each owning a contiguous slice of the systems.
// Decoded batches are broadcast by pointer through per-worker buffered
// channels and recycled through a free list once every shard has
// consumed them, so the steady state allocates nothing.
func replayMultiSharded(ctx context.Context, systems []*System, st *trace.Store) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(systems) {
		workers = len(systems)
	}
	// Enough buffers that the producer can decode ahead of the slowest
	// shard without blocking the fast ones.
	nBufs := workers + 2
	free := make(chan *shardBatch, nBufs)
	for i := 0; i < nBufs; i++ {
		free <- &shardBatch{buf: make([]uint64, trace.ReplayBatchLen)}
	}
	// Channel capacity nBufs means a send can only block when the
	// receiving worker has stopped; the producer guards that case by
	// selecting on ctx.
	chans := make([]chan *shardBatch, workers)
	for i := range chans {
		chans[i] = make(chan *shardBatch, nBufs)
	}
	done := ctx.Done()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous shard: systems[lo:hi), remainder spread over the
		// first shards.
		lo := w * len(systems) / workers
		hi := (w + 1) * len(systems) / workers
		wg.Add(1)
		go func(w int, shard []*System, ch chan *shardBatch) {
			defer wg.Done()
			for {
				select {
				case b, ok := <-ch:
					if !ok {
						return
					}
					// Abort before simulating another batch, not merely
					// when the queue runs dry: a cancelled replay must
					// stop within one batch even with batches in flight.
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
					for _, sys := range shard {
						sys.AccessPacked(b.buf[:b.n])
					}
					if b.refs.Add(-1) == 0 {
						free <- b
					}
				case <-done:
					errs[w] = ctx.Err()
					return
				}
			}
		}(w, systems[lo:hi], chans[w])
	}
	it := st.Iter()
	var prodErr error
produce:
	for {
		var b *shardBatch
		select {
		case b = <-free:
		case <-done:
			prodErr = ctx.Err()
			break produce
		}
		b.n = it.NextPacked(b.buf)
		if b.n == 0 {
			break
		}
		b.refs.Store(int32(workers))
		for _, ch := range chans {
			select {
			case ch <- b:
			case <-done:
				prodErr = ctx.Err()
				break produce
			}
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if prodErr != nil {
		return prodErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
