package core

import (
	"testing"

	"streamsim/internal/mem"
)

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelUnsampled: "unsampled",
		LevelL1:        "L1",
		LevelVictim:    "victim",
		LevelStream:    "stream",
		LevelMemory:    "memory",
		LevelNone:      "none",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
	if Level(99).String() == "" {
		t.Error("unknown level should still format")
	}
}

func TestAccessOutcomeLevels(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	a := mem.Addr(1 << 20)

	out := s.AccessOutcome(mem.Access{Addr: a, Kind: mem.Read})
	if out.Level != LevelMemory {
		t.Errorf("cold miss level = %v, want memory", out.Level)
	}
	out = s.AccessOutcome(mem.Access{Addr: a, Kind: mem.Read})
	if out.Level != LevelL1 {
		t.Errorf("repeat access level = %v, want L1", out.Level)
	}
	out = s.AccessOutcome(mem.Access{Addr: a + 64, Kind: mem.Read})
	if out.Level != LevelStream {
		t.Errorf("prefetched block level = %v, want stream", out.Level)
	}
}

func TestAccessOutcomeVictimLevel(t *testing.T) {
	cfg := tinyConfig(2)
	cfg.VictimEntries = 4
	s := mustNew(t, cfg)
	a, b := mem.Addr(1<<20), mem.Addr(1<<20+4096) // conflicting set
	s.Access(mem.Access{Addr: a, Kind: mem.Read})
	s.Access(mem.Access{Addr: b, Kind: mem.Read}) // evicts a into victim
	out := s.AccessOutcome(mem.Access{Addr: a, Kind: mem.Read})
	if out.Level != LevelVictim {
		t.Errorf("level = %v, want victim", out.Level)
	}
}

func TestAccessOutcomePrefetchCount(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	out := s.AccessOutcome(mem.Access{Addr: 1 << 20, Kind: mem.Read})
	if out.Prefetches != 2 {
		t.Errorf("allocation issued %d prefetches, want 2 (depth)", out.Prefetches)
	}
	out = s.AccessOutcome(mem.Access{Addr: 1<<20 + 64, Kind: mem.Read})
	if out.Prefetches != 1 {
		t.Errorf("stream hit issued %d prefetches, want 1 (refill)", out.Prefetches)
	}
}

func TestAccessOutcomeWriteBack(t *testing.T) {
	s := mustNew(t, tinyConfig(0))
	a := mem.Addr(1 << 20)
	s.Access(mem.Access{Addr: a, Kind: mem.Write})
	out := s.AccessOutcome(mem.Access{Addr: a + 4096, Kind: mem.Read})
	if !out.WroteBack {
		t.Error("dirty eviction not reported in outcome")
	}
}

func TestAccessOutcomePending(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.Streams.Latency = 1000
	s := mustNew(t, cfg)
	s.Access(mem.Access{Addr: 1 << 20, Kind: mem.Read})
	out := s.AccessOutcome(mem.Access{Addr: 1<<20 + 64, Kind: mem.Read})
	if out.Level != LevelStream || !out.Pending {
		t.Errorf("outcome = %+v, want pending stream hit", out)
	}
}

func TestTrafficHooksSeeAllBlocks(t *testing.T) {
	cfg := tinyConfig(2)
	var demand, prefetch int
	cfg.OnMemoryTraffic = func(mem.Addr) { demand++ }
	cfg.Streams.OnPrefetch = func(mem.Addr) { prefetch++ }
	s := mustNew(t, cfg)
	sweep(s, 1<<20, 200)
	r := s.Results()
	if uint64(demand) != r.Bandwidth.DemandFetches+r.Bandwidth.WriteBacks {
		t.Errorf("demand hook saw %d, ledger has %d fetches + %d write-backs",
			demand, r.Bandwidth.DemandFetches, r.Bandwidth.WriteBacks)
	}
	if uint64(prefetch) != r.Streams.PrefetchesIssued {
		t.Errorf("prefetch hook saw %d, ledger has %d", prefetch, r.Streams.PrefetchesIssued)
	}
}
