package core_test

// The window-sharded engine's byte-identical equivalence gates: the
// ShardExact oracle below proves every index checkpoint against plain
// sequential replays, and the worker-width test proves the parallel
// mode's results are a function of the chunk plan alone. These are the
// dynamic halves of the static determinism annotations:
//
//simlint:deterministic streamsim/internal/core.ReplayStoreMultiWindowed
//simlint:deterministic (*streamsim/internal/core.System).Merge

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// TestReplayWindowedExactMatchesSequential pins the ShardExact oracle:
// for every workload and the mixed config set, replaying window by
// window from fresh index seeks is byte-identical to N independent
// sequential replays. A passing run proves every window checkpoint in
// every recorded trace — the seek state, the window lengths and the
// bounded decode all agree with a straight pass.
func TestReplayWindowedExactMatchesSequential(t *testing.T) {
	const scale = 0.05
	ctx := context.Background()
	cfgs := multiConfigs()
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			st := recordTrace(t, name, scale)

			want := make([]core.Results, len(cfgs))
			for i, sys := range newSystems(t, cfgs) {
				if err := core.ReplayStore(ctx, sys, st); err != nil {
					t.Fatal(err)
				}
				want[i] = sys.Results()
			}

			systems := newSystems(t, cfgs)
			opt := core.ShardOptions{Mode: core.ShardExact}
			if err := core.ReplayStoreMultiWindowed(ctx, systems, st, opt); err != nil {
				t.Fatal(err)
			}
			if got := core.LastWindowShards(); got != 1 {
				t.Errorf("LastWindowShards after exact replay = %d, want 1", got)
			}
			for i, sys := range systems {
				if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("config %d: ShardExact results diverge from sequential\ngot  %+v\nwant %+v",
						i, got, want[i])
				}
			}

			// The single-system entry point takes the same oracle path.
			one := newSystems(t, cfgs[:1])
			if err := core.ReplayStoreWindowed(ctx, one[0], st, opt); err != nil {
				t.Fatal(err)
			}
			if got := one[0].Results(); !reflect.DeepEqual(got, want[0]) {
				t.Errorf("single-system ShardExact results diverge from sequential\ngot  %+v\nwant %+v",
					got, want[0])
			}
		})
	}
}

// TestReplayWindowedFallbacksAreExact pins the shapes that must refuse
// to shard — short traces, a forced single shard, and systems carrying
// traffic hooks — and checks each falls back to results byte-identical
// to a sequential replay, reporting shard width 1.
func TestReplayWindowedFallbacksAreExact(t *testing.T) {
	ctx := context.Background()
	cfgs := multiConfigs()
	// 8 windows: enough for seeks to matter, too few for the auto plan.
	st := syntheticStore(8 * trace.WindowRefs)

	want := make([]core.Results, len(cfgs))
	for i, sys := range newSystems(t, cfgs) {
		if err := core.ReplayStore(ctx, sys, st); err != nil {
			t.Fatal(err)
		}
		want[i] = sys.Results()
	}

	check := func(t *testing.T, systems []*core.System, opt core.ShardOptions, n int) {
		t.Helper()
		if err := core.ReplayStoreMultiWindowed(ctx, systems[:n], st, opt); err != nil {
			t.Fatal(err)
		}
		if got := core.LastWindowShards(); got != 1 {
			t.Errorf("LastWindowShards = %d, want 1", got)
		}
		for i, sys := range systems[:n] {
			if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("config %d: fallback results diverge from sequential\ngot  %+v\nwant %+v",
					i, got, want[i])
			}
		}
	}

	t.Run("short-trace-auto", func(t *testing.T) {
		check(t, newSystems(t, cfgs), core.ShardOptions{}, len(cfgs))
	})
	t.Run("forced-single-shard", func(t *testing.T) {
		check(t, newSystems(t, cfgs), core.ShardOptions{Shards: 1}, len(cfgs))
	})
	t.Run("hooked-system", func(t *testing.T) {
		hooked := append([]core.Config(nil), cfgs...)
		var mu sync.Mutex
		var blocks []mem.Addr
		hooked[0].OnMemoryTraffic = func(blk mem.Addr) {
			mu.Lock()
			blocks = append(blocks, blk)
			mu.Unlock()
		}
		systems := newSystems(t, hooked)
		// Force a shard count that would split were the hook absent:
		// the engine must refuse and replay exactly.
		if err := core.ReplayStoreMultiWindowed(ctx, systems, st, core.ShardOptions{Shards: 4}); err != nil {
			t.Fatal(err)
		}
		if got := core.LastWindowShards(); got != 1 {
			t.Errorf("LastWindowShards with hooks = %d, want 1", got)
		}
		for i, sys := range systems {
			if got := sys.Results(); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("config %d: hooked fallback diverges from sequential", i)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		if len(blocks) == 0 {
			t.Error("traffic hook never fired during fallback replay")
		}
	})
}

// TestReplayWindowedWorkerWidthInvariant pins the engine's central
// determinism claim: the chunk plan depends only on the trace and the
// options, so a sharded replay produces byte-identical results at any
// worker count — one goroutine or many.
func TestReplayWindowedWorkerWidthInvariant(t *testing.T) {
	ctx := context.Background()
	cfgs := multiConfigs()
	st := recordTrace(t, "mgrid", 0.2)
	if st.WindowCount() < 8 {
		t.Fatalf("trace too short to shard: %d windows", st.WindowCount())
	}
	opt := core.ShardOptions{Shards: 4}

	var want []core.Results
	for _, workers := range []int{1, 2, 8} {
		opt.Workers = workers
		systems := newSystems(t, cfgs)
		if err := core.ReplayStoreMultiWindowed(ctx, systems, st, opt); err != nil {
			t.Fatal(err)
		}
		if got := core.LastWindowShards(); got != 4 {
			t.Errorf("LastWindowShards = %d, want 4", got)
		}
		res := make([]core.Results, len(systems))
		for i, sys := range systems {
			res[i] = sys.Results()
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("results at %d workers diverge from 1 worker", workers)
		}
	}
}

// TestReplayWindowedBoundedDivergence bounds the warmup approximation
// on a real workload: a sharded replay must present every reference
// exactly once (reference counts are exact, not approximate) and its
// rates must sit within a few points of the sequential truth — the
// only error source is each chunk's residual state after warmup.
func TestReplayWindowedBoundedDivergence(t *testing.T) {
	ctx := context.Background()
	cfgs := multiConfigs()
	st := recordTrace(t, "mgrid", 0.2)

	want := make([]core.Results, len(cfgs))
	for i, sys := range newSystems(t, cfgs) {
		if err := core.ReplayStore(ctx, sys, st); err != nil {
			t.Fatal(err)
		}
		want[i] = sys.Results()
	}

	systems := newSystems(t, cfgs)
	if err := core.ReplayStoreMultiWindowed(ctx, systems, st, core.ShardOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	// Rates are percentages; half a point bounds the residual-state
	// error comfortably (observed divergence is under a tenth of a
	// point) while still catching a broken merge or warmup.
	const tol = 0.5
	for i, sys := range systems {
		got := sys.Results()
		if g, w := got.L1I.Accesses+got.L1D.Accesses, want[i].L1I.Accesses+want[i].L1D.Accesses; g != w {
			t.Errorf("config %d: sharded replay presented %d refs, want exactly %d", i, g, w)
		}
		if g, w := got.DataMissRate(), want[i].DataMissRate(); math.Abs(g-w) > tol {
			t.Errorf("config %d: DataMissRate %v diverges from sequential %v by > %v", i, g, w, tol)
		}
		if g, w := got.StreamHitRate(), want[i].StreamHitRate(); math.Abs(g-w) > tol {
			t.Errorf("config %d: StreamHitRate %v diverges from sequential %v by > %v", i, g, w, tol)
		}
	}
}

// TestReplayWindowedCancel exercises the chunk worker pool under
// cancellation: a pre-cancelled context stops before any merge lands,
// and a mid-flight cancel (the simd service shape, race-clean under
// -race) reports context.Canceled, never a partial-success nil.
func TestReplayWindowedCancel(t *testing.T) {
	st := syntheticStore(64 * trace.WindowRefs)
	cfgs := multiConfigs()
	opt := core.ShardOptions{Shards: 8}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		systems := newSystems(t, cfgs)
		if err := core.ReplayStoreMultiWindowed(ctx, systems, st, opt); err != context.Canceled {
			t.Fatalf("ReplayStoreMultiWindowed = %v, want context.Canceled", err)
		}
		for i, sys := range systems {
			r := sys.Results()
			if consumed := r.L1I.Accesses + r.L1D.Accesses; consumed != 0 {
				t.Errorf("system %d merged %d refs after pre-cancel, want 0", i, consumed)
			}
		}
	})
	t.Run("mid-flight", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		systems := newSystems(t, cfgs)
		var wg sync.WaitGroup
		wg.Add(1)
		errc := make(chan error, 1)
		go func() {
			defer wg.Done()
			errc <- core.ReplayStoreMultiWindowed(ctx, systems, st, opt)
		}()
		cancel()
		wg.Wait()
		if err := <-errc; err != nil && err != context.Canceled {
			t.Fatalf("ReplayStoreMultiWindowed = %v, want nil or context.Canceled", err)
		}
	})
	t.Run("exact-pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		systems := newSystems(t, cfgs)
		err := core.ReplayStoreMultiWindowed(ctx, systems, st, core.ShardOptions{Mode: core.ShardExact})
		if err != context.Canceled {
			t.Fatalf("exact mode = %v, want context.Canceled", err)
		}
	})
}

// TestReplayWindowedAutoRouting checks FanOutAuto's trace-shape test:
// a long trace on a multi-core host routes ReplayStoreMulti through
// the windowed engine, and the degenerate shapes still complete.
func TestReplayWindowedAutoRouting(t *testing.T) {
	ctx := context.Background()
	st := syntheticStore(4 * trace.WindowRefs)
	if err := core.ReplayStoreMultiWindowed(ctx, nil, st, core.ShardOptions{}); err != nil {
		t.Fatalf("empty system set: %v", err)
	}
	one := newSystems(t, multiConfigs()[:1])
	if err := core.ReplayStoreWindowed(ctx, one[0], st, core.ShardOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if got := core.LastWindowShards(); got != 2 {
		t.Errorf("LastWindowShards = %d, want 2", got)
	}
	if consumed := one[0].Results().L1D.Accesses; consumed != uint64(st.Len()) {
		t.Errorf("forced two-shard replay counted %d refs, want %d", consumed, st.Len())
	}
}
