package core

import (
	"testing"
	"testing/quick"

	"streamsim/internal/cache"
	"streamsim/internal/mem"
	"streamsim/internal/stream"
)

// tinyConfig returns a small deterministic system: 4 KB direct-mapped
// L1s (LRU so tests are deterministic), n streams of depth 2, filters
// off unless enabled by the caller.
func tinyConfig(nStreams int) Config {
	cfg := DefaultConfig()
	cfg.L1I = cache.Config{Name: "L1I", SizeBytes: 4 << 10, Assoc: 1, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate}
	cfg.L1D = cache.Config{Name: "L1D", SizeBytes: 4 << 10, Assoc: 1, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate}
	cfg.Streams = stream.Config{Streams: nStreams, Depth: 2}
	cfg.UnitFilterEntries = 0
	cfg.Stride = NoStrideDetection
	return cfg
}

func mustNew(t testing.TB, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	cfg := tinyConfig(2)
	cfg.L1D.BlockBytes = 128 // disagrees with geometry
	if _, err := New(cfg); err == nil {
		t.Error("block-size mismatch should be rejected")
	}

	cfg = tinyConfig(0)
	cfg.UnitFilterEntries = 16
	if _, err := New(cfg); err == nil {
		t.Error("filter without streams should be rejected")
	}

	cfg = tinyConfig(0)
	cfg.Stride = CzoneScheme
	cfg.StrideFilterEntries = 16
	cfg.CzoneBits = 16
	if _, err := New(cfg); err == nil {
		t.Error("stride detection without streams should be rejected")
	}

	cfg = tinyConfig(2)
	cfg.Stride = StrideScheme(99)
	if _, err := New(cfg); err == nil {
		t.Error("unknown stride scheme should be rejected")
	}
}

func TestDefaultConfigBuilds(t *testing.T) {
	s := mustNew(t, DefaultConfig())
	if s.Config().Streams.Streams != 10 {
		t.Errorf("default streams = %d, want 10", s.Config().Streams.Streams)
	}
}

func TestStrideSchemeString(t *testing.T) {
	if NoStrideDetection.String() != "none" || CzoneScheme.String() != "czone" ||
		MinDeltaScheme.String() != "min-delta" {
		t.Error("scheme names wrong")
	}
	if StrideScheme(7).String() == "" {
		t.Error("unknown scheme should still format")
	}
}

// sweep feeds n sequential data reads starting at base.
func sweep(s *System, base mem.Addr, blocks int) {
	for i := 0; i < blocks; i++ {
		s.Access(mem.Access{Addr: base + mem.Addr(i*64), Kind: mem.Read})
	}
}

func TestSequentialSweepHitsStreams(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	// Sweep far more than the 4 KB L1: every block is an L1 miss, and
	// after the first miss the stream supplies every one.
	sweep(s, 1<<20, 1000)
	r := s.Results()
	if r.L1D.Misses != 1000 {
		t.Fatalf("L1D misses = %d, want 1000 (sweep exceeds cache)", r.L1D.Misses)
	}
	if r.Streams.Hits != 999 {
		t.Errorf("stream hits = %d, want 999 (all but the first miss)", r.Streams.Hits)
	}
	if hr := r.StreamHitRate(); hr < 99.8 || hr > 100 {
		t.Errorf("stream hit rate = %v, want ~99.9", hr)
	}
}

func TestStreamsDisabled(t *testing.T) {
	s := mustNew(t, tinyConfig(0))
	sweep(s, 0, 100)
	r := s.Results()
	if r.Streams.Probes != 0 {
		t.Error("no stream activity expected")
	}
	if r.Bandwidth.DemandFetches != r.L1D.Fills {
		t.Errorf("demand fetches %d != fills %d", r.Bandwidth.DemandFetches, r.L1D.Fills)
	}
}

func TestIFetchRoutesToL1I(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	s.Access(mem.Access{Addr: 0x1000, Kind: mem.IFetch})
	s.Access(mem.Access{Addr: 0x1000, Kind: mem.IFetch})
	s.Access(mem.Access{Addr: 0x2000, Kind: mem.Read})
	r := s.Results()
	if r.L1I.Accesses != 2 {
		t.Errorf("L1I accesses = %d, want 2", r.L1I.Accesses)
	}
	if r.L1D.Accesses != 1 {
		t.Errorf("L1D accesses = %d, want 1", r.L1D.Accesses)
	}
}

func TestUnifiedStreamsServeIFetches(t *testing.T) {
	// The paper's streams are unified: instruction misses probe the
	// same stream set.
	s := mustNew(t, tinyConfig(2))
	for i := 0; i < 500; i++ {
		s.Access(mem.Access{Addr: mem.Addr(1<<21 + i*64), Kind: mem.IFetch})
	}
	r := s.Results()
	if r.Streams.Hits < 490 {
		t.Errorf("instruction sweep stream hits = %d, want ~499", r.Streams.Hits)
	}
}

func TestWriteBackCountedAndLedgerBalances(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	// L1D is 4 KB direct-mapped (64 sets); a and a+4096 conflict.
	a := mem.Addr(1 << 20)
	s.Access(mem.Access{Addr: a, Kind: mem.Read})             // stream holds a+64, a+128
	s.Access(mem.Access{Addr: a + 64, Kind: mem.Write})       // stream hit; dirty in L1
	s.Access(mem.Access{Addr: a + 64 + 4096, Kind: mem.Read}) // evicts dirty a+64
	r := s.Results()
	if r.Bandwidth.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", r.Bandwidth.WriteBacks)
	}
	if r.MemoryTraffic()-r.RequiredTraffic() != r.Streams.PrefetchesWasted {
		t.Errorf("bandwidth ledger inconsistent: traffic %d, required %d, wasted %d",
			r.MemoryTraffic(), r.RequiredTraffic(), r.Streams.PrefetchesWasted)
	}
}

func TestExplicitStreamInvalidationOnWriteBack(t *testing.T) {
	// Construct a guaranteed invalidation: block B sits in a stream
	// while an aliased dirty copy of B is evicted from L1.
	cfg := tinyConfig(2)
	s := mustNew(t, cfg)
	b := mem.Addr(1 << 20) // block-aligned
	// Dirty B in L1.
	s.Access(mem.Access{Addr: b, Kind: mem.Write})
	// Start a stream that will prefetch B: miss at B-64 allocates a
	// stream prefetching B, B+64 (B-64 maps to a different L1 set, so
	// B stays resident and dirty).
	s.Access(mem.Access{Addr: b - 64, Kind: mem.Read})
	// Evict dirty B: read its set conflict (4 KB direct-mapped L1).
	s.Access(mem.Access{Addr: b + 4096, Kind: mem.Read})
	r := s.Results()
	if r.Streams.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1 (write-back of B must kill its stream copy)",
			r.Streams.Invalidations)
	}
}

func TestUnitFilterSuppressesIsolatedAllocations(t *testing.T) {
	cfg := tinyConfig(4)
	cfg.UnitFilterEntries = 16
	s := mustNew(t, cfg)
	// Isolated (non-consecutive) misses: no stream should be allocated.
	for i := 0; i < 100; i++ {
		s.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64*37), Kind: mem.Read})
	}
	r := s.Results()
	if r.Streams.Allocations != 0 {
		t.Errorf("Allocations = %d, want 0 (isolated misses filtered)", r.Streams.Allocations)
	}
	if r.Streams.PrefetchesIssued != 0 {
		t.Errorf("PrefetchesIssued = %d, want 0", r.Streams.PrefetchesIssued)
	}
}

func TestUnitFilterStillCatchesSequentialRuns(t *testing.T) {
	cfg := tinyConfig(4)
	cfg.UnitFilterEntries = 16
	s := mustNew(t, cfg)
	sweep(s, 1<<20, 1000)
	r := s.Results()
	// The filter costs the first two misses of the run; the rest hit.
	if r.Streams.Hits != 998 {
		t.Errorf("stream hits = %d, want 998", r.Streams.Hits)
	}
	if r.Streams.Allocations != 1 {
		t.Errorf("Allocations = %d, want 1", r.Streams.Allocations)
	}
}

func TestFilterReducesExtraBandwidth(t *testing.T) {
	mixed := func(cfg Config) Results {
		s := mustNew(t, cfg)
		// A mix: one real sequential stream plus many isolated misses.
		seq := mem.Addr(1 << 20)
		iso := mem.Addr(1 << 24)
		for i := 0; i < 2000; i++ {
			s.Access(mem.Access{Addr: seq + mem.Addr(i*64), Kind: mem.Read})
			s.Access(mem.Access{Addr: iso + mem.Addr(i*64*101), Kind: mem.Read})
		}
		return s.Results()
	}
	plain := mixed(tinyConfig(4))
	cfgF := tinyConfig(4)
	cfgF.UnitFilterEntries = 16
	filtered := mixed(cfgF)
	if filtered.ExtraBandwidth() >= plain.ExtraBandwidth() {
		t.Errorf("filter should cut EB: %0.1f%% (filtered) vs %0.1f%% (plain)",
			filtered.ExtraBandwidth(), plain.ExtraBandwidth())
	}
	// And the hit rate should not collapse: long runs still stream.
	if filtered.StreamHitRate() < plain.StreamHitRate()-5 {
		t.Errorf("filter cost too much hit rate: %0.1f vs %0.1f",
			filtered.StreamHitRate(), plain.StreamHitRate())
	}
}

func TestCzoneDetectsLargeStrides(t *testing.T) {
	cfg := tinyConfig(4)
	cfg.UnitFilterEntries = 16
	cfg.Stride = CzoneScheme
	cfg.StrideFilterEntries = 16
	cfg.CzoneBits = 16
	s := mustNew(t, cfg)
	// Column walk: stride 1024 words = 4096 bytes (64 blocks), well
	// within a 2^16-word czone.
	base := mem.Addr(1 << 21)
	for i := 0; i < 1000; i++ {
		s.Access(mem.Access{Addr: base + mem.Addr(i*4096), Kind: mem.Read})
	}
	r := s.Results()
	if r.CzoneFilter.Allocations == 0 {
		t.Fatal("czone scheme never fired")
	}
	if hr := r.StreamHitRate(); hr < 90 {
		t.Errorf("strided hit rate = %0.1f%%, want >90%%", hr)
	}
}

func TestUnitStrideOnlyMissesLargeStrides(t *testing.T) {
	cfg := tinyConfig(4)
	cfg.UnitFilterEntries = 16
	s := mustNew(t, cfg) // no stride detection
	base := mem.Addr(1 << 21)
	for i := 0; i < 1000; i++ {
		s.Access(mem.Access{Addr: base + mem.Addr(i*4096), Kind: mem.Read})
	}
	r := s.Results()
	if hr := r.StreamHitRate(); hr != 0 {
		t.Errorf("unit-only hit rate on large strides = %0.1f%%, want 0", hr)
	}
}

func TestMinDeltaSchemeDetectsStrides(t *testing.T) {
	cfg := tinyConfig(4)
	cfg.UnitFilterEntries = 16
	cfg.Stride = MinDeltaScheme
	cfg.StrideFilterEntries = 16
	s := mustNew(t, cfg)
	base := mem.Addr(1 << 21)
	for i := 0; i < 1000; i++ {
		s.Access(mem.Access{Addr: base + mem.Addr(i*4096), Kind: mem.Read})
	}
	r := s.Results()
	if hr := r.StreamHitRate(); hr < 90 {
		t.Errorf("min-delta hit rate = %0.1f%%, want >90%%", hr)
	}
}

func TestSetCzoneBits(t *testing.T) {
	cfg := tinyConfig(2)
	cfg.Stride = CzoneScheme
	cfg.StrideFilterEntries = 16
	cfg.CzoneBits = 16
	s := mustNew(t, cfg)
	if err := s.SetCzoneBits(20); err != nil {
		t.Errorf("SetCzoneBits: %v", err)
	}
	s2 := mustNew(t, tinyConfig(2))
	if err := s2.SetCzoneBits(20); err == nil {
		t.Error("SetCzoneBits without czone scheme should fail")
	}
}

func TestMPIAndMissRate(t *testing.T) {
	s := mustNew(t, tinyConfig(0))
	sweep(s, 1<<20, 100) // 100 compulsory misses
	s.AddInstructions(10000)
	r := s.Results()
	if r.Instructions != 10000 {
		t.Errorf("Instructions = %d, want 10000", r.Instructions)
	}
	if got := r.MPI(); got != 1.0 {
		t.Errorf("MPI = %v%%, want 1.0", got)
	}
	if got := r.DataMissRate(); got != 100 {
		t.Errorf("DataMissRate = %v%%, want 100 (pure cold sweep)", got)
	}
}

func TestFinishIdempotent(t *testing.T) {
	s := mustNew(t, tinyConfig(2))
	sweep(s, 1<<20, 10)
	s.Finish()
	w1 := s.Results().Streams.PrefetchesWasted
	s.Finish()
	w2 := s.Results().Streams.PrefetchesWasted
	if w1 != w2 {
		t.Errorf("Finish not idempotent: wasted %d then %d", w1, w2)
	}
}

// Property: the bandwidth ledger always balances — memory traffic
// minus required traffic equals wasted prefetches, and L1 fills equal
// demand fetches plus stream fills.
func TestBandwidthLedgerInvariant(t *testing.T) {
	f := func(seed []uint16, filtered bool) bool {
		cfg := tinyConfig(4)
		if filtered {
			cfg.UnitFilterEntries = 8
			cfg.Stride = CzoneScheme
			cfg.StrideFilterEntries = 8
			cfg.CzoneBits = 16
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		addr := mem.Addr(1 << 20)
		for _, v := range seed {
			switch v % 4 {
			case 0: // sequential step
				addr += 64
			case 1: // stride jump
				addr += 4096
			case 2: // random-ish jump
				addr = mem.Addr(1<<20) + mem.Addr(v)*977*64
			case 3: // write
				s.Access(mem.Access{Addr: addr, Kind: mem.Write})
				continue
			}
			s.Access(mem.Access{Addr: addr, Kind: mem.Read})
		}
		r := s.Results()
		if r.L1I.Fills+r.L1D.Fills != r.Bandwidth.DemandFetches+r.Bandwidth.StreamFills {
			return false
		}
		return r.MemoryTraffic()-r.RequiredTraffic() == r.Streams.PrefetchesWasted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the system is fully deterministic — two instances fed the
// same access sequence produce identical results (the seeded random
// replacement is the only stochastic component).
func TestSystemDeterministic(t *testing.T) {
	f := func(ops []uint16) bool {
		mk := func() Results {
			s, err := New(DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				kind := mem.Read
				if op%5 == 0 {
					kind = mem.Write
				}
				s.Access(mem.Access{Addr: mem.Addr(1<<20 + int(op)*64), Kind: kind})
			}
			return s.Results()
		}
		a, b := mk(), mk()
		return a.Streams == b.Streams && a.L1D == b.L1D && a.Bandwidth == b.Bandwidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
