package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRatioAndPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Errorf("Ratio(3,4) = %v", Ratio(3, 4))
	}
	if Percent(1, 4) != 25 {
		t.Errorf("Percent(1,4) = %v", Percent(1, 4))
	}
}

func TestExtraBandwidth(t *testing.T) {
	if got := ExtraBandwidth(96, 100); got != 96 {
		t.Errorf("ExtraBandwidth = %v, want 96", got)
	}
	if got := ExtraBandwidth(5, 0); got != 0 {
		t.Errorf("ExtraBandwidth with zero required = %v, want 0", got)
	}
}

func TestClosedForms(t *testing.T) {
	// depth 2, 30 stream misses, 100 cache misses -> 60%.
	if got := EBNoFilterClosedForm(2, 30, 100); got != 60 {
		t.Errorf("EBNoFilterClosedForm = %v, want 60", got)
	}
	if got := EBNoFilterClosedForm(2, 30, 0); got != 0 {
		t.Error("zero cache misses should give 0")
	}
	if got := EBWithFilterClosedForm(2, 10, 100); got != 20 {
		t.Errorf("EBWithFilterClosedForm = %v, want 20", got)
	}
	if got := EBWithFilterClosedForm(2, 10, 0); got != 0 {
		t.Error("zero cache misses should give 0")
	}
}

func TestFilterReducesClosedFormEB(t *testing.T) {
	// With a filter, allocations (filter hits) are at most stream
	// misses, so the closed-form EB can only shrink.
	f := func(depth uint8, sm, fhRaw uint32) bool {
		d := int(depth%4) + 1
		fh := fhRaw % (sm + 1) // filter hits <= stream misses
		cm := sm + 1000
		return EBWithFilterClosedForm(d, uint64(fh), uint64(cm)) <=
			EBNoFilterClosedForm(d, uint64(sm), uint64(cm))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5); err == nil {
		t.Error("non-ascending bounds should be rejected")
	}
	if _, err := NewHistogram(10, 5); err == nil {
		t.Error("descending bounds should be rejected")
	}
	if _, err := NewHistogram(5, 10, 15); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0, 1)  // bucket 0
	h.Add(5, 1)  // bucket 0 (inclusive bound)
	h.Add(6, 2)  // bucket 1
	h.Add(11, 4) // bucket 2 (open)
	counts := h.Counts()
	want := []uint64{2, 2, 4}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	shares := h.Shares()
	if shares[2] != 50 {
		t.Errorf("share of open bucket = %v, want 50", shares[2])
	}
}

func TestHistogramLabels(t *testing.T) {
	h, _ := NewHistogram(5, 10)
	labels := h.Labels()
	want := []string{"0-5", "6-10", ">10"}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, labels[i], want[i])
		}
	}
}

func TestHistogramEmptyShares(t *testing.T) {
	h, _ := NewHistogram(5)
	for _, s := range h.Shares() {
		if s != 0 {
			t.Error("empty histogram shares should be zero")
		}
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if !math.IsNaN(m.Value()) {
		t.Error("empty mean should be NaN")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 {
		t.Errorf("mean = %v, want 3", m.Value())
	}
	if m.N() != 2 {
		t.Errorf("N = %d, want 2", m.N())
	}
}

// Property: histogram total always equals the sum of bucket counts.
func TestHistogramConservation(t *testing.T) {
	f := func(values []uint16) bool {
		h, err := NewHistogram(10, 100, 1000)
		if err != nil {
			return false
		}
		for _, v := range values {
			h.Add(uint64(v), 1)
		}
		var sum uint64
		for _, c := range h.Counts() {
			sum += c
		}
		return sum == h.Total() && h.Total() == uint64(len(values))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(10, 100)
	b, _ := NewHistogram(10, 100)
	a.Add(5, 2)
	a.Add(50, 3)
	b.Add(5, 1)
	b.Add(500, 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 3, 4}
	got := a.Counts()
	for i, w := range want {
		if got[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, got[i], w)
		}
	}
	if a.Total() != 10 {
		t.Errorf("Total = %d, want 10", a.Total())
	}
	// The source is untouched.
	if b.Total() != 5 {
		t.Errorf("merge mutated its argument: Total = %d, want 5", b.Total())
	}
}

func TestHistogramMergeShapeMismatch(t *testing.T) {
	a, _ := NewHistogram(10, 100)
	short, _ := NewHistogram(10)
	if err := a.Merge(short); err == nil {
		t.Error("merging histograms with different bucket counts should fail")
	}
	skewed, _ := NewHistogram(10, 200)
	if err := a.Merge(skewed); err == nil {
		t.Error("merging histograms with different bounds should fail")
	}
	// A failed merge must not have partially applied.
	if a.Total() != 0 {
		t.Errorf("failed merge left Total = %d, want 0", a.Total())
	}
}

func TestHistogramCloneIndependent(t *testing.T) {
	h, _ := NewHistogram(10, 100)
	h.Add(5, 1)
	c := h.Clone()
	c.Add(50, 7)
	if h.Total() != 1 {
		t.Errorf("clone's Add leaked into original: Total = %d, want 1", h.Total())
	}
	if c.Total() != 8 {
		t.Errorf("clone Total = %d, want 8", c.Total())
	}
	if got := h.Counts(); got[1] != 0 {
		t.Errorf("clone's Add leaked into original bucket: %v", got)
	}
}

func TestMeanMerge(t *testing.T) {
	var a, b Mean
	a.Add(1)
	a.Add(3)
	b.Add(5)
	a.Merge(&b)
	if a.N() != 3 {
		t.Errorf("N = %d, want 3", a.N())
	}
	if got := a.Value(); got != 3 {
		t.Errorf("Value = %v, want 3", got)
	}
	if b.N() != 1 {
		t.Errorf("merge mutated its argument: N = %d, want 1", b.N())
	}
}
