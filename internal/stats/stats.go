// Package stats provides the derived metrics the paper reports: stream
// hit rates, the extra-bandwidth (EB) measure of Section 5/6 in both
// its empirical and closed forms, and small histogram utilities used by
// the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ratio returns num/den as a float, or 0 when den is 0.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Percent returns num/den scaled to percent, or 0 when den is 0.
func Percent(num, den uint64) float64 { return 100 * Ratio(num, den) }

// ExtraBandwidth is the paper's EB metric: memory bandwidth wasted by
// stream prefetching as a fraction of the bandwidth the program needs
// without streams. wasted counts prefetched blocks never consumed;
// required counts the blocks the program itself had to move (primary
// cache fills). The result is in percent.
func ExtraBandwidth(wasted, required uint64) float64 {
	return Percent(wasted, required)
}

// EBNoFilterClosedForm is the paper's Section 5 expression for ordinary
// streams: every stream miss causes an allocation that will eventually
// flush up to depth prefetches, so EB = depth * streamMisses /
// cacheMisses (percent). It is an upper bound on the empirical EB.
func EBNoFilterClosedForm(depth int, streamMisses, cacheMisses uint64) float64 {
	if cacheMisses == 0 {
		return 0
	}
	return 100 * float64(uint64(depth)*streamMisses) / float64(cacheMisses)
}

// EBWithFilterClosedForm is the Section 6 expression: with a filter,
// streams are allocated only on filter hits, so EB = depth * filterHits
// / cacheMisses (percent).
func EBWithFilterClosedForm(depth int, filterHits, cacheMisses uint64) float64 {
	if cacheMisses == 0 {
		return 0
	}
	return 100 * float64(uint64(depth)*filterHits) / float64(cacheMisses)
}

// Histogram is a fixed-bucket histogram keyed by upper bounds. The
// final bucket is unbounded.
//
//simlint:state counters
type Histogram struct {
	bounds []uint64 // ascending upper bounds (inclusive); last bucket open
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with len(bounds)+1 buckets. Bounds
// must be strictly ascending.
func NewHistogram(bounds ...uint64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// Add records value with the given weight.
func (h *Histogram) Add(value, weight uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return value <= h.bounds[i] })
	h.counts[i] += weight
	h.total += weight
}

// Merge accumulates another histogram's weights into this one. The two
// must have identical bucket bounds — a merge across shapes would
// silently misattribute weight.
//
//simlint:statefull merge
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("stats: merging histograms with %d and %d bounds", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("stats: merging histograms with different bounds at %d", i)
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	return nil
}

// Clone returns an independent deep copy of the histogram.
//
//simlint:statefull clone
func (h *Histogram) Clone() *Histogram {
	n := *h
	n.bounds = append([]uint64(nil), h.bounds...)
	n.counts = append([]uint64(nil), h.counts...)
	return &n
}

// Counts returns a copy of the bucket weights.
func (h *Histogram) Counts() []uint64 {
	return append([]uint64(nil), h.counts...)
}

// Total returns the sum of all weights.
func (h *Histogram) Total() uint64 { return h.total }

// Shares returns each bucket's fraction of the total in percent.
func (h *Histogram) Shares() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = 100 * float64(c) / float64(h.total)
	}
	return out
}

// Labels renders bucket labels like "0-5", "6-10", ">10".
func (h *Histogram) Labels() []string {
	out := make([]string, len(h.counts))
	lo := uint64(0)
	for i, b := range h.bounds {
		out[i] = fmt.Sprintf("%d-%d", lo, b)
		lo = b + 1
	}
	out[len(out)-1] = fmt.Sprintf(">%d", h.bounds[len(h.bounds)-1])
	return out
}

// Mean accumulates a running mean without storing samples.
//
//simlint:state counters
type Mean struct {
	n   uint64
	sum float64
}

// Add records one sample.
func (m *Mean) Add(v float64) { m.n++; m.sum += v }

// Merge folds another accumulator's samples into this one.
//
//simlint:statefull merge
func (m *Mean) Merge(o *Mean) { m.n += o.n; m.sum += o.sum }

// N returns the sample count.
func (m *Mean) N() uint64 { return m.n }

// Value returns the mean, or NaN with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.sum / float64(m.n)
}
