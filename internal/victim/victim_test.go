package victim

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero entries should be rejected")
	}
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Errorf("Size = %d, want 4", c.Size())
	}
}

func TestProbeMissOnEmpty(t *testing.T) {
	c, _ := New(4)
	if hit, _ := c.Probe(10); hit {
		t.Error("empty victim cache should miss")
	}
	if s := c.Stats(); s.Probes != 1 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInsertThenProbe(t *testing.T) {
	c, _ := New(4)
	c.Insert(10, true)
	hit, dirty := c.Probe(10)
	if !hit || !dirty {
		t.Errorf("Probe = (%v, %v), want (true, true)", hit, dirty)
	}
	// The hit removed the entry (line swapped back into L1).
	if hit, _ := c.Probe(10); hit {
		t.Error("entry should be consumed by the hit")
	}
}

func TestCleanInsert(t *testing.T) {
	c, _ := New(4)
	c.Insert(10, false)
	hit, dirty := c.Probe(10)
	if !hit || dirty {
		t.Errorf("Probe = (%v, %v), want (true, false)", hit, dirty)
	}
}

func TestLRUDisplacementWritesBackDirty(t *testing.T) {
	c, _ := New(2)
	c.Insert(1, true)
	c.Insert(2, false)
	wb, ok := c.Insert(3, false) // displaces 1 (LRU, dirty)
	if !ok || wb != 1 {
		t.Errorf("Insert displaced (%d, %v), want (1, true)", wb, ok)
	}
	if got := c.Stats().WriteBacks; got != 1 {
		t.Errorf("WriteBacks = %d, want 1", got)
	}
	if hit, _ := c.Probe(1); hit {
		t.Error("displaced block should be gone")
	}
}

func TestCleanDisplacementNoWriteBack(t *testing.T) {
	c, _ := New(1)
	c.Insert(1, false)
	if _, ok := c.Insert(2, false); ok {
		t.Error("clean displacement must not request a write-back")
	}
}

func TestReinsertRefreshesAndMergesDirty(t *testing.T) {
	c, _ := New(2)
	c.Insert(1, false)
	c.Insert(2, false)
	c.Insert(1, true) // refresh in place, now dirty; 2 stays
	if _, ok := c.Insert(3, false); ok {
		t.Error("displacing clean 2 (LRU) must not write back")
	}
	// 1 should still be resident and dirty.
	hit, dirty := c.Probe(1)
	if !hit || !dirty {
		t.Errorf("Probe(1) = (%v, %v), want (true, true)", hit, dirty)
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := New(2)
	c.Insert(5, true)
	present, dirty := c.Invalidate(5)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if hit, _ := c.Probe(5); hit {
		t.Error("invalidated block should be gone")
	}
	if present, _ := c.Invalidate(5); present {
		t.Error("second invalidate should find nothing")
	}
}

func TestFlush(t *testing.T) {
	c, _ := New(4)
	c.Insert(1, true)
	c.Insert(2, false)
	c.Flush()
	if hit, _ := c.Probe(1); hit {
		t.Error("flush should empty the buffer")
	}
	if got := c.Stats().WriteBacks; got != 1 {
		t.Errorf("WriteBacks = %d, want 1 (one dirty entry)", got)
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s = Stats{Probes: 4, Hits: 1}
	if s.HitRate() != 0.25 {
		t.Errorf("HitRate = %v, want 0.25", s.HitRate())
	}
}

// Property: the victim cache retains the most recent N distinct
// inserted blocks (with no intervening probes).
func TestRetentionProperty(t *testing.T) {
	f := func(blocksRaw []uint16) bool {
		const n = 4
		c, err := New(n)
		if err != nil {
			return false
		}
		// De-duplicate consecutive repeats to keep the invariant simple.
		var blocks []uint64
		seen := map[uint64]bool{}
		for _, b := range blocksRaw {
			if !seen[uint64(b)] {
				seen[uint64(b)] = true
				blocks = append(blocks, uint64(b))
			}
		}
		for _, b := range blocks {
			c.Insert(b, false)
		}
		start := len(blocks) - n
		if start < 0 {
			start = 0
		}
		for _, b := range blocks[start:] {
			if hit, _ := c.Probe(b); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
