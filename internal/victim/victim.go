// Package victim implements Jouppi's victim cache: a small fully-
// associative buffer that holds the last few lines evicted from a
// primary cache. The paper sidesteps victim buffers by using 4-way
// associative L1s ("In a direct-mapped cache, Jouppi's victim buffers
// may also be needed"), but a direct-mapped configuration of this
// repository's memory system wants them, so they are provided and
// exercised by the ablation benches.
//
// On an L1 miss the victim cache is probed before the streams and
// main memory; a hit swaps the line back into the L1 without any
// off-chip traffic. On an L1 eviction the displaced line (clean or
// dirty) is installed here, displacing the LRU victim entry; a dirty
// displaced entry must then be written back by the caller.
package victim

import (
	"fmt"
)

// entry is one fully-associative victim line.
type entry struct {
	block   uint64
	dirty   bool
	valid   bool
	lastUse uint64
}

// Stats counts victim cache behaviour.
//
//simlint:state counters
type Stats struct {
	// Probes is the number of L1 misses presented.
	Probes uint64
	// Hits counts probes that found the block (saved memory accesses).
	Hits uint64
	// Inserts counts evicted L1 lines installed.
	Inserts uint64
	// WriteBacks counts dirty lines displaced out of the victim cache.
	WriteBacks uint64
}

// HitRate returns Hits/Probes, or 0 with no probes.
func (s Stats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Probes)
}

// Cache is a small fully-associative victim buffer. Jouppi found one
// to four entries recover most direct-mapped conflict misses; eight is
// a generous default. It is not safe for concurrent use.
//
//simlint:state
type Cache struct {
	entries []entry
	clock   uint64
	stats   Stats
}

// New builds a victim cache with n entries.
func New(n int) (*Cache, error) {
	if n < 1 {
		return nil, fmt.Errorf("victim: need at least one entry, got %d", n)
	}
	return &Cache{entries: make([]entry, n)}, nil
}

// Size returns the number of entries.
func (c *Cache) Size() int { return len(c.entries) }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without disturbing the entries.
//
//simlint:statefull reset
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetStats overwrites the statistics wholesale; the window-sharded
// replay engine restores accumulated counters onto adopted state.
//
//simlint:statefull adopt
func (c *Cache) SetStats(s Stats) { c.stats = s }

// AddStats accumulates another victim cache's counters into this one.
//
//simlint:statefull merge
func (c *Cache) AddStats(s Stats) {
	c.stats.Probes += s.Probes
	c.stats.Hits += s.Hits
	c.stats.Inserts += s.Inserts
	c.stats.WriteBacks += s.WriteBacks
}

// Clone returns a deep copy of the victim cache; the clone evolves
// independently of the original.
//
//simlint:statefull clone
func (c *Cache) Clone() *Cache {
	n := *c
	n.entries = append([]entry(nil), c.entries...)
	return &n
}

// Probe looks up a block after an L1 miss. On a hit the entry is
// removed (the line moves back into the L1) and its dirty state is
// returned so the L1 can re-mark it.
func (c *Cache) Probe(block uint64) (hit, dirty bool) {
	c.clock++
	c.stats.Probes++
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.block == block {
			c.stats.Hits++
			dirty = e.dirty
			e.valid = false
			return true, dirty
		}
	}
	return false, false
}

// Insert installs a line evicted from the L1. It returns the displaced
// dirty line's block, if any, which the caller must write back
// (writeBack is false when the displaced line was clean or the slot
// was free).
func (c *Cache) Insert(block uint64, dirty bool) (wbBlock uint64, writeBack bool) {
	c.clock++
	c.stats.Inserts++
	victim := -1
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.block == block {
			// Re-insert of a resident block (can happen when the same
			// line bounces): refresh in place.
			e.dirty = e.dirty || dirty
			e.lastUse = c.clock
			return 0, false
		}
		if !e.valid && victim == -1 {
			victim = i
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(c.entries); i++ {
			if c.entries[i].lastUse < c.entries[victim].lastUse {
				victim = i
			}
		}
		if v := &c.entries[victim]; v.valid && v.dirty {
			wbBlock, writeBack = v.block, true
			c.stats.WriteBacks++
		}
	}
	c.entries[victim] = entry{block: block, dirty: dirty, valid: true, lastUse: c.clock}
	return wbBlock, writeBack
}

// Invalidate removes a block (write-back coherence), reporting whether
// it was present and dirty.
func (c *Cache) Invalidate(block uint64) (present, dirty bool) {
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.block == block {
			present, dirty = true, e.dirty
			e.valid = false
			e.dirty = false
			return present, dirty
		}
	}
	return false, false
}

// Flush empties the buffer, counting dirty entries as write-backs.
func (c *Cache) Flush() {
	for i := range c.entries {
		if c.entries[i].valid && c.entries[i].dirty {
			c.stats.WriteBacks++
		}
		c.entries[i] = entry{}
	}
}
