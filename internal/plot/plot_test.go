package plot

import (
	"strings"
	"testing"
)

func TestEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart should say so:\n%s", out)
	}
}

func TestSingleSeries(t *testing.T) {
	c := &Chart{
		Title:  "test",
		XTicks: []string{"1", "2", "3"},
		Series: []Series{{Name: "s", Values: []float64{0, 50, 100}}},
		Height: 10,
	}
	out := c.Render()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	gridPart := out[:strings.Index(out, "+--")]
	if strings.Count(gridPart, "*") != 3 {
		t.Errorf("want 3 markers in the grid, got %d:\n%s", strings.Count(gridPart, "*"), out)
	}
	if !strings.Contains(out, "* s") {
		t.Error("legend missing")
	}
	lines := strings.Split(out, "\n")
	// The rising series: first marker on a lower row than the last.
	var firstRow, lastRow int
	for i, l := range lines {
		if idx := strings.IndexByte(l, '*'); idx >= 0 {
			if firstRow == 0 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow >= lastRow {
		t.Errorf("rising series should span rows: first %d last %d", firstRow, lastRow)
	}
}

func TestMultiSeriesMarkers(t *testing.T) {
	c := &Chart{
		XTicks: []string{"a", "b"},
		Series: []Series{
			{Name: "one", Values: []float64{1, 2}},
			{Name: "two", Values: []float64{3, 4}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("distinct markers expected:\n%s", out)
	}
}

func TestFixedRange(t *testing.T) {
	c := &Chart{
		XTicks: []string{"a"},
		Series: []Series{{Name: "s", Values: []float64{50}}},
		YMin:   0, YMax: 100,
		Height: 11,
	}
	out := c.Render()
	if !strings.Contains(out, "100") || !strings.Contains(out, "0 |") {
		t.Errorf("fixed-range ticks missing:\n%s", out)
	}
}

func TestFlatSeriesDoesNotPanic(t *testing.T) {
	c := &Chart{
		XTicks: []string{"a", "b"},
		Series: []Series{{Name: "flat", Values: []float64{5, 5}}},
	}
	if out := c.Render(); out == "" {
		t.Error("flat series should still render")
	}
}

func TestAxisLabels(t *testing.T) {
	c := &Chart{
		XTicks: []string{"a"},
		XLabel: "streams",
		YLabel: "hit %",
		Series: []Series{{Name: "s", Values: []float64{1}}},
	}
	out := c.Render()
	if !strings.Contains(out, "x: streams") || !strings.Contains(out, "y: hit %") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}
