// Package plot renders simple ASCII line charts for the figure
// experiments, so `paperexp -plot` can show Figure 3's hit-rate curves
// and Figure 9's czone window the way the paper draws them, without
// leaving the terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	// Name labels the curve in the legend.
	Name string
	// Values are the y samples, one per x position.
	Values []float64
}

// Chart is a multi-series line chart over shared x labels.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// XTicks label the x positions (one per sample).
	XTicks []string
	// Series are the curves.
	Series []Series
	// Height is the plot's interior height in rows (default 20).
	Height int
	// YMin/YMax fix the y range; both zero means auto-scale.
	YMin, YMax float64
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// Render draws the chart.
func (c *Chart) Render() string {
	height := c.Height
	if height <= 0 {
		height = 20
	}
	maxLen := 0
	for _, s := range c.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 {
		return c.Title + "\n(no data)\n"
	}

	ymin, ymax := c.YMin, c.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			for _, v := range s.Values {
				ymin = math.Min(ymin, v)
				ymax = math.Max(ymax, v)
			}
		}
		if ymin == ymax {
			ymin, ymax = ymin-1, ymax+1
		}
		// Pad 5% so extremes don't sit on the frame.
		pad := (ymax - ymin) * 0.05
		ymin, ymax = ymin-pad, ymax+pad
	}

	// Horizontal layout: each sample gets a fixed-width column.
	colW := 4
	for _, t := range c.XTicks {
		if len(t)+2 > colW {
			colW = len(t) + 2
		}
	}
	width := maxLen * colW

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		frac := (v - ymin) / (ymax - ymin)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}
	colOf := func(i int) int { return i*colW + colW/2 }

	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		prevRow, prevCol := -1, -1
		for i, v := range s.Values {
			row, col := rowOf(v), colOf(i)
			// Connect to the previous point with a sparse line.
			if prevCol >= 0 {
				steps := col - prevCol
				for st := 1; st < steps; st++ {
					interp := prevRow + (row-prevRow)*st/steps
					cell := &grid[interp][prevCol+st]
					if *cell == ' ' {
						*cell = '.'
					}
				}
			}
			grid[row][col] = mark
			prevRow, prevCol = row, col
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLabelWidth := 8
	for i, row := range grid {
		// Y tick on the top, middle and bottom rows.
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%.0f", ymax)
		case height / 2:
			label = fmt.Sprintf("%.0f", (ymax+ymin)/2)
		case height - 1:
			label = fmt.Sprintf("%.0f", ymin)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelWidth, label, string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelWidth, "", strings.Repeat("-", width))
	// X tick row.
	tickRow := []byte(strings.Repeat(" ", width))
	for i, t := range c.XTicks {
		if i >= maxLen {
			break
		}
		col := colOf(i) - len(t)/2
		if col < 0 {
			col = 0
		}
		copy(tickRow[col:], t)
	}
	fmt.Fprintf(&b, "%*s  %s\n", yLabelWidth, "", string(tickRow))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", yLabelWidth, "", c.XLabel, c.YLabel)
	}
	// Legend.
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%*s  %c %s\n", yLabelWidth, "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
