// Package mem defines the primitive vocabulary shared by every component
// of the simulator: byte addresses, memory accesses, and the geometry
// arithmetic (word/block/set extraction) that caches, stream buffers and
// filters all agree on.
//
// All components operate on physical byte addresses. The paper's
// off-chip hardware never sees program counters, so an Access carries
// only the address and the kind of reference; an optional PC field is
// retained for workload instrumentation and debugging but is never
// consulted by the prefetch hardware models.
package mem

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// Kind classifies a memory access.
type Kind uint8

// The three access kinds the trace format distinguishes.
const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
	// IFetch is an instruction fetch.
	IFetch
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case IFetch:
		return "I"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the defined access kinds.
func (k Kind) Valid() bool { return k <= IFetch }

// Access is a single memory reference as produced by a workload
// generator or decoded from a trace file.
type Access struct {
	// Addr is the physical byte address referenced.
	Addr Addr
	// PC is the program counter of the issuing instruction. The
	// stream-buffer hardware never reads it (the paper's point: off-
	// chip logic does not see PCs), but the on-chip Baer-Chen baseline
	// in internal/rpt does, and traces carry it for that comparison.
	// Zero means unknown.
	PC Addr
	// Kind says whether this is a load, store or instruction fetch.
	Kind Kind
	// Size is the access width in bytes (informational; the cache
	// models operate at block granularity). Zero means "word".
	Size uint8
}

// String formats the access for debugging.
func (a Access) String() string {
	return fmt.Sprintf("%s 0x%x", a.Kind, uint64(a.Addr))
}

// Geometry captures the fixed layout parameters of the memory system:
// how many bytes a machine word and a cache block occupy. Both must be
// powers of two. The zero Geometry is not valid; use DefaultGeometry or
// NewGeometry.
type Geometry struct {
	wordBytes  uint
	blockBytes uint
	wordShift  uint
	blockShift uint
}

// The paper's assumed geometry: 4-byte words, 64-byte cache blocks.
const (
	defaultWordBytes  = 4
	defaultBlockBytes = 64
)

// Compile-time guards on the default geometry: editing the constants
// above to an invalid combination must fail the build, not panic (or
// silently corrupt address arithmetic) in every importing program.
// A violated guard makes the array length negative.
var (
	_ [defaultWordBytes - 1]struct{}                           // word size >= 1
	_ [-(defaultWordBytes & (defaultWordBytes - 1))]struct{}   // word size a power of two
	_ [-(defaultBlockBytes & (defaultBlockBytes - 1))]struct{} // block size a power of two
	_ [defaultBlockBytes - defaultWordBytes]struct{}           // block size >= word size
)

// DefaultGeometry matches the paper's assumptions: 4-byte words and
// 64-byte cache blocks. The constants are validated at compile time
// (see the guards above), so no error path exists.
func DefaultGeometry() Geometry {
	return Geometry{
		wordBytes:  defaultWordBytes,
		blockBytes: defaultBlockBytes,
		wordShift:  log2(defaultWordBytes),
		blockShift: log2(defaultBlockBytes),
	}
}

// NewGeometry builds a Geometry with the given word and block sizes in
// bytes. Both must be powers of two, wordBytes must be at least 1, and
// blockBytes must be a multiple of wordBytes.
func NewGeometry(wordBytes, blockBytes uint) (Geometry, error) {
	switch {
	case wordBytes == 0 || wordBytes&(wordBytes-1) != 0:
		return Geometry{}, fmt.Errorf("mem: word size %d is not a power of two", wordBytes)
	case blockBytes == 0 || blockBytes&(blockBytes-1) != 0:
		return Geometry{}, fmt.Errorf("mem: block size %d is not a power of two", blockBytes)
	case blockBytes < wordBytes:
		return Geometry{}, fmt.Errorf("mem: block size %d smaller than word size %d", blockBytes, wordBytes)
	}
	return Geometry{
		wordBytes:  wordBytes,
		blockBytes: blockBytes,
		wordShift:  log2(wordBytes),
		blockShift: log2(blockBytes),
	}, nil
}

// log2 returns the base-2 logarithm of a power of two.
func log2(v uint) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// WordBytes returns the word size in bytes.
func (g Geometry) WordBytes() uint { return g.wordBytes }

// BlockBytes returns the cache block size in bytes.
func (g Geometry) BlockBytes() uint { return g.blockBytes }

// BlockShift returns log2(block size).
func (g Geometry) BlockShift() uint { return g.blockShift }

// WordShift returns log2(word size).
func (g Geometry) WordShift() uint { return g.wordShift }

// WordsPerBlock returns the number of machine words in a cache block.
func (g Geometry) WordsPerBlock() uint { return g.blockBytes / g.wordBytes }

// BlockAddr maps a byte address to its cache block number.
func (g Geometry) BlockAddr(a Addr) Addr { return a >> g.blockShift }

// BlockBase returns the byte address of the first byte of a's block.
func (g Geometry) BlockBase(a Addr) Addr {
	return a &^ Addr(g.blockBytes-1)
}

// WordAddr maps a byte address to its machine word number. Word
// addresses are the currency of the non-unit-stride detection hardware:
// the czone partitioning of Section 7 splits *word* addresses.
func (g Geometry) WordAddr(a Addr) Addr { return a >> g.wordShift }

// WordToByte converts a word number back to the byte address of the
// word's first byte.
func (g Geometry) WordToByte(w Addr) Addr { return w << g.wordShift }

// BlockToByte converts a block number back to the byte address of the
// block's first byte.
func (g Geometry) BlockToByte(b Addr) Addr { return b << g.blockShift }

// BlockOfWord maps a word number to its block number.
func (g Geometry) BlockOfWord(w Addr) Addr {
	return w >> (g.blockShift - g.wordShift)
}

// SameBlock reports whether two byte addresses fall in one cache block.
func (g Geometry) SameBlock(a, b Addr) bool {
	return g.BlockAddr(a) == g.BlockAddr(b)
}
