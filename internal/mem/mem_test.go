package mem

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Read, "R"},
		{Write, "W"},
		{IFetch, "I"},
		{Kind(9), "Kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range []Kind{Read, Write, IFetch} {
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
	}
	if Kind(3).Valid() {
		t.Error("Kind(3) should be invalid")
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Addr: 0x1000, Kind: Write}
	if got, want := a.String(), "W 0x1000"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestNewGeometryErrors(t *testing.T) {
	cases := []struct {
		word, block uint
	}{
		{0, 64},  // zero word
		{3, 64},  // non-power-of-two word
		{4, 0},   // zero block
		{4, 48},  // non-power-of-two block
		{64, 32}, // block < word
		{8, 4},   // block < word
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.word, c.block); err == nil {
			t.Errorf("NewGeometry(%d, %d) should fail", c.word, c.block)
		}
	}
}

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.WordBytes() != 4 {
		t.Errorf("WordBytes = %d, want 4", g.WordBytes())
	}
	if g.BlockBytes() != 64 {
		t.Errorf("BlockBytes = %d, want 64", g.BlockBytes())
	}
	if g.WordsPerBlock() != 16 {
		t.Errorf("WordsPerBlock = %d, want 16", g.WordsPerBlock())
	}
	if g.BlockShift() != 6 {
		t.Errorf("BlockShift = %d, want 6", g.BlockShift())
	}
	if g.WordShift() != 2 {
		t.Errorf("WordShift = %d, want 2", g.WordShift())
	}
}

func TestBlockArithmetic(t *testing.T) {
	g := DefaultGeometry()
	cases := []struct {
		addr  Addr
		block Addr
		base  Addr
		word  Addr
	}{
		{0, 0, 0, 0},
		{63, 0, 0, 15},
		{64, 1, 64, 16},
		{0x1234, 0x48, 0x1200, 0x48d},
	}
	for _, c := range cases {
		if got := g.BlockAddr(c.addr); got != c.block {
			t.Errorf("BlockAddr(%#x) = %#x, want %#x", c.addr, got, c.block)
		}
		if got := g.BlockBase(c.addr); got != c.base {
			t.Errorf("BlockBase(%#x) = %#x, want %#x", c.addr, got, c.base)
		}
		if got := g.WordAddr(c.addr); got != c.word {
			t.Errorf("WordAddr(%#x) = %#x, want %#x", c.addr, got, c.word)
		}
	}
}

func TestSameBlock(t *testing.T) {
	g := DefaultGeometry()
	if !g.SameBlock(0, 63) {
		t.Error("0 and 63 should share a block")
	}
	if g.SameBlock(63, 64) {
		t.Error("63 and 64 should not share a block")
	}
}

func TestBlockOfWord(t *testing.T) {
	g := DefaultGeometry()
	// Word 16 is byte 64 which is block 1.
	if got := g.BlockOfWord(16); got != 1 {
		t.Errorf("BlockOfWord(16) = %d, want 1", got)
	}
	if got := g.BlockOfWord(15); got != 0 {
		t.Errorf("BlockOfWord(15) = %d, want 0", got)
	}
}

// Property: block round trips — BlockToByte(BlockAddr(a)) equals
// BlockBase(a) for every address.
func TestBlockRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	f := func(a uint64) bool {
		addr := Addr(a)
		return g.BlockToByte(g.BlockAddr(addr)) == g.BlockBase(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: word round trips — converting to a word number and back
// never moves an address forward and moves it back less than a word.
func TestWordRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	f := func(a uint64) bool {
		addr := Addr(a)
		back := g.WordToByte(g.WordAddr(addr))
		return back <= addr && addr-back < Addr(g.WordBytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BlockOfWord is consistent with going through byte addresses.
func TestBlockOfWordConsistent(t *testing.T) {
	g := DefaultGeometry()
	f := func(w uint32) bool {
		word := Addr(w)
		return g.BlockOfWord(word) == g.BlockAddr(g.WordToByte(word))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: geometry arithmetic holds for every legal word/block pair.
func TestGeometryAllSizes(t *testing.T) {
	for _, wb := range []uint{1, 2, 4, 8} {
		for _, bb := range []uint{16, 32, 64, 128, 256} {
			if bb < wb {
				continue
			}
			g, err := NewGeometry(wb, bb)
			if err != nil {
				t.Fatalf("NewGeometry(%d, %d): %v", wb, bb, err)
			}
			if g.WordsPerBlock() != bb/wb {
				t.Errorf("WordsPerBlock(%d,%d) = %d, want %d", wb, bb, g.WordsPerBlock(), bb/wb)
			}
			if got := g.BlockAddr(Addr(bb)); got != 1 {
				t.Errorf("BlockAddr(blockBytes) = %d, want 1", got)
			}
		}
	}
}
