package sweeprun

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// baseSpec is a small sweep that touches the replay path for a real
// benchmark at a fast scale.
func baseSpec(metric string, parallel int) Spec {
	return Spec{
		Workload: "mgrid",
		Param:    "streams",
		Values:   []int{1, 2, 4, 8},
		Metric:   metric,
		Scale:    0.05,
		Parallel: parallel,
	}
}

// TestRunParallelMatchesSequential pins the scheduler's contract: for
// every metric — including cpi, whose event-order fidelity depends on
// the recorded instruction positions — a parallel sweep returns the
// same table and series as a sequential one, in the same order.
//
//simlint:deterministic streamsim/internal/sweeprun.Run
func TestRunParallelMatchesSequential(t *testing.T) {
	for _, metric := range []string{"hit", "eb", "missrate", "cpi"} {
		t.Run(metric, func(t *testing.T) {
			seqTab, seqVals, err := Run(context.Background(), baseSpec(metric, 1))
			if err != nil {
				t.Fatal(err)
			}
			parTab, parVals, err := Run(context.Background(), baseSpec(metric, 4))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqVals, parVals) {
				t.Errorf("series diverged: sequential %v, parallel %v", seqVals, parVals)
			}
			if !reflect.DeepEqual(seqTab, parTab) {
				t.Errorf("tables diverged:\nsequential %+v\nparallel %+v", seqTab, parTab)
			}
		})
	}
}

// TestRunCustomWorkloadParallel covers the custom:<mix> path, whose
// trace comes from a seeded random generator: recording once and
// replaying per point must still be deterministic across widths.
func TestRunCustomWorkloadParallel(t *testing.T) {
	spec := Spec{
		Workload: "custom:0.5,0.3,0.2",
		Param:    "depth",
		Values:   []int{1, 2, 4},
		Scale:    0.2,
	}
	_, seq, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallel = 3
	_, par, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("custom workload series diverged: %v vs %v", seq, par)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []int{1, 4} {
		if _, _, err := Run(ctx, baseSpec("hit", parallel)); err != context.Canceled {
			t.Errorf("parallel=%d: Run on a cancelled ctx = %v, want context.Canceled", parallel, err)
		}
	}
}

func TestValidateRejectsDuplicateValues(t *testing.T) {
	s := baseSpec("hit", 1)
	s.Values = []int{1, 2, 4, 2}
	err := s.Validate()
	if err == nil {
		t.Fatal("duplicate values passed Validate")
	}
	if got := err.Error(); !strings.Contains(got, "duplicate value 2") {
		t.Errorf("duplicate error should name the value, got %q", got)
	}
}

func TestParamSetCoversParamNames(t *testing.T) {
	for _, name := range strings.Split(ParamNames(), ", ") {
		p, ok := ParamSet[name]
		if !ok || p.Apply == nil || p.Doc == "" {
			t.Errorf("ParamSet[%q] missing or undocumented", name)
		}
	}
}

func TestValidateParallel(t *testing.T) {
	s := baseSpec("hit", -1)
	if err := s.Validate(); err == nil {
		t.Error("negative Parallel passed Validate")
	}
	for _, p := range []int{0, 1, 16} {
		s := baseSpec("hit", p)
		if err := s.Validate(); err != nil {
			t.Errorf("Parallel=%d rejected: %v", p, err)
		}
	}
}
