// Package sweeprun is the parameter-sweep engine shared by the sweep
// CLI and the simd job service: vary one memory-system parameter over
// a benchmark and tabulate a chosen metric. The CLI owns flag parsing
// and plotting; the service owns queueing and memoization; both hand
// a Spec to Run.
package sweeprun

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"streamsim/internal/core"
	"streamsim/internal/tab"
	"streamsim/internal/timing"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// Spec describes one sweep. The zero values of Size, Metric and Scale
// mean "small", "hit" and 0.5 (the CLI's historical defaults).
type Spec struct {
	// Workload is a benchmark name from the paper's Table 1, or a
	// "custom:<seq>,<stride>,<random>" mix.
	Workload string `json:"workload"`
	// Size is the input size: "small" (default) or "large".
	Size string `json:"size,omitempty"`
	// Param is the parameter to vary (see ParamNames).
	Param string `json:"param"`
	// Values are the parameter values, in presentation order.
	Values []int `json:"values"`
	// Metric is what to tabulate: hit, eb, missrate or cpi
	// (default hit).
	Metric string `json:"metric,omitempty"`
	// Scale is the workload iteration scale in (0, 1] (default 0.5).
	Scale float64 `json:"scale,omitempty"`
	// Parallel is the maximum number of sweep points measured
	// concurrently. 0 and 1 both mean sequential (the historical
	// behaviour, and the omitempty zero keeps service memo keys of
	// older requests unchanged). The result is identical at any
	// width: points are independent replays of one recorded trace,
	// and the output keeps presentation order.
	Parallel int `json:"parallel,omitempty"`
}

// WithDefaults fills unset optional fields. The service hashes the
// defaulted form so that an explicit default and an omitted field
// memoize to the same job.
func (s Spec) WithDefaults() Spec {
	if s.Size == "" {
		s.Size = "small"
	}
	if s.Metric == "" {
		s.Metric = "hit"
	}
	if s.Scale == 0 {
		s.Scale = 0.5
	}
	return s
}

// Validate rejects malformed specs without running anything.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if s.Workload == "" {
		return fmt.Errorf("sweeprun: workload is required")
	}
	if _, ok := ParamSet[s.Param]; !ok {
		return fmt.Errorf("sweeprun: unknown parameter %q (available: %s)", s.Param, ParamNames())
	}
	if len(s.Values) == 0 {
		return fmt.Errorf("sweeprun: at least one value is required")
	}
	seen := make(map[int]bool, len(s.Values))
	for _, v := range s.Values {
		if seen[v] {
			return fmt.Errorf("sweeprun: duplicate value %d in values; each point would measure the same configuration twice", v)
		}
		seen[v] = true
	}
	switch s.Metric {
	case "hit", "eb", "missrate", "cpi":
	default:
		return fmt.Errorf("sweeprun: unknown metric %q (hit, eb, missrate or cpi)", s.Metric)
	}
	if s.Scale <= 0 || s.Scale > 1 {
		return fmt.Errorf("sweeprun: scale %v outside (0, 1]", s.Scale)
	}
	if s.Parallel < 0 {
		return fmt.Errorf("sweeprun: parallel %d must be >= 0", s.Parallel)
	}
	if _, err := BuildWorkload(s.Workload, s.Size); err != nil {
		return err
	}
	return nil
}

// Param is one sweepable memory-system parameter: a documented mutator
// over core.Config. The sweep engine varies one Param at a time; the
// internal/search optimizer composes several into a multi-dimensional
// candidate space. Both mutate configurations through this one table,
// so a parameter added here is immediately sweepable and searchable.
type Param struct {
	// Doc is a one-line description for CLI listings.
	Doc string
	// Apply sets the parameter to v on cfg, rejecting invalid values.
	Apply func(cfg *core.Config, v int) error
}

// ParamSet maps every sweepable parameter name to its mutator.
var ParamSet = map[string]Param{
	"streams": {
		Doc: "number of stream buffers (>= 1)",
		Apply: func(cfg *core.Config, v int) error {
			if v == 0 {
				return fmt.Errorf("streams must be >= 1 in a sweep")
			}
			cfg.Streams.Streams = v
			return nil
		},
	},
	"depth": {
		Doc: "entries per stream buffer",
		Apply: func(cfg *core.Config, v int) error {
			cfg.Streams.Depth = v
			return nil
		},
	},
	"filter": {
		Doc: "unit-stride filter entries (0 disables)",
		Apply: func(cfg *core.Config, v int) error {
			cfg.UnitFilterEntries = v
			return nil
		},
	},
	"czone": {
		Doc: "czone size in word-address bits",
		Apply: func(cfg *core.Config, v int) error {
			if v < 1 {
				return fmt.Errorf("czone bits must be positive")
			}
			cfg.CzoneBits = uint(v)
			return nil
		},
	},
	"assoc": {
		Doc: "L1 associativity (both caches)",
		Apply: func(cfg *core.Config, v int) error {
			if v < 1 {
				return fmt.Errorf("associativity must be positive")
			}
			cfg.L1I.Assoc = uint(v)
			cfg.L1D.Assoc = uint(v)
			return nil
		},
	},
	"victim": {
		Doc: "victim-cache entries behind each L1 (0 disables)",
		Apply: func(cfg *core.Config, v int) error {
			cfg.VictimEntries = v
			return nil
		},
	},
	"latency": {
		Doc: "stream fill latency in cycles",
		Apply: func(cfg *core.Config, v int) error {
			if v < 0 {
				return fmt.Errorf("latency must be non-negative")
			}
			cfg.Streams.Latency = uint64(v)
			return nil
		},
	},
}

// ParamNames lists the sweepable parameters for error messages.
func ParamNames() string {
	names := make([]string, 0, len(ParamSet))
	for n := range ParamSet {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Run executes the sweep and returns the result table plus the raw
// metric values (one per spec value, for plotting). The workload is
// generated exactly once, into a compact trace store; every sweep
// point replays that recording, up to Spec.Parallel points at a time.
// Cancelling ctx aborts recording and every in-flight replay within
// one batch boundary.
//
//simlint:deterministic
func Run(ctx context.Context, s Spec) (*tab.Table, []float64, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	mutate := ParamSet[s.Param].Apply
	// Build every configuration up front so a bad value fails before
	// any simulation runs.
	cfgs := make([]core.Config, len(s.Values))
	for i, v := range s.Values {
		cfg := core.DefaultConfig()
		if err := mutate(&cfg, v); err != nil {
			return nil, nil, err
		}
		cfgs[i] = cfg
	}
	w, tr, err := Record(ctx, s.Workload, s.Size, s.Scale)
	if err != nil {
		return nil, nil, err
	}
	values := make([]float64, len(cfgs))
	if err := runPoints(ctx, s, tr, cfgs, values); err != nil {
		return nil, nil, err
	}
	t := &tab.Table{
		Title:   fmt.Sprintf("%s: %s vs %s", w.Name, s.Metric, s.Param),
		Columns: []string{s.Param, s.Metric},
	}
	for i, v := range s.Values {
		t.AddRow(strconv.Itoa(v), tab.F(values[i]))
	}
	return t, values, nil
}

// runPoints measures every sweep point into values, dispatching up to
// s.Parallel points across workers. Each point runs under its own
// child context; the first failure cancels the rest. Output order is
// deterministic regardless of width because values is indexed by
// point, not by completion.
func runPoints(ctx context.Context, s Spec, tr *trace.Store, cfgs []core.Config, values []float64) error {
	// The hit-rate family measured serially collapses into one
	// multi-config fan-out: the trace decodes once for all points, and
	// for parameters that leave the L1 untouched (streams, depth,
	// filter, czone, latency) the L1 front end simulates once with
	// every point replaying only its own stream-side events. Both this
	// path and the per-point workers below replay through the
	// window-sharded engine with identical (zero) options, so the chunk
	// plan — a function of the trace alone — and therefore the values
	// are identical at any Parallel width.
	if s.Metric != "cpi" && s.Parallel <= 1 {
		return runPointsFanOut(ctx, s, tr, cfgs, values)
	}
	workers := s.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	idx := make(chan int)
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pctx, cancel := context.WithCancel(runCtx)
				values[i], errs[i] = measurePoint(pctx, tr, cfgs[i], s.Metric)
				cancel()
				if errs[i] != nil {
					cancelAll()
				}
			}
		}()
	}
	for i := range cfgs {
		if runCtx.Err() != nil {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// runPointsFanOut measures every point in one multi-config
// window-sharded replay. Only the hit-rate family routes here: the
// cpi metric replays through the timing model, which is not a
// core.System and cannot join a fan-out.
func runPointsFanOut(ctx context.Context, s Spec, tr *trace.Store, cfgs []core.Config, values []float64) error {
	systems := make([]*core.System, len(cfgs))
	for i, cfg := range cfgs {
		sys, err := core.New(cfg)
		if err != nil {
			return err
		}
		systems[i] = sys
	}
	if err := core.ReplayStoreMultiWindowed(ctx, systems, tr, core.ShardOptions{}); err != nil {
		return err
	}
	for i, sys := range systems {
		sys.AddInstructions(tr.Instructions())
		r := sys.Results()
		switch s.Metric {
		case "hit":
			values[i] = r.StreamHitRate()
		case "eb":
			values[i] = r.ExtraBandwidth()
		default:
			values[i] = r.DataMissRate()
		}
	}
	return nil
}

// Record builds the named workload and records it once into a compact
// trace store at the given scale. The store keeps the full event order
// (accesses and positioned instruction counts), so a CPI replay
// charges cycles in exactly the sequence a live run would. Shared by
// the sweep engine and the internal/search optimizer: both replay one
// recording through many configurations.
func Record(ctx context.Context, name, sizeS string, scale float64) (*workload.Workload, *trace.Store, error) {
	w, err := BuildWorkload(name, sizeS)
	if err != nil {
		return nil, nil, err
	}
	sz := workload.SizeSmall
	if sizeS == "large" {
		sz = workload.SizeLarge
	}
	tr := trace.NewStore(int(workload.EstimateRefs(w.Name, sz, scale)))
	if err := w.RunContext(ctx, tr, scale); err != nil {
		return nil, nil, err
	}
	if err := tr.Err(); err != nil {
		return nil, nil, err
	}
	return w, tr, nil
}

// BuildWorkload resolves a benchmark name or a custom:<mix> spec.
func BuildWorkload(name, sizeS string) (*workload.Workload, error) {
	if mix, ok := strings.CutPrefix(name, "custom:"); ok {
		parts := strings.Split(mix, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("custom mix wants 3 comma-separated shares (seq,stride,random), got %q", mix)
		}
		var shares [3]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad share %q: %w", p, err)
			}
			shares[i] = v
		}
		return workload.Custom(workload.CustomParams{
			SequentialShare: shares[0],
			StrideShare:     shares[1],
			RandomShare:     shares[2],
		})
	}
	size := workload.SizeSmall
	switch sizeS {
	case "small":
	case "large":
		size = workload.SizeLarge
	default:
		return nil, fmt.Errorf("unknown size %q (small or large)", sizeS)
	}
	return workload.New(name, size)
}

// measurePoint replays the recorded trace through cfg and extracts
// the metric. The hit-rate family replays on the batched no-PC hot
// path; cpi replays the full event order through the timing model, so
// every metric is identical to a direct workload run against the
// configured system.
func measurePoint(ctx context.Context, tr *trace.Store, cfg core.Config, metric string) (float64, error) {
	switch metric {
	case "hit", "eb", "missrate":
		sys, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		if err := core.ReplayStoreWindowed(ctx, sys, tr, core.ShardOptions{}); err != nil {
			return 0, err
		}
		sys.AddInstructions(tr.Instructions())
		r := sys.Results()
		switch metric {
		case "hit":
			return r.StreamHitRate(), nil
		case "eb":
			return r.ExtraBandwidth(), nil
		default:
			return r.DataMissRate(), nil
		}
	case "cpi":
		m, err := timing.New(cfg, timing.DefaultLatencies())
		if err != nil {
			return 0, err
		}
		if err := tr.ReplayContext(ctx, m); err != nil {
			return 0, err
		}
		return m.Stats().CPI(), nil
	default:
		return 0, fmt.Errorf("unknown metric %q (hit, eb, missrate or cpi)", metric)
	}
}
