// Package sweeprun is the parameter-sweep engine shared by the sweep
// CLI and the simd job service: vary one memory-system parameter over
// a benchmark and tabulate a chosen metric. The CLI owns flag parsing
// and plotting; the service owns queueing and memoization; both hand
// a Spec to Run.
package sweeprun

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"streamsim/internal/core"
	"streamsim/internal/tab"
	"streamsim/internal/timing"
	"streamsim/internal/workload"
)

// Spec describes one sweep. The zero values of Size, Metric and Scale
// mean "small", "hit" and 0.5 (the CLI's historical defaults).
type Spec struct {
	// Workload is a benchmark name from the paper's Table 1, or a
	// "custom:<seq>,<stride>,<random>" mix.
	Workload string `json:"workload"`
	// Size is the input size: "small" (default) or "large".
	Size string `json:"size,omitempty"`
	// Param is the parameter to vary (see ParamNames).
	Param string `json:"param"`
	// Values are the parameter values, in presentation order.
	Values []int `json:"values"`
	// Metric is what to tabulate: hit, eb, missrate or cpi
	// (default hit).
	Metric string `json:"metric,omitempty"`
	// Scale is the workload iteration scale in (0, 1] (default 0.5).
	Scale float64 `json:"scale,omitempty"`
}

// WithDefaults fills unset optional fields. The service hashes the
// defaulted form so that an explicit default and an omitted field
// memoize to the same job.
func (s Spec) WithDefaults() Spec {
	if s.Size == "" {
		s.Size = "small"
	}
	if s.Metric == "" {
		s.Metric = "hit"
	}
	if s.Scale == 0 {
		s.Scale = 0.5
	}
	return s
}

// Validate rejects malformed specs without running anything.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if s.Workload == "" {
		return fmt.Errorf("sweeprun: workload is required")
	}
	if _, ok := params[s.Param]; !ok {
		return fmt.Errorf("sweeprun: unknown parameter %q (available: %s)", s.Param, ParamNames())
	}
	if len(s.Values) == 0 {
		return fmt.Errorf("sweeprun: at least one value is required")
	}
	switch s.Metric {
	case "hit", "eb", "missrate", "cpi":
	default:
		return fmt.Errorf("sweeprun: unknown metric %q (hit, eb, missrate or cpi)", s.Metric)
	}
	if s.Scale <= 0 || s.Scale > 1 {
		return fmt.Errorf("sweeprun: scale %v outside (0, 1]", s.Scale)
	}
	if _, err := buildWorkload(s.Workload, s.Size); err != nil {
		return err
	}
	return nil
}

// params maps a parameter name to a config mutator.
var params = map[string]func(cfg *core.Config, v int) error{
	"streams": func(cfg *core.Config, v int) error {
		if v == 0 {
			return fmt.Errorf("streams must be >= 1 in a sweep")
		}
		cfg.Streams.Streams = v
		return nil
	},
	"depth": func(cfg *core.Config, v int) error {
		cfg.Streams.Depth = v
		return nil
	},
	"filter": func(cfg *core.Config, v int) error {
		cfg.UnitFilterEntries = v
		return nil
	},
	"czone": func(cfg *core.Config, v int) error {
		if v < 1 {
			return fmt.Errorf("czone bits must be positive")
		}
		cfg.CzoneBits = uint(v)
		return nil
	},
	"assoc": func(cfg *core.Config, v int) error {
		if v < 1 {
			return fmt.Errorf("associativity must be positive")
		}
		cfg.L1I.Assoc = uint(v)
		cfg.L1D.Assoc = uint(v)
		return nil
	},
	"victim": func(cfg *core.Config, v int) error {
		cfg.VictimEntries = v
		return nil
	},
	"latency": func(cfg *core.Config, v int) error {
		if v < 0 {
			return fmt.Errorf("latency must be non-negative")
		}
		cfg.Streams.Latency = uint64(v)
		return nil
	},
}

// ParamNames lists the sweepable parameters for error messages.
func ParamNames() string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Run executes the sweep and returns the result table plus the raw
// metric values (one per spec value, for plotting). Cancelling ctx
// aborts the in-flight simulation within one batch boundary.
func Run(ctx context.Context, s Spec) (*tab.Table, []float64, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	mutate := params[s.Param]
	w, err := buildWorkload(s.Workload, s.Size)
	if err != nil {
		return nil, nil, err
	}
	t := &tab.Table{
		Title:   fmt.Sprintf("%s: %s vs %s", w.Name, s.Metric, s.Param),
		Columns: []string{s.Param, s.Metric},
	}
	values := make([]float64, 0, len(s.Values))
	for _, v := range s.Values {
		cfg := core.DefaultConfig()
		if err := mutate(&cfg, v); err != nil {
			return nil, nil, err
		}
		m, err := measure(ctx, w, cfg, s.Metric, s.Scale)
		if err != nil {
			return nil, nil, err
		}
		t.AddRow(strconv.Itoa(v), tab.F(m))
		values = append(values, m)
	}
	return t, values, nil
}

// buildWorkload resolves a benchmark name or a custom:<mix> spec.
func buildWorkload(name, sizeS string) (*workload.Workload, error) {
	if mix, ok := strings.CutPrefix(name, "custom:"); ok {
		parts := strings.Split(mix, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("custom mix wants 3 comma-separated shares (seq,stride,random), got %q", mix)
		}
		var shares [3]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad share %q: %w", p, err)
			}
			shares[i] = v
		}
		return workload.Custom(workload.CustomParams{
			SequentialShare: shares[0],
			StrideShare:     shares[1],
			RandomShare:     shares[2],
		})
	}
	size := workload.SizeSmall
	switch sizeS {
	case "small":
	case "large":
		size = workload.SizeLarge
	default:
		return nil, fmt.Errorf("unknown size %q (small or large)", sizeS)
	}
	return workload.New(name, size)
}

// measure runs the workload through cfg and extracts the metric.
func measure(ctx context.Context, w *workload.Workload, cfg core.Config, metric string, scale float64) (float64, error) {
	switch metric {
	case "hit", "eb", "missrate":
		sys, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		if err := w.RunContext(ctx, sys, scale); err != nil {
			return 0, err
		}
		r := sys.Results()
		switch metric {
		case "hit":
			return r.StreamHitRate(), nil
		case "eb":
			return r.ExtraBandwidth(), nil
		default:
			return r.DataMissRate(), nil
		}
	case "cpi":
		m, err := timing.New(cfg, timing.DefaultLatencies())
		if err != nil {
			return 0, err
		}
		if err := w.RunContext(ctx, m, scale); err != nil {
			return 0, err
		}
		return m.Stats().CPI(), nil
	default:
		return 0, fmt.Errorf("unknown metric %q (hit, eb, missrate or cpi)", metric)
	}
}
