// Package memctl models an interleaved main-memory system: B banks,
// block-interleaved, each bank busy for a fixed recovery time after
// serving a block. The paper assumes "systems with sufficient main
// memory bandwidth" (its example: the Cray T3D's 600 MB/s); this model
// supplies the missing failure mode — power-of-two strides, exactly
// what fftpde and trfd prefetch in, land on a fraction of the banks
// and serialize there, while unit-stride streams sweep all banks.
//
// The model answers queueing questions only (when can this transfer
// start; how long did requests wait); data never moves.
package memctl

import (
	"fmt"

	"streamsim/internal/mem"
)

// Config sizes the memory system.
type Config struct {
	// Banks is the number of interleaved banks (power of two; the
	// block address modulo Banks selects the bank).
	Banks int
	// BusyCycles is a bank's recovery time per block access.
	BusyCycles uint64
}

// DefaultConfig is a 16-bank system with 20-cycle bank recovery — a
// 600 MB/s-class memory at a 100 MHz processor clock when sweeping all
// banks.
func DefaultConfig() Config {
	return Config{Banks: 16, BusyCycles: 20}
}

// Stats is the queueing ledger.
type Stats struct {
	// Requests counts block transfers served.
	Requests uint64
	// WaitCycles is the total time requests spent queued on busy banks.
	WaitCycles uint64
	// Conflicts counts requests that had to wait at all.
	Conflicts uint64
}

// AvgWait returns mean cycles a request waited.
func (s Stats) AvgWait() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.WaitCycles) / float64(s.Requests)
}

// ConflictRate returns the fraction of requests that waited.
func (s Stats) ConflictRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Conflicts) / float64(s.Requests)
}

// Banks is a running banked-memory model. Not safe for concurrent use.
type Banks struct {
	cfg    Config
	freeAt []uint64
	stats  Stats
}

// New validates cfg and builds the model.
func New(cfg Config) (*Banks, error) {
	if cfg.Banks < 1 || cfg.Banks&(cfg.Banks-1) != 0 {
		return nil, fmt.Errorf("memctl: bank count %d not a positive power of two", cfg.Banks)
	}
	if cfg.BusyCycles == 0 {
		return nil, fmt.Errorf("memctl: bank recovery time must be positive")
	}
	return &Banks{cfg: cfg, freeAt: make([]uint64, cfg.Banks)}, nil
}

// Config returns the configuration.
func (b *Banks) Config() Config { return b.cfg }

// Stats returns a copy of the queueing ledger.
func (b *Banks) Stats() Stats { return b.stats }

// Access requests the block at time now and returns the cycle the
// transfer starts (>= now; equal when the bank was idle). The bank is
// then busy for BusyCycles.
func (b *Banks) Access(blk mem.Addr, now uint64) (start uint64) {
	bank := int(blk) & (b.cfg.Banks - 1)
	b.stats.Requests++
	start = now
	if b.freeAt[bank] > now {
		start = b.freeAt[bank]
		b.stats.WaitCycles += start - now
		b.stats.Conflicts++
	}
	b.freeAt[bank] = start + b.cfg.BusyCycles
	return start
}

// BanksTouched reports how many distinct banks a block-stride walk of
// n requests touches: gcd arithmetic made observable for tests and
// documentation. A stride sharing a large power of two with the bank
// count concentrates on few banks.
func BanksTouched(strideBlocks int64, banks int) int {
	if strideBlocks < 0 {
		strideBlocks = -strideBlocks
	}
	if strideBlocks == 0 {
		return 1
	}
	g := gcd(strideBlocks, int64(banks))
	return int(int64(banks) / g)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
