package memctl

import (
	"testing"
	"testing/quick"

	"streamsim/internal/mem"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Banks: 0, BusyCycles: 10}); err == nil {
		t.Error("zero banks should be rejected")
	}
	if _, err := New(Config{Banks: 12, BusyCycles: 10}); err == nil {
		t.Error("non-power-of-two banks should be rejected")
	}
	if _, err := New(Config{Banks: 8, BusyCycles: 0}); err == nil {
		t.Error("zero recovery should be rejected")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestIdleBankStartsImmediately(t *testing.T) {
	b, _ := New(Config{Banks: 4, BusyCycles: 10})
	if start := b.Access(0, 100); start != 100 {
		t.Errorf("idle bank start = %d, want 100", start)
	}
	if s := b.Stats(); s.Conflicts != 0 || s.WaitCycles != 0 {
		t.Errorf("idle access recorded a conflict: %+v", s)
	}
}

func TestSameBankSerializes(t *testing.T) {
	b, _ := New(Config{Banks: 4, BusyCycles: 10})
	b.Access(0, 0)
	// Block 4 maps to the same bank (4 % 4 == 0).
	start := b.Access(4, 1)
	if start != 10 {
		t.Errorf("conflicting access start = %d, want 10", start)
	}
	s := b.Stats()
	if s.Conflicts != 1 || s.WaitCycles != 9 {
		t.Errorf("conflict ledger = %+v, want 1 conflict, 9 wait cycles", s)
	}
}

func TestDifferentBanksParallel(t *testing.T) {
	b, _ := New(Config{Banks: 4, BusyCycles: 10})
	for blk := mem.Addr(0); blk < 4; blk++ {
		if start := b.Access(blk, 0); start != 0 {
			t.Errorf("bank %d busy at time 0", blk)
		}
	}
}

func TestUnitStrideSweepsAllBanks(t *testing.T) {
	// A unit-stride block walk at a request rate matching aggregate
	// bandwidth never waits: each bank recovers before its next turn.
	b, _ := New(Config{Banks: 8, BusyCycles: 8})
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		b.Access(mem.Addr(i), now)
		now += 1 // 8 banks x 8-cycle recovery: capacity 1 block/cycle
	}
	if got := b.Stats().ConflictRate(); got != 0 {
		t.Errorf("unit stride conflict rate = %.2f, want 0", got)
	}
}

func TestPowerOfTwoStrideCamps(t *testing.T) {
	// Stride 8 over 8 banks: every request lands on bank 0 and
	// serializes completely.
	b, _ := New(Config{Banks: 8, BusyCycles: 8})
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		b.Access(mem.Addr(i*8), now)
		now += 1
	}
	s := b.Stats()
	if s.ConflictRate() < 0.95 {
		t.Errorf("bank-camping conflict rate = %.2f, want ~1", s.ConflictRate())
	}
	if s.AvgWait() < 5 {
		t.Errorf("bank-camping average wait = %.1f, want large", s.AvgWait())
	}
}

func TestBanksTouched(t *testing.T) {
	cases := []struct {
		stride int64
		banks  int
		want   int
	}{
		{1, 16, 16}, // unit stride: all banks
		{16, 16, 1}, // stride = banks: one bank
		{8, 16, 2},  // gcd 8: two banks
		{3, 16, 16}, // odd stride: all banks
		{-4, 16, 4}, // negative stride: same coverage
		{0, 16, 1},  // repeated block: one bank
		{6, 16, 8},  // gcd 2
	}
	for _, c := range cases {
		if got := BanksTouched(c.stride, c.banks); got != c.want {
			t.Errorf("BanksTouched(%d, %d) = %d, want %d", c.stride, c.banks, got, c.want)
		}
	}
}

// Property: odd strides always use every bank; the ledger always
// balances (conflicts <= requests, wait only with conflicts).
func TestBankProperties(t *testing.T) {
	f := func(strideRaw uint8, reqs uint8) bool {
		stride := int64(strideRaw) | 1 // odd
		if BanksTouched(stride, 16) != 16 {
			return false
		}
		b, err := New(Config{Banks: 16, BusyCycles: 4})
		if err != nil {
			return false
		}
		for i := 0; i < int(reqs); i++ {
			b.Access(mem.Addr(int64(i)*stride), uint64(i))
		}
		s := b.Stats()
		if s.Conflicts > s.Requests {
			return false
		}
		return (s.WaitCycles == 0) == (s.Conflicts == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
