package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultPricesValid(t *testing.T) {
	if err := DefaultPrices().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostRejectsBadInput(t *testing.T) {
	p := DefaultPrices()
	if _, err := p.Cost(Node{BandwidthMBps: 0}); err == nil {
		t.Error("zero bandwidth should be rejected")
	}
	bad := p
	bad.SRAMPerKB = 0
	if _, err := bad.Cost(Node{BandwidthMBps: 100}); err == nil {
		t.Error("non-positive prices should be rejected")
	}
}

func TestL2DominatesNodeCost(t *testing.T) {
	p := DefaultPrices()
	l2Node := Node{L2KB: 1 << 10, BandwidthMBps: 300} // 1 MB L2
	streamNode := Node{Streams: 10, Filtered: true, BandwidthMBps: 300}
	cl2, err := p.Cost(l2Node)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := p.Cost(streamNode)
	if err != nil {
		t.Fatal(err)
	}
	if cs >= cl2 {
		t.Fatalf("stream node ($%.0f) should be far cheaper than the L2 node ($%.0f)", cs, cl2)
	}
	// The paper's point: the gap is the price of a megabyte of SRAM.
	if cl2-cs < 0.8*float64(l2Node.L2KB)*p.SRAMPerKB {
		t.Errorf("cost gap $%.0f too small vs SRAM line item $%.0f",
			cl2-cs, float64(l2Node.L2KB)*p.SRAMPerKB)
	}
}

func TestEqualCostBandwidth(t *testing.T) {
	p := DefaultPrices()
	ref := Node{L2KB: 1 << 10, BandwidthMBps: 300}
	sn, err := p.EqualCostBandwidth(ref, Node{Streams: 10, Filtered: true})
	if err != nil {
		t.Fatal(err)
	}
	if sn.BandwidthMBps <= ref.BandwidthMBps {
		t.Fatalf("stream node bought only %.0f MB/s, reference has 300", sn.BandwidthMBps)
	}
	// Both nodes must now cost the same (within float slack).
	c1, _ := p.Cost(ref)
	c2, _ := p.Cost(sn)
	if math.Abs(c1-c2) > 1 {
		t.Errorf("equal-cost violated: $%.2f vs $%.2f", c1, c2)
	}
}

func TestEqualCostImpossible(t *testing.T) {
	p := DefaultPrices()
	// Reference cheaper than the stream node's fixed parts.
	ref := Node{BandwidthMBps: 1}
	if _, err := p.EqualCostBandwidth(ref, Node{Streams: 1000000}); err == nil {
		t.Error("unaffordable stream node should be rejected")
	}
}

func TestBusBlockCycles(t *testing.T) {
	// 600 MB/s at 100 MHz moving 64-byte blocks: 64B / 600MBps =
	// 106.7ns = 10.67 cycles -> 11.
	n := Node{BandwidthMBps: 600}
	c, err := BusBlockCycles(n, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c != 11 {
		t.Errorf("BusBlockCycles = %d, want 11", c)
	}
	if _, err := BusBlockCycles(Node{}, 100, 64); err == nil {
		t.Error("zero bandwidth should be rejected")
	}
	if _, err := BusBlockCycles(n, 0, 64); err == nil {
		t.Error("zero clock should be rejected")
	}
}

func TestBusBlockCyclesFloor(t *testing.T) {
	// Absurdly high bandwidth still occupies at least one cycle.
	c, err := BusBlockCycles(Node{BandwidthMBps: 1e9}, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("BusBlockCycles floor = %d, want 1", c)
	}
}

// TestFrontParetoDominance is the Pareto-dominance property over a
// small config grid: price every (streams, filtered, L2KB) node at a
// fixed bandwidth, attach a synthetic concave hit-rate metric, and
// check the front invariants — no returned point is dominated, every
// excluded point is dominated by (or exactly duplicates, at a higher
// index) a returned one, the front is sorted by ascending cost, and
// two calls return identical slices.
func TestFrontParetoDominance(t *testing.T) {
	p := DefaultPrices()
	var pts []Point
	for _, streams := range []int{0, 2, 4, 8, 16} {
		for _, filtered := range []bool{false, true} {
			for _, l2 := range []uint{0, 256, 1024} {
				n := Node{L2KB: l2, Streams: streams, Filtered: filtered, BandwidthMBps: 300}
				c, err := p.Cost(n)
				if err != nil {
					t.Fatal(err)
				}
				// Synthetic but plausible metric: hit rate grows
				// concavely with streams and L2 capacity, filters add a
				// point — enough structure that the front is neither
				// everything nor one point.
				metric := 40*(1-1/float64(streams+1)) + 30*(1-1/(float64(l2)/256+1))
				if filtered {
					metric++
				}
				pts = append(pts, Point{Metric: metric, Cost: c})
			}
		}
	}

	front := Front(pts)
	if len(front) == 0 || len(front) == len(pts) {
		t.Fatalf("degenerate front of %d points over %d configs", len(front), len(pts))
	}
	onFront := make(map[int]bool, len(front))
	for k, i := range front {
		onFront[i] = true
		if k > 0 && pts[front[k-1]].Cost > pts[i].Cost {
			t.Errorf("front not sorted by cost: %v before %v", pts[front[k-1]], pts[i])
		}
	}
	for _, i := range front {
		for j := range pts {
			if j != i && pts[j].Dominates(pts[i]) {
				t.Errorf("front point %d %v is dominated by %d %v", i, pts[i], j, pts[j])
			}
		}
	}
	for j := range pts {
		if onFront[j] {
			continue
		}
		justified := false
		for _, i := range front {
			if pts[i].Dominates(pts[j]) || (pts[i] == pts[j] && i < j) {
				justified = true
				break
			}
		}
		if !justified {
			t.Errorf("excluded point %d %v is neither dominated nor a duplicate of a front point", j, pts[j])
		}
	}

	again := Front(pts)
	if len(again) != len(front) {
		t.Fatalf("second call returned %d points, first %d", len(again), len(front))
	}
	for k := range front {
		if front[k] != again[k] {
			t.Fatalf("front not deterministic: %v vs %v", front, again)
		}
	}
}

// TestFrontTies pins deterministic tie handling explicitly: exact
// (metric, cost) duplicates keep the lowest index only.
func TestFrontTies(t *testing.T) {
	pts := []Point{
		{Metric: 10, Cost: 5},
		{Metric: 10, Cost: 5}, // duplicate of 0 — dropped
		{Metric: 12, Cost: 5}, // same cost, better metric — replaces the tier
		{Metric: 12, Cost: 9}, // dominated: same metric, higher cost
		{Metric: 20, Cost: 9},
	}
	got := Front(pts)
	want := []int{2, 4}
	if len(got) != len(want) {
		t.Fatalf("Front = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Front = %v, want %v", got, want)
		}
	}
	if Front(nil) != nil {
		t.Error("Front(nil) should be nil")
	}
}

// Property: more bandwidth never makes a block transfer slower, and
// cost is monotone in every component.
func TestMonotonicity(t *testing.T) {
	p := DefaultPrices()
	f := func(l2Raw uint16, streamsRaw uint8, bwRaw uint16) bool {
		l2 := uint(l2Raw)
		streams := int(streamsRaw)
		bw := float64(bwRaw) + 1
		base, err := p.Cost(Node{L2KB: l2, Streams: streams, BandwidthMBps: bw})
		if err != nil {
			return false
		}
		bigger, err := p.Cost(Node{L2KB: l2 + 64, Streams: streams + 1, Filtered: true, BandwidthMBps: bw + 100})
		if err != nil {
			return false
		}
		if bigger <= base {
			return false
		}
		c1, err := BusBlockCycles(Node{BandwidthMBps: bw}, 100, 64)
		if err != nil {
			return false
		}
		c2, err := BusBlockCycles(Node{BandwidthMBps: bw * 2}, 100, 64)
		if err != nil {
			return false
		}
		return c2 <= c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
