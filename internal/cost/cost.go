// Package cost models the paper's economic argument (its introduction
// and conclusions): a large secondary cache is mostly SRAM dollars,
// stream buffers are almost free, and "the cost savings of stream
// buffers over large caches can be applied to increase the main memory
// bandwidth, resulting in a system with better overall performance."
//
// The model prices a compute node from three memory-system line items —
// secondary-cache SRAM, stream-buffer logic, and main-memory bandwidth
// (interleaved banks / wider buses) — and answers the paper's question
// quantitatively: at equal node cost, which configuration runs faster?
// The per-processor arithmetic is what the paper multiplies by 1K
// processors when it argues about large-scale parallel machines.
package cost

import (
	"fmt"
	"math"
	"sort"
)

// Prices are circa-1994 list prices, normalized so only ratios matter.
type Prices struct {
	// SRAMPerKB prices secondary-cache SRAM (dollars per KB, including
	// tags and controller amortization).
	SRAMPerKB float64
	// PerStream prices one stream buffer: a comparator, an adder and a
	// couple of cache blocks of SRAM.
	PerStream float64
	// FilterLogic prices the filter hardware (history buffers + FSMs);
	// charged once when any filter is present.
	FilterLogic float64
	// PerMBps prices sustained main-memory bandwidth (more banks,
	// wider buses) per MB/s.
	PerMBps float64
	// Base is everything else on the node (CPU, DRAM capacity, board).
	Base float64
}

// DefaultPrices reflects early-90s ratios: fast L2-grade SRAM around
// $8/KB, so a 1 MB cache is a multi-thousand-dollar line item per
// processor (the paper: "gigabytes of SRAM are required ... an
// exorbitant cost" at 1K nodes); a stream buffer is a few latches and
// an adder; sustained memory bandwidth comes from interleaved banks
// and wider buses at roughly $8 per MB/s (a T3D-class 600 MB/s memory
// system as a few thousand dollars of the node).
func DefaultPrices() Prices {
	return Prices{
		SRAMPerKB:   8,
		PerStream:   15,
		FilterLogic: 40,
		PerMBps:     8,
		Base:        5000,
	}
}

// validate rejects non-positive prices.
func (p Prices) validate() error {
	if p.SRAMPerKB <= 0 || p.PerStream <= 0 || p.PerMBps <= 0 || p.Base < 0 || p.FilterLogic < 0 {
		return fmt.Errorf("cost: prices must be positive: %+v", p)
	}
	return nil
}

// Node describes one processor's memory system for pricing.
type Node struct {
	// L2KB is the secondary cache size in KB (0 = none).
	L2KB uint
	// Streams is the number of stream buffers (0 = none).
	Streams int
	// Filtered marks the presence of the allocation filters.
	Filtered bool
	// BandwidthMBps is the sustained main-memory bandwidth.
	BandwidthMBps float64
}

// Cost prices a node.
func (p Prices) Cost(n Node) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if n.BandwidthMBps <= 0 {
		return 0, fmt.Errorf("cost: node needs positive bandwidth, got %v", n.BandwidthMBps)
	}
	c := p.Base + float64(n.L2KB)*p.SRAMPerKB + float64(n.Streams)*p.PerStream +
		n.BandwidthMBps*p.PerMBps
	if n.Filtered {
		c += p.FilterLogic
	}
	return c, nil
}

// EqualCostBandwidth answers the paper's trade: given a reference node
// (typically one with a big L2), how much memory bandwidth can a
// stream-based node buy with the savings so both nodes cost the same?
// It returns the stream node with its bandwidth set accordingly.
func (p Prices) EqualCostBandwidth(reference, streamNode Node) (Node, error) {
	refCost, err := p.Cost(reference)
	if err != nil {
		return Node{}, err
	}
	// Price the stream node at (near-)zero bandwidth, then spend the
	// difference on bandwidth.
	probe := streamNode
	probe.BandwidthMBps = math.SmallestNonzeroFloat64
	baseCost, err := p.Cost(probe)
	if err != nil {
		return Node{}, err
	}
	budget := refCost - baseCost
	if budget <= 0 {
		return Node{}, fmt.Errorf("cost: stream node base cost %.0f already exceeds reference %.0f", baseCost, refCost)
	}
	streamNode.BandwidthMBps = budget / p.PerMBps
	return streamNode, nil
}

// Point is one (performance, price) outcome on the paper's
// cost-effectiveness plane: Metric is the figure of merit (higher is
// better — callers minimizing a metric negate it first) and Cost the
// node price.
type Point struct {
	// Metric is the performance axis, higher better.
	Metric float64
	// Cost is the price axis, lower better.
	Cost float64
}

// Dominates reports whether p is at least as good as q on both axes
// and strictly better on at least one.
func (p Point) Dominates(q Point) bool {
	return p.Metric >= q.Metric && p.Cost <= q.Cost &&
		(p.Metric > q.Metric || p.Cost < q.Cost)
}

// Front returns the indices of the Pareto-optimal points — those no
// other point dominates — sorted by ascending cost, then descending
// metric, then ascending index. The result is deterministic: exact
// (metric, cost) duplicates keep only the lowest-index point, so two
// calls over the same slice (and any evaluation order that produced
// it) return identical fronts.
func Front(pts []Point) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		if pa.Metric != pb.Metric {
			return pa.Metric > pb.Metric
		}
		return order[a] < order[b]
	})
	var front []int
	best := math.Inf(-1) // best metric seen at any cheaper-or-equal cost
	for _, i := range order {
		p := pts[i]
		// Walking in cost order, a point joins the front iff it strictly
		// improves on every cheaper point's metric. Within one cost tier
		// the sort puts the best metric (lowest index on exact ties)
		// first, so equal-metric duplicates are skipped here.
		if p.Metric > best {
			front = append(front, i)
			best = p.Metric
		}
	}
	return front
}

// BusBlockCycles converts a node's bandwidth into the timing model's
// per-block bus occupancy: the cycles a blockBytes transfer holds the
// memory system at the given clock.
func BusBlockCycles(n Node, clockMHz float64, blockBytes uint) (uint64, error) {
	if clockMHz <= 0 || blockBytes == 0 {
		return 0, fmt.Errorf("cost: need positive clock and block size")
	}
	if n.BandwidthMBps <= 0 {
		return 0, fmt.Errorf("cost: node needs positive bandwidth")
	}
	seconds := float64(blockBytes) / (n.BandwidthMBps * 1e6)
	cycles := seconds * clockMHz * 1e6
	c := uint64(math.Ceil(cycles))
	if c < 1 {
		c = 1
	}
	return c, nil
}
