// Package profiling backs the -cpuprofile/-memprofile flags of the
// command-line tools, so full-scale runs can be fed straight to
// `go tool pprof` without writing a throwaway benchmark first.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is nonempty and returns a
// stop function that ends the CPU profile and, when memPath is
// nonempty, writes a heap profile of the live objects at that point.
// With both paths empty Start is a no-op and stop returns nil, so
// callers can defer unconditionally:
//
//	stop, err := profiling.Start(*cpuprofile, *memprofile)
//	if err != nil { return err }
//	defer func() { err = errors.Join(err, stop()) }()
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			// An explicit GC makes the heap profile reflect live
			// retained memory (the trace stores), not garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
