package statecov_test

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
	"streamsim/internal/analysis/statecov"
)

func TestStatecov(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), statecov.Analyzer, "stc")
}
