// Package statecov enforces snapshot completeness at compile time: a
// handler whose doc comment carries //simlint:statefull <class> must
// read or write every required field of its //simlint:state struct,
// transitively through static callees. The runtime equivalence tests
// catch a forgotten field only on the configs they happen to exercise;
// this analyzer names the field the moment the handler stops covering
// it — adding a field to System without teaching Fork/Merge/Checkpoint
// about it becomes a build failure, not a silent divergence between
// sharded and sequential replay.
//
// Which fields are required depends on the handler class:
//
//   - fork, clone, checkpoint, restore (the deep-copy classes): every
//     field of the subject struct. A snapshot that drops a field
//     resumes from the wrong state.
//   - adopt, reset: only fields that are themselves //simlint:state
//     structs (statistics ledgers, component pointers) — or every
//     field when the subject is a counters-kind struct. These classes
//     move statistics, not architectural state.
//   - merge: the adopt/reset set, plus recursive expansion through
//     value-embedded state structs: a merge that combines a nested
//     counter block must combine every counter in it. Pointer-typed
//     components are not expanded — their own AddStats is a merge
//     root in its own right, so completeness holds by induction.
//
// //simlint:statederived <field> [class ...] on the struct exempts a
// field that is recomputed on read or deliberately owned elsewhere.
//
// Coverage facts come from the shared call graph (see
// callgraph.Func.StateUses for what counts as a use); the closure
// walks every static callee, so a handler may delegate per-component
// work (c.l1i.AddStats(...)) and still get credit for the fields the
// delegate touches.
package statecov

import (
	"fmt"
	"go/ast"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:            "statecov",
	Doc:             "//simlint:statefull handlers must cover every required field of their //simlint:state struct",
	PackagePrefixes: []string{"streamsim/internal"},
	Facts:           callgraph.Facts,
	FactsKey:        callgraph.FactsKey,
	Run:             run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.From(pass)
	if g == nil {
		return fmt.Errorf("statecov requires call-graph facts")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn := g.Decls[fd]; fn != nil && fn.StatefullClass != "" {
				checkHandler(pass, g, fn)
			}
		}
	}
	return nil
}

func checkHandler(pass *analysis.Pass, g *callgraph.Graph, fn *callgraph.Func) {
	class := fn.StatefullClass
	if !callgraph.StatefullClasses[class] {
		// Unknown class: the directives analyzer owns the spelling
		// diagnostic; without a class there is no required set.
		return
	}
	subject := g.StateSubject(fn)
	if subject == nil {
		pass.Reportf(fn.Decl.Name.Pos(),
			"%s is //simlint:statefull %s but neither its receiver nor any parameter is a //simlint:state struct",
			fn.Short(), class)
		return
	}
	uses := closureUses(fn)
	var missing []string
	visited := map[string]bool{subject.Key: true}
	checkStruct(g, subject, class, subject.Short(), uses, visited, &missing)
	for _, path := range missing {
		pass.Reportf(fn.Decl.Name.Pos(),
			"%s is //simlint:statefull %s but never reads or writes %s, not even through its static callees; handle the field or exempt it with //simlint:statederived",
			fn.Short(), class, path)
	}
}

// closureUses unions StateUses over everything statically reachable
// from root. Unlike hotpath, the walk does not stop at other statefull
// handlers: delegation (Fork calling Clone, Merge calling AddStats) is
// exactly how coverage is earned.
func closureUses(root *callgraph.Func) map[string]map[string]bool {
	uses := map[string]map[string]bool{}
	seen := map[*callgraph.Func]bool{root: true}
	queue := []*callgraph.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for key, fields := range fn.StateUses {
			dst := uses[key]
			if dst == nil {
				dst = map[string]bool{}
				uses[key] = dst
			}
			for f := range fields {
				dst[f] = true
			}
		}
		for _, call := range fn.Calls {
			if !seen[call.Callee] {
				seen[call.Callee] = true
				queue = append(queue, call.Callee)
			}
		}
	}
	return uses
}

// checkStruct appends the dotted path of every required-but-uncovered
// field of ss to missing, in declaration order. visited guards against
// recursive value embeddings (impossible in valid Go, cheap to guard).
func checkStruct(g *callgraph.Graph, ss *callgraph.StateStruct, class, prefix string, uses map[string]map[string]bool, visited map[string]bool, missing *[]string) {
	covered := uses[ss.Key]
	if covered["*"] {
		// A whole-value use (*p copy, empty literal) covers every
		// field and the entire nested subtree at once.
		return
	}
	for _, f := range ss.Fields {
		if ss.DerivedFor(f.Name, class) {
			continue
		}
		if !requiredField(g, ss, class, f) {
			continue
		}
		path := prefix + "." + f.Name
		if !covered[f.Name] {
			*missing = append(*missing, path)
			continue
		}
		// Merge must account for every counter inside a value-embedded
		// state struct, not just touch the field that holds it.
		if class == "merge" {
			if ns := g.ValueStateOf(f.Type); ns != nil && !visited[ns.Key] {
				visited[ns.Key] = true
				checkStruct(g, ns, class, path, uses, visited, missing)
			}
		}
	}
}

// requiredField decides whether class must cover field f of ss: the
// deep-copy classes need everything, the statistics classes need the
// state-typed fields — all fields when ss itself is a counters struct.
func requiredField(g *callgraph.Graph, ss *callgraph.StateStruct, class string, f callgraph.StateField) bool {
	if callgraph.FullClass(class) {
		return true
	}
	if ss.Counters {
		return true
	}
	return g.StateOf(f.Type) != nil
}
