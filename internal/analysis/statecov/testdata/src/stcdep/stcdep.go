// Package stcdep supplies a state struct and helpers from a sibling
// package, so the stc fixture can prove statecov's closure follows
// coverage across package boundaries via the shared call-graph facts.
package stcdep

// Tally is a counter block owned by another package.
//
//simlint:state counters
type Tally struct {
	Ops  uint64
	Errs uint64
}

// AddTo folds o into t, covering both fields.
func AddTo(t *Tally, o Tally) {
	t.Ops += o.Ops
	t.Errs += o.Errs
}

// AddOps covers only Ops, leaving Errs for the caller to forget.
func AddOps(t *Tally, o Tally) {
	t.Ops += o.Ops
}
