// Package stc exercises the statecov analyzer: //simlint:statefull
// handlers must cover every required field of their //simlint:state
// struct, transitively through static callees, with class-dependent
// required sets and //simlint:statederived exemptions.
package stc

import "stcdep"

// Bandwidth is a counter block embedded by value in System.
//
//simlint:state counters
type Bandwidth struct {
	Fetches uint64
	Fills   uint64
}

// System mirrors the simulator's top-level state: config, a pointer
// component, an embedded counter block, architectural scalars, and a
// derived scratch field no snapshot needs to carry.
//
//simlint:state
//simlint:statederived scratch
type System struct {
	cfg     int
	comp    *Comp
	bw      Bandwidth
	ticks   uint64
	scratch []uint64
}

// Comp mirrors a cache-like component with tags and a stats ledger.
//
//simlint:state
type Comp struct {
	tags  []uint64
	stats CompStats
}

//simlint:state counters
type CompStats struct {
	Hits   uint64
	Misses uint64
}

// Checkpoint wraps a snapshotted System.
//
//simlint:state
type Checkpoint struct {
	sys *System
}

// ---- deep-copy classes: every field required ----

// Fork covers everything: cfg/comp in the literal, ticks explicitly,
// bw through ResetStats's empty literal, scratch exempt.
//
//simlint:statefull fork
func (s *System) Fork() *System {
	n := &System{cfg: s.cfg, comp: s.comp.Clone()}
	n.ticks = 0
	n.ResetStats()
	return n
}

// ForkDrops forgets the embedded counter block.
//
//simlint:statefull fork
func (s *System) ForkDrops() *System { // want `\(\*stc\.System\)\.ForkDrops is //simlint:statefull fork but never reads or writes stc\.System\.bw, not even through its static callees; handle the field or exempt it with //simlint:statederived`
	n := &System{cfg: s.cfg, comp: s.comp.Clone()}
	n.ticks = 0
	return n
}

// Clone's whole-value copy covers every field at once.
//
//simlint:statefull clone
func (c *Comp) Clone() *Comp {
	n := *c
	n.tags = append([]uint64(nil), c.tags...)
	return &n
}

// CloneDrops rebuilds through a partial composite literal: the listed
// field is covered, the missing one is a silent zero.
//
//simlint:statefull clone
func (c *Comp) CloneDrops() *Comp { // want `\(\*stc\.Comp\)\.CloneDrops is //simlint:statefull clone but never reads or writes stc\.Comp\.stats, not even through its static callees`
	return &Comp{tags: append([]uint64(nil), c.tags...)}
}

// Snapshot covers System through its Fork/Merge delegates plus the
// explicit scalar copies, and Checkpoint through the literal.
//
//simlint:statefull checkpoint
func (s *System) Snapshot() *Checkpoint {
	return &Checkpoint{sys: snapshot(s)}
}

func snapshot(s *System) *System {
	n := s.Fork()
	n.Merge(s)
	n.ticks = s.ticks
	return n
}

// SnapshotDrops never carries the architectural tick count: coverage
// is a closure property, and nothing it calls touches ticks either
// (delegating to Fork would earn the field through Fork's zeroing
// write, which is why the real snapshotSystem passes).
//
//simlint:statefull checkpoint
func (s *System) SnapshotDrops() *Checkpoint { // want `\(\*stc\.System\)\.SnapshotDrops is //simlint:statefull checkpoint but never reads or writes stc\.System\.ticks, not even through its static callees`
	n := &System{cfg: s.cfg, comp: s.comp.Clone()}
	n.ResetStats()
	n.Merge(s)
	return &Checkpoint{sys: n}
}

// Restore needs only the Checkpoint's own field.
//
//simlint:statefull restore
func (c *Checkpoint) Restore() *System {
	return snapshot(c.sys)
}

// ---- merge class: state-typed fields plus nested value expansion ----

// Merge covers the pointer component by delegation and every nested
// bandwidth counter through the sum-literal rebuild; ticks is not a
// state-typed field, so merge does not owe it.
//
//simlint:statefull merge
func (s *System) Merge(o *System) {
	s.comp.AddStats(o.comp.stats)
	s.bw = Bandwidth{Fetches: s.bw.Fetches + o.bw.Fetches, Fills: s.bw.Fills + o.bw.Fills}
}

// MergePartial touches the bw field but never its Fills counter: the
// nested expansion catches the forgotten field inside the value block.
//
//simlint:statefull merge
func (s *System) MergePartial(o *System) { // want `\(\*stc\.System\)\.MergePartial is //simlint:statefull merge but never reads or writes stc\.System\.bw\.Fills, not even through its static callees`
	s.comp.AddStats(o.comp.stats)
	s.bw.Fetches += o.bw.Fetches
}

// AddStats is the component-level merge: counters subject, all fields.
//
//simlint:statefull merge
func (c *Comp) AddStats(o CompStats) {
	c.stats.Hits += o.Hits
	c.stats.Misses += o.Misses
}

// AddStatsDrops forgets one counter of the nested block.
//
//simlint:statefull merge
func (c *Comp) AddStatsDrops(o CompStats) { // want `\(\*stc\.Comp\)\.AddStatsDrops is //simlint:statefull merge but never reads or writes stc\.Comp\.stats\.Misses, not even through its static callees`
	c.stats.Hits += o.Hits
}

// ---- adopt/reset classes: state-typed fields only ----

// ResetStats owes comp and bw, not the architectural scalars.
//
//simlint:statefull reset
func (s *System) ResetStats() {
	s.bw = Bandwidth{}
	s.comp.ResetStats()
}

//simlint:statefull reset
func (c *Comp) ResetStats() {
	c.stats = CompStats{}
}

// SetStats overwrites the ledger wholesale — legal in adopt class, and
// the stats field is the only one owed.
//
//simlint:statefull adopt
func (c *Comp) SetStats(st CompStats) {
	c.stats = st
}

// ResetDrops forgets the component delegate.
//
//simlint:statefull reset
func (s *System) ResetDrops() { // want `\(\*stc\.System\)\.ResetDrops is //simlint:statefull reset but never reads or writes stc\.System\.comp, not even through its static callees`
	s.bw = Bandwidth{}
}

// ---- class-scoped statederived ----

// Front's lru field is recomputable on fork but must survive a clone.
//
//simlint:state
//simlint:statederived lru fork
type Front struct {
	lru   uint64
	stats CompStats
}

//simlint:statefull fork
func (f *Front) ForkFront() *Front {
	return &Front{stats: f.stats}
}

//simlint:statefull clone
func (f *Front) CloneFront() *Front { // want `\(\*stc\.Front\)\.CloneFront is //simlint:statefull clone but never reads or writes stc\.Front\.lru, not even through its static callees`
	return &Front{stats: f.stats}
}

// ---- cross-package closure via the sibling stcdep package ----

// Meter embeds a counter block owned by another package.
//
//simlint:state
type Meter struct {
	tally stcdep.Tally
}

// MergeVia earns nested coverage inside stcdep.AddTo.
//
//simlint:statefull merge
func (m *Meter) MergeVia(o *Meter) {
	stcdep.AddTo(&m.tally, o.tally)
}

// MergeViaPartial delegates to a helper that forgets Errs: the missing
// field is named with its full dotted path even though the only code
// touching it lives in the sibling package.
//
//simlint:statefull merge
func (m *Meter) MergeViaPartial(o *Meter) { // want `\(\*stc\.Meter\)\.MergeViaPartial is //simlint:statefull merge but never reads or writes stc\.Meter\.tally\.Errs, not even through its static callees`
	stcdep.AddOps(&m.tally, o.tally)
}

// ---- dead annotation ----

// Rescale has no state-struct receiver or parameter to cover.
//
//simlint:statefull merge
func Rescale(x, y int) int { // want `stc\.Rescale is //simlint:statefull merge but neither its receiver nor any parameter is a //simlint:state struct`
	return x + y
}
