// Package suppress is a fixture for the //simlint:ignore directive
// test: three returns, two of them waived.
package suppress

func same() int {
	return 1 //simlint:ignore retlint
}

func nextLine() int {
	//simlint:ignore retlint
	return 2
}

func reported() int {
	return 3
}
