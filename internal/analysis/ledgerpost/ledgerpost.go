// Package ledgerpost checks that every off-chip block transfer booked
// in the bandwidth ledger is also posted to the memory-traffic hook.
//
// Invariant protected: the paper's "extra bandwidth" metric and the
// bank-interleaving analyses (internal/memctl) replay the exact
// sequence of blocks the system moves over the memory interface. The
// ledger (core.Bandwidth.DemandFetches / .WriteBacks) and the
// OnMemoryTraffic hook (posted via noteTraffic) must stay in lockstep:
// a fetch path that increments the ledger without posting the block
// silently corrupts the traffic stream, and the resulting bandwidth
// numbers still look plausible.
//
// The check: an increment of a Bandwidth off-chip counter
// (DemandFetches or WriteBacks; StreamFills and VictimFills are on-chip
// and exempt) must have a traffic post — a call whose name matches
// noteTraffic / postTraffic / OnMemoryTraffic / postBandwidth — as a
// direct statement of the increment's own block or of an enclosing
// block, i.e. on every path that reaches the increment. A post buried
// in a sibling branch does not count.
package ledgerpost

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"streamsim/internal/analysis"
)

// Analyzer is the ledgerpost pass.
var Analyzer = &analysis.Analyzer{
	Name: "ledgerpost",
	Doc: "flags bandwidth-ledger increments (Bandwidth.DemandFetches/" +
		"WriteBacks) with no matching memory-traffic post in the same or an " +
		"enclosing block",
	PackagePrefixes: []string{
		"streamsim/internal/core",
		"streamsim/internal/mem",
		"streamsim/internal/memctl",
	},
	Run: run,
}

// offChipFields are the Bandwidth counters that represent actual
// chip↔memory transfers and therefore require a traffic post.
var offChipFields = map[string]bool{
	"DemandFetches": true,
	"WriteBacks":    true,
}

// postName matches the traffic-posting helpers.
var postName = regexp.MustCompile(`(?i)^(notetraffic|posttraffic|onmemorytraffic|postbandwidth)$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkList(pass, fn.Body.List, false)
		}
	}
	return nil
}

// checkList verifies one statement list. ancestorPost reports whether a
// traffic post is a direct statement of some enclosing list.
func checkList(pass *analysis.Pass, stmts []ast.Stmt, ancestorPost bool) {
	covered := ancestorPost
	for _, stmt := range stmts {
		if directHasPost(pass, stmt) {
			covered = true
			break
		}
	}
	for _, stmt := range stmts {
		walkShallow(stmt, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				if n.Tok == token.INC {
					checkIncrement(pass, covered, n.X, n.Pos())
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
					checkIncrement(pass, covered, n.Lhs[0], n.Pos())
				}
			}
		})
		forEachNestedList(stmt, func(nested []ast.Stmt, fresh bool) {
			if fresh {
				// A function literal starts its own accounting scope.
				checkList(pass, nested, false)
			} else {
				checkList(pass, nested, covered)
			}
		})
	}
}

// checkIncrement reports lhs when it is an off-chip Bandwidth counter
// and no post covers the path to it.
func checkIncrement(pass *analysis.Pass, covered bool, lhs ast.Expr, pos token.Pos) {
	if covered {
		return
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || !offChipFields[sel.Sel.Name] || !isBandwidthField(pass, sel) {
		return
	}
	pass.Reportf(pos,
		"ledger increment of %s has no memory-traffic post (noteTraffic) in this or an enclosing block; the bandwidth ledger and the traffic hook must move in lockstep",
		sel.Sel.Name)
}

// isBandwidthField reports whether sel selects a field of a struct type
// named Bandwidth.
func isBandwidthField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Bandwidth"
}

// isPost reports whether call invokes a traffic-posting helper.
func isPost(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return postName.MatchString(name)
}

// directHasPost reports whether stmt contains a traffic post outside
// any nested statement list (i.e. unconditionally executed when stmt's
// list runs straight through).
func directHasPost(pass *analysis.Pass, stmt ast.Stmt) bool {
	found := false
	walkShallow(stmt, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isPost(call) {
			found = true
		}
	})
	return found
}

// walkShallow visits stmt's subtree but does not descend into nested
// statement lists (blocks, switch cases, select clauses) or function
// literals.
func walkShallow(stmt ast.Stmt, visit func(ast.Node)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.FuncLit:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// forEachNestedList invokes f on every statement list nested one level
// below stmt. fresh marks function-literal bodies, which do not inherit
// the enclosing function's coverage.
func forEachNestedList(stmt ast.Stmt, f func(nested []ast.Stmt, fresh bool)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			f(n.Body.List, true)
			return false
		case *ast.BlockStmt:
			f(n.List, false)
			return false
		case *ast.CaseClause:
			f(n.Body, false)
			return false
		case *ast.CommClause:
			f(n.Body, false)
			return false
		}
		return true
	})
}
