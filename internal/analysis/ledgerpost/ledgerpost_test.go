package ledgerpost_test

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
	"streamsim/internal/analysis/ledgerpost"
)

func TestLedgerPost(t *testing.T) {
	dir := analysistest.TestData(t)
	for _, pkg := range []string{"a", "b"} {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, dir, ledgerpost.Analyzer, pkg)
		})
	}
}
