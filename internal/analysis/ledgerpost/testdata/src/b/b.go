// Package b exercises the ledgerpost negative cases: increments paired
// with a post in the same or an enclosing block, on-chip counters, and
// unrelated types.
package b

// Bandwidth mirrors core.Bandwidth's off-chip ledger.
type Bandwidth struct {
	DemandFetches uint64
	StreamFills   uint64
	VictimFills   uint64
	WriteBacks    uint64
}

type system struct {
	bw      Bandwidth
	onBlock func(blk uint64)
}

func (s *system) noteTraffic(blk uint64) {
	if s.onBlock != nil {
		s.onBlock(blk)
	}
}

// sameBlock is the canonical pattern: increment and post side by side.
func (s *system) sameBlock(blk uint64) {
	s.bw.DemandFetches++
	s.noteTraffic(blk)
}

// enclosingBlock increments inside a branch whose enclosing list posts
// unconditionally.
func (s *system) enclosingBlock(blk uint64, dirty bool) {
	if dirty {
		s.bw.WriteBacks++
	}
	s.noteTraffic(blk)
}

// nestedBranch pairs increment and post inside the same inner block,
// mirroring core's victim write-back path.
func (s *system) nestedBranch(blk uint64, wb bool) {
	if wb {
		s.bw.WriteBacks++
		s.noteTraffic(blk)
	}
}

// onChip counters (stream and victim fills) move no off-chip blocks and
// need no post.
func (s *system) onChip() {
	s.bw.StreamFills++
	s.bw.VictimFills++
}

// otherType has the same field names on an unrelated struct; only the
// Bandwidth ledger is checked.
type tally struct{ DemandFetches uint64 }

func bump(t *tally) {
	t.DemandFetches++
}
