// Package a exercises the ledgerpost positive cases: off-chip ledger
// increments whose block transfer is never posted to the traffic hook.
package a

// Bandwidth mirrors core.Bandwidth's off-chip ledger.
type Bandwidth struct {
	DemandFetches uint64
	StreamFills   uint64
	WriteBacks    uint64
}

type system struct {
	bw      Bandwidth
	onBlock func(blk uint64)
}

func (s *system) noteTraffic(blk uint64) {
	if s.onBlock != nil {
		s.onBlock(blk)
	}
}

// fetchWithoutPost increments the ledger and forgets the hook entirely.
func (s *system) fetchWithoutPost(blk uint64) {
	s.bw.DemandFetches++ // want `ledger increment of DemandFetches has no memory-traffic post`
}

// writeBackSiblingPost posts only in the other branch: the write-back
// path still corrupts the traffic stream.
func (s *system) writeBackSiblingPost(blk uint64, dirty bool) {
	if dirty {
		s.bw.WriteBacks++ // want `ledger increment of WriteBacks has no memory-traffic post`
	} else {
		s.noteTraffic(blk)
	}
}

// addAssignWithoutPost uses the compound form; still a ledger increment.
func (s *system) addAssignWithoutPost(n uint64) {
	s.bw.DemandFetches += n // want `ledger increment of DemandFetches has no memory-traffic post`
}

// closurePost posts only inside a deferred closure that the analyzer
// treats as a separate scope: the straight-line path has no post.
func (s *system) closurePost(blk uint64) {
	cleanup := func() {
		s.noteTraffic(blk)
	}
	_ = cleanup
	s.bw.WriteBacks++ // want `ledger increment of WriteBacks has no memory-traffic post`
}
