// Nondeterminism facts: the per-function scan behind the detflow
// analyzer. A Nondet is a construct whose result depends on something
// other than the function's inputs — map iteration order, the wall
// clock, the process-global random source, or the environment — so a
// //simlint:deterministic root must not reach one.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nondet is one nondeterministic construct found in a function body.
type Nondet struct {
	Pos  token.Pos
	What string
}

// scanNondets fills fn.Nondets. The walk covers function-literal
// bodies too: a closure's nondeterminism executes within (or on
// behalf of) the enclosing function and feeds the same output.
//
// Rules:
//
//   - ranging over a map is order-unstable, except the collect-then-
//     sort idiom (every body statement appends to a local slice that
//     is later passed to a sort/slices call in the same function);
//   - time.Now/Since/Until read the wall clock;
//   - package-level math/rand and math/rand/v2 draws use the process
//     global source (constructors like New/NewSource are exempt:
//     seededrand separately proves their seeds come from config, and
//     methods on a seeded *rand.Rand replay deterministically);
//   - crypto/rand is nondeterministic by construction;
//   - os environment and filesystem reads depend on the host; config
//     loaders own them and are annotated //simlint:configload, which
//     stops the detflow traversal instead.
func scanNondets(fn *Func) {
	info := fn.Pkg.TypesInfo
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				break
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !sortedSliceIdiom(fn, n) {
				fn.Nondets = append(fn.Nondets, Nondet{n.Pos(), "map range with unstable iteration order"})
			}
		case *ast.CallExpr:
			if what := nondetCall(info, n); what != "" {
				fn.Nondets = append(fn.Nondets, Nondet{n.Pos(), what})
			}
		}
		return true
	})
}

// nondetCall classifies one call site, returning "" when it is
// deterministic (or unresolvable, which static edges treat as a
// deliberate seam).
func nondetCall(info *types.Info, call *ast.CallExpr) string {
	callee := StaticCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	if callee.Type().(*types.Signature).Recv() != nil {
		// Methods: a *rand.Rand or *os.File reached here was produced
		// by a constructor that is itself the flagged (or exempted)
		// operation.
		return ""
	}
	name := callee.Name()
	switch callee.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "wall-clock read (time." + name + ")"
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return ""
		}
		return "draw from the process-global random source (rand." + name + ")"
	case "crypto/rand":
		return "crypto/rand read (rand." + name + ")"
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "environment read (os." + name + ")"
		case "Open", "OpenFile", "ReadFile", "ReadDir", "Stat", "Lstat",
			"Getwd", "UserHomeDir", "Hostname":
			return "filesystem/host read (os." + name + ")"
		}
	}
	return ""
}

// sortedSliceIdiom reports whether a map range is the accepted
// deterministic idiom: every statement in the body appends to a local
// slice variable, and every such variable is later passed to a
// sort/slices call in the same function. Collect-then-sort output is
// independent of iteration order.
func sortedSliceIdiom(fn *Func, rng *ast.RangeStmt) bool {
	info := fn.Pkg.TypesInfo
	var collected []types.Object
	for _, st := range rng.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		bid, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := info.Uses[bid].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return false
		}
		collected = append(collected, obj)
	}
	if len(collected) == 0 {
		return false
	}
	for _, obj := range collected {
		if !sortedAfter(fn, obj, rng.End()) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj appears in an argument of a call
// into package sort or slices after pos in fn's body.
func sortedAfter(fn *Func, obj types.Object, pos token.Pos) bool {
	info := fn.Pkg.TypesInfo
	found := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		callee := StaticCallee(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
