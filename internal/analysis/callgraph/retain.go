// Borrow-scope escape facts: the per-parameter retention analysis
// behind the borrowck analyzer. A //simlint:borrowed parameter (a
// decoded trace batch, a tap-event slice, a cache.Prober snapshot) is
// lent to the callee for the duration of the call; ParamRetention
// computes where a function keeps such a value past its return —
// directly, or by forwarding it to another module function.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RetainSite is one construct that keeps a borrowed value alive after
// the function returns.
type RetainSite struct {
	Pos  token.Pos
	What string
}

// Forward records a borrowed value passed onward to another module
// function; the retention question recurses into the callee's view of
// that signature position (receiver = -1).
type Forward struct {
	Pos    token.Pos
	Callee *Func
	Param  int
}

// Retention is the escape summary for one (function, parameter) pair.
type Retention struct {
	Sites    []RetainSite
	Forwards []Forward
}

// ParamRetention computes fn's retention of the value at a ParamIndex
// position. The analysis is intraprocedural plus forwards:
//
//   - an alias set over local variables is grown to a fixpoint from
//     the parameter (subslices, element pointers, reference-carrying
//     elements and fields, appends, conversions, composite literals
//     that embed an alias);
//   - a retain site is an aliased value assigned through a selector,
//     index or dereference (a struct field, map or slice element, or
//     pointee that outlives the frame), assigned to a package-level
//     variable, returned, sent on a channel, passed to a goroutine,
//     or captured by a func literal (conservatively: closures may
//     outlive the call);
//   - an aliased argument to a static module call becomes a Forward;
//     calls into other modules and dynamic dispatch are deliberate
//     seams, consistent with the graph's static-edges-only contract.
//
// Values whose types carry no references (a mem.Access copied out of
// a borrowed slice, a uint64 element) cannot retain the borrow and
// are never aliased.
func (g *Graph) ParamRetention(fn *Func, index int) Retention {
	var ret Retention
	v := ParamAt(fn, index)
	if v == nil || !refCarrying(v.Type()) {
		return ret
	}
	info := fn.Pkg.TypesInfo
	aliased := map[types.Object]bool{v: true}

	ident := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}

	// aliasExpr reports whether evaluating e yields a value that still
	// references the borrowed storage.
	var aliasExpr func(e ast.Expr) bool
	// baseExpr strips index/selector/star wrappers down to the root
	// operand, for &x[i] / &x.f style interior pointers.
	var baseExpr func(e ast.Expr) ast.Expr
	baseExpr = func(e ast.Expr) ast.Expr {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return ast.Unparen(e)
			}
		}
	}
	aliasExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := ident(e)
			return obj != nil && aliased[obj]
		case *ast.SliceExpr:
			return aliasExpr(e.X)
		case *ast.IndexExpr:
			return aliasExpr(e.X) && refCarryingExpr(info, e)
		case *ast.SelectorExpr:
			return aliasExpr(e.X) && refCarryingExpr(info, e)
		case *ast.StarExpr:
			return aliasExpr(e.X) && refCarryingExpr(info, e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				return aliasExpr(baseExpr(e.X))
			}
		case *ast.CallExpr:
			if b, ok := info.Uses[funIdent(e)].(*types.Builtin); ok && b.Name() == "append" {
				for _, a := range e.Args {
					if aliasExpr(a) {
						return true
					}
				}
				return false
			}
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return refCarrying(tv.Type) && aliasExpr(e.Args[0])
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if aliasExpr(elt) {
					return true
				}
			}
		}
		return false
	}

	// Alias fixpoint over assignments and range clauses; aliases chain
	// (b := a[1:]; c := b), so iterate until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				for i, lhs := range n.Lhs {
					obj := ident(lhs)
					if obj == nil || aliased[obj] {
						continue
					}
					if aliasExpr(n.Rhs[i]) {
						aliased[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil || !aliasExpr(n.X) {
					break
				}
				obj := ident(n.Value)
				if obj == nil || aliased[obj] || !refCarrying(obj.Type()) {
					break
				}
				aliased[obj] = true
				changed = true
			}
			return true
		})
	}

	retain := func(pos token.Pos, what string) {
		ret.Sites = append(ret.Sites, RetainSite{pos, what})
	}

	// Collection walk: retain sites and forwards, in source order.
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, lhs := range n.Lhs {
				if !aliasExpr(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj := ident(l); obj != nil && obj.Parent() == fn.Pkg.Types.Scope() {
						retain(n.Pos(), "stored to package variable "+l.Name)
					}
				case *ast.SelectorExpr:
					retain(n.Pos(), "stored to field or element "+types.ExprString(l))
				case *ast.IndexExpr, *ast.StarExpr:
					retain(n.Pos(), "stored through "+types.ExprString(l))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if aliasExpr(r) {
					retain(n.Pos(), "returned to the caller")
				}
			}
		case *ast.SendStmt:
			if aliasExpr(n.Value) {
				retain(n.Pos(), "sent on a channel")
			}
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				if aliasExpr(a) {
					retain(n.Pos(), "passed to a goroutine")
				}
			}
		case *ast.FuncLit:
			if capturesAliased(info, n, aliased) {
				retain(n.Pos(), "captured by a func literal")
			}
			return false // the capture is the finding; don't re-walk inside
		case *ast.CallExpr:
			g.forwardCall(fn, n, aliasExpr, &ret)
		}
		return true
	}
	ast.Inspect(fn.Decl.Body, walk)
	return ret
}

// forwardCall records forwards for aliased arguments (and an aliased
// method receiver) at one static module call site.
func (g *Graph) forwardCall(fn *Func, call *ast.CallExpr, aliasExpr func(ast.Expr) bool, ret *Retention) {
	info := fn.Pkg.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: aliasExpr handles it
	}
	callee := StaticCallee(info, call)
	if callee == nil {
		return // builtin or dynamic dispatch: a deliberate seam
	}
	node := g.Funcs[callee.FullName()]
	if node == nil {
		return // out-of-module callee: a deliberate seam
	}
	sig := callee.Type().(*types.Signature)
	np := sig.Params().Len()
	for i, arg := range call.Args {
		if !aliasExpr(arg) {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			continue
		}
		ret.Forwards = append(ret.Forwards, Forward{call.Pos(), node, pi})
	}
	if sig.Recv() == nil {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && aliasExpr(sel.X) {
		ret.Forwards = append(ret.Forwards, Forward{call.Pos(), node, -1})
	}
}

// capturesAliased reports whether a func literal's body references any
// variable in the alias set.
func capturesAliased(info *types.Info, lit *ast.FuncLit, aliased map[types.Object]bool) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && aliased[obj] {
				captured = true
			}
		}
		return !captured
	})
	return captured
}

// funIdent returns the identifier a call invokes, or nil.
func funIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// refCarryingExpr reports whether an expression's type can carry a
// reference to borrowed storage.
func refCarryingExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && refCarrying(tv.Type)
}

// refCarrying reports whether values of type t can hold a reference
// into other storage: pointers, slices, maps, channels, funcs and
// interfaces do; structs and arrays do iff an element does; scalars
// and strings do not (string bytes are immutable, so sharing them
// cannot violate a borrow).
func refCarrying(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refCarrying(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return refCarrying(u.Elem())
	default:
		return false
	}
}
