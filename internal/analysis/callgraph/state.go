// State-struct facts for the statecov and mergesound analyzers.
//
// A struct whose type declaration carries //simlint:state is a
// simulation-state struct: the fork/checkpoint machinery must account
// for every one of its fields, or sharded and resumed replays silently
// diverge from the sequential oracle. The facts here record each such
// struct's ordered field set, its kind, and its per-field exemptions,
// plus — per function — which state-struct fields the body reads or
// writes, so the analyzers can close over static callees.
//
// Directive grammar (validated by the directives analyzer):
//
//	//simlint:state [counters]
//	    on a struct type. The optional "counters" kind marks a pure
//	    statistics struct: every field is a counter, so the stats
//	    classes (merge, adopt, reset) must cover all of them, not just
//	    the state-typed ones.
//	//simlint:statederived <field> [class ...]
//	    on the same struct: the field is recomputable (or deliberately
//	    untouched) and exempt from coverage — in the named handler
//	    classes, or in every class when none are named.
//	//simlint:statefull <class>
//	    on a handler function. The class scopes both the coverage
//	    requirement (statecov) and the overwrite rules (mergesound).
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"streamsim/internal/analysis"
)

// StatefullClasses is the closed set of //simlint:statefull classes.
var StatefullClasses = map[string]bool{
	"fork":       true,
	"clone":      true,
	"merge":      true,
	"adopt":      true,
	"reset":      true,
	"restore":    true,
	"checkpoint": true,
}

// FullClass reports whether a statefull class has deep-copy semantics:
// the handler must cover every field of its state struct, architectural
// and statistical alike. The remaining classes (merge, adopt, reset)
// move statistics only, so they must cover just the state-typed fields
// — and, for a counters-kind struct, all fields.
func FullClass(class string) bool {
	switch class {
	case "fork", "clone", "checkpoint", "restore":
		return true
	}
	return false
}

// OverwriteClass reports whether a statefull class may legally
// overwrite counters wholesale (SetStats, plain assignment): the
// adopt/restore/reset group. The merge class must combine additively;
// mergesound enforces the split.
func OverwriteClass(class string) bool {
	switch class {
	case "adopt", "restore", "reset":
		return true
	}
	return false
}

// StateField is one field of a state struct, in declaration order.
type StateField struct {
	Name string
	Type types.Type
}

// StateStruct is the exported fact of one //simlint:state struct.
type StateStruct struct {
	// Key is the StateKey form "pkgpath.Name", stable across the
	// from-source and export-data views of the type.
	Key string
	Obj *types.TypeName
	Pkg *analysis.Package
	Pos token.Pos
	// Counters marks the "//simlint:state counters" kind.
	Counters bool
	// Fields lists every field (exported or not) in declaration order.
	Fields []StateField
	// Derived maps a field name to the classes its
	// //simlint:statederived directive exempts it in; an empty class
	// list exempts it everywhere.
	Derived map[string][]string
}

// DerivedFor reports whether field is exempt from coverage in class.
func (ss *StateStruct) DerivedFor(field, class string) bool {
	classes, ok := ss.Derived[field]
	if !ok {
		return false
	}
	if len(classes) == 0 {
		return true
	}
	for _, c := range classes {
		if c == class {
			return true
		}
	}
	return false
}

// Short renders the struct name without package-path directories, for
// diagnostics: "cache.Stats" instead of "streamsim/internal/cache.Stats".
func (ss *StateStruct) Short() string {
	if pkg := ss.Obj.Pkg(); pkg != nil {
		return pkg.Name() + "." + ss.Obj.Name()
	}
	return ss.Obj.Name()
}

// StateKey renders the States map key of a named type's object.
func StateKey(obj *types.TypeName) string {
	if pkg := obj.Pkg(); pkg != nil {
		return pkg.Path() + "." + obj.Name()
	}
	return obj.Name()
}

// StateOf resolves t (dereferencing one pointer level) to a registered
// state struct, or nil.
func (g *Graph) StateOf(t types.Type) *StateStruct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return g.States[StateKey(named.Obj())]
}

// ValueStateOf resolves t to a registered state struct only when t is
// the struct itself, not a pointer to it: the embedded-by-value case
// the merge class expands through (a merge that covers such a field
// must combine every nested counter).
func (g *Graph) ValueStateOf(t types.Type) *StateStruct {
	if _, ok := t.(*types.Pointer); ok {
		return nil
	}
	return g.StateOf(t)
}

// StateSubject resolves the state struct a //simlint:statefull handler
// covers: the receiver when it is (a pointer to) a state struct,
// otherwise the first such parameter (snapshotSystem-style helpers take
// the system as an argument). Nil when neither names one — statecov
// reports that as a dead annotation.
func (g *Graph) StateSubject(fn *Func) *StateStruct {
	sig := fn.Obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return g.StateOf(recv.Type())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if ss := g.StateOf(sig.Params().At(i).Type()); ss != nil {
			return ss
		}
	}
	return nil
}

// scanStateTypes registers every //simlint:state struct in the loaded
// packages. Directive placement and spelling problems (state on a
// non-struct, statederived naming a missing field, unknown classes)
// are the directives analyzer's findings; here malformed entries are
// simply skipped so the facts stay well-formed.
func scanStateTypes(g *Graph, pkgs []*analysis.Package) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					registerStateType(g, pkg, ts, doc)
				}
			}
		}
	}
}

// registerStateType parses one type declaration's doc comment and, when
// it carries //simlint:state, adds the struct to g.States.
func registerStateType(g *Graph, pkg *analysis.Package, ts *ast.TypeSpec, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	isState, counters := false, false
	derived := map[string][]string{}
	for _, c := range doc.List {
		verb, args := SplitDirective(c.Text)
		switch verb {
		case "state":
			isState = true
			counters = len(args) > 0 && args[0] == "counters"
		case "statederived":
			if len(args) > 0 {
				derived[args[0]] = args[1:]
			}
		}
	}
	if !isState {
		return
	}
	obj, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	ss := &StateStruct{
		Key:      StateKey(obj),
		Obj:      obj,
		Pkg:      pkg,
		Pos:      ts.Name.Pos(),
		Counters: counters,
		Derived:  derived,
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		ss.Fields = append(ss.Fields, StateField{Name: f.Name(), Type: f.Type()})
	}
	g.States[ss.Key] = ss
}

// scanStateUses fills fn.StateUses: every state-struct field the body
// reads or writes, plus whole-value uses. The rules mirror how the
// snapshot handlers are written:
//
//   - a selector x.f whose base is a state struct covers field f;
//   - a composite literal T{...} of a state struct covers its listed
//     (or, positionally, its leading) fields — an unlisted field is a
//     silent zero, which is exactly the bug class statecov exists to
//     catch, so the literal does NOT cover it;
//   - an empty literal T{} covers everything: it is the deliberate
//     reset-to-zero idiom, and a new field cannot be forgotten by it;
//   - a pointer dereference *p of a *T covers everything: the `n := *c`
//     clone idiom copies each field by construction.
//
// A whole-field assignment (c.stats = s) covers only the field itself,
// not the nested struct's fields: whether the right-hand side accounts
// for every nested counter is decided by what computed it, which the
// closure walk reaches through the call graph.
func scanStateUses(g *Graph, fn *Func) {
	info := fn.Pkg.TypesInfo
	use := func(key, field string) {
		if fn.StateUses == nil {
			fn.StateUses = map[string]map[string]bool{}
		}
		m := fn.StateUses[key]
		if m == nil {
			m = map[string]bool{}
			fn.StateUses[key] = m
		}
		m[field] = true
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if ok && sel.Kind() == types.FieldVal {
				if ss := g.StateOf(sel.Recv()); ss != nil {
					use(ss.Key, sel.Obj().Name())
				}
			}
		case *ast.StarExpr:
			tv, ok := info.Types[n.X]
			if !ok || !tv.IsValue() {
				break
			}
			if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
				break
			}
			if ss := g.StateOf(tv.Type); ss != nil {
				use(ss.Key, "*")
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				break
			}
			ss := g.ValueStateOf(tv.Type)
			if ss == nil {
				break
			}
			if len(n.Elts) == 0 {
				use(ss.Key, "*")
				break
			}
			for i, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						use(ss.Key, id.Name)
					}
				} else if i < len(ss.Fields) {
					use(ss.Key, ss.Fields[i].Name)
				}
			}
		}
		return true
	})
}
