// Package callgraph is the shared facts layer for flow-aware simlint
// analyzers: an intra-module call graph over the packages a driver
// loaded, with per-function facts (annotations, allocating constructs,
// context parameters and context.Background/TODO call sites) attached
// to every node. Analyzers declare
//
//	Facts:    callgraph.Facts,
//	FactsKey: callgraph.FactsKey,
//
// and the analysis.RunSuite driver builds the graph exactly once per
// run, however many analyzers consume it.
//
// Nodes are keyed by types.Func.FullName() rather than object
// identity: each package is type-checked against compiler export data
// of its dependencies, so the *types.Func a caller resolves for a
// cross-package callee is a different object from the one minted when
// the callee's own package was checked from source. FullName is stable
// across both views.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"streamsim/internal/analysis"
)

// FactsKey is the analysis.Analyzer.FactsKey shared by every analyzer
// built on this package.
const FactsKey = "callgraph"

// Facts is the analysis.Analyzer.Facts builder: it returns *Graph.
func Facts(pkgs []*analysis.Package) (any, error) {
	return Build(pkgs), nil
}

// From recovers the graph an analyzer's Facts built, or nil when the
// pass ran without module facts.
func From(pass *analysis.Pass) *Graph {
	g, _ := pass.ModuleFacts.(*Graph)
	return g
}

// Graph is the intra-module call graph plus per-function facts.
type Graph struct {
	// Funcs maps types.Func.FullName() to the node for every function
	// and method declared with a body in the loaded packages.
	Funcs map[string]*Func
	// Decls maps each declaration back to its node, for per-package
	// passes iterating their own files.
	Decls map[*ast.FuncDecl]*Func
	// States maps state-struct keys (StateKey form, "pkgpath.Name") to
	// the field-set facts of every //simlint:state struct in the loaded
	// packages (see state.go).
	States map[string]*StateStruct
}

// Func is one module function or method whose source was loaded.
type Func struct {
	// Name is the types.Func.FullName() node key, e.g.
	// "(*streamsim/internal/cache.Cache).Probe".
	Name string
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *analysis.Package

	// Hotpath and Coldpath record //simlint:hotpath and
	// //simlint:coldpath directives in the declaration's doc comment.
	Hotpath  bool
	Coldpath bool
	// Deterministic records //simlint:deterministic: the function is a
	// result-producing root the detflow analyzer proves transitively
	// free of nondeterministic constructs.
	Deterministic bool
	// ConfigLoad records //simlint:configload: the function reads the
	// environment or filesystem by design (a config loader), and
	// detflow does not traverse into it.
	ConfigLoad bool
	// Borrowed are the signature positions named by //simlint:borrowed
	// (receiver = -1, parameters 0-based): values the function must
	// not retain. Names that fail to resolve are dropped here and
	// reported by the directives analyzer.
	Borrowed []int
	// StatefullClass records //simlint:statefull <class>: the function
	// is a snapshot handler (fork, clone, merge, adopt, reset, restore
	// or checkpoint) that statecov holds to full coverage of its state
	// struct and mergesound holds to the class's overwrite rules.
	// Empty when the function carries no statefull directive.
	StatefullClass string
	// StateUses records which //simlint:state struct fields the body
	// reads or writes: state-struct key -> field name set. The "*"
	// entry marks a whole-value use (a *p clone copy or an empty
	// composite literal), which covers every field at once. Nil when
	// the body touches no state struct.
	StateUses map[string]map[string]bool

	// CtxParams are the function's context.Context parameters.
	CtxParams []*types.Var
	// Exported mirrors ast.IsExported of the declared name.
	Exported bool

	// Allocs are the allocating constructs in the body (see Alloc for
	// the rules; panic arguments are exempt).
	Allocs []Alloc
	// Nondets are the nondeterministic constructs in the body (see
	// nondet.go for the rules; the sorted-slice map-range idiom is
	// exempt).
	Nondets []Nondet
	// Contexts are context.Background()/context.TODO() call sites.
	Contexts []token.Pos
	// Calls are the statically resolved calls to other module
	// functions, in source order. Dynamic dispatch — interface
	// methods and func values — has no edge: the dispatch itself does
	// not allocate, and the analyzers treat hook indirection as a
	// deliberate seam.
	Calls []Call
}

// Call is one static call edge.
type Call struct {
	Pos    token.Pos
	Callee *Func
	// Expr is the call site, for analyzers that inspect arguments.
	Expr *ast.CallExpr
}

// Alloc is one allocating construct found in a function body.
type Alloc struct {
	Pos  token.Pos
	What string
}

// Build constructs the graph over the loaded packages. Packages must
// share one token.FileSet (analysis.Load and the analysistest loader
// both guarantee this), so positions from any node print correctly
// through any pass's Fset.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		Funcs:  map[string]*Func{},
		Decls:  map[*ast.FuncDecl]*Func{},
		States: map[string]*StateStruct{},
	}
	// First pass: one node per declaration, so edge resolution in the
	// second pass can look callees up whatever order packages load in.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Name.Name == "init" || fd.Name.Name == "_" {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{
					Name:     obj.FullName(),
					Obj:      obj,
					Decl:     fd,
					Pkg:      pkg,
					Exported: fd.Name.IsExported(),
				}
				applyDirectives(fn, fd.Doc)
				sig := obj.Type().(*types.Signature)
				for i := 0; i < sig.Params().Len(); i++ {
					if p := sig.Params().At(i); isContext(p.Type()) {
						fn.CtxParams = append(fn.CtxParams, p)
					}
				}
				g.Funcs[fn.Name] = fn
				g.Decls[fd] = fn
			}
		}
	}
	// State-struct facts must exist before the body scans: scanStateUses
	// records only fields of registered state structs, whichever package
	// declares them.
	scanStateTypes(g, pkgs)
	for _, fn := range g.Decls {
		scanBody(g, fn)
		scanNondets(fn)
		scanStateUses(g, fn)
	}
	return g
}

// applyDirectives parses the //simlint:* verbs that mark graph facts
// on a declaration's doc comment: hotpath, coldpath, deterministic,
// configload, and borrowed <names>. Verbs other than borrowed ignore
// any arguments here (test gate files use them to name entry points);
// the directives analyzer validates spelling, placement and argument
// resolution.
func applyDirectives(fn *Func, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		verb, args := SplitDirective(c.Text)
		switch verb {
		case "hotpath":
			fn.Hotpath = true
		case "coldpath":
			fn.Coldpath = true
		case "deterministic":
			fn.Deterministic = true
		case "configload":
			fn.ConfigLoad = true
		case "statefull":
			if len(args) > 0 {
				fn.StatefullClass = args[0]
			}
		case "borrowed":
			for _, name := range args {
				if i, ok := ParamIndex(fn, name); ok {
					fn.Borrowed = append(fn.Borrowed, i)
				}
			}
		}
	}
}

// SplitDirective parses one "//simlint:verb arg arg" comment into its
// verb and arguments (space- or comma-separated). A "//" token starts
// an embedded remark and ends the directive, so trailing commentary
// (including analysistest want expectations) never reads as an
// argument. The verb is "" when the comment is not a simlint
// directive; IsDirective distinguishes a malformed directive from an
// ordinary comment.
func SplitDirective(text string) (verb string, args []string) {
	rest, ok := strings.CutPrefix(text, "//simlint:")
	if !ok {
		return "", nil
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	for i, f := range fields {
		if strings.HasPrefix(f, "//") {
			fields = fields[:i]
			break
		}
	}
	if len(fields) == 0 {
		return "", nil
	}
	return fields[0], fields[1:]
}

// IsDirective reports whether a comment claims the simlint directive
// namespace (whether or not it parses).
func IsDirective(text string) bool {
	return strings.HasPrefix(text, "//simlint:")
}

// ParamIndex resolves a //simlint:borrowed argument against fn's
// signature: the receiver is index -1, parameters are 0-based.
func ParamIndex(fn *Func, name string) (int, bool) {
	if name == "" || name == "_" {
		return 0, false
	}
	sig := fn.Obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && recv.Name() == name {
		return -1, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i, true
		}
	}
	return 0, false
}

// ParamAt returns the *types.Var at a ParamIndex position: the
// receiver for -1, the i'th parameter otherwise (nil when out of
// range).
func ParamAt(fn *Func, index int) *types.Var {
	sig := fn.Obj.Type().(*types.Signature)
	if index < 0 {
		return sig.Recv()
	}
	if index >= sig.Params().Len() {
		return nil
	}
	return sig.Params().At(index)
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// StaticCallee resolves a call expression to the invoked *types.Func,
// or nil when the call is dynamic (func value, interface method), a
// conversion, or a builtin.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return nil // dynamic dispatch
	}
	return fn
}

// scanBody fills fn.Allocs, fn.Contexts and fn.Calls. The walk covers
// function-literal bodies too (their calls still matter for context
// flow), but a literal's interior allocations are not recorded: on a
// hot path the closure's creation is already the finding.
//
// Allocation rules, tuned so that deliberate zero-alloc idioms pass
// and everything the escape analyzer could punt to the heap is
// flagged:
//
//   - make, new, append and function literals are always allocating;
//   - map and slice composite literals allocate, as does any literal
//     whose address is taken (&T{...}); a plain value literal
//     (Result{...}) stays on the stack and is allowed;
//   - string ↔ []byte/[]rune conversions copy;
//   - passing a concrete value where the callee wants an interface
//     boxes it;
//   - any call into fmt or log is banned outright;
//   - panic arguments are exempt: the unwind path is terminal, an
//     allocation there never runs on the steady-state hot path.
func scanBody(g *Graph, fn *Func) {
	info := fn.Pkg.TypesInfo
	var walk func(n ast.Node, inLit bool) bool
	visit := func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool { return walk(n, inLit) })
	}
	walk = func(n ast.Node, inLit bool) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inLit {
				fn.Allocs = append(fn.Allocs, Alloc{n.Pos(), "closure creation"})
			}
			visit(n.Body, true)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !inLit {
					fn.Allocs = append(fn.Allocs, Alloc{n.Pos(), "composite literal escapes via &"})
					// The literal's fields may still contain calls.
					for _, elt := range lit.Elts {
						visit(elt, inLit)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			if inLit {
				break
			}
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				fn.Allocs = append(fn.Allocs, Alloc{n.Pos(), "map literal"})
			case *types.Slice:
				fn.Allocs = append(fn.Allocs, Alloc{n.Pos(), "slice literal"})
			}
		case *ast.CallExpr:
			return scanCall(g, fn, n, inLit, visit)
		}
		return true
	}
	visit(fn.Decl.Body, false)
}

// scanCall classifies one call expression; it returns false when the
// walk should not descend further (the panic exemption and conversions
// handle their own children).
func scanCall(g *Graph, fn *Func, call *ast.CallExpr, inLit bool, visit func(ast.Node, bool)) bool {
	info := fn.Pkg.TypesInfo
	// Conversions: T(x) where T is a type, not a function.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if !inLit && isStringBytesConv(tv.Type, info.Types[call.Args[0]].Type) {
			fn.Allocs = append(fn.Allocs, Alloc{call.Pos(), "string conversion copies"})
		}
		return true
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if !inLit {
				switch b.Name() {
				case "make":
					fn.Allocs = append(fn.Allocs, Alloc{call.Pos(), "make"})
				case "new":
					fn.Allocs = append(fn.Allocs, Alloc{call.Pos(), "new"})
				case "append":
					fn.Allocs = append(fn.Allocs, Alloc{call.Pos(), "append may grow its backing array"})
				}
			}
			if b.Name() == "panic" {
				// Terminal unwind: nothing inside the argument runs on
				// the steady-state path. Skip the whole subtree.
				return false
			}
			return true
		}
	}
	if callee := StaticCallee(info, call); callee != nil {
		if pkg := callee.Pkg(); pkg != nil && !inLit {
			switch pkg.Path() {
			case "fmt", "log":
				fn.Allocs = append(fn.Allocs, Alloc{call.Pos(), "call to " + pkg.Name() + "." + callee.Name()})
			}
		}
		if node := g.Funcs[callee.FullName()]; node != nil {
			fn.Calls = append(fn.Calls, Call{Pos: call.Pos(), Callee: node, Expr: call})
		}
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "context" {
			if callee.Name() == "Background" || callee.Name() == "TODO" {
				fn.Contexts = append(fn.Contexts, call.Pos())
			}
		}
	}
	if !inLit {
		scanBoxing(fn, call)
	}
	return true
}

// scanBoxing flags concrete-to-interface argument conversions at one
// call site.
func scanBoxing(fn *Func, call *ast.CallExpr) {
	info := fn.Pkg.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...): the slice passes through unboxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() || at.Type == nil {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at.Type) {
			fn.Allocs = append(fn.Allocs, Alloc{arg.Pos(), "interface conversion boxes " + at.Type.String()})
		}
	}
}

// isStringBytesConv reports whether a conversion from `from` to `to`
// is one of the copying string ↔ []byte/[]rune forms.
func isStringBytesConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// Short renders a node name without the package-path directories, for
// diagnostics: "(*cache.Cache).Probe" instead of the FullName form
// "(*streamsim/internal/cache.Cache).Probe".
func (f *Func) Short() string {
	name := f.Name
	i := strings.LastIndex(name, "/")
	if i < 0 {
		return name
	}
	prefix := ""
	for _, r := range name {
		if r != '(' && r != '*' {
			break
		}
		prefix += string(r)
	}
	return prefix + name[i+1:]
}
