// Package seededrand flags uses of math/rand's global source and
// clock-derived seeds in simulator code.
//
// Invariant protected: every run of the simulator must replay
// bit-identically from its configuration. Random L1 replacement
// (cache.Config.Seed) and the synthetic NAS/PERFECT trace generators
// (workload seeds) are only reproducible if all randomness flows
// through an explicitly seeded *rand.Rand threaded from config; the
// package-level math/rand functions draw from a process-global source
// and rand.NewSource(time.Now()...) ties results to the wall clock,
// either of which silently breaks the golden determinism tests.
package seededrand

import (
	"go/ast"
	"go/types"

	"streamsim/internal/analysis"
)

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "flags math/rand global-source calls and time-seeded sources in " +
		"simulator packages; randomness must come from a config-seeded *rand.Rand",
	PackagePrefixes: []string{"streamsim/internal/"},
	Run:             run,
}

// globalFns are the package-level math/rand (and /v2) functions that
// draw from the shared global source.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

func isMathRand(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			obj := calleeObject(pass, call)
			if obj == nil || !isMathRand(obj.Pkg()) {
				return true
			}
			// Package-level function, not a method on *rand.Rand: a
			// method's receiver makes Recv() non-nil.
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true
			}
			switch {
			case globalFns[obj.Name()]:
				pass.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source; use a *rand.Rand seeded from config so runs replay deterministically",
					obj.Name())
			case obj.Name() == "NewSource" || obj.Name() == "New" || obj.Name() == "NewPCG":
				if argUsesClock(pass, call) {
					pass.Reportf(call.Pos(),
						"rand.%s seeded from the clock; use the run's configured seed so runs replay deterministically",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// calleeObject resolves the called function's object, if any.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	}
	return nil
}

// argUsesClock reports whether any argument expression calls time.Now.
// Nested math/rand constructor calls are skipped: they are flagged in
// their own right, and reporting the outer call too would be noise.
func argUsesClock(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok && inner != call {
				if obj := calleeObject(pass, inner); obj != nil && isMathRand(obj.Pkg()) {
					return false
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Now" {
				found = true
			}
			return true
		})
	}
	return found
}
