// Package a exercises the seededrand positive cases: global-source
// draws and clock seeding, all of which must be flagged.
package a

import (
	"math/rand"
	"time"
)

func globalDraws() int {
	n := rand.Intn(10)           // want `rand\.Intn draws from the global math/rand source`
	f := rand.Float64()          // want `rand\.Float64 draws from the global math/rand source`
	rand.Shuffle(4, func(int, int) {}) // want `rand\.Shuffle draws from the global math/rand source`
	rand.Seed(42)                // want `rand\.Seed draws from the global math/rand source`
	_ = f
	return n
}

func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the clock`
}

func clockSeededDirect() rand.Source {
	return rand.NewSource(int64(time.Now().Nanosecond())) // want `rand\.NewSource seeded from the clock`
}
