// Package b exercises the seededrand negative cases: explicitly seeded
// sources threaded from configuration, and method calls on a local
// *rand.Rand, none of which may be flagged.
package b

import "math/rand"

// Config carries the run's seed, the pattern the analyzer demands.
type Config struct {
	Seed int64
}

func seeded(cfg Config) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return rng.Intn(10)
}

func seededConstant() float64 {
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(4, func(int, int) {})
	return rng.Float64()
}
