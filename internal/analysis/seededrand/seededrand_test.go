package seededrand_test

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
	"streamsim/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	dir := analysistest.TestData(t)
	for _, pkg := range []string{"a", "b"} {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, dir, seededrand.Analyzer, pkg)
		})
	}
}
