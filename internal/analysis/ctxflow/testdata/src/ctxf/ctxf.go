// Package ctxf exercises the ctxflow analyzer: a context received
// must be the context that flows onward, and fresh roots belong to
// main and exported convenience wrappers only.
package ctxf

import "context"

func helperCtx(ctx context.Context) error { return ctx.Err() }

// RunAll is allowed: an exported no-context function is a deliberate
// convenience wrapper that owns its root.
func RunAll() error { return helperCtx(context.Background()) }

// Sever drops the ctx it received: RunAll mints a fresh root one call
// away, which is exactly the "replaced the Context variant" refactor
// hazard. The diagnostic names the chain.
func Sever(ctx context.Context) error {
	return RunAll() // want `ctxf\.Sever drops ctx: ctxf\.Sever → ctxf\.RunAll → context\.Background/TODO \(ctxf\.go:\d+\); call a Context-accepting variant`
}

func wrapper() error { return RunAll() }

// SeverDeep reaches the minted root through two ctx-less hops.
func SeverDeep(ctx context.Context) error {
	return wrapper() // want `ctxf\.SeverDeep drops ctx: ctxf\.SeverDeep → ctxf\.wrapper → ctxf\.RunAll → context\.Background/TODO \(ctxf\.go:\d+\); call a Context-accepting variant`
}

// Mints already has a context and must not create another.
func Mints(ctx context.Context) error {
	return helperCtx(context.Background()) // want `ctxf\.Mints receives a ctx parameter but mints a fresh context root`
}

// MintsTODO is the TODO() flavour of the same mistake.
func MintsTODO(ctx context.Context) error {
	return helperCtx(context.TODO()) // want `ctxf\.MintsTODO receives a ctx parameter but mints a fresh context root`
}

// freshRoot is unexported, so it should be threading its caller's
// context instead of minting one.
func freshRoot() error {
	return helperCtx(context.Background()) // want `unexported ctxf\.freshRoot mints a fresh context root`
}

var global = context.TODO()

// Stashes passes a context unrelated to the one it received.
func Stashes(ctx context.Context) error {
	return helperCtx(global) // want `ctxf\.Stashes passes a context that does not derive from its ctx parameter`
}

// Derives is allowed: both hops of the derivation chain trace back to
// the ctx parameter.
func Derives(ctx context.Context) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	c2, cancel2 := context.WithCancel(c)
	defer cancel2()
	return helperCtx(c2)
}

// Spawns is allowed: the goroutine closes over the received ctx.
func Spawns(ctx context.Context) {
	go func() {
		_ = helperCtx(ctx)
	}()
}

func pure(n int) int { return n + 1 }

// UsesPure is allowed: a ctx-less callee that never reaches a minted
// root is just a computation.
func UsesPure(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return pure(n)
}
