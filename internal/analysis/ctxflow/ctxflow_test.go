package ctxflow

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "ctxf")
}
