// Package ctxflow guards the cancellation chain threaded through the
// simulator in the service work: once a function receives a
// context.Context, that context (or a context derived from it) must be
// what flows onward, and fresh roots must not be minted where a caller
// could have supplied one.
//
// Four rules, each a way a refactor can silently sever cancellation:
//
//  1. A function with a ctx parameter must not call
//     context.Background() or context.TODO() — it already has a
//     context.
//  2. Every context-typed argument such a function passes must derive
//     from its ctx parameter (directly, or through context.With* /
//     other calls fed the parameter).
//  3. Such a function must not call a module function without a ctx
//     parameter whose ctx-less call closure reaches a
//     context.Background()/TODO() call — that is exactly the shape of
//     "replaced RunContext with Run", and the diagnostic names the
//     chain down to the minted root.
//  4. A module function without any ctx parameter must not mint
//     Background()/TODO() unless it is exported: an exported
//     no-context function is a deliberate convenience wrapper that
//     owns its root (workload.Run, trace.Replay, service.New); an
//     unexported one should be threading its caller's context.
//
// Test files are never loaded, and package main is exempt — main is
// where roots legitimately begin.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:            "ctxflow",
	Doc:             "context.Context parameters must flow to every context-accepting callee; no fresh Background/TODO roots outside main and exported wrappers",
	PackagePrefixes: []string{"streamsim/internal"},
	Facts:           callgraph.Facts,
	FactsKey:        callgraph.FactsKey,
	Run:             run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.From(pass)
	if g == nil {
		return fmt.Errorf("ctxflow requires call-graph facts")
	}
	if pass.Pkg.Types.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn := g.Decls[fd]; fn != nil {
				checkFunc(pass, g, fn)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, g *callgraph.Graph, fn *callgraph.Func) {
	hasCtx := len(fn.CtxParams) > 0
	// Rules 1 and 4: minted roots.
	for _, pos := range fn.Contexts {
		if hasCtx {
			pass.Reportf(pos, "%s receives a ctx parameter but mints a fresh context root; derive from ctx instead",
				fn.Short())
		} else if !fn.Exported {
			pass.Reportf(pos, "unexported %s mints a fresh context root; thread a context.Context parameter from the caller instead",
				fn.Short())
		}
	}
	if !hasCtx {
		return
	}
	derived := derivedVars(fn)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: context-typed arguments must derive from ctx.
		for _, arg := range call.Args {
			tv, ok := fn.Pkg.TypesInfo.Types[arg]
			if !ok || !isContext(tv.Type) {
				continue
			}
			if isBackgroundCall(fn.Pkg.TypesInfo, arg) {
				continue // already reported as a minted root
			}
			if !isDerived(fn.Pkg.TypesInfo, derived, arg) {
				pass.Reportf(arg.Pos(), "%s passes a context that does not derive from its ctx parameter",
					fn.Short())
			}
		}
		// Rule 3: a ctx-less callee that transitively mints a root.
		callee := callgraph.StaticCallee(fn.Pkg.TypesInfo, call)
		if callee == nil {
			return true
		}
		node := g.Funcs[callee.FullName()]
		if node == nil || len(node.CtxParams) > 0 {
			return true
		}
		if chain, pos := rootChain(node); chain != nil {
			p := pass.Fset.Position(pos)
			path := fn.Short()
			for _, f := range chain {
				path += " → " + f.Short()
			}
			pass.Reportf(call.Pos(), "%s drops ctx: %s → context.Background/TODO (%s:%d); call a Context-accepting variant",
				fn.Short(), path, filepath.Base(p.Filename), p.Line)
		}
		return true
	})
}

// rootChain reports whether fn's ctx-less call closure reaches a
// context.Background()/TODO() call, returning the chain of functions
// walked (starting at fn) and the minted root's position.
func rootChain(fn *callgraph.Func) ([]*callgraph.Func, token.Pos) {
	type step struct {
		fn   *callgraph.Func
		from *step
	}
	seen := map[*callgraph.Func]bool{fn: true}
	queue := []*step{{fn: fn}}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		if len(st.fn.Contexts) > 0 {
			var chain []*callgraph.Func
			for at := st; at != nil; at = at.from {
				chain = append([]*callgraph.Func{at.fn}, chain...)
			}
			return chain, st.fn.Contexts[0]
		}
		for _, call := range st.fn.Calls {
			callee := call.Callee
			// The closure stays ctx-less: once a callee accepts a
			// context its own callers are responsible for it.
			if seen[callee] || len(callee.CtxParams) > 0 {
				continue
			}
			seen[callee] = true
			queue = append(queue, &step{fn: callee, from: st})
		}
	}
	return nil, token.NoPos
}

// derivedVars computes the set of variables holding contexts derived
// from fn's ctx parameters: the parameters themselves, plus any
// variable assigned from an expression already known to be derived.
// Two passes reach a fixpoint for the chains that occur in practice
// (runCtx := context.WithCancel(ctx); pctx := WithCancel(runCtx)).
func derivedVars(fn *callgraph.Func) map[types.Object]bool {
	info := fn.Pkg.TypesInfo
	derived := map[types.Object]bool{}
	for _, p := range fn.CtxParams {
		derived[p] = true
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromDerived := false
			for _, rhs := range as.Rhs {
				if isDerived(info, derived, rhs) {
					fromDerived = true
				}
			}
			if !fromDerived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && isContext(obj.Type()) {
					derived[obj] = true
				}
			}
			return true
		})
	}
	return derived
}

// isDerived reports whether e evaluates to a context derived from the
// set: the variables themselves, or any call fed a derived context
// (context.WithCancel(ctx), ctx.Value(...), helper(ctx)).
func isDerived(info *types.Info, derived map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return derived[info.Uses[e]]
	case *ast.CallExpr:
		for _, arg := range e.Args {
			if isDerived(info, derived, arg) {
				return true
			}
		}
		// A method on a derived context (ctx.Value, etc.).
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return isDerived(info, derived, sel.X)
		}
	}
	return false
}

// isBackgroundCall reports whether e is a direct
// context.Background()/TODO() call.
func isBackgroundCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := callgraph.StaticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
