// Package analysis is a self-contained, dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough driver machinery to write
// the simulator's custom invariant checkers (cmd/simlint) against the
// standard library's go/ast and go/types.
//
// The shape deliberately mirrors the upstream API (Analyzer, Pass,
// Diagnostic, Reportf) so the analyzers can be ported to the real
// framework wholesale if the x/tools dependency ever becomes available;
// until then the module stays dependency-free and the toolchain already
// in the build image is all that is needed.
//
// Type information comes from compiler export data produced by
// `go list -export` (see Load), exactly as production multicheckers do,
// so analyzers see fully type-checked packages without re-checking the
// whole dependency graph from source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `simlint -list`.
	Doc string
	// PackagePrefixes restricts the driver to packages whose import
	// path starts with one of these prefixes. Empty means every
	// package. Tests bypass the filter and exercise the analyzer
	// directly on testdata packages.
	PackagePrefixes []string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
	// Facts, if set, is invoked once per suite run over every loaded
	// package and its result is handed to each Pass as ModuleFacts.
	// This is how flow-aware analyzers see across package boundaries:
	// the facts builder walks the whole module, the per-package Run
	// only reports.
	Facts func(pkgs []*Package) (any, error)
	// FactsKey names the facts bundle. Analyzers sharing a key share
	// one Facts invocation per RunSuite call (func values are not
	// comparable, so memoization is by key). Required when Facts is
	// set.
	FactsKey string
	// Severity classifies the analyzer's findings for drivers: ""
	// and "error" fail the run, "warn" reports without failing — the
	// tier a rule lands at while a stricter analyzer subsumes it.
	Severity string
}

// Severities.
const (
	SeverityError = "error"
	SeverityWarn  = "warn"
)

// EffectiveSeverity resolves the default: an unset Severity is an
// error.
func (a *Analyzer) EffectiveSeverity() string {
	if a.Severity == "" {
		return SeverityError
	}
	return a.Severity
}

// AppliesTo reports whether the driver should run the analyzer on the
// package with the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.PackagePrefixes) == 0 {
		return true
	}
	for _, p := range a.PackagePrefixes {
		if strings.HasPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Pkg is the loaded package, including type information.
	Pkg    *Package
	Report func(Diagnostic)
	// TypesInfo is Pkg's expression/identifier type information,
	// hoisted for x/tools-style pass.TypesInfo access.
	TypesInfo *types.Info
	// ModuleFacts is the result of Analyzer.Facts over the whole
	// loaded package set (nil when the analyzer declares no Facts).
	ModuleFacts any
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file; most
// analyzers exempt test code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzer executes a over pkg and returns its diagnostics with
// //simlint:ignore suppressions applied, sorted by position. If the
// analyzer declares Facts, they are computed over pkg alone; use
// RunAnalyzerFacts (or RunSuite) to share facts built over a wider
// package set.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var facts any
	if a.Facts != nil {
		var err error
		if facts, err = a.Facts([]*Package{pkg}); err != nil {
			return nil, fmt.Errorf("%s: facts: %w", a.Name, err)
		}
	}
	return RunAnalyzerFacts(a, pkg, facts)
}

// RunAnalyzerFacts is RunAnalyzer with the module facts supplied by the
// caller, for drivers that compute them over more packages than the one
// being analyzed.
func RunAnalyzerFacts(a *Analyzer, pkg *Package, facts any) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:    a,
		Fset:        pkg.Fset,
		Files:       pkg.Files,
		Pkg:         pkg,
		TypesInfo:   pkg.TypesInfo,
		ModuleFacts: facts,
		Report:      func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	diags = filterSuppressed(a.Name, pkg, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Finding is one diagnostic paired with the analyzer and package that
// produced it, as returned by RunSuite.
type Finding struct {
	Analyzer *Analyzer
	Pkg      *Package
	Diag     Diagnostic
}

// RunSuite runs every applicable analyzer over every package. Module
// facts are computed once per FactsKey over the full package set, so
// analyzers that share a facts layer (the call graph) compose without
// rebuilding it. Findings come back grouped by package (in the loaded
// order) and sorted by position within each analyzer's output.
func RunSuite(pkgs []*Package, suite []*Analyzer) ([]Finding, error) {
	factsByKey := map[string]any{}
	for _, a := range suite {
		if a.Facts == nil {
			continue
		}
		if a.FactsKey == "" {
			return nil, fmt.Errorf("%s: Facts set without FactsKey", a.Name)
		}
		if _, done := factsByKey[a.FactsKey]; done {
			continue
		}
		facts, err := a.Facts(pkgs)
		if err != nil {
			return nil, fmt.Errorf("%s: facts %q: %w", a.Name, a.FactsKey, err)
		}
		factsByKey[a.FactsKey] = facts
	}
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := RunAnalyzerFacts(a, pkg, factsByKey[a.FactsKey])
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				out = append(out, Finding{Analyzer: a, Pkg: pkg, Diag: d})
			}
		}
	}
	return out, nil
}

// ignoreDirective matches "//simlint:ignore name1,name2" comments.
var ignoreDirective = regexp.MustCompile(`^//simlint:ignore\s+([\w,]+)`)

// filterSuppressed drops diagnostics whose line (or the line below a
// standalone directive comment) carries //simlint:ignore <name>.
func filterSuppressed(name string, pkg *Package, diags []Diagnostic) []Diagnostic {
	suppressed := map[string]map[int]bool{} // filename -> line -> ignored
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				ok := false
				for _, n := range names {
					if n == name || n == "all" {
						ok = true
					}
				}
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				lines := suppressed[p.Filename]
				if lines == nil {
					lines = map[int]bool{}
					suppressed[p.Filename] = lines
				}
				lines[p.Line] = true
				// A directive alone on its line suppresses the next line.
				lines[p.Line+1] = true
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if suppressed[p.Filename][p.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
