// Package analysis is a self-contained, dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough driver machinery to write
// the simulator's custom invariant checkers (cmd/simlint) against the
// standard library's go/ast and go/types.
//
// The shape deliberately mirrors the upstream API (Analyzer, Pass,
// Diagnostic, Reportf) so the analyzers can be ported to the real
// framework wholesale if the x/tools dependency ever becomes available;
// until then the module stays dependency-free and the toolchain already
// in the build image is all that is needed.
//
// Type information comes from compiler export data produced by
// `go list -export` (see Load), exactly as production multicheckers do,
// so analyzers see fully type-checked packages without re-checking the
// whole dependency graph from source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `simlint -list`.
	Doc string
	// PackagePrefixes restricts the driver to packages whose import
	// path starts with one of these prefixes. Empty means every
	// package. Tests bypass the filter and exercise the analyzer
	// directly on testdata packages.
	PackagePrefixes []string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// AppliesTo reports whether the driver should run the analyzer on the
// package with the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.PackagePrefixes) == 0 {
		return true
	}
	for _, p := range a.PackagePrefixes {
		if strings.HasPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Pkg is the loaded package, including type information.
	Pkg    *Package
	Report func(Diagnostic)
	// TypesInfo is Pkg's expression/identifier type information,
	// hoisted for x/tools-style pass.TypesInfo access.
	TypesInfo *types.Info
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file; most
// analyzers exempt test code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzer executes a over pkg and returns its diagnostics with
// //simlint:ignore suppressions applied, sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	diags = filterSuppressed(a.Name, pkg, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ignoreDirective matches "//simlint:ignore name1,name2" comments.
var ignoreDirective = regexp.MustCompile(`^//simlint:ignore\s+([\w,]+)`)

// filterSuppressed drops diagnostics whose line (or the line below a
// standalone directive comment) carries //simlint:ignore <name>.
func filterSuppressed(name string, pkg *Package, diags []Diagnostic) []Diagnostic {
	suppressed := map[string]map[int]bool{} // filename -> line -> ignored
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				ok := false
				for _, n := range names {
					if n == name || n == "all" {
						ok = true
					}
				}
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				lines := suppressed[p.Filename]
				if lines == nil {
					lines = map[int]bool{}
					suppressed[p.Filename] = lines
				}
				lines[p.Line] = true
				// A directive alone on its line suppresses the next line.
				lines[p.Line+1] = true
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if suppressed[p.Filename][p.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
