// Package lockdisc checks mutex discipline in the concurrent layers
// of the simulator (the simd job service and the sweep scheduler),
// per function:
//
//  1. A Lock()/RLock() whose critical section a return statement can
//     exit without the matching deferred Unlock leaks the lock on
//     that path — the classic multi-return hazard. A Lock with no
//     Unlock at all is flagged unconditionally.
//  2. sync types must not be copied: value receivers, value
//     parameters, assignments and call arguments whose type contains
//     a Mutex/RWMutex/WaitGroup/Once/Cond by value.
//  3. Blocking operations must not run while a lock is held: bare
//     channel sends/receives, selects without a default, Wait on
//     WaitGroup/Cond, time.Sleep, and calls into net/http. A channel
//     operation inside a select that has a default case is
//     non-blocking and allowed — that is the service pool's
//     backpressure idiom.
//
// The critical-section model is positional (Lock position to matching
// Unlock position, or function end when deferred), which is exact for
// the straight-line lock usage this repo allows and keeps the
// analyzer dependency-free of a CFG.
package lockdisc

import (
	"go/ast"
	"go/token"
	"go/types"

	"streamsim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:            "lockdisc",
	Doc:             "mutex discipline: deferred unlocks on early-return paths, no sync copies, no blocking calls under a held lock",
	PackagePrefixes: []string{"streamsim/internal/service", "streamsim/internal/sweeprun"},
	Run:             run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// region is one critical section: from the Lock call to the matching
// Unlock (function end when the unlock is deferred or missing).
type region struct {
	name     string // lock expression, e.g. "s.mu"
	lockPos  token.Pos
	end      token.Pos
	deferred bool
	unlocked bool // a plain (non-deferred) Unlock was seen
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	checkCopies(pass, fd)
	regions := lockRegions(pass, fd)
	if len(regions) == 0 {
		return
	}
	held := func(pos token.Pos) *region {
		for _, r := range regions {
			if pos > r.lockPos && pos < r.end {
				return r
			}
		}
		return nil
	}
	// Rule 1: returns inside a section that is not deferred-unlocked.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if r := held(ret.Pos()); r != nil && !r.deferred {
			pass.Reportf(r.lockPos, "%s.Lock() is not released by a deferred Unlock, and a return at line %d can exit with it held",
				r.name, pass.Fset.Position(ret.Pos()).Line)
		}
		return true
	})
	for _, r := range regions {
		if !r.deferred && !r.unlocked {
			pass.Reportf(r.lockPos, "%s.Lock() with no matching Unlock in this function", r.name)
		}
	}
	checkBlocking(pass, fd, held)
}

// lockRegions scans the body for Lock/RLock calls on sync mutexes and
// pairs each with its closing Unlock.
func lockRegions(pass *analysis.Pass, fd *ast.FuncDecl) []*region {
	var regions []*region
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isMutex(pass.TypesInfo.Types[sel.X].Type) {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			regions = append(regions, &region{
				name:    types.ExprString(sel.X),
				lockPos: call.Pos(),
				end:     fd.Body.End(),
			})
		}
		return true
	})
	// Close each region at its matching Unlock. Deferred unlocks hold
	// to function end by construction.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		case *ast.ExprStmt:
			c, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			call = c
		default:
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isMutex(pass.TypesInfo.Types[sel.X].Type) {
			return true
		}
		if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
			return true
		}
		name := types.ExprString(sel.X)
		for _, r := range regions {
			if r.name != name || call.Pos() < r.lockPos || r.deferred || r.unlocked {
				continue
			}
			if deferred {
				r.deferred = true
			} else {
				r.unlocked = true
				r.end = call.Pos()
			}
			break
		}
		return true
	})
	return regions
}

// checkBlocking flags blocking operations whose position falls inside
// a held critical section.
func checkBlocking(pass *analysis.Pass, fd *ast.FuncDecl, held func(token.Pos) *region) {
	// Channel operations that are a comm clause of a select with a
	// default case never block; collect them so the walk below can
	// skip them.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if r := held(sel.Pos()); r != nil {
				pass.Reportf(sel.Pos(), "select with no default can block while %s is locked", r.name)
			}
		}
		// Comm clauses are covered by the select-level verdict either
		// way; keep the channel-op walk from reporting them again.
		for _, c := range sel.Body.List {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				nonBlocking[comm] = true
				if es, ok := comm.(*ast.ExprStmt); ok {
					nonBlocking[es.X] = true
				}
				if as, ok := comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					nonBlocking[as.Rhs[0]] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if nonBlocking[n] {
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if r := held(n.Pos()); r != nil {
				pass.Reportf(n.Pos(), "channel send can block while %s is locked", r.name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlocking[n] {
				if r := held(n.Pos()); r != nil {
					pass.Reportf(n.Pos(), "channel receive can block while %s is locked", r.name)
				}
			}
		case *ast.CallExpr:
			if r := held(n.Pos()); r != nil {
				if what := blockingCall(pass.TypesInfo, n); what != "" {
					pass.Reportf(n.Pos(), "%s while %s is locked", what, r.name)
				}
			}
		}
		return true
	})
}

// blockingCall classifies call expressions that can block
// indefinitely: sync waits, sleeps, and anything in net/http.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name == "Wait" {
		if t := info.Types[sel.X].Type; t != nil && isSyncType(t, "WaitGroup", "Cond") {
			return "blocking " + types.ExprString(sel.X) + ".Wait()"
		}
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "net/http":
			return "net/http call " + fn.Name()
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep"
			}
		}
	}
	return ""
}

// isMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return isSyncType(t, "Mutex", "RWMutex")
}

// isSyncType reports whether t is one of the named sync package types.
func isSyncType(t types.Type, names ...string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// checkCopies flags sync-containing values copied by receiver,
// parameter, assignment or call argument.
func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	flagFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := info.Types[f.Type].Type
			if t != nil && containsSync(t, nil) {
				pass.Reportf(f.Type.Pos(), "%s copies %s, which contains a sync type; use a pointer", what, t.String())
			}
		}
	}
	flagFields(fd.Recv, "value receiver")
	flagFields(fd.Type.Params, "value parameter")
	copied := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			tv, ok := info.Types[e]
			// A type expression (new(expvar.Map), make(chan T)) names
			// the type; only values copy.
			if !ok || tv.IsType() || tv.Type == nil {
				return false
			}
			return containsSync(tv.Type, nil)
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if copied(rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies %s, which contains a sync type", types.ExprString(rhs))
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversions do not copy locks meaningfully differently, skip
			}
			for _, arg := range n.Args {
				if copied(arg) {
					pass.Reportf(arg.Pos(), "call argument copies %s, which contains a sync type", types.ExprString(arg))
				}
			}
		}
		return true
	})
}

// containsSync reports whether t embeds a sync.Mutex, RWMutex,
// WaitGroup, Once or Cond by value.
func containsSync(t types.Type, seen map[*types.Named]bool) bool {
	if named, ok := t.(*types.Named); ok {
		if seen[named] {
			return false
		}
		if seen == nil {
			seen = map[*types.Named]bool{}
		}
		seen[named] = true
		if isSyncType(named, "Mutex", "RWMutex", "WaitGroup", "Once", "Cond") {
			return true
		}
		return containsSync(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsSync(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSync(t.Elem(), seen)
	}
	return false
}
