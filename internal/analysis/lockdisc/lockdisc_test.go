package lockdisc

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
)

func TestLockdisc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "lock")
}
