// Package lock exercises the lockdisc analyzer: deferred unlocks on
// early-return paths, no sync copies, no blocking operations while a
// lock is held.
package lock

import (
	"net/http"
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	items map[int]int
	ch    chan int
}

// Get is allowed: the deferred unlock covers both returns.
func (s *store) Get(k int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.items[k]
	if !ok {
		return 0, false
	}
	return v, true
}

// Leaky's early return exits with the mutex held.
func (s *store) Leaky(k int) (int, bool) {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released by a deferred Unlock, and a return at line \d+ can exit with it held`
	v, ok := s.items[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// Never locks and walks away.
func (s *store) Never() {
	s.mu.Lock() // want `s\.mu\.Lock\(\) with no matching Unlock in this function`
	s.items[0] = 1
}

// Drain is allowed: the manual unlock releases the mutex before the
// blocking wait (the worker-pool drain idiom), and nothing returns
// early.
func (s *store) Drain() int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	s.wg.Wait()
	return n
}

func (s *store) WaitsLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `blocking s\.wg\.Wait\(\) while s\.mu is locked`
}

func (s *store) SendsLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send can block while s\.mu is locked`
}

// TrySend is allowed: a send inside a select with a default case
// never blocks (the service pool's backpressure idiom).
func (s *store) TrySend(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

func (s *store) SelectLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default can block while s\.mu is locked`
	case v := <-s.ch:
		return v
	}
}

func (s *store) RecvLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive can block while s\.mu is locked`
}

func (s *store) SleepsLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is locked`
}

func (s *store) FetchesLocked(c *http.Client, url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := c.Get(url) // want `net/http call Get while s\.mu is locked`
	if err == nil {
		resp.Body.Close()
	}
}

type wrapped struct {
	mu sync.Mutex
	n  int
}

// ByValue's receiver copies the mutex on every call.
func (w wrapped) ByValue() int { // want `value receiver copies lock\.wrapped, which contains a sync type; use a pointer`
	return w.n
}

// ByPointer is the allowed form.
func (w *wrapped) ByPointer() int { return w.n }

func process(w wrapped) int { // want `value parameter copies lock\.wrapped, which contains a sync type; use a pointer`
	return w.n
}

func snapshot(w *wrapped) int {
	cp := *w // want `assignment copies \*w, which contains a sync type`
	return cp.n
}

func passes(w *wrapped) int {
	return process(*w) // want `call argument copies \*w, which contains a sync type`
}
