package borrowck

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
)

func TestBorrowck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "bor")
}
