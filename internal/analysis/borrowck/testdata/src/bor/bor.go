// Package bor exercises the borrowck analyzer: a //simlint:borrowed
// parameter is lent for the duration of the call, and every way of
// keeping it alive past the return is a finding.
package bor

var leak []int

// Keep stores the lent batch into a package variable.
//
//simlint:borrowed batch
func Keep(batch []int) {
	leak = batch // want `parameter batch of bor\.Keep is //simlint:borrowed but escapes: stored to package variable leak \(bor\.go:\d+\)`
}

type sink struct{ kept []int }

// Stash retains the batch through a struct field.
//
//simlint:borrowed batch
func (s *sink) Stash(batch []int) {
	s.kept = batch // want `parameter batch of \(\*bor\.sink\)\.Stash is //simlint:borrowed but escapes: stored to field or element s\.kept \(bor\.go:\d+\)`
}

// Echo hands the borrow back out through its return value.
//
//simlint:borrowed batch
func Echo(batch []int) []int {
	return batch // want `parameter batch of bor\.Echo is //simlint:borrowed but escapes: returned to the caller \(bor\.go:\d+\)`
}

// Publish sends the borrow to whoever drains the channel.
//
//simlint:borrowed batch
func Publish(batch []int, ch chan []int) {
	ch <- batch // want `parameter batch of bor\.Publish is //simlint:borrowed but escapes: sent on a channel \(bor\.go:\d+\)`
}

// Spawn lets a goroutine outlive the call with the borrow in hand.
//
//simlint:borrowed batch
func Spawn(batch []int) {
	go consume(batch) // want `parameter batch of bor\.Spawn is //simlint:borrowed but escapes: passed to a goroutine \(bor\.go:\d+\)`
}

func consume(b []int) { _ = b }

var hooks []func()

// Defer retains the borrow inside a stored closure.
//
//simlint:borrowed batch
func Defer(batch []int) {
	hooks = append(hooks, func() { // want `parameter batch of bor\.Defer is //simlint:borrowed but escapes: captured by a func literal \(bor\.go:\d+\)`
		_ = batch[0]
	})
}

var chainLeak []int

// Chain forwards the borrow two hops before it is retained; the
// finding reports the full forwarding chain, anchored at the site.
//
//simlint:borrowed b
func Chain(b []int) {
	mid(b)
}

func mid(b []int) {
	deep(b)
}

func deep(b []int) {
	chainLeak = b // want `parameter b of bor\.Chain is //simlint:borrowed but escapes via bor\.Chain → bor\.mid → bor\.deep: stored to package variable chainLeak \(bor\.go:\d+\)`
}

// Acc is all scalars, like mem.Access: copying an element out of a
// borrowed batch carries no reference and ends the borrow.
type Acc struct {
	Addr uint64
	Kind int
}

var lastAcc Acc

// Sample copies a value element out; allowed.
//
//simlint:borrowed accs
func Sample(accs []Acc) {
	lastAcc = accs[0]
}

// send reads the lent batch; its own declaration is verified, so
// forwarding a borrow to it is allowed by induction.
//
//simlint:borrowed b
func send(b []int) int {
	total := 0
	for _, v := range b {
		total += v
	}
	return total
}

// Relay forwards its borrow only to another borrowed parameter.
//
//simlint:borrowed batch
func Relay(batch []int) int {
	return send(batch)
}

// Consumer stands in for dynamic dispatch: the static call graph stops
// at interface methods, the same seam every call-graph analyzer draws.
type Consumer interface {
	Consume(b []int)
}

// Dispatch hands the borrow to an interface method; allowed.
//
//simlint:borrowed batch
func Dispatch(c Consumer, batch []int) {
	c.Consume(batch)
}

// probe mirrors cache.Prober: the receiver itself is lent for the
// batch.
type probe struct {
	tags []uint64
	hits int
}

// Touch reads through the borrowed receiver and bumps its own
// counter; neither retains the receiver.
//
//simlint:borrowed p
func (p *probe) Touch(addr uint64) bool {
	for _, t := range p.tags {
		if t == addr {
			p.hits++
			return true
		}
	}
	return false
}

// Mark writes through the borrowed snapshot; mutating lent storage is
// the point of lending it.
//
//simlint:borrowed p
func (p *probe) Mark(i int, v uint64) {
	p.tags[i] = v
}

var waived []int

// Waived retains the batch, but the site carries an explicit
// suppression, so the finding is dropped like any other analyzer's.
//
//simlint:borrowed batch
func Waived(batch []int) {
	//simlint:ignore borrowck
	waived = batch
}
