// Package borrowck enforces the batch-scope borrowing invariant: a
// parameter whose declaration doc carries //simlint:borrowed <name>
// (receiver names work too) is lent to the callee for the duration of
// the call — a decoded trace batch handed to ReplayStoreMulti
// followers, a tap-event slice, a cache.Prober snapshot — and the
// callee must not retain it. No stores to struct fields or package
// variables, no capture by goroutine or func literal, no return, no
// channel send.
//
// The check is transitive: passing the value to another module
// function recurses into that callee's treatment of the corresponding
// parameter, and findings report the forwarding chain the way hotpath
// reports call chains. It stops at:
//
//   - callee parameters that are themselves //simlint:borrowed — they
//     are verified at their own declaration, so by induction a
//     borrowed value may be forwarded to one freely;
//   - dynamic calls and out-of-module callees — the same deliberate
//     seams the call graph's static edges draw;
//   - values whose types cannot carry a reference (copied-out structs
//     of scalars, numeric elements): they end the borrow by value.
//
// See callgraph.ParamRetention for the site and alias rules.
package borrowck

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:            "borrowck",
	Doc:             "//simlint:borrowed parameters must not be retained past the call",
	PackagePrefixes: []string{"streamsim/internal"},
	Facts:           callgraph.Facts,
	FactsKey:        callgraph.FactsKey,
	Run:             run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.From(pass)
	if g == nil {
		return fmt.Errorf("borrowck requires call-graph facts")
	}
	c := &checker{g: g, memo: map[frame][]escape{}, active: map[frame]bool{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn := g.Decls[fd]
			if fn == nil {
				continue
			}
			for _, idx := range fn.Borrowed {
				for _, e := range c.escapes(fn, idx) {
					report(pass, fn, idx, e)
				}
			}
		}
	}
	return nil
}

// frame is one (function, signature position) retention question.
type frame struct {
	fn    *callgraph.Func
	param int
}

// pathStep is one forward taken from the root toward the retain site.
type pathStep struct {
	pos    token.Pos // call site in the previous function
	callee *callgraph.Func
}

// escape is one way a borrowed value outlives the root call.
type escape struct {
	fn   *callgraph.Func // function containing the site
	site callgraph.RetainSite
	path []pathStep // forwards from the root to fn (empty: site is local)
}

// checker memoizes retention summaries across roots; the active set
// breaks forwarding cycles optimistically, mirroring hotpath's seen
// set (a cycle adds no new sites).
type checker struct {
	g      *callgraph.Graph
	memo   map[frame][]escape
	active map[frame]bool
}

func (c *checker) escapes(fn *callgraph.Func, param int) []escape {
	f := frame{fn, param}
	if out, ok := c.memo[f]; ok {
		return out
	}
	if c.active[f] {
		return nil
	}
	c.active[f] = true
	ret := c.g.ParamRetention(fn, param)
	out := []escape{}
	for _, s := range ret.Sites {
		out = append(out, escape{fn: fn, site: s})
	}
	for _, fw := range ret.Forwards {
		if borrowedAt(fw.Callee, fw.Param) {
			continue // verified at its own declaration
		}
		for _, e := range c.escapes(fw.Callee, fw.Param) {
			path := append([]pathStep{{fw.Pos, fw.Callee}}, e.path...)
			out = append(out, escape{fn: e.fn, site: e.site, path: path})
		}
	}
	delete(c.active, f)
	c.memo[f] = out
	return out
}

// borrowedAt reports whether fn declares the given signature position
// //simlint:borrowed.
func borrowedAt(fn *callgraph.Func, param int) bool {
	for _, b := range fn.Borrowed {
		if b == param {
			return true
		}
	}
	return false
}

// report emits one diagnostic, anchored at the deepest position along
// the forwarding chain that still lies in the package being analyzed.
func report(pass *analysis.Pass, root *callgraph.Func, param int, e escape) {
	what := "parameter " + callgraph.ParamAt(root, param).Name()
	if param < 0 {
		what = "receiver " + callgraph.ParamAt(root, param).Name()
	}
	anchor := e.site.Pos
	if e.fn.Pkg != pass.Pkg {
		at := root
		anchor = e.path[0].pos
		for _, st := range e.path {
			if at.Pkg != pass.Pkg {
				break
			}
			anchor = st.pos
			at = st.callee
		}
	}
	p := pass.Fset.Position(e.site.Pos)
	where := fmt.Sprintf("%s (%s:%d)", e.site.What, filepath.Base(p.Filename), p.Line)
	if len(e.path) == 0 {
		pass.Reportf(anchor, "%s of %s is //simlint:borrowed but escapes: %s",
			what, root.Short(), where)
		return
	}
	chain := root.Short()
	for _, st := range e.path {
		chain += " → " + st.callee.Short()
	}
	pass.Reportf(anchor, "%s of %s is //simlint:borrowed but escapes via %s: %s",
		what, root.Short(), chain, where)
}
