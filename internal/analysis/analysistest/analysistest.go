// Package analysistest runs an analyzer over packages laid out under a
// testdata directory and checks its diagnostics against expectations
// written in the sources, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout: testdata/src/<pkg>/*.go. Expectations are comments of the
// form
//
//	code() // want "regexp" "another regexp"
//
// Each quoted regexp must match exactly one diagnostic reported on that
// line; diagnostics with no matching expectation, and expectations with
// no matching diagnostic, fail the test.
//
// Imports inside testdata packages resolve first against sibling
// directories under testdata/src (so tests can fake project packages
// like "trace" or "config"), then against the real toolchain's export
// data, so standard-library imports work normally.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"streamsim/internal/analysis"
)

// Run loads each named package from dir/src and applies a to it,
// checking diagnostics against the packages' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, dir, a, pkg)
	}
}

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := &loader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*loadedPkg{},
	}
	lp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("%s: loading testdata package %q: %v", a.Name, pkgpath, err)
	}
	pkg := &analysis.Package{
		Path:      pkgpath,
		Dir:       filepath.Join(ld.root, pkgpath),
		Fset:      ld.fset,
		Files:     lp.files,
		Types:     lp.types,
		TypesInfo: lp.info,
	}
	// Module facts see every testdata package the target pulled in, so
	// fixtures can exercise cross-package call chains. The target
	// comes first; siblings follow in path order for determinism.
	var facts any
	if a.Facts != nil {
		pkgs := []*analysis.Package{pkg}
		var siblings []string
		for path := range ld.pkgs {
			if path != pkgpath {
				siblings = append(siblings, path)
			}
		}
		sort.Strings(siblings)
		for _, path := range siblings {
			sib := ld.pkgs[path]
			pkgs = append(pkgs, &analysis.Package{
				Path:      path,
				Dir:       filepath.Join(ld.root, path),
				Fset:      ld.fset,
				Files:     sib.files,
				Types:     sib.types,
				TypesInfo: sib.info,
			})
		}
		if facts, err = a.Facts(pkgs); err != nil {
			t.Fatalf("%s: facts: %v", a.Name, err)
		}
	}
	diags, err := analysis.RunAnalyzerFacts(a, pkg, facts)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	check(t, a, pkg, diags)
}

// wants collects the expected-diagnostic regexps per file and line.
type wantKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// check matches diagnostics against want comments.
func check(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pattern := q
					if q[0] == '"' {
						var err error
						if pattern, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
					} else {
						pattern = strings.Trim(q, "`")
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[key] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, a.Name, d.Message)
			continue
		}
		wants[key][matched] = nil // consumed
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				t.Errorf("%s:%d: expected %s diagnostic matching %q, got none", k.file, k.line, a.Name, re)
			}
		}
	}
}

// loader type-checks testdata packages, resolving local imports from
// source and everything else from toolchain export data.
type loader struct {
	root  string
	fset  *token.FileSet
	pkgs  map[string]*loadedPkg
	gcImp types.Importer
}

type loadedPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// exportCache shares `go list -export` results across all tests in the
// process; stdlib export data is immutable for a given toolchain.
var exportCache = struct {
	sync.Mutex
	lookup analysis.ExportLookup
}{lookup: analysis.ExportLookup{}}

// resolveExport returns the export data file for a non-testdata import.
func resolveExport(path string) (string, error) {
	exportCache.Lock()
	defer exportCache.Unlock()
	if f, ok := exportCache.lookup[path]; ok {
		return f, nil
	}
	fresh, err := analysis.LoadExportData(".", path)
	if err != nil {
		return "", err
	}
	for p, f := range fresh {
		exportCache.lookup[p] = f
	}
	f, ok := exportCache.lookup[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

// Import implements types.Importer: testdata sibling packages load
// from source, everything else from toolchain export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	if l.gcImp == nil {
		// One importer instance per loader keeps package identities
		// consistent across imports.
		l.gcImp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			f, err := resolveExport(path)
			if err != nil {
				return nil, err
			}
			return os.Open(f)
		})
	}
	return l.gcImp.Import(path)
}

// load parses and type-checks one testdata package (cached).
func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type checking %s: %v", path, err)
	}
	lp := &loadedPkg{files: files, types: tpkg, info: info}
	l.pkgs[path] = lp
	return lp, nil
}
