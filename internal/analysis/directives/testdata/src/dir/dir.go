// Package dir exercises the directives analyzer: every //simlint:*
// comment must parse, resolve and attach to a declaration. The
// analyzer anchors diagnostics at the directive itself, so the want
// expectations ride inside the directive comments — SplitDirective
// cuts the directive at an embedded "//" remark, so the trailing want
// text never reads as arguments.
package dir

// Good is properly annotated: a bare func verb on a declaration.
//
//simlint:hotpath
func Good() {}

type holder struct{}

// GoodBorrow lends both its receiver and its parameter, in the
// comma-separated form.
//
//simlint:borrowed h,b
func (h *holder) GoodBorrow(b []int) { _ = b }

// Timed carries arguments, which only _test.go gate files may.
//
//simlint:hotpath extra // want `//simlint:hotpath takes no arguments outside _test\.go gate files`
func Timed() {}

// Lend forgets to say which value is lent.
//
//simlint:borrowed // want `//simlint:borrowed names no parameters; say which values are lent`
func Lend(batch []int) { _ = batch }

// Lend2 names a parameter that does not exist.
//
//simlint:borrowed batches // want `//simlint:borrowed names "batches", which is not a receiver or parameter of Lend2`
func Lend2(batch []int) { _ = batch }

func orphans() {
	//simlint:deterministic // want `//simlint:deterministic is not attached to a function declaration; the annotation is dead`
	//simlint:borrowed batch // want `//simlint:borrowed is not attached to a function declaration; the annotation is dead`
	//simlint:hotpat // want `unknown simlint directive "hotpat"`
	//simlint: // want `empty simlint directive`
	_ = 0
}

func suppressions() {
	//simlint:ignore maporder,detflow
	_ = 0
	//simlint:ignore maporder, detflow // want `//simlint:ignore list must be one comma-separated token without spaces \(the suppression matcher reads only the first token\)`
	_ = 1
	//simlint:ignore nosuchpass // want `//simlint:ignore names unknown analyzer "nosuchpass"`
	_ = 2
	//simlint:ignore // want `//simlint:ignore names no analyzers; say which findings are waived`
	_ = 3
	//simlint:ignore statecov,mergesound
	_ = 4
}

// Ledger is a well-formed counters struct with a class-scoped and a
// global exemption.
//
//simlint:state counters
//simlint:statederived Total
//simlint:statederived Spill merge adopt
type Ledger struct {
	Hits  uint64
	Total uint64
	Spill uint64
}

// Engine is a well-formed plain state struct.
//
//simlint:state
type Engine struct {
	Ledger
	ticks uint64
}

// GoodMerge carries a known class.
//
//simlint:statefull merge
func (e *Engine) GoodMerge(o *Engine) { e.ticks += o.ticks }

// Fahrenheit is annotated state but is no struct.
//
//simlint:state // want `//simlint:state must annotate a struct type; Fahrenheit is not a struct`
type Fahrenheit float64

// Sized passes an argument other than the counters kind.
//
//simlint:state sized // want `//simlint:state takes no argument other than the "counters" kind`
type Sized struct{ n int }

// Loose rides on a struct that never declares itself state.
//
//simlint:statederived n // want `//simlint:statederived on Loose is orphaned: the type carries no //simlint:state directive`
type Loose struct{ n int }

// Misfield names a field the struct does not have; Misclass restricts
// to an unknown class; Unnamed forgets the field.
//
//simlint:state
//simlint:statederived gone // want `//simlint:statederived names "gone", which is not a field of Misfield`
//simlint:statederived n mangle // want `//simlint:statederived names unknown class "mangle"`
//simlint:statederived // want `//simlint:statederived names no field; say which field is exempt`
type Misfield struct{ n int }

// ClassyLess forgets its class, ClassyWrong misspells it.
//
//simlint:statefull // want `//simlint:statefull needs exactly one class argument \(fork, clone, merge, adopt, reset, restore or checkpoint\)`
func ClassyLess() {}

//simlint:statefull mangle // want `//simlint:statefull names unknown class "mangle"`
func ClassyWrong() {}

func stateOrphans() {
	//simlint:state // want `//simlint:state is not attached to a type declaration; the annotation is dead`
	//simlint:statefull merge // want `//simlint:statefull is not attached to a function declaration; the annotation is dead`
	//simlint:statederived n // want `//simlint:statederived is not attached to a type declaration; the annotation is dead`
	_ = 0
}
