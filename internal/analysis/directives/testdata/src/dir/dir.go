// Package dir exercises the directives analyzer: every //simlint:*
// comment must parse, resolve and attach to a declaration. The
// analyzer anchors diagnostics at the directive itself, so the want
// expectations ride inside the directive comments — SplitDirective
// cuts the directive at an embedded "//" remark, so the trailing want
// text never reads as arguments.
package dir

// Good is properly annotated: a bare func verb on a declaration.
//
//simlint:hotpath
func Good() {}

type holder struct{}

// GoodBorrow lends both its receiver and its parameter, in the
// comma-separated form.
//
//simlint:borrowed h,b
func (h *holder) GoodBorrow(b []int) { _ = b }

// Timed carries arguments, which only _test.go gate files may.
//
//simlint:hotpath extra // want `//simlint:hotpath takes no arguments outside _test\.go gate files`
func Timed() {}

// Lend forgets to say which value is lent.
//
//simlint:borrowed // want `//simlint:borrowed names no parameters; say which values are lent`
func Lend(batch []int) { _ = batch }

// Lend2 names a parameter that does not exist.
//
//simlint:borrowed batches // want `//simlint:borrowed names "batches", which is not a receiver or parameter of Lend2`
func Lend2(batch []int) { _ = batch }

func orphans() {
	//simlint:deterministic // want `//simlint:deterministic is not attached to a function declaration; the annotation is dead`
	//simlint:borrowed batch // want `//simlint:borrowed is not attached to a function declaration; the annotation is dead`
	//simlint:hotpat // want `unknown simlint directive "hotpat"`
	//simlint: // want `empty simlint directive`
	_ = 0
}

func suppressions() {
	//simlint:ignore maporder,detflow
	_ = 0
	//simlint:ignore maporder, detflow // want `//simlint:ignore list must be one comma-separated token without spaces \(the suppression matcher reads only the first token\)`
	_ = 1
	//simlint:ignore nosuchpass // want `//simlint:ignore names unknown analyzer "nosuchpass"`
	_ = 2
	//simlint:ignore // want `//simlint:ignore names no analyzers; say which findings are waived`
	_ = 3
}
