// Package directives makes every //simlint:* comment a checked
// artifact. Annotations are load-bearing in this repo — hotpath and
// detflow prove invariants from them, borrowck trusts them across
// calls, ignore suppresses findings — so a misspelled verb, an
// argument that no longer names anything, or a directive orphaned by
// a refactor must be a lint error, not a silently dead marker.
//
// Rules, per directive:
//
//   - the verb must be one of ignore, hotpath, coldpath,
//     deterministic, configload, borrowed;
//   - ignore must name known analyzers (or "all") in the canonical
//     comma-separated form the suppression matcher reads;
//   - hotpath, coldpath, deterministic and configload must sit in a
//     function declaration's doc comment and take no arguments —
//     arguments are only meaningful in _test.go gate files, which the
//     simlint driver never loads (the static-vs-gate match tests
//     validate those);
//   - borrowed must sit in a function declaration's doc comment and
//     every argument must name that function's receiver or one of its
//     parameters.
//
// The analyzer needs no call-graph facts: every rule is local to the
// package under analysis, so it runs on all packages (including cmd/
// and test fixtures' host packages) for free.
package directives

import (
	"go/ast"
	"strings"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

// KnownAnalyzers is every analyzer name an //simlint:ignore may
// suppress. cmd/simlint asserts this list matches its suite, so a
// renamed analyzer cannot silently orphan its suppressions.
var KnownAnalyzers = []string{
	"seededrand", "pow2size", "maporder", "ledgerpost", "errdiscard",
	"hotpath", "ctxflow", "lockdisc", "borrowck", "detflow", "directives",
}

// funcVerbs are the verbs that mark a function declaration.
var funcVerbs = map[string]bool{
	"hotpath":       true,
	"coldpath":      true,
	"deterministic": true,
	"configload":    true,
}

var Analyzer = &analysis.Analyzer{
	Name: "directives",
	Doc:  "every //simlint:* comment must parse, resolve and attach to a declaration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	known := map[string]bool{"all": true}
	for _, n := range KnownAnalyzers {
		known[n] = true
	}
	for _, file := range pass.Files {
		// Map each doc comment back to its function declaration, to
		// tell an attached directive from an orphaned one.
		docOf := map[*ast.Comment]*ast.FuncDecl{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docOf[c] = fd
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !callgraph.IsDirective(c.Text) || pass.InTestFile(c.Pos()) {
					continue
				}
				verb, args := callgraph.SplitDirective(c.Text)
				switch {
				case verb == "":
					pass.Reportf(c.Pos(), "empty simlint directive")
				case verb == "ignore":
					checkIgnore(pass, c, args, known)
				case funcVerbs[verb]:
					switch {
					case docOf[c] == nil:
						pass.Reportf(c.Pos(), "//simlint:%s is not attached to a function declaration; the annotation is dead", verb)
					case len(args) > 0:
						pass.Reportf(c.Pos(), "//simlint:%s takes no arguments outside _test.go gate files", verb)
					}
				case verb == "borrowed":
					checkBorrowed(pass, c, args, docOf[c])
				default:
					pass.Reportf(c.Pos(), "unknown simlint directive %q", verb)
				}
			}
		}
	}
	return nil
}

// checkIgnore validates a suppression: known analyzer names in the
// exact comma-separated form the suppression matcher parses.
func checkIgnore(pass *analysis.Pass, c *ast.Comment, args []string, known map[string]bool) {
	if len(args) == 0 {
		pass.Reportf(c.Pos(), "//simlint:ignore names no analyzers; say which findings are waived")
		return
	}
	list := strings.Fields(strings.TrimPrefix(c.Text, "//simlint:ignore"))
	for i, f := range list {
		// "//" starts an embedded remark, same as SplitDirective.
		if strings.HasPrefix(f, "//") {
			list = list[:i]
			break
		}
	}
	if len(list) != 1 || list[0] != strings.Join(args, ",") {
		pass.Reportf(c.Pos(), "//simlint:ignore list must be one comma-separated token without spaces (the suppression matcher reads only the first token)")
		return
	}
	for _, name := range args {
		if !known[name] {
			pass.Reportf(c.Pos(), "//simlint:ignore names unknown analyzer %q", name)
		}
	}
}

// checkBorrowed validates a borrow annotation: attached to a function
// declaration, with every argument naming its receiver or a
// parameter.
func checkBorrowed(pass *analysis.Pass, c *ast.Comment, args []string, fd *ast.FuncDecl) {
	if fd == nil {
		pass.Reportf(c.Pos(), "//simlint:borrowed is not attached to a function declaration; the annotation is dead")
		return
	}
	if len(args) == 0 {
		pass.Reportf(c.Pos(), "//simlint:borrowed names no parameters; say which values are lent")
		return
	}
	names := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				names[id.Name] = true
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	for _, name := range args {
		if !names[name] {
			pass.Reportf(c.Pos(), "//simlint:borrowed names %q, which is not a receiver or parameter of %s", name, fd.Name.Name)
		}
	}
}
