// Package directives makes every //simlint:* comment a checked
// artifact. Annotations are load-bearing in this repo — hotpath and
// detflow prove invariants from them, borrowck trusts them across
// calls, ignore suppresses findings — so a misspelled verb, an
// argument that no longer names anything, or a directive orphaned by
// a refactor must be a lint error, not a silently dead marker.
//
// Rules, per directive:
//
//   - the verb must be one of ignore, hotpath, coldpath,
//     deterministic, configload, borrowed, state, statefull,
//     statederived;
//   - ignore must name known analyzers (or "all") in the canonical
//     comma-separated form the suppression matcher reads;
//   - hotpath, coldpath, deterministic and configload must sit in a
//     function declaration's doc comment and take no arguments —
//     arguments are only meaningful in _test.go gate files, which the
//     simlint driver never loads (the static-vs-gate match tests
//     validate those);
//   - borrowed must sit in a function declaration's doc comment and
//     every argument must name that function's receiver or one of its
//     parameters;
//   - state must sit in a struct type declaration's doc comment, with
//     no argument other than the optional "counters" kind;
//   - statefull must sit in a function declaration's doc comment with
//     exactly one known handler class;
//   - statederived must accompany a //simlint:state directive on the
//     same struct, its first argument must name a field of that
//     struct, and any further arguments must be known classes.
//
// The analyzer needs no call-graph facts: every rule is local to the
// package under analysis, so it runs on all packages (including cmd/
// and test fixtures' host packages) for free.
package directives

import (
	"go/ast"
	"go/token"
	"strings"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

// KnownAnalyzers is every analyzer name an //simlint:ignore may
// suppress. cmd/simlint asserts this list matches its suite, so a
// renamed analyzer cannot silently orphan its suppressions.
var KnownAnalyzers = []string{
	"seededrand", "pow2size", "maporder", "ledgerpost", "errdiscard",
	"hotpath", "ctxflow", "lockdisc", "borrowck", "detflow", "directives",
	"statecov", "mergesound",
}

// funcVerbs are the verbs that mark a function declaration.
var funcVerbs = map[string]bool{
	"hotpath":       true,
	"coldpath":      true,
	"deterministic": true,
	"configload":    true,
}

var Analyzer = &analysis.Analyzer{
	Name: "directives",
	Doc:  "every //simlint:* comment must parse, resolve and attach to a declaration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	known := map[string]bool{"all": true}
	for _, n := range KnownAnalyzers {
		known[n] = true
	}
	for _, file := range pass.Files {
		// Map each doc comment back to its function or type
		// declaration, to tell an attached directive from an orphaned
		// one. For types, the group is kept too: statederived must
		// accompany a state directive in the same doc comment.
		docOf := map[*ast.Comment]*ast.FuncDecl{}
		typeOf := map[*ast.Comment]*ast.TypeSpec{}
		groupOf := map[*ast.Comment]*ast.CommentGroup{}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc == nil {
					continue
				}
				for _, c := range d.Doc.List {
					docOf[c] = d
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						typeOf[c] = ts
						groupOf[c] = doc
					}
				}
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !callgraph.IsDirective(c.Text) || pass.InTestFile(c.Pos()) {
					continue
				}
				verb, args := callgraph.SplitDirective(c.Text)
				switch {
				case verb == "":
					pass.Reportf(c.Pos(), "empty simlint directive")
				case verb == "ignore":
					checkIgnore(pass, c, args, known)
				case funcVerbs[verb]:
					switch {
					case docOf[c] == nil:
						pass.Reportf(c.Pos(), "//simlint:%s is not attached to a function declaration; the annotation is dead", verb)
					case len(args) > 0:
						pass.Reportf(c.Pos(), "//simlint:%s takes no arguments outside _test.go gate files", verb)
					}
				case verb == "borrowed":
					checkBorrowed(pass, c, args, docOf[c])
				case verb == "state":
					checkState(pass, c, args, typeOf[c])
				case verb == "statefull":
					checkStatefull(pass, c, args, docOf[c])
				case verb == "statederived":
					checkStatederived(pass, c, args, typeOf[c], groupOf[c])
				default:
					pass.Reportf(c.Pos(), "unknown simlint directive %q", verb)
				}
			}
		}
	}
	return nil
}

// checkIgnore validates a suppression: known analyzer names in the
// exact comma-separated form the suppression matcher parses.
func checkIgnore(pass *analysis.Pass, c *ast.Comment, args []string, known map[string]bool) {
	if len(args) == 0 {
		pass.Reportf(c.Pos(), "//simlint:ignore names no analyzers; say which findings are waived")
		return
	}
	list := strings.Fields(strings.TrimPrefix(c.Text, "//simlint:ignore"))
	for i, f := range list {
		// "//" starts an embedded remark, same as SplitDirective.
		if strings.HasPrefix(f, "//") {
			list = list[:i]
			break
		}
	}
	if len(list) != 1 || list[0] != strings.Join(args, ",") {
		pass.Reportf(c.Pos(), "//simlint:ignore list must be one comma-separated token without spaces (the suppression matcher reads only the first token)")
		return
	}
	for _, name := range args {
		if !known[name] {
			pass.Reportf(c.Pos(), "//simlint:ignore names unknown analyzer %q", name)
		}
	}
}

// checkState validates a state-struct marker: attached to a struct
// type declaration, with at most the "counters" kind argument.
func checkState(pass *analysis.Pass, c *ast.Comment, args []string, ts *ast.TypeSpec) {
	if ts == nil {
		pass.Reportf(c.Pos(), "//simlint:state is not attached to a type declaration; the annotation is dead")
		return
	}
	if _, ok := ts.Type.(*ast.StructType); !ok {
		pass.Reportf(c.Pos(), "//simlint:state must annotate a struct type; %s is not a struct", ts.Name.Name)
		return
	}
	if len(args) > 1 || (len(args) == 1 && args[0] != "counters") {
		pass.Reportf(c.Pos(), "//simlint:state takes no argument other than the \"counters\" kind")
	}
}

// checkStatefull validates a handler marker: attached to a function
// declaration with exactly one known class.
func checkStatefull(pass *analysis.Pass, c *ast.Comment, args []string, fd *ast.FuncDecl) {
	if fd == nil {
		pass.Reportf(c.Pos(), "//simlint:statefull is not attached to a function declaration; the annotation is dead")
		return
	}
	if len(args) != 1 {
		pass.Reportf(c.Pos(), "//simlint:statefull needs exactly one class argument (fork, clone, merge, adopt, reset, restore or checkpoint)")
		return
	}
	if !callgraph.StatefullClasses[args[0]] {
		pass.Reportf(c.Pos(), "//simlint:statefull names unknown class %q", args[0])
	}
}

// checkStatederived validates a coverage exemption: it must ride on a
// //simlint:state struct, name one of its fields, and restrict itself
// to known classes.
func checkStatederived(pass *analysis.Pass, c *ast.Comment, args []string, ts *ast.TypeSpec, group *ast.CommentGroup) {
	if ts == nil {
		pass.Reportf(c.Pos(), "//simlint:statederived is not attached to a type declaration; the annotation is dead")
		return
	}
	st, isStruct := ts.Type.(*ast.StructType)
	hasState := false
	for _, cc := range group.List {
		if verb, _ := callgraph.SplitDirective(cc.Text); verb == "state" {
			hasState = true
		}
	}
	if !isStruct || !hasState {
		pass.Reportf(c.Pos(), "//simlint:statederived on %s is orphaned: the type carries no //simlint:state directive", ts.Name.Name)
		return
	}
	if len(args) == 0 {
		pass.Reportf(c.Pos(), "//simlint:statederived names no field; say which field is exempt")
		return
	}
	fields := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			fields[id.Name] = true
		}
		if len(f.Names) == 0 {
			if name := embeddedFieldName(f.Type); name != "" {
				fields[name] = true
			}
		}
	}
	if !fields[args[0]] {
		pass.Reportf(c.Pos(), "//simlint:statederived names %q, which is not a field of %s", args[0], ts.Name.Name)
	}
	for _, class := range args[1:] {
		if !callgraph.StatefullClasses[class] {
			pass.Reportf(c.Pos(), "//simlint:statederived names unknown class %q", class)
		}
	}
}

// embeddedFieldName resolves the implicit field name of an embedded
// struct field.
func embeddedFieldName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return embeddedFieldName(x.X)
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// checkBorrowed validates a borrow annotation: attached to a function
// declaration, with every argument naming its receiver or a
// parameter.
func checkBorrowed(pass *analysis.Pass, c *ast.Comment, args []string, fd *ast.FuncDecl) {
	if fd == nil {
		pass.Reportf(c.Pos(), "//simlint:borrowed is not attached to a function declaration; the annotation is dead")
		return
	}
	if len(args) == 0 {
		pass.Reportf(c.Pos(), "//simlint:borrowed names no parameters; say which values are lent")
		return
	}
	names := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				names[id.Name] = true
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	for _, name := range args {
		if !names[name] {
			pass.Reportf(c.Pos(), "//simlint:borrowed names %q, which is not a receiver or parameter of %s", name, fd.Name.Name)
		}
	}
}
