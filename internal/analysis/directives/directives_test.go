package directives

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
)

func TestDirectives(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "dir")
}
