// Package hot exercises the hotpath analyzer: functions marked
// //simlint:hotpath must be transitively free of allocating
// constructs, with findings reported against the full call chain.
package hot

import "fmt"

var events []uint64

// Probe is the annotated root of a three-deep allocating call chain:
// Probe → fill → record, with the allocation down in record.
//
//simlint:hotpath
func Probe(tags []uint64, addr uint64) bool {
	for _, t := range tags {
		if t == addr {
			return true
		}
	}
	fill(addr)
	return false
}

func fill(addr uint64) { record(addr) }

func record(addr uint64) {
	events = append(events, addr) // want `hot\.Probe is //simlint:hotpath but reaches an allocating construct via hot\.Probe → hot\.fill → hot\.record: append may grow its backing array \(hot\.go:\d+\)`
}

//simlint:hotpath
func MakesSlice(n int) []int {
	return make([]int, n) // want `hot\.MakesSlice is //simlint:hotpath but contains an allocating construct: make \(hot\.go:\d+\)`
}

//simlint:hotpath
func News() *int {
	return new(int) // want `hot\.News is //simlint:hotpath but contains an allocating construct: new \(hot\.go:\d+\)`
}

type table struct{ rows []uint64 }

//simlint:hotpath
func (t *table) Grow(v uint64) {
	t.rows = append(t.rows, v) // want `\(\*hot\.table\)\.Grow is //simlint:hotpath but contains an allocating construct: append may grow its backing array \(hot\.go:\d+\)`
}

//simlint:hotpath
func Formats(x int) string {
	return fmt.Sprintf("%d", x) // want `call to fmt\.Sprintf` `interface conversion boxes int`
}

func box(v any) any { return v }

//simlint:hotpath
func Boxes(x uint64) {
	box(x) // want `hot\.Boxes is //simlint:hotpath but contains an allocating construct: interface conversion boxes uint64 \(hot\.go:\d+\)`
}

//simlint:hotpath
func Closes(x int) func() int {
	f := func() int { return x } // want `closure creation`
	return f
}

//simlint:hotpath
func Converts(b []byte) string {
	return string(b) // want `string conversion copies`
}

type node struct{ next *node }

//simlint:hotpath
func Escapes() *node {
	return &node{} // want `composite literal escapes via &`
}

//simlint:hotpath
func Literals() int {
	m := map[int]int{1: 1} // want `map literal`
	s := []int{1, 2, 3}    // want `slice literal`
	return m[1] + s[0]
}

type result struct{ hits, misses uint64 }

// ValueLiteral is allowed: a plain value composite literal stays on
// the stack.
//
//simlint:hotpath
func ValueLiteral(h, m uint64) result {
	return result{hits: h, misses: m}
}

// tapEvent is the deliberate outlined slow path; hot callers may call
// it freely and its own body is not scanned.
//
//simlint:coldpath
func tapEvent(ev uint64) {
	events = append(events, ev)
}

//simlint:hotpath
func CallsCold(tap bool, ev uint64) {
	if tap {
		tapEvent(ev)
	}
}

// Panics is allowed: panic arguments only escape on the terminal
// unwind, never on the steady-state path.
//
//simlint:hotpath
func Panics(err error) {
	if err != nil {
		panic(fmt.Errorf("fatal: %w", err))
	}
}

var hook func(uint64)

// Hooks is allowed: a nil-guarded func-value hook is dynamic dispatch,
// and dispatch does not allocate.
//
//simlint:hotpath
func Hooks(ev uint64) {
	if hook != nil {
		hook(ev)
	}
}

type sink interface{ Accept(uint64) }

// Dynamic is allowed: interface method dispatch has no static edge.
//
//simlint:hotpath
func Dynamic(s sink, ev uint64) {
	s.Accept(ev)
}

// Composed is allowed to call Probe even though Probe fails its own
// check: an annotated callee is verified as its own root, so the
// caller trusts it by induction.
//
//simlint:hotpath
func Composed(tags []uint64, addr uint64) bool {
	return Probe(tags, addr)
}
