// Package hotpath enforces the zero-allocation replay invariant at
// compile time: a function whose doc comment carries
// //simlint:hotpath must be transitively free of allocating
// constructs. The runtime AllocsPerRun tests catch a regression after
// the fact; this analyzer names the construct and the call chain that
// reaches it before the benchmark ever runs.
//
// The transitive closure follows static call edges from the shared
// call-graph facts and stops at:
//
//   - other //simlint:hotpath functions — they are verified as their
//     own roots, so by induction a hot function may call one freely;
//   - //simlint:coldpath functions — the deliberate escape hatch for
//     outlined slow paths (tap recording, error paths) that the
//     surrounding guard keeps off the steady-state path;
//   - dynamic calls (interface methods, func values) — dispatch does
//     not allocate, and nil-guarded hook fields are a deliberate seam.
//
// See the callgraph package for what counts as an allocating
// construct (panic arguments, for one, are exempt: the unwind is
// terminal).
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:            "hotpath",
	Doc:             "//simlint:hotpath functions must be transitively allocation-free",
	PackagePrefixes: []string{"streamsim/internal"},
	Facts:           callgraph.Facts,
	FactsKey:        callgraph.FactsKey,
	Run:             run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.From(pass)
	if g == nil {
		return fmt.Errorf("hotpath requires call-graph facts")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn := g.Decls[fd]; fn != nil && fn.Hotpath {
				checkRoot(pass, fn)
			}
		}
	}
	return nil
}

// step records how the BFS first reached a function, so a finding can
// be reported with its full call chain.
type step struct {
	from *callgraph.Func
	pos  token.Pos // call site in `from`
}

// checkRoot walks everything statically reachable from root and
// reports each allocating construct with the chain root → … → callee.
func checkRoot(pass *analysis.Pass, root *callgraph.Func) {
	parent := map[*callgraph.Func]step{}
	queue := []*callgraph.Func{root}
	seen := map[*callgraph.Func]bool{root: true}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, a := range fn.Allocs {
			report(pass, root, parent, fn, a)
		}
		for _, call := range fn.Calls {
			callee := call.Callee
			if seen[callee] || callee.Hotpath || callee.Coldpath {
				continue
			}
			seen[callee] = true
			parent[callee] = step{from: fn, pos: call.Pos}
			queue = append(queue, callee)
		}
	}
}

// report emits one diagnostic for an allocating construct in fn,
// reached from root. The diagnostic anchors at the deepest position
// along the chain that still lies in the package being analyzed —
// the construct itself when it is local, otherwise the call site
// where the chain leaves the package.
func report(pass *analysis.Pass, root *callgraph.Func, parent map[*callgraph.Func]step, fn *callgraph.Func, a callgraph.Alloc) {
	// Reconstruct root → … → fn.
	var chain []*callgraph.Func
	var sites []token.Pos // sites[i] is the call site in chain[i] invoking chain[i+1]
	for at := fn; at != root; {
		st := parent[at]
		chain = append([]*callgraph.Func{at}, chain...)
		sites = append([]token.Pos{st.pos}, sites...)
		at = st.from
	}
	chain = append([]*callgraph.Func{root}, chain...)

	anchor := a.Pos
	if fn.Pkg != pass.Pkg {
		anchor = sites[len(sites)-1]
		for i := len(chain) - 2; i >= 0; i-- {
			if chain[i].Pkg == pass.Pkg {
				anchor = sites[i]
				break
			}
		}
	}
	p := pass.Fset.Position(a.Pos)
	where := fmt.Sprintf("%s (%s:%d)", a.What, filepath.Base(p.Filename), p.Line)
	if len(chain) == 1 {
		pass.Reportf(anchor, "%s is //simlint:hotpath but contains an allocating construct: %s",
			root.Short(), where)
		return
	}
	path := root.Short()
	for _, f := range chain[1:] {
		path += " → " + f.Short()
	}
	pass.Reportf(anchor, "%s is //simlint:hotpath but reaches an allocating construct via %s: %s",
		root.Short(), path, where)
}
