package hotpath

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "hot")
}
