// Package mergesound enforces additive combination inside merge-class
// snapshot handlers: within the static call closure of a
// //simlint:statefull merge function, a field of a //simlint:state
// struct may be combined (+=, ++, x.Add(y), AddStats) but never plainly
// overwritten. A merge folds a shard's counters into an accumulator; a
// plain assignment silently discards everything the accumulator already
// held, which is precisely the last-shard-wins bug the window-sharded
// replay engine cannot tolerate.
//
// Overwriting is the job of the adopt/restore/reset classes
// (SetStats and friends), so those handlers are exempt — and calling
// one from inside a merge closure is itself a finding.
//
// Two escapes keep the rule precise rather than syntactic:
//
//   - an assignment whose right-hand side reads the same field of the
//     same variable is a rebuild, not an overwrite: the sum-literal
//     idiom `s.bw = Bandwidth{X: s.bw.X + o.bw.X, ...}` and the
//     value-Add idiom `s.stats = s.stats.Add(o)` both pass;
//   - an assignment through a value-typed root mutates a local copy
//     (a getter filling in derived fields, a value receiver building
//     its return), never live state, and is skipped.
//
// The walk stops at any other //simlint:statefull callee: merge-class
// callees are verified as their own roots, and the deep-copy classes
// build fresh state where overwriting is the point.
package mergesound

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:            "mergesound",
	Doc:             "//simlint:statefull merge handlers must combine counters additively, never plain-assign",
	PackagePrefixes: []string{"streamsim/internal"},
	Facts:           callgraph.Facts,
	FactsKey:        callgraph.FactsKey,
	Run:             run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.From(pass)
	if g == nil {
		return fmt.Errorf("mergesound requires call-graph facts")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn := g.Decls[fd]; fn != nil && fn.StatefullClass == "merge" {
				checkRoot(pass, g, fn)
			}
		}
	}
	return nil
}

// step records how the BFS first reached a function, for chain
// reconstruction (same shape as hotpath).
type step struct {
	from *callgraph.Func
	pos  token.Pos
}

// violation is one unsound construct found in a visited function.
type violation struct {
	pos  token.Pos
	what string
}

// checkRoot walks the merge closure from root, stopping at other
// statefull handlers, and reports every overwrite it finds with the
// chain root → … → callee.
func checkRoot(pass *analysis.Pass, g *callgraph.Graph, root *callgraph.Func) {
	parent := map[*callgraph.Func]step{}
	queue := []*callgraph.Func{root}
	seen := map[*callgraph.Func]bool{root: true}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, v := range scanOverwrites(g, fn) {
			report(pass, root, parent, fn, v)
		}
		for _, call := range fn.Calls {
			callee := call.Callee
			if callee.StatefullClass != "" {
				if callgraph.OverwriteClass(callee.StatefullClass) {
					report(pass, root, parent, fn, violation{
						pos: call.Pos,
						what: fmt.Sprintf("calls %s, a //simlint:statefull %s overwrite handler",
							callee.Short(), callee.StatefullClass),
					})
				}
				// Merge-class callees are their own roots; deep-copy
				// classes build fresh state. Either way, stop here.
				continue
			}
			if seen[callee] {
				continue
			}
			seen[callee] = true
			parent[callee] = step{from: fn, pos: call.Pos}
			queue = append(queue, callee)
		}
	}
}

// scanOverwrites finds plain assignments to live state-struct fields in
// fn's body. Op-assignments (+=) and ++/-- are additive by construction
// and never flagged.
func scanOverwrites(g *callgraph.Graph, fn *callgraph.Func) []violation {
	info := fn.Pkg.TypesInfo
	var out []violation
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				continue
			}
			ss := g.StateOf(s.Recv())
			if ss == nil {
				continue
			}
			if !liveRoot(info, sel) {
				continue
			}
			field := s.Obj().Name()
			rhs := as.Rhs
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i : i+1]
			}
			if readsSameField(g, info, rhs, ss.Key, field, rootObject(info, sel)) {
				continue
			}
			out = append(out, violation{
				pos:  sel.Pos(),
				what: fmt.Sprintf("plain-assigns %s.%s", ss.Short(), field),
			})
		}
		return true
	})
	return out
}

// liveRoot reports whether the selector chain reaches live state: it
// passes through a pointer somewhere between its base and the assigned
// field. A chain rooted entirely in value-typed locals mutates a copy,
// which no merge can corrupt.
func liveRoot(info *types.Info, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isPtr := tv.Type.(*types.Pointer); isPtr {
					return true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			return true
		default:
			return false
		}
	}
}

// rootObject resolves the base identifier's object of a selector chain,
// so a rebuild can be required to read from the same variable it
// assigns (s.stats = s.stats.Add(o) passes; s.stats = o.stats does
// not — that overwrites s's ledger with o's).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return info.ObjectOf(x)
		default:
			return nil
		}
	}
}

// readsSameField reports whether any of the right-hand sides reads the
// same field of the same root variable the assignment writes.
func readsSameField(g *callgraph.Graph, info *types.Info, rhs []ast.Expr, key, field string, root types.Object) bool {
	if root == nil {
		return false
	}
	found := false
	for _, e := range rhs {
		ast.Inspect(e, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			ss := g.StateOf(s.Recv())
			if ss == nil || ss.Key != key || s.Obj().Name() != field {
				return true
			}
			if rootObject(info, sel) == root {
				found = true
			}
			return true
		})
	}
	return found
}

// report emits one diagnostic for a violation in fn, reached from root,
// anchored at the deepest position still inside the package being
// analyzed (hotpath's anchoring rule).
func report(pass *analysis.Pass, root *callgraph.Func, parent map[*callgraph.Func]step, fn *callgraph.Func, v violation) {
	var chain []*callgraph.Func
	var sites []token.Pos
	for at := fn; at != root; {
		st := parent[at]
		chain = append([]*callgraph.Func{at}, chain...)
		sites = append([]token.Pos{st.pos}, sites...)
		at = st.from
	}
	chain = append([]*callgraph.Func{root}, chain...)

	anchor := v.pos
	if fn.Pkg != pass.Pkg {
		anchor = sites[len(sites)-1]
		for i := len(chain) - 2; i >= 0; i-- {
			if chain[i].Pkg == pass.Pkg {
				anchor = sites[i]
				break
			}
		}
	}
	p := pass.Fset.Position(v.pos)
	where := fmt.Sprintf("%s (%s:%d)", v.what, filepath.Base(p.Filename), p.Line)
	if len(chain) == 1 {
		pass.Reportf(anchor, "%s is //simlint:statefull merge but %s; counters must combine additively (+=, .Add, AddStats)",
			root.Short(), where)
		return
	}
	path := root.Short()
	for _, f := range chain[1:] {
		path += " → " + f.Short()
	}
	pass.Reportf(anchor, "%s is //simlint:statefull merge but via %s %s; counters must combine additively (+=, .Add, AddStats)",
		root.Short(), path, where)
}
