package mergesound_test

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
	"streamsim/internal/analysis/mergesound"
)

func TestMergesound(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), mergesound.Analyzer, "mgs")
}
