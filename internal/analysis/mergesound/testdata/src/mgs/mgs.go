// Package mgs exercises the mergesound analyzer: inside the static
// call closure of a //simlint:statefull merge handler, state-struct
// counters must combine additively — plain assignment and calls into
// overwrite-class handlers are findings, while the sum-literal and
// value-Add rebuild idioms, value-rooted copies, and op-assignments
// all pass.
package mgs

//simlint:state counters
type Stats struct {
	Hits   uint64
	Misses uint64
}

//simlint:state
type Comp struct {
	tags  []uint64
	stats Stats
}

//simlint:state
type Sys struct {
	comp *Comp
	bw   Stats
}

// Add is the value-receiver combine idiom: op-assigns on a copy,
// returned to the caller.
func (a Stats) Add(b Stats) Stats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	return a
}

// AddStats is the canonical additive merge: nothing to report.
//
//simlint:statefull merge
func (c *Comp) AddStats(o Stats) {
	c.stats.Hits += o.Hits
	c.stats.Misses += o.Misses
}

// SetStats is the overwrite handler: legal in its own adopt class.
//
//simlint:statefull adopt
func (c *Comp) SetStats(o Stats) {
	c.stats = o
}

// Stats returns a copy with a derived field filled in; the plain
// assignment roots at a value-typed local, so it can never clobber
// live state and is not a finding even when reached from a merge.
func (c *Comp) Stats() Stats {
	st := c.stats
	st.Misses = c.stats.Misses
	return st
}

// Merge uses the sum-literal rebuild: the right-hand side reads the
// same field of the same variable it assigns, so it is a combine.
//
//simlint:statefull merge
func (s *Sys) Merge(o *Sys) {
	s.comp.AddStats(o.comp.stats)
	s.bw = Stats{Hits: s.bw.Hits + o.bw.Hits, Misses: s.bw.Misses + o.bw.Misses}
}

// MergeAdd uses the value-Add rebuild; the callee is an ordinary
// function, so the closure also proves its op-assigns are clean.
//
//simlint:statefull merge
func (s *Sys) MergeAdd(o *Sys) {
	s.comp.AddStats(o.comp.stats)
	s.bw = s.bw.Add(o.bw)
}

// MergeWithGetter reaches the getter's value-rooted assignment through
// the closure without flagging it.
//
//simlint:statefull merge
func (c *Comp) MergeWithGetter(o *Comp) {
	st := o.Stats()
	c.stats.Hits += st.Hits
	c.stats.Misses += st.Misses
}

// MergeOverwrite drops the accumulator's Misses count on the floor.
//
//simlint:statefull merge
func (c *Comp) MergeOverwrite(o *Comp) {
	c.stats.Hits += o.stats.Hits
	c.stats.Misses = o.stats.Misses // want `\(\*mgs\.Comp\)\.MergeOverwrite is //simlint:statefull merge but plain-assigns mgs\.Stats\.Misses \(mgs\.go:\d+\); counters must combine additively \(\+=, \.Add, AddStats\)`
}

// MergeOuter delegates to a merge-class callee: the walk stops there
// (MergeOverwrite is verified as its own root), so the violation above
// is reported exactly once.
//
//simlint:statefull merge
func (c *Comp) MergeOuter(o *Comp) {
	c.MergeOverwrite(o)
}

// MergeSteal reads the right field of the wrong variable: overwriting
// s's ledger with o's is last-shard-wins, not a combine.
//
//simlint:statefull merge
func (s *Sys) MergeSteal(o *Sys) {
	s.comp.AddStats(o.comp.stats)
	s.bw = o.bw // want `\(\*mgs\.Sys\)\.MergeSteal is //simlint:statefull merge but plain-assigns mgs\.Sys\.bw \(mgs\.go:\d+\); counters must combine additively`
}

// clobber is an unannotated helper: the closure walks into it and the
// finding carries the chain from the merge root.
func clobber(c *Comp, o Stats) {
	c.stats = o // want `\(\*mgs\.Comp\)\.MergeVia is //simlint:statefull merge but via \(\*mgs\.Comp\)\.MergeVia → mgs\.clobber plain-assigns mgs\.Comp\.stats \(mgs\.go:\d+\); counters must combine additively`
}

//simlint:statefull merge
func (c *Comp) MergeVia(o *Comp) {
	clobber(c, o.stats)
}

// MergeSet launders the overwrite through the adopt-class handler.
//
//simlint:statefull merge
func (c *Comp) MergeSet(o *Comp) {
	c.stats.Hits += o.stats.Hits
	c.stats.Misses += o.stats.Misses
	c.SetStats(o.stats) // want `\(\*mgs\.Comp\)\.MergeSet is //simlint:statefull merge but calls \(\*mgs\.Comp\)\.SetStats, a //simlint:statefull adopt overwrite handler \(mgs\.go:\d+\); counters must combine additively`
}
