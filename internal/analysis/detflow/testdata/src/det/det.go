// Package det exercises the detflow analyzer: //simlint:deterministic
// roots must transitively avoid order-unstable map ranges, wall-clock
// reads, global random draws and environment reads.
package det

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Stamp reads the wall clock directly.
//
//simlint:deterministic
func Stamp() int64 {
	return time.Now().Unix() // want `det\.Stamp is //simlint:deterministic but contains a nondeterministic construct: wall-clock read \(time\.Now\) \(det\.go:\d+\)`
}

// Jitter draws from the process-global random source.
//
//simlint:deterministic
func Jitter() int {
	return rand.Intn(8) // want `det\.Jitter is //simlint:deterministic but contains a nondeterministic construct: draw from the process-global random source \(rand\.Intn\) \(det\.go:\d+\)`
}

// Home reads the environment.
//
//simlint:deterministic
func Home() string {
	return os.Getenv("HOME") // want `det\.Home is //simlint:deterministic but contains a nondeterministic construct: environment read \(os\.Getenv\) \(det\.go:\d+\)`
}

// Tally reaches an unstable map range two calls down; the finding
// carries the chain and anchors at the construct.
//
//simlint:deterministic
func Tally(m map[string]int) int {
	return gather(m)
}

func gather(m map[string]int) int {
	return walkMap(m)
}

func walkMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want `det\.Tally is //simlint:deterministic but reaches a nondeterministic construct via det\.Tally → det\.gather → det\.walkMap: map range with unstable iteration order \(det\.go:\d+\)`
		total += v
	}
	return total
}

// Names ranges over a map but only to collect keys into a slice that
// is sorted before use: the accepted deterministic idiom.
//
//simlint:deterministic
func Names(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Inner is its own verified root; its violation reports once, with
// Inner's chain.
//
//simlint:deterministic
func Inner() int64 {
	return stamp()
}

func stamp() int64 {
	return time.Now().UnixNano() // want `det\.Inner is //simlint:deterministic but reaches a nondeterministic construct via det\.Inner → det\.stamp: wall-clock read \(time\.Now\) \(det\.go:\d+\)`
}

// Outer calls another deterministic root: the traversal stops at the
// annotation instead of re-reporting Inner's findings, by induction.
//
//simlint:deterministic
func Outer() int64 {
	return Inner() + 1
}

// load owns its environment read by design.
//
//simlint:configload
func load() string {
	return os.Getenv("DET_CONFIG")
}

// FromConfig may call the loader: //simlint:configload stops the
// traversal.
//
//simlint:deterministic
func FromConfig() string {
	return load()
}

// Seeded draws from an explicitly seeded source: the constructors are
// exempt and methods on the seeded source replay deterministically.
//
//simlint:deterministic
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// Waived reads the clock, but the site carries an explicit
// suppression.
//
//simlint:deterministic
func Waived() int64 {
	//simlint:ignore detflow
	return time.Now().Unix()
}

func noisy() int64 {
	//simlint:ignore detflow
	return time.Now().UnixNano()
}

// Quiet reaches a waived site through a helper: chain-reported
// findings anchor at the construct, so that is where the suppression
// sits — not at the root.
//
//simlint:deterministic
func Quiet() int64 {
	return noisy()
}
