// Package detflow enforces the reproduction's determinism invariant
// at compile time: a function whose doc comment carries
// //simlint:deterministic — the experiment runners, sweeprun.Run, the
// trace codec, service job execution — must transitively avoid
// constructs whose result depends on anything but its inputs. The
// byte-identical equivalence tests catch a violation after the fact;
// this analyzer names the construct and the call chain that reaches
// it before any table drifts.
//
// What counts as nondeterministic is the callgraph package's Nondet
// scan: map ranges with unstable iteration order (the collect-then-
// sort idiom is recognized and allowed, subsuming and deepening the
// syntactic maporder rule), wall-clock reads, draws from the process
// global random source, and environment or filesystem reads.
//
// The transitive closure follows static call edges and stops at:
//
//   - other //simlint:deterministic functions — verified as their own
//     roots, so by induction a deterministic root may call one;
//   - //simlint:configload functions — the deliberate escape hatch
//     for config loaders that own their os.Open/Getenv calls;
//   - dynamic calls (interface methods, func values) — the same seam
//     every call-graph analyzer draws.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"

	"streamsim/internal/analysis"
	"streamsim/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:            "detflow",
	Doc:             "//simlint:deterministic functions must be transitively free of nondeterminism",
	PackagePrefixes: []string{"streamsim/internal"},
	Facts:           callgraph.Facts,
	FactsKey:        callgraph.FactsKey,
	Run:             run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.From(pass)
	if g == nil {
		return fmt.Errorf("detflow requires call-graph facts")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn := g.Decls[fd]; fn != nil && fn.Deterministic {
				checkRoot(pass, fn)
			}
		}
	}
	return nil
}

// step records how the BFS first reached a function, so a finding can
// be reported with its full call chain.
type step struct {
	from *callgraph.Func
	pos  token.Pos // call site in `from`
}

// checkRoot walks everything statically reachable from root and
// reports each nondeterministic construct with the chain root → … →
// callee.
func checkRoot(pass *analysis.Pass, root *callgraph.Func) {
	parent := map[*callgraph.Func]step{}
	queue := []*callgraph.Func{root}
	seen := map[*callgraph.Func]bool{root: true}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, nd := range fn.Nondets {
			report(pass, root, parent, fn, nd)
		}
		for _, call := range fn.Calls {
			callee := call.Callee
			if seen[callee] || callee.Deterministic || callee.ConfigLoad {
				continue
			}
			seen[callee] = true
			parent[callee] = step{from: fn, pos: call.Pos}
			queue = append(queue, callee)
		}
	}
}

// report emits one diagnostic for a nondeterministic construct in fn,
// reached from root, anchored at the deepest position along the chain
// that still lies in the package being analyzed.
func report(pass *analysis.Pass, root *callgraph.Func, parent map[*callgraph.Func]step, fn *callgraph.Func, nd callgraph.Nondet) {
	// Reconstruct root → … → fn.
	var chain []*callgraph.Func
	var sites []token.Pos // sites[i] is the call site in chain[i] invoking chain[i+1]
	for at := fn; at != root; {
		st := parent[at]
		chain = append([]*callgraph.Func{at}, chain...)
		sites = append([]token.Pos{st.pos}, sites...)
		at = st.from
	}
	chain = append([]*callgraph.Func{root}, chain...)

	anchor := nd.Pos
	if fn.Pkg != pass.Pkg {
		anchor = sites[len(sites)-1]
		for i := len(chain) - 2; i >= 0; i-- {
			if chain[i].Pkg == pass.Pkg {
				anchor = sites[i]
				break
			}
		}
	}
	p := pass.Fset.Position(nd.Pos)
	where := fmt.Sprintf("%s (%s:%d)", nd.What, filepath.Base(p.Filename), p.Line)
	if len(chain) == 1 {
		pass.Reportf(anchor, "%s is //simlint:deterministic but contains a nondeterministic construct: %s",
			root.Short(), where)
		return
	}
	path := root.Short()
	for _, f := range chain[1:] {
		path += " → " + f.Short()
	}
	pass.Reportf(anchor, "%s is //simlint:deterministic but reaches a nondeterministic construct via %s: %s",
		root.Short(), path, where)
}
