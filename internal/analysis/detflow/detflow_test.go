package detflow

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "det")
}
