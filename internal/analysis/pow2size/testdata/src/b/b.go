// Package b exercises the pow2size negative cases: power-of-two
// constants, zero (disabled) sizes, the v&(v-1) validation idiom, and
// validator-routed parameters.
package b

import "fmt"

// Config mimics the simulator's cache configuration.
type Config struct {
	SizeBytes  uint
	Assoc      uint
	BlockBytes uint
}

func goodLiterals() Config {
	return Config{
		SizeBytes:  64 << 10,
		Assoc:      4,
		BlockBytes: 64,
	}
}

func disabled() Config {
	// Zero means "disabled"; run-time validation handles it.
	return Config{SizeBytes: 0, Assoc: 0}
}

// selfValidated contains the power-of-two test idiom before its mask
// use, the pattern mem.NewGeometry follows.
func selfValidated(addr, blockSize uint64) (uint64, error) {
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return 0, fmt.Errorf("block size %d not a power of two", blockSize)
	}
	return addr & (blockSize - 1), nil
}

func isPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// validatorRouted passes the size through a named validator first.
func validatorRouted(addr, cacheSize uint64) uint64 {
	if !isPow2(cacheSize) {
		return 0
	}
	return addr % cacheSize
}

// fieldUse masks with a struct field; constructors validate fields, so
// field selectors are exempt from rule 2.
type geom struct{ blockBytes uint64 }

func (g geom) base(addr uint64) uint64 {
	return addr &^ (g.blockBytes - 1)
}

// nonSizeName is ordinary bit twiddling on names outside the pattern.
func nonSizeName(x, mask uint64) uint64 {
	return x & (mask - 1)
}

// divisibilityTest uses % only inside a comparison: a shape check, not
// index arithmetic, so no power-of-two validation is demanded.
func divisibilityTest(entries, assoc int) error {
	if entries < 1 || assoc < 1 || entries%assoc != 0 {
		return fmt.Errorf("bad shape %d/%d", entries, assoc)
	}
	return nil
}
