// Package a exercises the pow2size positive cases.
package a

// Config mimics the simulator's cache configuration.
type Config struct {
	SizeBytes  uint
	Assoc      uint
	BlockBytes uint
	CzoneSize  uint
}

func badLiterals() Config {
	return Config{
		SizeBytes:  100 << 10, // want `SizeBytes set to 102400, not a power of two`
		Assoc:      3,         // want `Assoc set to 3, not a power of two`
		BlockBytes: 64,
		CzoneSize:  3000, // want `CzoneSize set to 3000, not a power of two`
	}
}

func badAssignments() {
	var cfg Config
	cfg.SizeBytes = 48 << 10 // want `SizeBytes set to 49152, not a power of two`
	blockSize := 100         // want `blockSize set to 100, not a power of two`
	_ = blockSize
	_ = cfg
}

const defaultCacheSize = 3 << 10 // want `defaultCacheSize set to 3072, not a power of two`

// unvalidatedMask uses a size parameter in mask arithmetic without ever
// validating it.
func unvalidatedMask(addr uint64, czoneSize uint64) uint64 {
	return addr & (czoneSize - 1) // want `mask arithmetic on czoneSize, which this function never validates`
}

// unvalidatedMod uses a size parameter as a modulus without validation.
func unvalidatedMod(addr uint64, cacheSize uint64) uint64 {
	return addr % cacheSize // want `modulus arithmetic on cacheSize, which this function never validates`
}
