// Package pow2size flags cache-geometry sizes that are not powers of
// two, and mask/mod arithmetic on unvalidated size variables.
//
// Invariant protected: the simulator's address arithmetic — block
// extraction, set indexing, and Section 3/7's czone partitioning — is
// mask-and-shift over the physical address, which is only equivalent to
// the division it stands for when block, cache, and czone sizes are
// powers of two. A non-power-of-two size silently aliases addresses and
// produces plausible but wrong hit rates.
//
// Two rules:
//
//  1. A constant integer bound to a name matching *BlockSize,
//     *BlockBytes, *CacheSize, *SizeBytes, *CzoneSize, *WordBytes or
//     *Assoc (composite literal key, assignment, or declaration) must
//     be zero (disabled; validated at run time) or a power of two.
//
//  2. Mask or modulus arithmetic (y & (v-1), y % v) on a plain
//     variable v with such a name is flagged unless the enclosing
//     function also validates v: contains the v&(v-1) power-of-two
//     test itself, or passes v to a function whose name mentions
//     pow2/valid/check (e.g. config's checker, mem.NewGeometry).
//     Struct fields (g.blockBytes) are exempt: constructors validate
//     them before they are stored.
package pow2size

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"

	"streamsim/internal/analysis"
)

// Analyzer is the pow2size pass.
var Analyzer = &analysis.Analyzer{
	Name: "pow2size",
	Doc: "flags non-power-of-two constants bound to size/assoc names, and " +
		"mask/mod arithmetic on size variables never validated as powers of two",
	Run: run,
}

// sizeName matches identifiers that carry power-of-two geometry.
var sizeName = regexp.MustCompile(`(?i)(blocksize|blockbytes|cachesize|sizebytes|czonesize|czonebytes|wordbytes|assoc)$`)

// validatorName matches functions that establish the invariant.
var validatorName = regexp.MustCompile(`(?i)(pow2|valid|check|newgeometry)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && sizeName.MatchString(key.Name) {
						checkConstant(pass, key.Name, kv.Value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if name, ok := bindingName(lhs); ok && sizeName.MatchString(name) {
						checkConstant(pass, name, n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if sizeName.MatchString(name.Name) {
						checkConstant(pass, name.Name, n.Values[i])
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMaskUses(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// bindingName extracts the assigned identifier or field name.
func bindingName(lhs ast.Expr) (string, bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return lhs.Name, true
	case *ast.SelectorExpr:
		return lhs.Sel.Name, true
	}
	return "", false
}

// checkConstant reports expr when it folds to a positive non-power-of-
// two integer constant.
func checkConstant(pass *analysis.Pass, name string, expr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	v, ok := constant.Uint64Val(tv.Value)
	if !ok {
		// Negative: certainly not a power of two.
		pass.Reportf(expr.Pos(), "%s set to negative constant %s; sizes must be powers of two", name, tv.Value)
		return
	}
	if v == 0 || v&(v-1) == 0 {
		return // zero means disabled; otherwise a power of two
	}
	pass.Reportf(expr.Pos(),
		"%s set to %d, not a power of two; mask/shift address arithmetic requires power-of-two sizes", name, v)
}

// checkMaskUses implements rule 2 over one function body.
func checkMaskUses(pass *analysis.Pass, fn *ast.FuncDecl) {
	validated := map[string]bool{}
	type use struct {
		pos  token.Pos
		name string
		op   string
	}
	var uses []use

	// REM nodes that appear directly under a comparison are divisibility
	// tests (entries%assoc != 0), not index arithmetic; ast.Inspect
	// visits parents first, so they are collected before they are seen.
	comparisonRem := map[ast.Expr]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if b, ok := unparen(operand).(*ast.BinaryExpr); ok && b.Op == token.REM {
						comparisonRem[b] = true
					}
				}
			case token.AND, token.AND_NOT:
				// v & (v-1) is the power-of-two test itself: it
				// validates v. y & (v-1) with y != v is a mask use.
				v, ok := maskOperand(n.Y)
				if !ok {
					return true
				}
				if lhs, ok := n.X.(*ast.Ident); ok && lhs.Name == v {
					validated[v] = true
					return true
				}
				if sizeName.MatchString(v) {
					uses = append(uses, use{n.Pos(), v, "mask"})
				}
			case token.REM:
				if comparisonRem[n] {
					return true // divisibility test, not arithmetic
				}
				if id, ok := n.Y.(*ast.Ident); ok && sizeName.MatchString(id.Name) {
					uses = append(uses, use{n.Pos(), id.Name, "modulus"})
				}
			}
		case *ast.CallExpr:
			var calleeName string
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				calleeName = fun.Name
			case *ast.SelectorExpr:
				calleeName = fun.Sel.Name
			}
			if !validatorName.MatchString(calleeName) {
				return true
			}
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok {
					validated[id.Name] = true
				}
			}
		}
		return true
	})

	for _, u := range uses {
		if validated[u.name] {
			continue
		}
		pass.Reportf(u.pos,
			"%s arithmetic on %s, which this function never validates as a power of two; check it (v&(v-1)==0) or route it through a validating constructor",
			u.op, u.name)
	}
}

// maskOperand unwraps (v - 1) and returns v's identifier name.
func maskOperand(e ast.Expr) (string, bool) {
	e = unparen(e)
	sub, ok := e.(*ast.BinaryExpr)
	if !ok || sub.Op != token.SUB {
		return "", false
	}
	lit, ok := unparen(sub.Y).(*ast.BasicLit)
	if !ok || lit.Value != "1" {
		return "", false
	}
	// Unwrap conversions like uint64(v) - no: v - 1 only; but allow
	// Addr(v) - 1 style by looking through a single-arg conversion.
	x := unparen(sub.X)
	if call, ok := x.(*ast.CallExpr); ok && len(call.Args) == 1 {
		x = unparen(call.Args[0])
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
