package pow2size_test

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
	"streamsim/internal/analysis/pow2size"
)

func TestPow2Size(t *testing.T) {
	dir := analysistest.TestData(t)
	for _, pkg := range []string{"a", "b"} {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, dir, pow2size.Analyzer, pkg)
		})
	}
}
