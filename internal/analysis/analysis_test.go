package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadTypeChecks loads a real package of this module through the
// export-data pipeline and sanity-checks the result.
func TestLoadTypeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain via go list")
	}
	pkgs, err := Load("../..", "./internal/mem")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "streamsim/internal/mem" {
		t.Errorf("package path = %q", pkg.Path)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil {
		t.Fatal("package loaded without files or types")
	}
	// The loader must resolve identifiers: find one Use with a type.
	resolved := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pkg.TypesInfo.Uses[id] != nil {
				resolved++
			}
			return true
		})
	}
	if resolved == 0 {
		t.Error("no identifiers resolved; type info is empty")
	}
}

// TestAppliesTo covers the driver-side package filter.
func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Name: "x", PackagePrefixes: []string{"streamsim/internal/core"}}
	if !a.AppliesTo("streamsim/internal/core") {
		t.Error("prefix match rejected")
	}
	if a.AppliesTo("streamsim/cmd/streamsim") {
		t.Error("non-matching package accepted")
	}
	open := &Analyzer{Name: "y"}
	if !open.AppliesTo("anything") {
		t.Error("empty prefix list must match everything")
	}
}

// TestSuppression covers the //simlint:ignore directive end to end
// using a synthetic analyzer that reports on every return statement.
func TestSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain via go list")
	}
	pkgs, err := Load("../..", "./internal/analysis/testdata/suppress")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a := &Analyzer{
		Name: "retlint",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if _, ok := n.(*ast.ReturnStmt); ok {
						pass.Reportf(n.Pos(), "return found")
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := RunAnalyzer(a, pkgs[0])
	if err != nil {
		t.Fatalf("RunAnalyzer: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (two of three returns suppressed): %v", len(diags), diags)
	}
	pos := pkgs[0].Fset.Position(diags[0].Pos)
	if !strings.Contains(pos.Filename, "suppress.go") {
		t.Errorf("diagnostic at %v", pos)
	}
}
