// Package errdiscard flags discarded error returns from the trace
// codec and the config loaders.
//
// Invariant protected: the trace codec reports truncated or corrupt
// trace files, deferred flush failures and short writes through error
// returns, and the config loaders report malformed or out-of-range
// configurations the same way. Dropping one of those errors turns a
// broken experiment input into silently wrong results — the exact
// failure mode (plausible numbers from a corrupted run) the paper's
// methodology cannot tolerate.
//
// The check: any call into a package whose import path ends in /trace
// or /config (the codec and the loaders) whose results include an
// error must consume that error. Calling for effect (an expression or
// defer statement) and assigning the error to the blank identifier are
// both flagged; a genuinely ignorable error is waived explicitly with
// //simlint:ignore errdiscard.
package errdiscard

import (
	"go/ast"
	"go/types"
	"strings"

	"streamsim/internal/analysis"
)

// Analyzer is the errdiscard pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdiscard",
	Doc: "flags dropped error returns from the trace codec and config " +
		"loaders (expression statements, defers, and blank assignments)",
	Run: run,
}

// targetPackages are the import-path tails whose errors must never be
// dropped.
var targetPackages = map[string]bool{"trace": true, "config": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkCall(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkCall(pass, n.Call, "go ")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall reports call when it returns an error from a target
// package and the statement form drops every result.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, form string) {
	obj, name := callee(pass, call)
	if obj == nil || !fromTargetPackage(obj) {
		return
	}
	if errorResultIndex(obj) < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"%s%s returns an error that is discarded; a corrupt trace or config must not pass silently",
		form, name)
}

// checkBlankAssign reports assignments that send a target package's
// error result to the blank identifier.
func checkBlankAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	obj, name := callee(pass, call)
	if obj == nil || !fromTargetPackage(obj) {
		return
	}
	idx := errorResultIndex(obj)
	if idx < 0 || idx >= len(assign.Lhs) {
		return
	}
	if id, ok := assign.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(assign.Pos(),
			"error result of %s assigned to the blank identifier; handle it or waive it with //simlint:ignore errdiscard",
			name)
	}
}

// callee resolves the called function or method and a printable name.
func callee(pass *analysis.Pass, call *ast.CallExpr) (types.Object, string) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		if obj == nil {
			return nil, ""
		}
		return obj, exprName(fun.X) + "." + fun.Sel.Name
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		if obj == nil {
			return nil, ""
		}
		return obj, fun.Name
	}
	return nil, ""
}

// fromTargetPackage reports whether obj is declared in a trace or
// config package.
func fromTargetPackage(obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return targetPackages[path]
}

// errorResultIndex returns the position of the (last) error result in
// obj's signature, or -1.
func errorResultIndex(obj types.Object) int {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return -1
	}
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if types.Identical(res.At(i).Type(), errType) {
			return i
		}
	}
	return -1
}

// exprName renders the receiver side of a selector for messages.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun) + "(...)"
	default:
		return "(...)"
	}
}
