// Package trace is a miniature of the simulator's trace codec, just
// enough surface for the errdiscard tests.
package trace

import "errors"

// Writer buffers trace events.
type Writer struct{ err error }

// Flush drains the buffer and reports any deferred write error.
func (w *Writer) Flush() error { return w.err }

// Events returns the event count (no error; must not be flagged).
func (w *Writer) Events() uint64 { return 0 }

// Reader decodes trace events.
type Reader struct{}

// Next returns the next event.
func (r *Reader) Next() (uint64, error) { return 0, errors.New("eof") }

// NewReader opens a reader.
func NewReader() (*Reader, error) { return &Reader{}, nil }
