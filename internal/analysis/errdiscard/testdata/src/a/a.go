// Package a exercises the errdiscard positive cases.
package a

import (
	"config"
	"trace"
)

func dropFlush(w *trace.Writer) {
	w.Flush() // want `w\.Flush returns an error that is discarded`
}

func dropDeferredFlush(w *trace.Writer) {
	defer w.Flush() // want `defer w\.Flush returns an error that is discarded`
}

func blankLoad() {
	_, _ = config.Load("paper.json") // want `error result of config\.Load assigned to the blank identifier`
}

func blankReader() *trace.Reader {
	r, _ := trace.NewReader() // want `error result of trace\.NewReader assigned to the blank identifier`
	return r
}
