// Package config is a miniature of the simulator's config loaders,
// just enough surface for the errdiscard tests.
package config

import "errors"

// Config is a resolved configuration.
type Config struct{ Streams int }

// Load reads a configuration file.
func Load(path string) (Config, error) {
	return Config{}, errors.New("unimplemented")
}

// Describe renders a config (no error; must not be flagged).
func Describe(c Config) string { return "" }
