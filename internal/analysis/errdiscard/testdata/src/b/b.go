// Package b exercises the errdiscard negative cases: handled errors,
// error-free calls, non-target packages, and an explicit waiver.
package b

import (
	"config"
	"fmt"
	"strings"
	"trace"
)

func handled(w *trace.Writer) error {
	if err := w.Flush(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	cfg, err := config.Load("paper.json")
	if err != nil {
		return err
	}
	_ = cfg
	return nil
}

func noError(w *trace.Writer) uint64 {
	return w.Events()
}

func nonTarget(b *strings.Builder) {
	// strings is not a trace/config package; WriteString's error may
	// be dropped freely.
	b.WriteString("ok")
}

func waived(w *trace.Writer) {
	w.Flush() //simlint:ignore errdiscard
}
