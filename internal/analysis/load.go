package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("streamsim/internal/cache").
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records types and object resolutions for Files.
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportLookup resolves import paths to compiler export data files. It
// is the importer bridge shared by Load and the analysistest harness.
type ExportLookup map[string]string

// Importer returns a types.Importer that reads export data through the
// lookup table.
func (e ExportLookup) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := e[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadExportData runs go list over the given packages (plus their
// dependency closure) and returns the import-path → export-file table.
func LoadExportData(dir string, patterns ...string) (ExportLookup, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	lookup := ExportLookup{}
	for _, p := range pkgs {
		if p.Export != "" {
			lookup[p.ImportPath] = p.Export
		}
	}
	return lookup, nil
}

// Load lists the packages matching patterns (resolved relative to dir),
// parses their non-test sources and type-checks them against compiler
// export data. Packages pulled in only as dependencies are used for
// their export data but not re-analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	lookup := ExportLookup{}
	for _, p := range listed {
		if p.Export != "" {
			lookup[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := lookup.Importer(fset)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// typeCheck parses and checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
