// Package b exercises the maporder negative cases: slice iteration,
// sorted-key iteration, and an explicitly waived order-insensitive sum.
package b

import "sort"

func slices(entries []uint64) uint64 {
	var sum uint64
	for _, e := range entries {
		sum += e
	}
	return sum
}

func sortedKeys(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	//simlint:ignore maporder
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func waivedSum(counts map[uint64]uint64) uint64 {
	var total uint64
	for _, v := range counts { //simlint:ignore maporder
		total += v
	}
	return total
}
