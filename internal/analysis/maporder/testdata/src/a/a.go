// Package a exercises the maporder positive cases.
package a

// stats mimics a hot-path accumulator keyed by block address.
type stats struct {
	perBlock map[uint64]uint64
}

// leakOrder folds map iteration order into an output slice: the classic
// nondeterminism bug the analyzer exists to catch.
func (s *stats) leakOrder() []uint64 {
	var out []uint64
	for blk := range s.perBlock { // want `range over map s\.perBlock iterates in nondeterministic order`
		out = append(out, blk)
	}
	return out
}

func leakLocal(counts map[string]int) string {
	best := ""
	for k, v := range counts { // want `range over map counts iterates in nondeterministic order`
		if v > 0 {
			best = k
			break
		}
	}
	return best
}
