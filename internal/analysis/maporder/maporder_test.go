package maporder_test

import (
	"testing"

	"streamsim/internal/analysis/analysistest"
	"streamsim/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	dir := analysistest.TestData(t)
	for _, pkg := range []string{"a", "b"} {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, dir, maporder.Analyzer, pkg)
		})
	}
}
