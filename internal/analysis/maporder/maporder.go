// Package maporder flags range statements over maps in the simulator's
// hot paths.
//
// Invariant protected: Go randomizes map iteration order, so any stats
// accumulation or replacement decision reached by ranging over a map
// differs from run to run, breaking the bit-identical replay the golden
// tests (and the paper's methodology) depend on. The hardware models
// (internal/core, internal/stream, internal/filter, internal/cache and
// friends) therefore use slices with explicit indices; a map range that
// creeps in is either a determinism bug or must justify itself with a
// //simlint:ignore maporder directive proving the loop body is
// order-insensitive (e.g. a pure sum).
package maporder

import (
	"go/ast"
	"go/types"

	"streamsim/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range over maps in simulation hot paths, where iteration " +
		"order would leak into stats or replacement decisions",
	PackagePrefixes: []string{
		"streamsim/internal/core",
		"streamsim/internal/stream",
		"streamsim/internal/filter",
		"streamsim/internal/cache",
		"streamsim/internal/prefetch",
		"streamsim/internal/victim",
		"streamsim/internal/tab",
		"streamsim/internal/mem",
		"streamsim/internal/memctl",
		"streamsim/internal/timing",
	},
	Run: run,
	// detflow subsumes this rule with a flow-aware one (it follows the
	// call graph from //simlint:deterministic roots and recognizes the
	// collect-then-sort idiom), so the syntactic pass reports at warn
	// tier: visible, but not a failure on its own.
	Severity: analysis.SeverityWarn,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s iterates in nondeterministic order; iterate a sorted key slice, or mark the loop //simlint:ignore maporder if it is provably order-insensitive",
				exprString(rs.X))
			return true
		})
	}
	return nil
}

// exprString renders simple range operands for the message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expression"
	}
}
