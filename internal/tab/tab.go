// Package tab renders the experiment harness's structured tables as
// aligned plain text, in the spirit of the paper's tables.
package tab

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells with optional footnotes.
type Table struct {
	// Title is printed above the grid.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the cells; short rows are padded with empty cells.
	Rows [][]string
	// Notes are printed below the grid, one per line.
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the aligned text form. The first column is left-
// aligned; the rest are right-aligned (numeric convention).
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row + data rows;
// the title and notes become comment lines prefixed with '#').
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// F formats a float with one decimal (the paper's usual precision).
func F(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals (miss rates, MPI).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// D formats an integer cell.
func D(v uint64) string { return fmt.Sprintf("%d", v) }
