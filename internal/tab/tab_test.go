package tab

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Columns: []string{"name", "v"},
	}
	tbl.AddRow("a", "1.0")
	tbl.AddRow("longer", "10.5")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	// Numeric column is right-aligned: both values end at same offset.
	if len(lines[4]) != len(lines[5]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[4], lines[5])
	}
}

func TestRenderPadsShortRows(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b", "c"}}
	tbl.AddRow("x")
	out := tbl.Render()
	if !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

func TestRenderWideRow(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}}
	tbl.AddRow("1", "2", "3")
	out := tbl.Render()
	if !strings.Contains(out, "3") {
		t.Error("extra cells dropped")
	}
}

func TestNotes(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}, Notes: []string{"hello"}}
	if !strings.Contains(tbl.Render(), "note: hello") {
		t.Error("notes missing")
	}
}

func TestNoTitle(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}}
	out := tbl.Render()
	if strings.HasPrefix(out, "\n") || strings.HasPrefix(out, "=") {
		t.Error("title artifacts without a title")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.25) != "1.2" && F(1.25) != "1.3" {
		t.Errorf("F(1.25) = %q", F(1.25))
	}
	if F2(3.14159) != "3.14" {
		t.Errorf("F2 = %q", F2(3.14159))
	}
	if D(42) != "42" {
		t.Errorf("D = %q", D(42))
	}
}

func TestCSV(t *testing.T) {
	tbl := &Table{
		Title:   "My Table",
		Columns: []string{"name", "v"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("plain", "1.5")
	tbl.AddRow("needs, quoting", `has "quotes"`)
	out := tbl.CSV()
	want := "# My Table\n" +
		"name,v\n" +
		"plain,1.5\n" +
		"\"needs, quoting\",\"has \"\"quotes\"\"\"\n" +
		"# a note\n"
	if out != want {
		t.Errorf("CSV =\n%q\nwant\n%q", out, want)
	}
}
