package prefetch

import (
	"testing"

	"streamsim/internal/mem"
)

func TestNewOBLValidation(t *testing.T) {
	if _, err := NewOBL(0); err == nil {
		t.Error("degree 0 should be rejected")
	}
	o, err := NewOBL(2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "OBL-2" {
		t.Errorf("Name = %q", o.Name())
	}
}

func TestOBLSuccessors(t *testing.T) {
	o, _ := NewOBL(1)
	got := o.Miss(mem.Access{}, 100)
	if len(got) != 1 || got[0] != 101 {
		t.Errorf("Miss successors = %v, want [101]", got)
	}
	got = o.FirstUse(mem.Access{}, 200)
	if len(got) != 1 || got[0] != 201 {
		t.Errorf("FirstUse successors = %v, want [201] (tagged chaining)", got)
	}
	o2, _ := NewOBL(3)
	got = o2.Miss(mem.Access{}, 10)
	want := []mem.Addr{11, 12, 13}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("degree-3 successors = %v, want %v", got, want)
			break
		}
	}
}

func newRPT(t *testing.T) *RPT {
	t.Helper()
	r, err := NewRPT(mem.DefaultGeometry(), 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRPTValidation(t *testing.T) {
	g := mem.DefaultGeometry()
	if _, err := NewRPT(g, 0, 1); err == nil {
		t.Error("zero entries should be rejected")
	}
	if _, err := NewRPT(g, 10, 4); err == nil {
		t.Error("entries not divisible by assoc should be rejected")
	}
	if _, err := NewRPT(g, 12, 4); err == nil {
		t.Error("non-power-of-two set count should be rejected")
	}
}

func TestRPTDetectsStrideAfterWarmup(t *testing.T) {
	r := newRPT(t)
	pc := mem.Addr(0x400)
	const stride = 4096
	base := mem.Addr(1 << 20)
	// initial -> transient -> steady: the third observation with a
	// matching stride starts predicting.
	for i := 0; i < 3; i++ {
		blk, ok := r.Observe(mem.Access{PC: pc, Addr: base + mem.Addr(i*stride), Kind: mem.Read})
		if i < 2 && ok {
			t.Fatalf("observation %d predicted early (%d)", i, blk)
		}
		if i == 2 {
			if !ok {
				t.Fatal("steady entry should predict")
			}
			want := mem.DefaultGeometry().BlockAddr(base + 3*stride)
			if blk != want {
				t.Errorf("predicted block %d, want %d", blk, want)
			}
		}
	}
}

func TestRPTUnitStrideToo(t *testing.T) {
	// Unlike the off-chip czone filter, the RPT sees every reference
	// and handles unit strides through the same automaton.
	r := newRPT(t)
	pc := mem.Addr(0x404)
	hits := 0
	for i := 0; i < 20; i++ {
		if _, ok := r.Observe(mem.Access{PC: pc, Addr: mem.Addr(1<<20 + i*8), Kind: mem.Read}); ok {
			hits++
		}
	}
	if hits < 17 {
		t.Errorf("steady predictions = %d/20, want ~18", hits)
	}
}

func TestRPTIrregularGoesNoPred(t *testing.T) {
	r := newRPT(t)
	pc := mem.Addr(0x408)
	addrs := []mem.Addr{100, 9000, 200, 77000, 41, 60000, 3000}
	preds := 0
	for _, a := range addrs {
		if _, ok := r.Observe(mem.Access{PC: pc, Addr: a << 10, Kind: mem.Read}); ok {
			preds++
		}
	}
	if preds != 0 {
		t.Errorf("irregular reference pattern produced %d predictions, want 0", preds)
	}
}

func TestRPTRecoversAfterPhaseChange(t *testing.T) {
	r := newRPT(t)
	pc := mem.Addr(0x40c)
	// Steady at stride 64...
	for i := 0; i < 5; i++ {
		r.Observe(mem.Access{PC: pc, Addr: mem.Addr(1<<20 + i*64), Kind: mem.Read})
	}
	// ...then the loop changes to stride 1024.
	base := mem.Addr(1 << 22)
	var sawPred bool
	for i := 0; i < 6; i++ {
		if _, ok := r.Observe(mem.Access{PC: pc, Addr: base + mem.Addr(i*1024), Kind: mem.Read}); ok {
			sawPred = true
		}
	}
	if !sawPred {
		t.Error("RPT failed to re-lock after a stride change")
	}
}

func TestRPTSeparatePCsIndependent(t *testing.T) {
	r := newRPT(t)
	pcA, pcB := mem.Addr(0x500), mem.Addr(0x504)
	// Interleaved: pcA strides by 8, pcB by 4096. Both must go steady.
	var okA, okB bool
	for i := 0; i < 10; i++ {
		if _, ok := r.Observe(mem.Access{PC: pcA, Addr: mem.Addr(1<<20 + i*8), Kind: mem.Read}); ok {
			okA = true
		}
		if _, ok := r.Observe(mem.Access{PC: pcB, Addr: mem.Addr(1<<24 + i*4096), Kind: mem.Write}); ok {
			okB = true
		}
	}
	if !okA || !okB {
		t.Errorf("independent PCs: predictions (A, B) = (%v, %v), want both", okA, okB)
	}
}

func TestRPTIgnoresIFetchAndUnknownPC(t *testing.T) {
	r := newRPT(t)
	if _, ok := r.Observe(mem.Access{PC: 0x400, Addr: 1 << 20, Kind: mem.IFetch}); ok {
		t.Error("ifetches must not be observed")
	}
	if _, ok := r.Observe(mem.Access{PC: 0, Addr: 1 << 20, Kind: mem.Read}); ok {
		t.Error("PC-less references must not be observed")
	}
	if got := r.Stats().Observations; got != 0 {
		t.Errorf("Observations = %d, want 0", got)
	}
}

func TestRPTEviction(t *testing.T) {
	// A tiny 1-set table: more live PCs than ways forces evictions.
	r, err := NewRPT(mem.DefaultGeometry(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		pc := mem.Addr(0x400 + i*4*int(2)) // hmm: all PCs map to set 0 (1 set)
		r.Observe(mem.Access{PC: pc, Addr: mem.Addr(i) << 12, Kind: mem.Read})
	}
	if r.Stats().Evictions == 0 {
		t.Error("overcommitted table should evict")
	}
}

func TestRPTZeroStrideNoPrefetch(t *testing.T) {
	r := newRPT(t)
	pc := mem.Addr(0x600)
	for i := 0; i < 10; i++ {
		if _, ok := r.Observe(mem.Access{PC: pc, Addr: 1 << 20, Kind: mem.Read}); ok {
			t.Fatal("repeated same-address references must not prefetch (stride 0)")
		}
	}
}

// trainRPT feeds n strided references at the given PC so the entry
// reaches steady state.
func trainRPT(r *RPT, pc mem.Addr, n int) {
	for i := 0; i < n; i++ {
		r.Observe(mem.Access{PC: pc, Addr: mem.Addr(1<<20 + i*4096), Kind: mem.Read})
	}
}

func TestRPTStatsRoundTrip(t *testing.T) {
	r := newRPT(t)
	trainRPT(r, 0x400, 8)
	got := r.Stats()
	if got.Observations != 8 || got.Predictions == 0 {
		t.Fatalf("training left Stats = %+v, want 8 observations and predictions > 0", got)
	}

	// Reset clears counters without touching the table: the trained
	// entry must keep predicting immediately.
	r.ResetStats()
	if r.Stats() != (RPTStats{}) {
		t.Errorf("ResetStats left %+v", r.Stats())
	}
	if _, ok := r.Observe(mem.Access{PC: 0x400, Addr: mem.Addr(1<<20 + 8*4096), Kind: mem.Read}); !ok {
		t.Error("ResetStats disturbed the automaton: steady entry stopped predicting")
	}

	// Adopt-then-merge round-trip: SetStats overwrites wholesale,
	// AddStats combines additively.
	r.SetStats(RPTStats{Observations: 100, Predictions: 10, Evictions: 1})
	r.AddStats(RPTStats{Observations: 11, Predictions: 2, Evictions: 3})
	want := RPTStats{Observations: 111, Predictions: 12, Evictions: 4}
	if r.Stats() != want {
		t.Errorf("SetStats+AddStats = %+v, want %+v", r.Stats(), want)
	}
}

func TestRPTCloneIndependent(t *testing.T) {
	r := newRPT(t)
	trainRPT(r, 0x400, 4)
	snap := r.Stats()

	c := r.Clone()
	if c.Stats() != snap {
		t.Fatalf("clone stats %+v, want %+v", c.Stats(), snap)
	}

	// The clone carries the automaton: the trained entry predicts the
	// same next block on both tables.
	next := mem.Access{PC: 0x400, Addr: mem.Addr(1<<20 + 4*4096), Kind: mem.Read}
	rb, rok := r.Observe(next)
	cb, cok := c.Observe(next)
	if rok != cok || rb != cb {
		t.Fatalf("clone diverges on the very next observation: (%d,%v) vs (%d,%v)", rb, rok, cb, cok)
	}

	// Evolving the clone must not leak into the original.
	trainRPT(c, 0x500, 16)
	if r.Stats() == c.Stats() {
		t.Error("original's stats moved with the clone's")
	}
	if _, ok := r.Observe(mem.Access{PC: 0x500, Addr: 1 << 24, Kind: mem.Read}); ok {
		t.Error("original predicts from an entry only the clone trained")
	}
}
