// Package prefetch implements the related-work prefetchers the paper
// positions stream buffers against (its Section 2): Smith's tagged
// one-block-lookahead (OBL) policy and Baer & Chen's PC-indexed
// reference prediction table (RPT).
//
// Both are *on-chip* schemes that prefetch directly into the primary
// cache. The RPT in particular needs the program counter of each
// load/store — the paper's central argument for stream buffers is that
// off-chip logic cannot see PCs, so a commodity-processor system
// cannot build an RPT without modifying the processor. Implementing
// them here lets the experiment harness quantify what that constraint
// costs (see the "extbase" experiment).
package prefetch

import (
	"fmt"

	"streamsim/internal/mem"
)

// Prefetcher decides which blocks to pull into the primary cache.
// The harness (internal/experiments) calls Miss for every demand miss
// and FirstUse the first time a previously prefetched block is
// referenced; both return block numbers to prefetch.
type Prefetcher interface {
	// Name labels the scheme in results.
	Name() string
	// Miss observes a demand miss and returns blocks to prefetch.
	Miss(a mem.Access, blk mem.Addr) []mem.Addr
	// FirstUse observes the first demand reference to a block that
	// entered the cache via prefetch (tagged schemes chain on this).
	FirstUse(a mem.Access, blk mem.Addr) []mem.Addr
}

// OBL is Smith's tagged one-block-lookahead policy: fetching block i
// (on a miss, or touching a prefetched block for the first time)
// triggers a prefetch of block i+1. The tag — "was this block brought
// in by a prefetch and not yet referenced?" — is maintained by the
// harness, which is what distinguishes tagged OBL from prefetch-on-
// miss-only.
type OBL struct {
	// Degree is how many sequential successors to prefetch (classic
	// OBL uses 1).
	degree int
}

// NewOBL builds a tagged OBL prefetcher of the given degree.
func NewOBL(degree int) (*OBL, error) {
	if degree < 1 {
		return nil, fmt.Errorf("prefetch: OBL degree %d < 1", degree)
	}
	return &OBL{degree: degree}, nil
}

// Name implements Prefetcher.
func (o *OBL) Name() string { return fmt.Sprintf("OBL-%d", o.degree) }

// Miss implements Prefetcher: prefetch the next degree blocks.
func (o *OBL) Miss(_ mem.Access, blk mem.Addr) []mem.Addr {
	return o.successors(blk)
}

// FirstUse implements Prefetcher: the tagged policy chains.
func (o *OBL) FirstUse(_ mem.Access, blk mem.Addr) []mem.Addr {
	return o.successors(blk)
}

func (o *OBL) successors(blk mem.Addr) []mem.Addr {
	out := make([]mem.Addr, o.degree)
	for i := range out {
		out[i] = blk + mem.Addr(i) + 1
	}
	return out
}

// rptState is the Baer-Chen per-entry automaton.
type rptState uint8

const (
	// rptInitial: first sighting; no stride yet.
	rptInitial rptState = iota
	// rptTransient: a stride guess exists but is unverified.
	rptTransient
	// rptSteady: the stride has predicted correctly; prefetch.
	rptSteady
	// rptNoPred: repeated mispredictions; stand down until the stride
	// stabilizes again.
	rptNoPred
)

// rptEntry is one reference-prediction-table row.
type rptEntry struct {
	tag      mem.Addr // load/store PC
	prevAddr mem.Addr
	stride   int64
	state    rptState
	valid    bool
	lastUse  uint64
}

// RPTStats counts table behaviour.
//
//simlint:state counters
type RPTStats struct {
	// Observations is the number of data references seen.
	Observations uint64
	// Predictions is the number of prefetches issued from steady
	// entries.
	Predictions uint64
	// Evictions counts table replacements.
	Evictions uint64
}

// RPT is Baer & Chen's reference prediction table: a PC-indexed,
// set-associative table tracking per-instruction strides with the
// initial/transient/steady/no-prediction automaton, prefetching
// prevAddr+stride when steady.
//
// Unlike the stream buffers, the RPT observes *every* data reference
// (it lives on-chip next to the load/store unit), so the harness calls
// Observe unconditionally.
//
//simlint:state
type RPT struct {
	entries []rptEntry
	assoc   int
	sets    int
	geom    mem.Geometry
	clock   uint64
	stats   RPTStats
}

// NewRPT builds a table with the given total entries and
// associativity. Baer & Chen evaluated 64-256 entries 4-way; the
// synthetic traces' PC recurrence (see internal/workload) wants the
// larger end.
func NewRPT(geom mem.Geometry, entries, assoc int) (*RPT, error) {
	if entries < 1 || assoc < 1 || entries%assoc != 0 {
		return nil, fmt.Errorf("prefetch: bad RPT shape %d entries / %d-way", entries, assoc)
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("prefetch: RPT set count %d not a power of two", sets)
	}
	return &RPT{
		entries: make([]rptEntry, entries),
		assoc:   assoc,
		sets:    sets,
		geom:    geom,
	}, nil
}

// Name implements Prefetcher.
func (r *RPT) Name() string {
	return fmt.Sprintf("RPT-%d/%dway", len(r.entries), r.assoc)
}

// Stats returns a copy of the table statistics.
func (r *RPT) Stats() RPTStats { return r.stats }

// ResetStats clears the counters without disturbing table contents.
//
//simlint:statefull reset
func (r *RPT) ResetStats() { r.stats = RPTStats{} }

// SetStats overwrites the statistics wholesale; the replay engine
// restores accumulated counters onto adopted state with it.
//
//simlint:statefull adopt
func (r *RPT) SetStats(s RPTStats) { r.stats = s }

// AddStats accumulates another table's counters into this one (the
// window-sharded replay engine merges per-chunk deltas this way).
//
//simlint:statefull merge
func (r *RPT) AddStats(s RPTStats) {
	r.stats.Observations += s.Observations
	r.stats.Predictions += s.Predictions
	r.stats.Evictions += s.Evictions
}

// Clone returns a deep copy of the table — every entry's automaton
// state, the reference clock and the statistics. The clone evolves
// independently of the original.
//
//simlint:statefull clone
func (r *RPT) Clone() *RPT {
	n := *r
	n.entries = append([]rptEntry(nil), r.entries...)
	return &n
}

// set returns the ways of pc's set.
func (r *RPT) set(pc mem.Addr) []rptEntry {
	idx := int(pc>>2) & (r.sets - 1) // word-aligned PCs: skip low bits
	return r.entries[idx*r.assoc : (idx+1)*r.assoc]
}

// Observe updates the automaton for one data reference and returns a
// block to prefetch when the entry is steady. It is called for every
// load and store, hit or miss.
func (r *RPT) Observe(a mem.Access) (blk mem.Addr, ok bool) {
	if a.Kind == mem.IFetch || a.PC == 0 {
		return 0, false
	}
	r.clock++
	r.stats.Observations++
	ways := r.set(a.PC)

	var e *rptEntry
	for i := range ways {
		if ways[i].valid && ways[i].tag == a.PC {
			e = &ways[i]
			break
		}
	}
	if e == nil {
		// Allocate (LRU within the set) in initial state.
		e = &ways[0]
		for i := range ways {
			if !ways[i].valid {
				e = &ways[i]
				break
			}
			if ways[i].lastUse < e.lastUse {
				e = &ways[i]
			}
		}
		if e.valid {
			r.stats.Evictions++
		}
		*e = rptEntry{tag: a.PC, prevAddr: a.Addr, state: rptInitial, valid: true, lastUse: r.clock}
		return 0, false
	}

	e.lastUse = r.clock
	delta := int64(a.Addr) - int64(e.prevAddr)
	correct := delta == e.stride
	switch e.state {
	case rptInitial:
		e.stride = delta
		e.state = rptTransient
	case rptTransient:
		if correct {
			e.state = rptSteady
		} else {
			e.stride = delta
			e.state = rptNoPred
		}
	case rptSteady:
		if !correct {
			e.state = rptInitial
		}
	case rptNoPred:
		if correct {
			e.state = rptTransient
		} else {
			e.stride = delta
		}
	}
	e.prevAddr = a.Addr

	if e.state == rptSteady && e.stride != 0 {
		next := int64(a.Addr) + e.stride
		if next >= 0 {
			r.stats.Predictions++
			return r.geom.BlockAddr(mem.Addr(next)), true
		}
	}
	return 0, false
}

// Miss implements Prefetcher. The RPT's work happens in Observe; a
// miss adds nothing extra.
func (r *RPT) Miss(mem.Access, mem.Addr) []mem.Addr { return nil }

// FirstUse implements Prefetcher.
func (r *RPT) FirstUse(mem.Access, mem.Addr) []mem.Addr { return nil }
