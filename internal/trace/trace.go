// Package trace implements the paper's trace methodology: a compact
// binary address-trace format (the stand-in for Shade output) and the
// time-sampling technique of Section 4.1 — tracing switched on for
// 10,000 references and off for 90,000, sampling 10% of the run.
//
// The on-disk format is a small header followed by varint-encoded
// records. Access records store the per-kind address delta (traces are
// dominated by sequential runs, so deltas compress well); instruction
// records carry retired-instruction counts for MPI accounting. Only
// the address and kind are stored — program counters are an on-chip
// luxury the paper's off-chip hardware never sees, so the format drops
// them (the RPT baseline in internal/prefetch therefore only works on
// in-process traces).
package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"streamsim/internal/mem"
)

// Format constants.
const (
	// Magic identifies a stream trace file.
	Magic = "STRB"
	// Version is the current format version. Version 2 adds window
	// marker records (an instruction record with a zero count, one per
	// WindowRefs accesses) so a file carries the same window structure
	// the in-memory Store index exposes; version 1 files contain no
	// markers and decode unchanged.
	Version = 2
	// minVersion is the oldest format Reader still accepts.
	minVersion = 1
)

// record tags: low two bits of the first varint carry the kind.
const (
	tagRead  = 0
	tagWrite = 1
	tagFetch = 2
	tagInsts = 3
)

// MaxAddr is the largest encodable address: deltas are carried in a
// 62-bit ring so a record fits one varint alongside its 2-bit tag.
// Physical addresses comfortably fit (2^62 bytes = 4 EiB).
const MaxAddr = mem.Addr(1)<<62 - 1

const addrBits = 62

// Event is one decoded trace record: either a memory access
// (Insts == 0) or an instruction-count record (Insts > 0).
type Event struct {
	// Access is valid when Insts is zero.
	Access mem.Access
	// Insts is the retired-instruction count for count records.
	Insts uint64
}

// Writer encodes events to an io.Writer. It satisfies workload.Sink,
// so a workload can be recorded directly:
//
//	tw := trace.NewWriter(f)
//	w.Run(tw, 1.0)
//	tw.Flush()
type Writer struct {
	w      *bufio.Writer
	last   [3]uint64 // previous address per kind
	err    error
	events uint64
	accs   uint64 // access records written, for window markers
}

// NewWriter starts a trace on w, writing the header immediately.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	tw := &Writer{w: bw}
	if _, err := bw.WriteString(Magic); err != nil {
		tw.err = err
		return tw
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], Version)
	if _, err := bw.Write(v[:]); err != nil {
		tw.err = err
	}
	return tw
}

// Access encodes one memory reference.
func (t *Writer) Access(a mem.Access) {
	if t.err != nil {
		return
	}
	kind := int(a.Kind)
	if kind > tagFetch {
		t.err = fmt.Errorf("trace: invalid access kind %v", a.Kind)
		return
	}
	if a.Addr > MaxAddr {
		t.err = fmt.Errorf("trace: address %#x exceeds the %d-bit format limit", uint64(a.Addr), addrBits)
		return
	}
	// Delta in a 62-bit ring, sign-extended from bit 61, zig-zagged,
	// then shifted to make room for the kind tag.
	d := (uint64(a.Addr) - t.last[kind]) & uint64(MaxAddr)
	t.last[kind] = uint64(a.Addr)
	delta := int64(d<<2) >> 2 // sign-extend 62 -> 64 bits
	zz := uint64(delta<<1) ^ uint64(delta>>63)
	zz &= uint64(MaxAddr) // 62 significant bits
	t.putUvarint(zz<<2 | uint64(kind))
	t.events++
	if t.accs++; t.accs%WindowRefs == 0 {
		// Window marker: an instruction record with a zero count, which
		// version 1 could never produce (AddInstructions drops zeros).
		t.putUvarint(tagInsts)
	}
}

// AccessBatch encodes a batch of references in order, satisfying
// BatchSink so recording a workload skips per-reference dispatch.
func (t *Writer) AccessBatch(accs []mem.Access) {
	for i := range accs {
		t.Access(accs[i])
	}
}

// AddInstructions encodes a retired-instruction count.
func (t *Writer) AddInstructions(n uint64) {
	if t.err != nil || n == 0 {
		return
	}
	t.putUvarint(n<<2 | tagInsts)
	t.events++
}

func (t *Writer) putUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = err
	}
}

// Events returns the number of records written so far.
func (t *Writer) Events() uint64 { return t.events }

// Flush drains the buffer and reports any deferred write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace produced by Writer (any version back to
// minVersion).
type Reader struct {
	r       *bufio.Reader
	last    [3]uint64
	windows uint64
}

// NewReader validates the header and returns a reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(Magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, errors.New("trace: bad magic (not a stream trace file)")
	}
	if v := binary.LittleEndian.Uint16(head[len(Magic):]); v < minVersion || v > Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// Windows returns the number of window markers decoded so far (always
// zero for a version 1 trace).
func (t *Reader) Windows() uint64 { return t.windows }

// Next decodes one event. It returns io.EOF at end of trace. Window
// markers are counted and skipped transparently.
func (t *Reader) Next() (Event, error) {
	v, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: decoding record: %w", err)
	}
	for v == tagInsts { // zero-count instruction record: window marker
		t.windows++
		if v, err = binary.ReadUvarint(t.r); err != nil {
			if err == io.EOF {
				return Event{}, io.EOF
			}
			return Event{}, fmt.Errorf("trace: decoding record: %w", err)
		}
	}
	tag := v & 3
	body := v >> 2
	if tag == tagInsts {
		return Event{Insts: body}, nil
	}
	// Un-zig-zag the delta and advance in the 62-bit ring.
	delta := int64(body>>1) ^ -int64(body&1)
	t.last[tag] = (t.last[tag] + uint64(delta)) & uint64(MaxAddr)
	return Event{Access: mem.Access{Addr: mem.Addr(t.last[tag]), Kind: mem.Kind(tag)}}, nil
}

// Sink is the consumer side of Replay; both core.System and Writer
// satisfy it.
type Sink interface {
	Access(mem.Access)
	AddInstructions(n uint64)
}

// BatchSink is a Sink that also consumes references in batches.
// core.System and Writer satisfy it; Replay and the workload
// generator use the batched entry point when the sink offers one,
// which amortizes interface dispatch over ReplayBatchLen references.
type BatchSink interface {
	Sink
	AccessBatch(accs []mem.Access)
}

// ReplayBatchLen is the batch size used by Replay (and by
// experiments' in-memory replay): big enough to amortize dispatch,
// small enough that the decode buffer stays resident in the host L1.
const ReplayBatchLen = 512

// Replay streams every event into sink. If sink implements BatchSink
// the accesses are delivered in batches, with any instruction-count
// record flushing the pending batch first so the sink observes events
// in exactly the recorded order.
func (t *Reader) Replay(sink Sink) error {
	return t.ReplayContext(context.Background(), sink)
}

// ReplayContext is Replay with cancellation: ctx is polled once per
// ReplayBatchLen events (never per event), and a cancelled replay
// returns ctx.Err() with the sink having consumed a prefix of the
// trace.
func (t *Reader) ReplayContext(ctx context.Context, sink Sink) error {
	done := ctx.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	bs, ok := sink.(BatchSink)
	if !ok {
		n := 0
		for {
			ev, err := t.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if ev.Insts > 0 {
				sink.AddInstructions(ev.Insts)
			} else {
				sink.Access(ev.Access)
			}
			if n++; n >= ReplayBatchLen {
				n = 0
				if cancelled() {
					return ctx.Err()
				}
			}
		}
	}
	buf := make([]mem.Access, 0, ReplayBatchLen)
	flush := func() {
		if len(buf) > 0 {
			bs.AccessBatch(buf)
			buf = buf[:0]
		}
	}
	for {
		ev, err := t.Next()
		if err == io.EOF {
			flush()
			return nil
		}
		if err != nil {
			return err
		}
		if ev.Insts > 0 {
			flush()
			bs.AddInstructions(ev.Insts)
			continue
		}
		buf = append(buf, ev.Access)
		if len(buf) == ReplayBatchLen {
			flush()
			if cancelled() {
				return ctx.Err()
			}
		}
	}
}

// TimeSampler forwards a 1-in-N time slice of the reference stream to
// its underlying sink: OnRefs references pass through, then OffRefs
// are dropped, repeating. Instruction counts are suppressed during the
// off phase too, so sampled MPI stays meaningful. The paper samples
// 10,000 on / 90,000 off.
type TimeSampler struct {
	sink     Sink
	onRefs   uint64
	offRefs  uint64
	pos      uint64 // position within the on+off cycle
	dropped  uint64
	passed   uint64
	windows  uint64
	onWindow func(window uint64)
}

// Paper's Section 4.1 sampling parameters.
const (
	DefaultOnRefs  = 10000
	DefaultOffRefs = 90000
)

// NewTimeSampler wraps sink. onRefs must be positive; offRefs may be
// zero (sampling disabled).
func NewTimeSampler(sink Sink, onRefs, offRefs uint64) (*TimeSampler, error) {
	if onRefs == 0 {
		return nil, errors.New("trace: time sampler needs onRefs > 0")
	}
	return &TimeSampler{sink: sink, onRefs: onRefs, offRefs: offRefs}, nil
}

// Access forwards or drops one reference according to the cycle.
func (s *TimeSampler) Access(a mem.Access) {
	if s.pos == 0 {
		s.windows++
		if s.onWindow != nil {
			s.onWindow(s.windows - 1)
		}
	}
	inOn := s.pos < s.onRefs
	s.pos++
	if s.pos == s.onRefs+s.offRefs {
		s.pos = 0
	}
	if inOn {
		s.passed++
		s.sink.Access(a)
		return
	}
	s.dropped++
}

// AddInstructions forwards counts only during the on phase.
func (s *TimeSampler) AddInstructions(n uint64) {
	if s.pos < s.onRefs {
		s.sink.AddInstructions(n)
	}
}

// Passed returns the number of references forwarded.
func (s *TimeSampler) Passed() uint64 { return s.passed }

// Dropped returns the number of references suppressed.
func (s *TimeSampler) Dropped() uint64 { return s.dropped }

// Windows returns the number of on-phase sample windows begun. When
// the sampler feeds a Store and onRefs is DefaultOnRefs, this equals
// the store's WindowCount: only on-phase references reach the store,
// so every sampler window starts exactly at a store window boundary.
func (s *TimeSampler) Windows() uint64 { return s.windows }

// SetWindowFunc registers fn to run at each window boundary, before
// the window's first reference is presented; fn receives the zero-based
// window number. A nil fn removes the callback.
func (s *TimeSampler) SetWindowFunc(fn func(window uint64)) { s.onWindow = fn }
