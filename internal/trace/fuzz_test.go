package trace

import (
	"bytes"
	"io"
	"testing"

	"streamsim/internal/mem"
)

// FuzzReader feeds arbitrary bytes to the decoder: it must never
// panic, and must terminate with io.EOF or a decode error.
func FuzzReader(f *testing.F) {
	// Seed with a valid small trace.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Access(mem.Access{Addr: 0x1000, Kind: mem.Read})
	w.Access(mem.Access{Addr: 0x1040, Kind: mem.Write})
	w.AddInstructions(7)
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STRB\x01\x00"))
	f.Add([]byte("STRB\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		for i := 0; i < 1<<16; i++ { // bound: fuzz inputs are finite anyway
			ev, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // decode error: fine
			}
			if ev.Insts == 0 && !ev.Access.Kind.Valid() {
				t.Fatalf("decoder produced invalid kind %v", ev.Access.Kind)
			}
			if ev.Insts == 0 && ev.Access.Addr > MaxAddr {
				t.Fatalf("decoder produced out-of-range address %#x", uint64(ev.Access.Addr))
			}
		}
	})
}

// FuzzRoundTrip encodes a derived event sequence and checks exact
// reconstruction.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xaa})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Derive a deterministic event list from the fuzz input.
		var want []Event
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var addr uint64 = 1 << 20
		for i, b := range data {
			switch b % 4 {
			case 0:
				addr += uint64(b) * 64
			case 1:
				addr -= uint64(b)
				if int64(addr) < 0 {
					addr = 0
				}
			case 2:
				n := uint64(b) + 1
				w.AddInstructions(n)
				want = append(want, Event{Insts: n})
				continue
			case 3:
				addr = uint64(i) * 977
			}
			a := mem.Access{Addr: mem.Addr(addr) & MaxAddr, Kind: mem.Kind(b % 3)}
			w.Access(a)
			want = append(want, Event{Access: a})
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, exp := range want {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			if got != exp {
				t.Fatalf("event %d = %+v, want %+v", i, got, exp)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trailing data: %v", err)
		}
	})
}
