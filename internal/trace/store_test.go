package trace

import (
	"math/rand"
	"testing"

	"streamsim/internal/mem"
)

// randomAccesses builds a deterministic mixed stream: sequential runs,
// large jumps, all three kinds, occasional nonzero sizes — the shapes
// the delta encoder must round-trip exactly.
func randomAccesses(n int) []mem.Access {
	rng := rand.New(rand.NewSource(7))
	accs := make([]mem.Access, n)
	var addr, pc [3]uint64
	for i := range accs {
		k := mem.Kind(rng.Intn(3))
		switch rng.Intn(4) {
		case 0: // fresh region
			addr[k] = uint64(rng.Int63()) & uint64(MaxAddr)
			pc[k] = uint64(rng.Int63()) & uint64(MaxAddr)
		case 1: // backward step
			addr[k] -= uint64(rng.Intn(512))
			addr[k] &= uint64(MaxAddr)
		default: // the common case: short forward stride
			addr[k] += uint64(rng.Intn(256))
			pc[k] += 4
		}
		accs[i] = mem.Access{Addr: mem.Addr(addr[k]), PC: mem.Addr(pc[k]), Kind: k}
		if rng.Intn(64) == 0 {
			accs[i].Size = uint8(1 + rng.Intn(8))
		}
	}
	return accs
}

func TestStoreRoundTrip(t *testing.T) {
	accs := randomAccesses(10000)
	s := NewStore(len(accs))
	for _, a := range accs {
		s.Append(a)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(accs) {
		t.Fatalf("Len() = %d, want %d", s.Len(), len(accs))
	}
	// Decode with a deliberately awkward buffer size so batches split
	// at non-aligned points.
	buf := make([]mem.Access, 77)
	it := s.Iter()
	i := 0
	for n := it.Next(buf); n > 0; n = it.Next(buf) {
		for j := 0; j < n; j++ {
			if buf[j] != accs[i] {
				t.Fatalf("access %d: decoded %+v, want %+v", i, buf[j], accs[i])
			}
			i++
		}
	}
	if i != len(accs) {
		t.Fatalf("decoded %d accesses, want %d", i, len(accs))
	}
	if n := it.Next(buf); n != 0 {
		t.Fatalf("exhausted iterator returned %d", n)
	}
}

func TestStoreBatchAppendMatchesScalar(t *testing.T) {
	accs := randomAccesses(3000)
	scalar, batch := NewStore(0), NewStore(len(accs))
	for _, a := range accs {
		scalar.Append(a)
	}
	for i := 0; i < len(accs); i += 100 {
		end := i + 100
		if end > len(accs) {
			end = len(accs)
		}
		batch.AppendBatch(accs[i:end])
	}
	sb, bb := make([]mem.Access, 256), make([]mem.Access, 256)
	si, bi := scalar.Iter(), batch.Iter()
	for {
		ns, nb := si.Next(sb), bi.Next(bb)
		if ns != nb {
			t.Fatalf("batch sizes diverged: %d vs %d", ns, nb)
		}
		if ns == 0 {
			return
		}
		for j := 0; j < ns; j++ {
			if sb[j] != bb[j] {
				t.Fatalf("decoded access diverged: %+v vs %+v", sb[j], bb[j])
			}
		}
	}
}

// TestStoreCompression pins the point of the store: a unit-stride
// dominated trace must encode far below the 24 bytes/ref of a raw
// []mem.Access. The 4 bytes/ref bound is loose (measured workload
// traces sit near 2) so kernel retunes don't trip it spuriously.
func TestStoreCompression(t *testing.T) {
	s := NewStore(0)
	a := mem.Access{Addr: 1 << 24, PC: 1 << 20, Kind: mem.Read}
	const n = 100000
	for i := 0; i < n; i++ {
		s.Append(a)
		a.Addr += 8
		a.PC += 4
		if i%8 == 7 {
			s.Append(mem.Access{Addr: mem.Addr(1<<20 + (i%128)*64), Kind: mem.IFetch})
		}
	}
	perRef := float64(s.Bytes()) / float64(s.Len())
	if perRef > 4 {
		t.Errorf("store averages %.1f bytes/ref on a strided trace; want <= 4 (raw is 24)", perRef)
	}
}

func TestStoreRejectsOversizeAddr(t *testing.T) {
	s := NewStore(0)
	s.Append(mem.Access{Addr: MaxAddr + 1})
	if s.Err() == nil {
		t.Error("address beyond MaxAddr did not set Err")
	}
	s2 := NewStore(0)
	s2.Append(mem.Access{Kind: mem.Kind(9)})
	if s2.Err() == nil {
		t.Error("invalid kind did not set Err")
	}
}

func TestStoreEstimatePreallocHolds(t *testing.T) {
	// With an accurate hint the encoder must not regrow the address
	// stream: storeBytesPerRef covers strided traces.
	s := NewStore(1000)
	capBefore := cap(s.addr)
	a := mem.Access{Addr: 1 << 24, Kind: mem.Read}
	for i := 0; i < 1000; i++ {
		s.Append(a)
		a.Addr += 64
		a.PC += 4
	}
	if cap(s.addr) != capBefore {
		t.Errorf("address stream regrew from %d to %d on a strided trace", capBefore, cap(s.addr))
	}
}
