package trace

import (
	"context"
	"math/rand"
	"testing"

	"streamsim/internal/mem"
)

// randomAccesses builds a deterministic mixed stream: sequential runs,
// large jumps, all three kinds, occasional nonzero sizes — the shapes
// the delta encoder must round-trip exactly.
func randomAccesses(n int) []mem.Access {
	rng := rand.New(rand.NewSource(7))
	accs := make([]mem.Access, n)
	var addr, pc [3]uint64
	for i := range accs {
		k := mem.Kind(rng.Intn(3))
		switch rng.Intn(4) {
		case 0: // fresh region
			addr[k] = uint64(rng.Int63()) & uint64(MaxAddr)
			pc[k] = uint64(rng.Int63()) & uint64(MaxAddr)
		case 1: // backward step
			addr[k] -= uint64(rng.Intn(512))
			addr[k] &= uint64(MaxAddr)
		default: // the common case: short forward stride
			addr[k] += uint64(rng.Intn(256))
			pc[k] += 4
		}
		accs[i] = mem.Access{Addr: mem.Addr(addr[k]), PC: mem.Addr(pc[k]), Kind: k}
		if rng.Intn(64) == 0 {
			accs[i].Size = uint8(1 + rng.Intn(8))
		}
	}
	return accs
}

// TestStoreRoundTrip drives the deterministic encode side: appends
// followed by a full decode must reproduce the input byte-for-byte.
//
//simlint:deterministic (*streamsim/internal/trace.Store).Append
func TestStoreRoundTrip(t *testing.T) {
	accs := randomAccesses(10000)
	s := NewStore(len(accs))
	for _, a := range accs {
		s.Append(a)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(accs) {
		t.Fatalf("Len() = %d, want %d", s.Len(), len(accs))
	}
	// Decode with a deliberately awkward buffer size so batches split
	// at non-aligned points.
	buf := make([]mem.Access, 77)
	it := s.Iter()
	i := 0
	for n := it.Next(buf); n > 0; n = it.Next(buf) {
		for j := 0; j < n; j++ {
			if buf[j] != accs[i] {
				t.Fatalf("access %d: decoded %+v, want %+v", i, buf[j], accs[i])
			}
			i++
		}
	}
	if i != len(accs) {
		t.Fatalf("decoded %d accesses, want %d", i, len(accs))
	}
	if n := it.Next(buf); n != 0 {
		t.Fatalf("exhausted iterator returned %d", n)
	}
}

func TestStoreBatchAppendMatchesScalar(t *testing.T) {
	accs := randomAccesses(3000)
	scalar, batch := NewStore(0), NewStore(len(accs))
	for _, a := range accs {
		scalar.Append(a)
	}
	for i := 0; i < len(accs); i += 100 {
		end := i + 100
		if end > len(accs) {
			end = len(accs)
		}
		batch.AppendBatch(accs[i:end])
	}
	sb, bb := make([]mem.Access, 256), make([]mem.Access, 256)
	si, bi := scalar.Iter(), batch.Iter()
	for {
		ns, nb := si.Next(sb), bi.Next(bb)
		if ns != nb {
			t.Fatalf("batch sizes diverged: %d vs %d", ns, nb)
		}
		if ns == 0 {
			return
		}
		for j := 0; j < ns; j++ {
			if sb[j] != bb[j] {
				t.Fatalf("decoded access diverged: %+v vs %+v", sb[j], bb[j])
			}
		}
	}
}

// TestStoreCompression pins the point of the store: a unit-stride
// dominated trace must encode far below the 24 bytes/ref of a raw
// []mem.Access. The 4 bytes/ref bound is loose (measured workload
// traces sit near 2) so kernel retunes don't trip it spuriously.
func TestStoreCompression(t *testing.T) {
	s := NewStore(0)
	a := mem.Access{Addr: 1 << 24, PC: 1 << 20, Kind: mem.Read}
	const n = 100000
	for i := 0; i < n; i++ {
		s.Append(a)
		a.Addr += 8
		a.PC += 4
		if i%8 == 7 {
			s.Append(mem.Access{Addr: mem.Addr(1<<20 + (i%128)*64), Kind: mem.IFetch})
		}
	}
	perRef := float64(s.Bytes()) / float64(s.Len())
	if perRef > 4 {
		t.Errorf("store averages %.1f bytes/ref on a strided trace; want <= 4 (raw is 24)", perRef)
	}
}

func TestStoreRejectsOversizeAddr(t *testing.T) {
	s := NewStore(0)
	s.Append(mem.Access{Addr: MaxAddr + 1})
	if s.Err() == nil {
		t.Error("address beyond MaxAddr did not set Err")
	}
	s2 := NewStore(0)
	s2.Append(mem.Access{Kind: mem.Kind(9)})
	if s2.Err() == nil {
		t.Error("invalid kind did not set Err")
	}
}

func TestStoreEstimatePreallocHolds(t *testing.T) {
	// With an accurate hint the encoder must not regrow the address
	// stream: storeBytesPerRef covers strided traces.
	s := NewStore(1000)
	capBefore := cap(s.addr)
	a := mem.Access{Addr: 1 << 24, Kind: mem.Read}
	for i := 0; i < 1000; i++ {
		s.Append(a)
		a.Addr += 64
		a.PC += 4
	}
	if cap(s.addr) != capBefore {
		t.Errorf("address stream regrew from %d to %d on a strided trace", capBefore, cap(s.addr))
	}
}

func TestStoreNextNoPCMatchesNext(t *testing.T) {
	accs := randomAccesses(5000)
	s := NewStore(len(accs))
	s.AppendBatch(accs)
	full, noPC := s.Iter(), s.Iter()
	fb, nb := make([]mem.Access, 77), make([]mem.Access, 77)
	i := 0
	for {
		nf, nn := full.Next(fb), noPC.NextNoPC(nb)
		if nf != nn {
			t.Fatalf("batch sizes diverged at access %d: %d vs %d", i, nf, nn)
		}
		if nf == 0 {
			break
		}
		for j := 0; j < nf; j++ {
			want := fb[j]
			want.PC = 0
			if nb[j] != want {
				t.Fatalf("access %d: NextNoPC decoded %+v, want %+v", i, nb[j], want)
			}
			i++
		}
	}
	if i != len(accs) {
		t.Fatalf("decoded %d accesses, want %d", i, len(accs))
	}
}

func TestStoreNextPackedMatchesNext(t *testing.T) {
	accs := randomAccesses(5000)
	s := NewStore(len(accs))
	s.AppendBatch(accs)
	full, packed := s.Iter(), s.Iter()
	fb, pb := make([]mem.Access, 77), make([]uint64, 77)
	i := 0
	for {
		nf, np := full.Next(fb), packed.NextPacked(pb)
		if nf != np {
			t.Fatalf("batch sizes diverged at access %d: %d vs %d", i, nf, np)
		}
		if nf == 0 {
			break
		}
		for j := 0; j < nf; j++ {
			want := uint64(fb[j].Addr)<<2 | uint64(fb[j].Kind)
			if pb[j] != want {
				t.Fatalf("access %d: NextPacked decoded %#x, want %#x (addr %#x kind %v)",
					i, pb[j], want, fb[j].Addr, fb[j].Kind)
			}
			i++
		}
	}
	if i != len(accs) {
		t.Fatalf("decoded %d accesses, want %d", i, len(accs))
	}
}

// storeEvent is one observation made by eventSink: an access or an
// instruction count, in arrival order.
type storeEvent struct {
	acc   mem.Access
	insts uint64
}

// eventSink records the exact event sequence it observes;
// batchEventSink adds AccessBatch, exercising ReplayContext's chunked
// delivery path.
type eventSink struct {
	events []storeEvent
}

func (e *eventSink) Access(a mem.Access)      { e.events = append(e.events, storeEvent{acc: a}) }
func (e *eventSink) AddInstructions(n uint64) { e.events = append(e.events, storeEvent{insts: n}) }

type batchEventSink struct{ eventSink }

func (e *batchEventSink) AccessBatch(accs []mem.Access) {
	for _, a := range accs {
		e.Access(a)
	}
}

// TestStoreReplayContextEventOrder drives the deterministic decode
// side: a replay must deliver the recorded event order exactly.
//
//simlint:deterministic (*streamsim/internal/trace.Store).ReplayContext
func TestStoreReplayContextEventOrder(t *testing.T) {
	// Build a store with instruction counts at awkward positions:
	// before any access, mid-stream at non-batch-aligned points, twice
	// in a row (coalesced), and after the final access.
	accs := randomAccesses(3 * ReplayBatchLen)
	s := NewStore(len(accs))
	var want []storeEvent
	addInsts := func(n uint64) {
		s.AddInstructions(n)
		if last := len(want) - 1; last >= 0 && want[last].insts > 0 {
			want[last].insts += n // the store coalesces; so must the oracle
			return
		}
		want = append(want, storeEvent{insts: n})
	}
	addInsts(3)
	for i, a := range accs {
		s.Append(a)
		want = append(want, storeEvent{acc: a})
		switch {
		case i == 100:
			addInsts(7)
			addInsts(2)
		case i%511 == 0:
			addInsts(uint64(i + 1))
		}
	}
	addInsts(9)
	if got, wantTotal := s.Instructions(), uint64(0); true {
		for _, ev := range want {
			wantTotal += ev.insts
		}
		if got != wantTotal {
			t.Fatalf("Instructions() = %d, want %d", got, wantTotal)
		}
	}
	for _, batch := range []bool{false, true} {
		var got *eventSink
		var sink Sink
		if batch {
			bs := &batchEventSink{}
			got, sink = &bs.eventSink, bs
		} else {
			got = &eventSink{}
			sink = got
		}
		if err := s.ReplayContext(context.Background(), sink); err != nil {
			t.Fatalf("batch=%v: ReplayContext: %v", batch, err)
		}
		if len(got.events) != len(want) {
			t.Fatalf("batch=%v: replayed %d events, want %d", batch, len(got.events), len(want))
		}
		for i := range want {
			if got.events[i] != want[i] {
				t.Fatalf("batch=%v: event %d = %+v, want %+v", batch, i, got.events[i], want[i])
			}
		}
	}
}

func TestStoreReplayContextCancel(t *testing.T) {
	accs := randomAccesses(8 * ReplayBatchLen)
	s := NewStore(len(accs))
	s.AppendBatch(accs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &batchEventSink{}
	if err := s.ReplayContext(ctx, sink); err != context.Canceled {
		t.Fatalf("ReplayContext on a cancelled ctx = %v, want context.Canceled", err)
	}
	if len(sink.events) > ReplayBatchLen {
		t.Fatalf("cancelled replay delivered %d events, want <= one batch (%d)", len(sink.events), ReplayBatchLen)
	}
}
