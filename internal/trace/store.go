package trace

import (
	"encoding/binary"
	"fmt"

	"streamsim/internal/mem"
)

// Store is a compact in-memory reference trace. It holds the same
// information as a []mem.Access but struct-of-arrays and
// delta-encoded: one varint byte stream carries per-kind address
// deltas (tagged with the kind in the low two bits, exactly like the
// on-disk format), a second carries per-kind PC deltas, and the rare
// access with a nonzero Size goes to a side list. Workload traces are
// dominated by short constant strides, so a reference that costs 24
// bytes as a mem.Access typically costs 2-4 bytes here — the
// difference between a full-scale trace that thrashes the host's
// caches during replay and one that streams through them.
//
// A Store is append-only and not safe for concurrent mutation;
// concurrent readers over a quiescent Store are fine (experiments
// replay one memoized trace from many goroutines).
type Store struct {
	addr   []byte // per access: uvarint(zigzag62(addr delta)<<2 | kind)
	pc     []byte // per access: uvarint(zigzag64(pc delta)), per-kind last
	sizes  []sizeException
	n      int
	last   [3]uint64 // previous address per kind
	lastPC [3]uint64 // previous PC per kind
	err    error
}

// sizeException records an access whose Size field is nonzero; the
// synthetic workloads never set one, so these stay off the dense
// streams.
type sizeException struct {
	idx  int
	size uint8
}

// storeBytesPerRef sizes the address stream preallocation: measured
// across the fifteen workload traces, the address stream runs 1.5-2.9
// bytes per reference (one-byte deltas for unit strides, two for
// instruction-fetch block steps, three to four for gathers) and the
// PC stream about one, so 3+1 covers the worst observed trace without
// a regrow.
const storeBytesPerRef = 3

// NewStore returns a Store preallocated for about capacityHint
// references. A zero or negative hint is valid and simply starts
// empty.
func NewStore(capacityHint int) *Store {
	s := &Store{}
	if capacityHint > 0 {
		s.addr = make([]byte, 0, capacityHint*storeBytesPerRef)
		s.pc = make([]byte, 0, capacityHint)
	}
	return s
}

// Append encodes one access. Errors (an address beyond the 62-bit
// format limit, an unknown kind) are deferred to Err, matching
// Writer's contract.
func (s *Store) Append(a mem.Access) {
	if s.err != nil {
		return
	}
	k := uint64(a.Kind)
	if k > tagFetch {
		s.err = fmt.Errorf("trace: invalid access kind %v", a.Kind)
		return
	}
	if a.Addr > MaxAddr || a.PC > MaxAddr {
		s.err = fmt.Errorf("trace: address %#x exceeds the %d-bit format limit", uint64(a.Addr), addrBits)
		return
	}
	// Address: delta in a 62-bit ring, sign-extended, zig-zagged, kind
	// tag in the low two bits — the Writer encoding, kept in memory.
	d := (uint64(a.Addr) - s.last[k]) & uint64(MaxAddr)
	s.last[k] = uint64(a.Addr)
	delta := int64(d<<2) >> 2
	zz := uint64(delta<<1) ^ uint64(delta>>63)
	zz &= uint64(MaxAddr)
	s.addr = binary.AppendUvarint(s.addr, zz<<2|k)
	// PC: plain 64-bit zig-zag delta per kind (no tag to make room
	// for). Loop bodies revisit the same sites, so deltas are tiny.
	pd := int64(uint64(a.PC) - s.lastPC[k])
	s.lastPC[k] = uint64(a.PC)
	s.pc = binary.AppendUvarint(s.pc, uint64(pd<<1)^uint64(pd>>63))
	if a.Size != 0 {
		s.sizes = append(s.sizes, sizeException{idx: s.n, size: a.Size})
	}
	s.n++
}

// AppendBatch encodes a batch of accesses in order.
func (s *Store) AppendBatch(accs []mem.Access) {
	for i := range accs {
		s.Append(accs[i])
	}
}

// Len returns the number of stored accesses.
func (s *Store) Len() int { return s.n }

// Bytes returns the resident encoded size, for logging and tests.
func (s *Store) Bytes() int {
	return len(s.addr) + len(s.pc) + len(s.sizes)*16
}

// Err reports the first deferred append error.
func (s *Store) Err() error { return s.err }

// Iter returns an iterator positioned at the first access. Multiple
// iterators over one Store are independent.
func (s *Store) Iter() StoreIter {
	return StoreIter{s: s}
}

// StoreIter decodes a Store back into mem.Access values in batches.
type StoreIter struct {
	s       *Store
	i       int // next access index
	pos     int // byte offset into s.addr
	pcPos   int // byte offset into s.pc
	excNext int // next pending entry of s.sizes
	last    [3]uint64
	lastPC  [3]uint64
}

// Next fills buf with up to len(buf) decoded accesses and returns how
// many it wrote; zero means the trace is exhausted. Decoding in
// batches keeps the varint state machine out of the per-access
// simulation loop:
//
//	it := store.Iter()
//	for n := it.Next(buf); n > 0; n = it.Next(buf) {
//		sys.AccessBatch(buf[:n])
//	}
func (it *StoreIter) Next(buf []mem.Access) int {
	n := it.s.n - it.i
	if n <= 0 {
		return 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	// The varints are decoded by hand rather than with binary.Uvarint:
	// the call overhead of two Uvarint invocations per reference costs
	// more than the rest of the decode combined, and nearly every
	// record is a one- or two-byte varint the fast paths below catch.
	addrs, pcs := it.s.addr, it.s.pc
	pos, pcPos := it.pos, it.pcPos
	for j := 0; j < n; j++ {
		v := uint64(addrs[pos])
		pos++
		if v >= 0x80 {
			v &= 0x7f
			for shift := 7; ; shift += 7 {
				b := addrs[pos]
				pos++
				v |= uint64(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		tag := v & 3
		body := v >> 2
		delta := int64(body>>1) ^ -int64(body&1)
		it.last[tag] = (it.last[tag] + uint64(delta)) & uint64(MaxAddr)

		pv := uint64(pcs[pcPos])
		pcPos++
		if pv >= 0x80 {
			pv &= 0x7f
			for shift := 7; ; shift += 7 {
				b := pcs[pcPos]
				pcPos++
				pv |= uint64(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		pd := int64(pv>>1) ^ -int64(pv&1)
		it.lastPC[tag] += uint64(pd)

		a := mem.Access{
			Addr: mem.Addr(it.last[tag]),
			PC:   mem.Addr(it.lastPC[tag]),
			Kind: mem.Kind(tag),
		}
		if it.excNext < len(it.s.sizes) && it.s.sizes[it.excNext].idx == it.i {
			a.Size = it.s.sizes[it.excNext].size
			it.excNext++
		}
		buf[j] = a
		it.i++
	}
	it.pos, it.pcPos = pos, pcPos
	return n
}
