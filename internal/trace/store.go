package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"streamsim/internal/mem"
)

// Store is a compact in-memory reference trace. It holds the same
// information as a []mem.Access but struct-of-arrays and
// delta-encoded: one byte stream carries address records, a second
// carries per-kind PC deltas, and the rare access with a nonzero Size
// goes to a side list. Workload traces are dominated by interleaved
// constant-stride streams, so a reference that costs 24 bytes as a
// mem.Access typically costs about one byte here — the difference
// between a full-scale trace that thrashes the host's caches during
// replay and one that streams through them.
//
// The address encoding borrows the paper's own insight: a workload is
// a handful of concurrent reference streams. Each access kind owns
// ringsPerKind stride-predicting rings (last address + recent deltas,
// exactly a stream buffer's allocation state); a record names its ring
// and carries the zig-zag delta from that ring's prediction. An access
// that continues a tracked stream — the overwhelmingly common case —
// has delta zero and encodes in a single byte regardless of the
// stride's magnitude, where a single last-address-per-kind scheme
// pays 3-5 bytes every time interleaved arrays alternate.
//
// Record layout (first byte, low to high): kind (2 bits), ring
// (3 bits), low 2 bits of the zig-zag delta, continuation bit. If the
// continuation bit is set, uvarint(zz>>2) follows.
//
// A Store is append-only and not safe for concurrent mutation;
// concurrent readers over a quiescent Store are fine (experiments
// replay one memoized trace from many goroutines).
type Store struct {
	addr   []byte // address records, see the layout above
	pc     []byte // per access: uvarint(zigzag64(pc delta)), per-kind last
	sizes  []sizeException
	insts  []instEvent
	n      int
	nInsts uint64
	rings  [ringSlots]ringState // encoder stream predictors, indexed ring<<2|kind
	stamp  [ringSlots]uint64    // last tick each ring was written (LRU victim choice)
	conf   [ringSlots]bool      // ring last carried a stream continuation
	tick   uint64
	lastPC [3]uint64 // previous PC per kind
	err    error

	// marks[w] is the decoder state at the first access of window w+1,
	// snapshotted by Append as the trace is encoded (see windowMark).
	// scanMarks and scanOnce serve stores that lack append-time marks:
	// one sequential decode rebuilds the same index, memoized.
	marks     []windowMark
	scanMarks []windowMark
	scanOnce  sync.Once
}

// WindowRefs is the number of stored references per window of the seek
// index. It equals DefaultOnRefs so that, when a trace is recorded
// through a TimeSampler with the paper's parameters, each index window
// is exactly one of the sampler's on-phase bursts: the off-phase
// references never reach the Store, so store windows and sampler
// windows share their boundaries by construction.
const WindowRefs = DefaultOnRefs

// windowMark is one entry of the window seek index: the complete
// decoder state at a window's first access. The encoder updates its
// rings with exactly the rule every decoder applies, so snapshotting
// the encoder state after k appends yields the state any iterator
// reaches after decoding k accesses — which is what makes an O(1) seek
// possible in a delta-coded stream.
type windowMark struct {
	pos     int // byte offset into Store.addr
	pcPos   int // byte offset into Store.pc
	excNext int // entries of Store.sizes consumed
	rings   [ringSlots]ringState
	lastPC  [3]uint64
}

// ringsPerKind is how many reference streams the encoder tracks per
// access kind. Eight covers the stencil kernels' array interleave —
// mgrid's smoothing sweep alone walks seven read lanes in lockstep,
// and each lane needs its own ring for its stride to be predictable.
// The 3-bit ring field in the record layout pins it.
const ringsPerKind = 8

// ringSlots sizes the flat ring arrays: slot index is ring<<2|kind,
// matching the low five bits of a record's first byte, so the decoder
// indexes with a single mask. Kind 3 is invalid, so a quarter of the
// slots are dead — cheaper than re-packing the index on every access.
const ringSlots = ringsPerKind * 4

// ringState is one stream predictor. The ring's prediction for its
// next address is last+d2 (mod 2^62): the delta from TWO records back,
// not the most recent one. For a constant-stride stream the two are
// equal, so nothing is lost — and a stream whose stride alternates
// between two values (a stencil's paired taps, a loop body's
// fetch-advance/jump-back) has period-2 deltas, which this predicts
// exactly where a last-stride predictor is wrong on every record.
type ringState struct {
	last uint64
	d1   uint64 // most recent delta
	d2   uint64 // delta before that; the predicted next delta
}

// strideResetZZ classifies a record as a stream reallocation: at or
// above this zig-zag delta (|delta| ≥ 32 KiB) the ring was not really
// continuing a stream, so both its deltas reset to zero rather than
// learning a garbage jump. Encoder and decoders must agree on this
// constant — the predictor state is replicated on both sides.
const strideResetZZ = 1 << 16

// sizeException records an access whose Size field is nonzero; the
// synthetic workloads never set one, so these stay off the dense
// streams.
type sizeException struct {
	idx  int
	size uint8
}

// instEvent records a retired-instruction count at its exact position
// in the reference stream: the count arrived after idx accesses had
// been appended. Keeping the position (rather than only a total) lets
// ReplayContext reproduce the recorded event order exactly, so a
// timing model replayed from a Store charges cycles in the same order
// a live workload run would.
type instEvent struct {
	idx int
	n   uint64
}

// storeBytesPerRef sizes the address stream preallocation: measured
// across the fifteen workload traces, the address stream runs 1.5-2.9
// bytes per reference (one-byte deltas for unit strides, two for
// instruction-fetch block steps, three to four for gathers) and the
// PC stream about one, so 3+1 covers the worst observed trace without
// a regrow.
const storeBytesPerRef = 3

// NewStore returns a Store preallocated for about capacityHint
// references. A zero or negative hint is valid and simply starts
// empty.
func NewStore(capacityHint int) *Store {
	s := &Store{}
	if capacityHint > 0 {
		s.addr = make([]byte, 0, capacityHint*storeBytesPerRef)
		s.pc = make([]byte, 0, capacityHint)
	}
	return s
}

// Append encodes one access. Errors (an address beyond the 62-bit
// format limit, an unknown kind) are deferred to Err, matching
// Writer's contract.
//
//simlint:deterministic
func (s *Store) Append(a mem.Access) {
	if s.err != nil {
		return
	}
	k := uint64(a.Kind)
	if k > tagFetch {
		s.err = fmt.Errorf("trace: invalid access kind %v", a.Kind)
		return
	}
	if a.Addr > MaxAddr || a.PC > MaxAddr {
		s.err = fmt.Errorf("trace: address %#x exceeds the %d-bit format limit", uint64(a.Addr), addrBits)
		return
	}
	// Address: pick the ring of this kind whose stride prediction
	// yields the shortest record, breaking byte-length ties toward the
	// least recently written ring. A reset-class access (no ring within
	// strideResetZZ of it) is an allocation, not a continuation, and it
	// may only steal an unconfirmed ring unless every ring is confirmed:
	// without that guard one stray reference evicts a live stream, the
	// displaced stream evicts another on its next access, and the whole
	// ring set thrashes — measured at a third of mgrid's records
	// resetting versus near zero with the guard.
	addr := uint64(a.Addr)
	bestIdx, bestZZ, bestCost := -1, uint64(0), 99
	for r := 0; r < ringsPerKind; r++ {
		idx := r<<2 | int(k)
		st := &s.rings[idx]
		d := (addr - st.last - st.d2) & uint64(MaxAddr)
		delta := int64(d<<2) >> 2
		zz := (uint64(delta<<1) ^ uint64(delta>>63)) & uint64(MaxAddr)
		if zz < 4 {
			// One-byte record — no other ring can beat it, so stop
			// scanning. (An LRU tie-break among equal one-byte rings is
			// forfeited; measured size impact is nil, and the scan is
			// the encoder's hot loop.)
			bestIdx, bestZZ = idx, zz
			break
		}
		cost := 1
		switch {
		case zz >= strideResetZZ && s.conf[idx]:
			cost = 95
		case zz >= strideResetZZ:
			cost = 90
		default:
			cost += (bits.Len64(zz>>2) + 6) / 7
		}
		if bestIdx < 0 || cost < bestCost || (cost == bestCost && s.stamp[idx] < s.stamp[bestIdx]) {
			bestIdx, bestZZ, bestCost = idx, zz, cost
		}
	}
	s.tick++
	s.stamp[bestIdx] = s.tick
	st := &s.rings[bestIdx]
	if bestZZ >= strideResetZZ {
		st.d1, st.d2 = 0, 0
		s.conf[bestIdx] = false
	} else {
		st.d1, st.d2 = (addr-st.last)&uint64(MaxAddr), st.d1
		s.conf[bestIdx] = true
	}
	st.last = addr
	b0 := byte(bestIdx) | byte(bestZZ&3)<<5
	if bestZZ < 4 {
		s.addr = append(s.addr, b0)
	} else {
		s.addr = append(s.addr, b0|0x80)
		s.addr = binary.AppendUvarint(s.addr, bestZZ>>2)
	}
	// PC: plain 64-bit zig-zag delta per kind (no tag to make room
	// for). Loop bodies revisit the same sites, so deltas are tiny.
	pd := int64(uint64(a.PC) - s.lastPC[k])
	s.lastPC[k] = uint64(a.PC)
	s.pc = binary.AppendUvarint(s.pc, uint64(pd<<1)^uint64(pd>>63))
	if a.Size != 0 {
		s.sizes = append(s.sizes, sizeException{idx: s.n, size: a.Size})
	}
	s.n++
	if s.n%WindowRefs == 0 {
		s.marks = append(s.marks, windowMark{
			pos:     len(s.addr),
			pcPos:   len(s.pc),
			excNext: len(s.sizes),
			rings:   s.rings,
			lastPC:  s.lastPC,
		})
	}
}

// AppendBatch encodes a batch of accesses in order. The batch is the
// caller's: workloads flush one reused buffer through here, so the
// encoder must be done with it when it returns.
//
//simlint:borrowed accs
func (s *Store) AppendBatch(accs []mem.Access) {
	for i := range accs {
		s.Append(accs[i])
	}
}

// Access is Append under the name workload.Sink expects, so a Store
// can record a workload run directly.
func (s *Store) Access(a mem.Access) { s.Append(a) }

// AccessBatch is AppendBatch under the name workload.BatchSink
// expects.
//
//simlint:borrowed accs
func (s *Store) AccessBatch(accs []mem.Access) { s.AppendBatch(accs) }

// AddInstructions records n retired instructions at the current
// position in the reference stream (completing the workload.Sink
// surface). Consecutive counts with no access in between coalesce.
func (s *Store) AddInstructions(n uint64) {
	if n == 0 {
		return
	}
	s.nInsts += n
	if last := len(s.insts) - 1; last >= 0 && s.insts[last].idx == s.n {
		s.insts[last].n += n
		return
	}
	s.insts = append(s.insts, instEvent{idx: s.n, n: n})
}

// Instructions returns the total retired-instruction count recorded.
func (s *Store) Instructions() uint64 { return s.nInsts }

// Len returns the number of stored accesses.
func (s *Store) Len() int { return s.n }

// Bytes returns the resident encoded size, for logging and tests.
func (s *Store) Bytes() int {
	return len(s.addr) + len(s.pc) + (len(s.sizes)+len(s.insts))*16
}

// Err reports the first deferred append error.
func (s *Store) Err() error { return s.err }

// Iter returns an iterator positioned at the first access. Multiple
// iterators over one Store are independent.
func (s *Store) Iter() StoreIter {
	return StoreIter{s: s}
}

// WindowCount returns the number of seek-index windows covering the
// trace: ceil(Len/WindowRefs). The final window may be short.
func (s *Store) WindowCount() int {
	return (s.n + WindowRefs - 1) / WindowRefs
}

// WindowLen returns the number of accesses in window w.
func (s *Store) WindowLen(w int) int {
	start := w * WindowRefs
	if rest := s.n - start; rest < WindowRefs {
		return rest
	}
	return WindowRefs
}

// PrefixLen returns the number of accesses in the first w windows —
// the cumulative sum of WindowLen over [0, w) — clamped to the store's
// length for w at or beyond the window count. Every window except the
// last holds exactly WindowRefs accesses, so the sum is closed-form;
// the prefix and resume replay engines use it instead of a per-call
// summation loop.
func (s *Store) PrefixLen(w int) int {
	if w <= 0 {
		return 0
	}
	if w >= s.WindowCount() {
		return s.n
	}
	return w * WindowRefs
}

// WindowOffsets returns, for each window, the byte offset into the
// address stream at which its records begin. Offsets come from the
// append-time index; a store without one (or with a stale one) pays a
// single sequential decode scan, memoized for the store's lifetime.
// Like the iterators, it must only be called on a quiescent store.
func (s *Store) WindowOffsets() []int {
	marks := s.windowMarks()
	offs := make([]int, s.WindowCount())
	for w := 1; w < len(offs); w++ {
		offs[w] = marks[w-1].pos
	}
	return offs
}

// IterAtWindow returns an iterator positioned at the first access of
// window w in [0, WindowCount()). The seek is O(1) when the store
// carries its append-time index. An iterator obtained here decodes
// identically to one that consumed the preceding windows itself.
func (s *Store) IterAtWindow(w int) StoreIter {
	if w == 0 {
		return s.Iter()
	}
	m := &s.windowMarks()[w-1]
	return StoreIter{
		s:       s,
		i:       w * WindowRefs,
		pos:     m.pos,
		pcPos:   m.pcPos,
		excNext: m.excNext,
		rings:   m.rings,
		lastPC:  m.lastPC,
	}
}

// windowMarks returns the seek index, preferring the marks Append
// recorded and falling back to one memoized scan of the trace.
func (s *Store) windowMarks() []windowMark {
	if full := s.n / WindowRefs; len(s.marks) >= full {
		return s.marks
	}
	s.scanOnce.Do(func() { s.scanMarks = s.buildWindowIndex() })
	return s.scanMarks
}

// buildWindowIndex reconstructs the window seek index by decoding the
// trace once, snapshotting the iterator state at every window
// boundary. It produces exactly the marks Append would have recorded:
// the iterator replicates the encoder's ring updates step for step.
func (s *Store) buildWindowIndex() []windowMark {
	marks := make([]windowMark, 0, s.n/WindowRefs)
	buf := make([]mem.Access, ReplayBatchLen)
	it := s.Iter()
	for target := WindowRefs; target <= s.n; target += WindowRefs {
		for it.i < target {
			b := buf
			if rest := target - it.i; rest < len(b) {
				b = b[:rest]
			}
			if it.Next(b) == 0 {
				break
			}
		}
		marks = append(marks, windowMark{
			pos:     it.pos,
			pcPos:   it.pcPos,
			excNext: it.excNext,
			rings:   it.rings,
			lastPC:  it.lastPC,
		})
	}
	return marks
}

// StoreIter decodes a Store back into mem.Access values in batches.
type StoreIter struct {
	s       *Store
	i       int // next access index
	pos     int // byte offset into s.addr
	pcPos   int // byte offset into s.pc
	excNext int // next pending entry of s.sizes
	rings   [ringSlots]ringState
	lastPC  [3]uint64
}

// Next fills buf with up to len(buf) decoded accesses and returns how
// many it wrote; zero means the trace is exhausted. Decoding in
// batches keeps the varint state machine out of the per-access
// simulation loop:
//
//	it := store.Iter()
//	for n := it.Next(buf); n > 0; n = it.Next(buf) {
//		sys.AccessBatch(buf[:n])
//	}
func (it *StoreIter) Next(buf []mem.Access) int {
	n := it.s.n - it.i
	if n <= 0 {
		return 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	// The varints are decoded by hand rather than with binary.Uvarint:
	// the call overhead of two Uvarint invocations per reference costs
	// more than the rest of the decode combined, and nearly every
	// record is a one- or two-byte varint the fast paths below catch.
	// All mutable decode state lives in locals for the batch: the
	// stream rings in particular would otherwise be reloaded every
	// reference, because the compiler cannot prove the writes through
	// buf do not alias the iterator.
	addrs, pcs := it.s.addr, it.s.pc
	pos, pcPos := it.pos, it.pcPos
	rings, lastPC := it.rings, it.lastPC
	nextExc := it.nextSizeIdx()
	for j := 0; j < n; j++ {
		b0 := addrs[pos]
		pos++
		zz := uint64(b0) >> 5 & 3
		if b0 >= 0x80 {
			for shift := 2; ; shift += 7 {
				b := addrs[pos]
				pos++
				zz |= uint64(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		st := &rings[b0&31]
		delta := int64(zz>>1) ^ -int64(zz&1)
		addr := (st.last + st.d2 + uint64(delta)) & uint64(MaxAddr)
		if zz >= strideResetZZ {
			st.d1, st.d2 = 0, 0
		} else {
			st.d1, st.d2 = (addr-st.last)&uint64(MaxAddr), st.d1
		}
		st.last = addr
		tag := uint64(b0) & 3

		pv := uint64(pcs[pcPos])
		pcPos++
		if pv >= 0x80 {
			pv &= 0x7f
			for shift := 7; ; shift += 7 {
				b := pcs[pcPos]
				pcPos++
				pv |= uint64(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		pd := int64(pv>>1) ^ -int64(pv&1)
		lastPC[tag] += uint64(pd)

		buf[j] = mem.Access{
			Addr: mem.Addr(addr),
			PC:   mem.Addr(lastPC[tag]),
			Kind: mem.Kind(tag),
		}
		if it.i+j == nextExc {
			buf[j].Size = it.s.sizes[it.excNext].size
			it.excNext++
			nextExc = it.nextSizeIdx()
		}
	}
	it.pos, it.pcPos = pos, pcPos
	it.rings, it.lastPC = rings, lastPC
	it.i += n
	return n
}

// nextSizeIdx returns the access index of the next pending size
// exception, or -1 when none remain — hoisting the two-load bounds
// test out of the decode loops.
func (it *StoreIter) nextSizeIdx() int {
	if it.excNext < len(it.s.sizes) {
		return it.s.sizes[it.excNext].idx
	}
	return -1
}

// NextNoPC is Next without the program-counter stream: decoded
// accesses carry Addr, Kind and Size but a zero PC, and the PC stream
// is not consumed at all. The memory-system simulators never read the
// PC (it exists for the PC-indexed prefetcher baselines), so this is
// the replay decode path — it halves the varint work per reference.
//
// An iterator must stick to one of Next or NextNoPC for its lifetime:
// NextNoPC leaves the PC cursor untouched, so a later Next on the same
// iterator would decode PC deltas that belong to already-consumed
// accesses.
func (it *StoreIter) NextNoPC(buf []mem.Access) int {
	n := it.s.n - it.i
	if n <= 0 {
		return 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	addrs := it.s.addr
	pos := it.pos
	rings := it.rings
	nextExc := it.nextSizeIdx()
	for j := 0; j < n; j++ {
		b0 := addrs[pos]
		pos++
		zz := uint64(b0) >> 5 & 3
		if b0 >= 0x80 {
			for shift := 2; ; shift += 7 {
				b := addrs[pos]
				pos++
				zz |= uint64(b&0x7f) << shift
				if b < 0x80 {
					break
				}
			}
		}
		st := &rings[b0&31]
		delta := int64(zz>>1) ^ -int64(zz&1)
		addr := (st.last + st.d2 + uint64(delta)) & uint64(MaxAddr)
		if zz >= strideResetZZ {
			st.d1, st.d2 = 0, 0
		} else {
			st.d1, st.d2 = (addr-st.last)&uint64(MaxAddr), st.d1
		}
		st.last = addr
		buf[j] = mem.Access{Addr: mem.Addr(addr), Kind: mem.Kind(b0 & 3)}
		if it.i+j == nextExc {
			buf[j].Size = it.s.sizes[it.excNext].size
			it.excNext++
			nextExc = it.nextSizeIdx()
		}
	}
	it.pos = pos
	it.rings = rings
	it.i += n
	return n
}

// NextPacked decodes up to len(buf) references into packed words —
// uint64(addr)<<2 | uint64(kind) — and returns how many it wrote; zero
// means the trace is exhausted. This is the memory-system replay
// decode: a core.System reads neither PC nor Size, so the decode can
// skip the PC stream and the size-exception list entirely and avoid
// materializing mem.Access values at all. The layout is lossless —
// addresses carry at most 62 bits (MaxAddr) — and matches what
// core.(*System).AccessPacked unpacks.
//
// Like NextNoPC, NextPacked leaves the PC cursor untouched: an
// iterator must stick to one of Next, NextNoPC or NextPacked for its
// lifetime.
//
//simlint:hotpath
func (it *StoreIter) NextPacked(buf []uint64) int {
	n := it.s.n - it.i
	if n <= 0 {
		return 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	addrs := it.s.addr
	pos := it.pos
	rings := &it.rings
	for j := 0; j < n; j++ {
		b0 := addrs[pos]
		pos++
		if b0 < 0x20 {
			// Exact prediction (zz = 0, no continuation) — the majority
			// of a workload trace. delta is zero, so the new most-recent
			// delta equals the predicted d2: the update is just a swap.
			st := &rings[b0&31]
			addr := (st.last + st.d2) & uint64(MaxAddr)
			st.d1, st.d2 = st.d2, st.d1
			st.last = addr
			buf[j] = addr<<2 | uint64(b0)&3
			continue
		}
		if b0 < 0x80 {
			// One-byte record, delta in ±1: no continuation bytes and
			// zz < strideResetZZ by construction, so the reset check
			// drops out too.
			zz := uint64(b0) >> 5
			st := &rings[b0&31]
			delta := int64(zz>>1) ^ -int64(zz&1)
			addr := (st.last + st.d2 + uint64(delta)) & uint64(MaxAddr)
			st.d1, st.d2 = (addr-st.last)&uint64(MaxAddr), st.d1
			st.last = addr
			buf[j] = addr<<2 | uint64(b0)&3
			continue
		}
		zz := uint64(b0) >> 5 & 3
		for shift := 2; ; shift += 7 {
			b := addrs[pos]
			pos++
			zz |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
		}
		st := &rings[b0&31]
		delta := int64(zz>>1) ^ -int64(zz&1)
		addr := (st.last + st.d2 + uint64(delta)) & uint64(MaxAddr)
		if zz >= strideResetZZ {
			st.d1, st.d2 = 0, 0
		} else {
			st.d1, st.d2 = (addr-st.last)&uint64(MaxAddr), st.d1
		}
		st.last = addr
		buf[j] = addr<<2 | uint64(b0)&3
	}
	it.pos = pos
	it.i += n
	return n
}

// ReplayContext streams the recorded events — accesses and positioned
// instruction counts, in exactly the order they were recorded — into
// sink, polling ctx once per ReplayBatchLen accesses. Batch sinks
// receive accesses in AccessBatch chunks split at instruction-count
// boundaries, so every sink observes the same event sequence a live
// workload run would have produced; a timing model replayed this way
// therefore charges cycles identically to one driven directly.
// Accesses are decoded with full PC fidelity (a sink may be a
// PC-indexed prefetcher). A cancelled replay returns ctx.Err() with
// the sink having consumed a prefix of the trace.
//
//simlint:deterministic
func (s *Store) ReplayContext(ctx context.Context, sink Sink) error {
	done := ctx.Done()
	bs, batching := sink.(BatchSink)
	buf := make([]mem.Access, ReplayBatchLen)
	it := s.Iter()
	insts := s.insts
	pos := 0 // accesses delivered so far
	emit := func(chunk []mem.Access) {
		if batching {
			bs.AccessBatch(chunk)
			return
		}
		for k := range chunk {
			sink.Access(chunk[k])
		}
	}
	for n := it.Next(buf); n > 0; n = it.Next(buf) {
		off := 0
		for off < n {
			for len(insts) > 0 && insts[0].idx == pos {
				sink.AddInstructions(insts[0].n)
				insts = insts[1:]
			}
			end := n
			if len(insts) > 0 && insts[0].idx < pos+(end-off) {
				end = off + (insts[0].idx - pos)
			}
			emit(buf[off:end])
			pos += end - off
			off = end
		}
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	// Counts recorded after the final access.
	for len(insts) > 0 && insts[0].idx == pos {
		sink.AddInstructions(insts[0].n)
		insts = insts[1:]
	}
	return nil
}
