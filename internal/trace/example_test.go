package trace_test

import (
	"bytes"
	"fmt"

	"streamsim/internal/mem"
	"streamsim/internal/trace"
)

// Example records two references and an instruction count, then
// replays the trace — the round trip cmd/tracegen wraps in files.
func Example() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.Access(mem.Access{Addr: 0x1000, Kind: mem.Read})
	w.Access(mem.Access{Addr: 0x1040, Kind: mem.Write})
	w.AddInstructions(12)
	if err := w.Flush(); err != nil {
		panic(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		panic(err)
	}
	for {
		ev, err := r.Next()
		if err != nil {
			break
		}
		if ev.Insts > 0 {
			fmt.Printf("retired %d instructions\n", ev.Insts)
		} else {
			fmt.Println(ev.Access)
		}
	}
	// Output:
	// R 0x1000
	// W 0x1040
	// retired 12 instructions
}

// ExampleTimeSampler applies the paper's 10%-time-sampling discipline
// (scaled down here to 2 on / 8 off).
func ExampleTimeSampler() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	s, err := trace.NewTimeSampler(w, 2, 8)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 20; i++ {
		s.Access(mem.Access{Addr: mem.Addr(i * 64), Kind: mem.Read})
	}
	fmt.Printf("kept %d of %d references\n", s.Passed(), s.Passed()+s.Dropped())
	// Output:
	// kept 4 of 20 references
}
