package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"streamsim/internal/mem"
)

func TestHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty trace Next = %v, want io.EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE\x01\x00records"))); err == nil {
		t.Error("bad magic should be rejected")
	}
}

func TestBadVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("STRB\x63\x00"))); err == nil {
		t.Error("unknown version should be rejected")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("STR"))); err == nil {
		t.Error("truncated header should be rejected")
	}
}

func TestEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Event{
		{Access: mem.Access{Addr: 0x1000, Kind: mem.Read}},
		{Access: mem.Access{Addr: 0x1040, Kind: mem.Read}},
		{Access: mem.Access{Addr: 0x2000, Kind: mem.Write}},
		{Insts: 42},
		{Access: mem.Access{Addr: 0x100, Kind: mem.IFetch}},
		{Access: mem.Access{Addr: 0xfc0, Kind: mem.Read}}, // backward delta
	}
	for _, ev := range want {
		if ev.Insts > 0 {
			w.AddInstructions(ev.Insts)
		} else {
			w.Access(ev.Access)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != uint64(len(want)) {
		t.Errorf("Events = %d, want %d", w.Events(), len(want))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != exp {
			t.Errorf("event %d = %+v, want %+v", i, got, exp)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last event Next = %v, want io.EOF", err)
	}
}

func TestInvalidKindRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Access(mem.Access{Addr: 1, Kind: mem.Kind(7)})
	if err := w.Flush(); err == nil {
		t.Error("invalid kind should surface as a write error")
	}
}

func TestZeroInstructionsSkipped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.AddInstructions(0)
	if w.Events() != 0 {
		t.Error("zero-count instruction records should not be written")
	}
}

// collector gathers replayed events for assertions.
type collector struct {
	accs  []mem.Access
	insts uint64
}

func (c *collector) Access(a mem.Access)      { c.accs = append(c.accs, a) }
func (c *collector) AddInstructions(n uint64) { c.insts += n }

func TestReplay(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Access(mem.Access{Addr: 64, Kind: mem.Read})
	w.AddInstructions(10)
	w.Access(mem.Access{Addr: 128, Kind: mem.Write})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if err := r.Replay(&c); err != nil {
		t.Fatal(err)
	}
	if len(c.accs) != 2 || c.insts != 10 {
		t.Errorf("replayed %d accesses / %d insts, want 2 / 10", len(c.accs), c.insts)
	}
}

func TestTruncatedBodyErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Access(mem.Access{Addr: 1 << 40, Kind: mem.Read}) // multi-byte varint
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated record Next = %v, want a decode error", err)
	}
}

// Property: any mixed sequence of accesses and instruction counts
// round-trips exactly through the codec.
func TestCodecProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%200) + 1
		var want []Event
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				ev := Event{Insts: uint64(rng.Intn(1<<20)) + 1}
				w.AddInstructions(ev.Insts)
				want = append(want, ev)
				continue
			}
			ev := Event{Access: mem.Access{
				Addr: mem.Addr(rng.Uint64()>>rng.Intn(40)) & MaxAddr,
				Kind: mem.Kind(rng.Intn(3)),
			}}
			w.Access(ev.Access)
			want = append(want, ev)
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, exp := range want {
			got, err := r.Next()
			if err != nil || got != exp {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeSamplerValidation(t *testing.T) {
	if _, err := NewTimeSampler(&collector{}, 0, 10); err == nil {
		t.Error("onRefs 0 should be rejected")
	}
}

func TestTimeSamplerCycle(t *testing.T) {
	var c collector
	s, err := NewTimeSampler(&c, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Access(mem.Access{Addr: mem.Addr(i), Kind: mem.Read})
	}
	if len(c.accs) != 100 {
		t.Errorf("passed %d accesses, want 100 (10%% of 1000)", len(c.accs))
	}
	if s.Passed() != 100 || s.Dropped() != 900 {
		t.Errorf("Passed/Dropped = %d/%d, want 100/900", s.Passed(), s.Dropped())
	}
	// The passed references are the first 10 of each 100-block.
	if c.accs[0].Addr != 0 || c.accs[10].Addr != 100 {
		t.Errorf("sampling windows misaligned: got %v, %v", c.accs[0], c.accs[10])
	}
}

func TestTimeSamplerInstructionsFollowPhase(t *testing.T) {
	var c collector
	s, _ := NewTimeSampler(&c, 10, 90)
	for i := 0; i < 100; i++ {
		s.Access(mem.Access{Addr: mem.Addr(i), Kind: mem.Read})
		s.AddInstructions(1)
	}
	// Instructions forwarded only in the on phase (first 10 refs).
	// Note the phase check happens after the access advanced pos.
	if c.insts == 0 || c.insts > 10 {
		t.Errorf("forwarded %d instructions, want in (0, 10]", c.insts)
	}
}

func TestTimeSamplerNoOff(t *testing.T) {
	var c collector
	s, _ := NewTimeSampler(&c, 5, 0)
	for i := 0; i < 100; i++ {
		s.Access(mem.Access{Addr: mem.Addr(i), Kind: mem.Read})
	}
	if s.Dropped() != 0 {
		t.Errorf("offRefs=0 dropped %d, want 0", s.Dropped())
	}
}

func TestDefaultSamplingConstants(t *testing.T) {
	if DefaultOnRefs != 10000 || DefaultOffRefs != 90000 {
		t.Error("paper's sampling parameters changed")
	}
}

func TestAddressLimitEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Access(mem.Access{Addr: MaxAddr + 1, Kind: mem.Read})
	if err := w.Flush(); err == nil {
		t.Error("over-limit address should surface as an error")
	}
}

func TestPCNotPreserved(t *testing.T) {
	// The trace format carries address + kind only (the off-chip
	// hardware never sees PCs); recording an access with a PC is legal
	// but the PC does not survive the round trip.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Access(mem.Access{Addr: 0x1000, PC: 0x400, Kind: mem.Read})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Access.PC != 0 {
		t.Errorf("PC = %#x, want 0 (not encoded)", uint64(ev.Access.PC))
	}
	if ev.Access.Addr != 0x1000 {
		t.Errorf("Addr = %#x, want 0x1000", uint64(ev.Access.Addr))
	}
}
