package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"streamsim/internal/mem"
)

// decodeAll drains a StoreIter into a flat access slice.
func decodeAll(it StoreIter, n int) []mem.Access {
	out := make([]mem.Access, 0, n)
	buf := make([]mem.Access, ReplayBatchLen)
	for k := it.Next(buf); k > 0; k = it.Next(buf) {
		out = append(out, buf[:k]...)
	}
	return out
}

// TestStoreWindowIndexSeeks checks the append-time seek index against
// a straight sequential decode: every IterAtWindow(w) must yield
// exactly the accesses of window w, the offsets must be the byte
// positions a sequential decode passes through, and the window lengths
// must partition the store.
func TestStoreWindowIndexSeeks(t *testing.T) {
	const n = 3*WindowRefs + 1234
	accs := randomAccesses(n)
	s := NewStore(n)
	for _, a := range accs {
		s.Append(a)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	wantWindows := (n + WindowRefs - 1) / WindowRefs
	if got := s.WindowCount(); got != wantWindows {
		t.Fatalf("WindowCount = %d, want %d", got, wantWindows)
	}
	total := 0
	for w := 0; w < wantWindows; w++ {
		total += s.WindowLen(w)
	}
	if total != n {
		t.Errorf("window lengths sum to %d, want %d", total, n)
	}

	offs := s.WindowOffsets()
	if len(offs) != wantWindows {
		t.Fatalf("WindowOffsets len = %d, want %d", len(offs), wantWindows)
	}
	if offs[0] != 0 {
		t.Errorf("offs[0] = %d, want 0", offs[0])
	}
	for w := 1; w < len(offs); w++ {
		if offs[w] <= offs[w-1] {
			t.Errorf("offs[%d] = %d not past offs[%d] = %d", w, offs[w], w-1, offs[w-1])
		}
	}

	seq := decodeAll(s.Iter(), n)
	for w := 0; w < wantWindows; w++ {
		it := s.IterAtWindow(w)
		if it.pos != offs[w] {
			t.Errorf("window %d: seek landed at byte %d, want %d", w, it.pos, offs[w])
		}
		got := decodeAll(it, n-w*WindowRefs)
		if want := seq[w*WindowRefs:]; !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d: seeked decode diverges from sequential decode", w)
		}
	}
}

// TestStorePrefixLen checks the closed-form cumulative window length
// against a per-window summation loop, including the clamp at and
// beyond the window count and the zero floor for non-positive w.
func TestStorePrefixLen(t *testing.T) {
	const n = 3*WindowRefs + 1234
	s := NewStore(n)
	for _, a := range randomAccesses(n) {
		s.Append(a)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	K := s.WindowCount()
	sum := 0
	for w := 0; w <= K; w++ {
		if got := s.PrefixLen(w); got != sum {
			t.Errorf("PrefixLen(%d) = %d, want %d", w, got, sum)
		}
		if w < K {
			sum += s.WindowLen(w)
		}
	}
	for _, w := range []int{-1, -WindowRefs} {
		if got := s.PrefixLen(w); got != 0 {
			t.Errorf("PrefixLen(%d) = %d, want 0", w, got)
		}
	}
	for _, w := range []int{K, K + 1, K * 10} {
		if got := s.PrefixLen(w); got != n {
			t.Errorf("PrefixLen(%d) = %d, want the full length %d", w, got, n)
		}
	}
}

// TestStoreIterAtWindowScanFallbackResumes exercises the resume path
// the checkpointed replay engine depends on when a store carries no
// append-time seek index (an index-less store forces windowMarks onto
// the memoized one-pass scan): a mid-trace IterAtWindow must deliver
// exactly the sequential suffix, and repeated seeks must reuse the
// scanned index rather than rebuild it.
func TestStoreIterAtWindowScanFallbackResumes(t *testing.T) {
	const n = 5*WindowRefs + 321
	accs := randomAccesses(n)
	s := NewStore(n)
	for _, a := range accs {
		s.Append(a)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	s.marks = nil // discard the append-time index: v1-style store

	seq := decodeAll(s.Iter(), n)
	for _, w := range []int{1, 2, s.WindowCount() / 2, s.WindowCount() - 1} {
		got := decodeAll(s.IterAtWindow(w), n-w*WindowRefs)
		if !reflect.DeepEqual(got, seq[w*WindowRefs:]) {
			t.Fatalf("window %d: scan-fallback seeked decode diverges from sequential decode", w)
		}
	}

	first := s.windowMarks()
	second := s.windowMarks()
	if len(first) == 0 || &first[0] != &second[0] {
		t.Fatal("repeated windowMarks() calls did not reuse the memoized scan index")
	}
}

// TestStoreWindowScanFallbackMatchesAppend pins the memoized scan
// against the append-time marks: a store whose index is discarded must
// rebuild byte-for-byte identical seek state from one decode pass.
func TestStoreWindowScanFallbackMatchesAppend(t *testing.T) {
	const n = 4*WindowRefs + 77
	s := NewStore(n)
	for _, a := range randomAccesses(n) {
		s.Append(a)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	want := s.marks
	if len(want) != n/WindowRefs {
		t.Fatalf("append recorded %d marks, want %d", len(want), n/WindowRefs)
	}
	s.marks = nil
	got := s.windowMarks()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scan-rebuilt window marks differ from append-time marks")
	}
}

// TestTimeSamplerWindowsMatchStore pins the boundary agreement the
// window-sharded engine relies on: with the paper's parameters, each
// sampler on-phase is exactly one store window, so the sampler's
// window count, its boundary callbacks and the store's seek index all
// describe the same partition.
func TestTimeSamplerWindowsMatchStore(t *testing.T) {
	st := NewStore(0)
	ts, err := NewTimeSampler(st, DefaultOnRefs, DefaultOffRefs)
	if err != nil {
		t.Fatal(err)
	}
	var fired []uint64
	ts.SetWindowFunc(func(w uint64) { fired = append(fired, w) })

	// Three full on/off cycles plus half an on-phase.
	cycle := DefaultOnRefs + DefaultOffRefs
	total := 3*cycle + DefaultOnRefs/2
	a := mem.Access{Addr: 4096, Kind: mem.Read}
	for i := uint64(0); i < uint64(total); i++ {
		ts.Access(a)
		a.Addr += 64
	}

	if got, want := ts.Windows(), uint64(4); got != want {
		t.Errorf("sampler Windows() = %d, want %d", got, want)
	}
	if got, want := ts.Windows(), uint64(st.WindowCount()); got != want {
		t.Errorf("sampler windows %d disagree with store WindowCount %d", got, want)
	}
	if want := []uint64{0, 1, 2, 3}; !reflect.DeepEqual(fired, want) {
		t.Errorf("boundary callbacks fired for %v, want %v", fired, want)
	}
	if got, want := st.Len(), int(3*DefaultOnRefs+DefaultOnRefs/2); got != want {
		t.Errorf("store holds %d refs, want the on-phase %d", got, want)
	}
}

// TestWriterWindowMarkers round-trips a file long enough to carry
// window markers: the reader must count them, skip them transparently
// and deliver exactly the accesses written.
func TestWriterWindowMarkers(t *testing.T) {
	const n = 2*WindowRefs + 5
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a := mem.Access{Addr: 1 << 20, Kind: mem.Read}
	for i := 0; i < n; i++ {
		w.Access(a)
		a.Addr += 64
	}
	w.AddInstructions(7)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var accs, insts int
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Insts > 0 {
			insts++
		} else {
			accs++
		}
	}
	if accs != n {
		t.Errorf("decoded %d accesses, want %d", accs, n)
	}
	if insts != 1 {
		t.Errorf("decoded %d instruction records, want 1", insts)
	}
	if got, want := r.Windows(), uint64(n/WindowRefs); got != want {
		t.Errorf("Reader.Windows() = %d, want %d", got, want)
	}
}

// TestReaderAcceptsVersion1 pins backwards compatibility: a version 1
// file — no window markers — must decode exactly as before. The test
// writes a short marker-free body and stamps the old version into the
// header.
func TestReaderAcceptsVersion1(t *testing.T) {
	const n = 100
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a := mem.Access{Addr: 1 << 20, Kind: mem.Write}
	for i := 0; i < n; i++ {
		w.Access(a)
		a.Addr += 4
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint16(raw[len(Magic):], 1)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader rejected a version 1 file: %v", err)
	}
	var accs int
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		accs++
	}
	if accs != n {
		t.Errorf("decoded %d accesses from the v1 file, want %d", accs, n)
	}
	if r.Windows() != 0 {
		t.Errorf("v1 file reported %d windows, want 0", r.Windows())
	}
}
