package trace

import (
	"testing"

	"streamsim/internal/mem"
)

// decodeFixture is a workload-shaped trace: striding runs per kind
// with interleaved instruction fetches, the byte-length mix the
// decode fast paths must handle.
func decodeFixture(n int) *Store {
	s := NewStore(n)
	a := mem.Access{Addr: 1 << 24, PC: 1 << 20, Kind: mem.Read}
	for i := 0; i < n; i++ {
		switch {
		case i%13 == 0:
			s.Append(mem.Access{Addr: mem.Addr(1<<20 + (i%512)*64), PC: mem.Addr(4096 + i%64*4), Kind: mem.IFetch})
		case i%31 == 0:
			a.Addr += 4096 // occasional long delta
			s.Append(a)
		case i%7 == 0:
			s.Append(mem.Access{Addr: a.Addr + 1<<18, PC: a.PC, Kind: mem.Write})
		default:
			a.Addr += 8
			a.PC += 4
			s.Append(a)
		}
	}
	return s
}

func BenchmarkStoreDecode(b *testing.B) {
	s := decodeFixture(1 << 18)
	buf := make([]mem.Access, ReplayBatchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Iter()
		for n := it.Next(buf); n > 0; n = it.Next(buf) {
		}
	}
	b.ReportMetric(float64(s.Len())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

func BenchmarkStoreDecodeNoPC(b *testing.B) {
	s := decodeFixture(1 << 18)
	buf := make([]mem.Access, ReplayBatchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Iter()
		for n := it.NextNoPC(buf); n > 0; n = it.NextNoPC(buf) {
		}
	}
	b.ReportMetric(float64(s.Len())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}
