package stream_test

import (
	"fmt"

	"streamsim/internal/mem"
	"streamsim/internal/stream"
)

// Example allocates a unit stream on a miss and shows the following
// blocks hitting, Figure 2's behaviour in five lines.
func Example() {
	set, err := stream.NewSet(mem.DefaultGeometry(), stream.Config{Streams: 4, Depth: 2})
	if err != nil {
		panic(err)
	}
	miss := mem.Addr(100) // block number of an on-chip miss
	fmt.Println("first probe hits:", set.Probe(miss))
	set.AllocateUnit(miss) // prefetch 101, 102
	fmt.Println("next block hits:", set.Probe(miss+1))
	fmt.Println("and the next:", set.Probe(miss+2))
	// Output:
	// first probe hits: false
	// next block hits: true
	// and the next: true
}

// ExampleSet_AllocateStrided shows a non-unit-stride stream: the
// Section 7 detector hands the set a word address and stride.
func ExampleSet_AllocateStrided() {
	geom := mem.DefaultGeometry()
	set, err := stream.NewSet(geom, stream.Config{Streams: 1, Depth: 2})
	if err != nil {
		panic(err)
	}
	const stride = 2048 // words: an 8 KB column walk
	last := mem.Addr(1 << 20)
	set.AllocateStrided(last, stride)
	for i := 1; i <= 3; i++ {
		w := last + mem.Addr(i*stride)
		fmt.Println(set.Probe(geom.BlockOfWord(w)))
	}
	// Output:
	// true
	// true
	// true
}
