// Package stream implements Jouppi-style stream buffers as extended by
// the paper: FIFO prefetch buffers of configurable depth, grouped into
// a multi-way set with LRU reallocation, supporting both unit-stride
// prefetching (successive cache blocks) and the paper's Section 7
// extension to arbitrary constant word strides (the incrementer of
// Figure 2 replaced by a general adder).
//
// The model is structural: entries carry block tags, valid bits and an
// availability (data-returned) bit. An optional latency, measured in
// processor references, models the delay between issuing a prefetch and
// its data arriving; a probe that matches a still-pending entry counts
// as a hit (the paper's accounting, discussed in its Section 8 caveat)
// but is also tallied separately as a PendingHit.
package stream

import (
	"fmt"

	"streamsim/internal/mem"
)

// slot is one FIFO entry of a stream buffer.
type slot struct {
	block   mem.Addr // block-number tag
	valid   bool
	issueAt uint64 // reference clock when the prefetch was issued
}

// Buffer is a single stream buffer: a FIFO of prefetched blocks plus
// the address-generation state (next word address and word stride).
//
//simlint:state
type Buffer struct {
	geom       mem.Geometry
	depth      int
	onPrefetch func(blk mem.Addr)

	fifo  []slot
	head  int // index of the oldest entry
	count int // number of valid entries

	nextWord  mem.Addr // word address the next prefetch derives from
	stride    int64    // word stride; wordsPerBlock for unit streams
	active    bool
	exhausted bool // address generator walked off the address space

	hitsThisAllocation uint64
	lastUse            uint64
	allocAt            uint64
}

// NewBuffer returns an inactive stream buffer with the given FIFO
// depth. Depth must be at least 1; the paper fixes it at 2.
func NewBuffer(geom mem.Geometry, depth int) (*Buffer, error) {
	if depth < 1 {
		return nil, fmt.Errorf("stream: depth %d < 1", depth)
	}
	return &Buffer{geom: geom, depth: depth, fifo: make([]slot, depth)}, nil
}

// Active reports whether the buffer currently holds a stream.
func (b *Buffer) Active() bool { return b.active }

// Stride returns the current word stride (0 when inactive).
func (b *Buffer) Stride() int64 {
	if !b.active {
		return 0
	}
	return b.stride
}

// Len returns the number of prefetches currently in the FIFO.
func (b *Buffer) Len() int { return b.count }

// HeadBlock returns the block tag at the head of the FIFO. ok is false
// when the buffer is inactive or empty (all entries invalidated).
func (b *Buffer) HeadBlock() (blk mem.Addr, ok bool) {
	if !b.active || b.count == 0 {
		return 0, false
	}
	s := b.fifo[b.head]
	if !s.valid {
		return 0, false
	}
	return s.block, true
}

// reset flushes the FIFO and begins a new stream. startWord is the word
// address of the first prefetch target; stride is the word stride. It
// returns the number of unconsumed prefetches discarded (wasted
// bandwidth) and the number of new prefetches issued.
func (b *Buffer) reset(startWord mem.Addr, stride int64, now uint64) (flushed, issued int) {
	flushed = b.count
	b.head, b.count = 0, 0
	for i := range b.fifo {
		b.fifo[i] = slot{}
	}
	b.active = true
	b.exhausted = false
	b.stride = stride
	b.nextWord = startWord
	b.hitsThisAllocation = 0
	b.lastUse = now
	b.allocAt = now
	for i := 0; i < b.depth; i++ {
		if !b.issue(now) {
			break
		}
		issued++
	}
	return flushed, issued
}

// issue appends one prefetch to the FIFO tail, advancing the address
// generator. It reports false when the FIFO is full or the generator is
// exhausted (a negative-stride stream that walked off address 0).
func (b *Buffer) issue(now uint64) bool {
	if b.count == b.depth || b.exhausted {
		return false
	}
	blk := b.geom.BlockOfWord(b.nextWord)
	tail := b.head + b.count
	if tail >= b.depth {
		tail -= b.depth
	}
	b.fifo[tail] = slot{block: blk, valid: true, issueAt: now}
	b.count++
	if b.onPrefetch != nil {
		b.onPrefetch(blk)
	}
	if next := int64(b.nextWord) + b.stride; next < 0 {
		b.exhausted = true
	} else {
		b.nextWord = mem.Addr(next)
	}
	return true
}

// consumeHead pops the head entry and issues a replacement prefetch,
// keeping the FIFO at depth. It returns whether the popped entry's data
// had already returned (now-issueAt >= latency) and how many prefetches
// were issued as refill.
func (b *Buffer) consumeHead(now uint64, latency uint64) (ready bool, issued int) {
	s := b.fifo[b.head]
	ready = now-s.issueAt >= latency
	b.fifo[b.head] = slot{}
	b.head++
	if b.head == b.depth {
		b.head = 0
	}
	b.count--
	b.hitsThisAllocation++
	b.lastUse = now
	for b.count < b.depth {
		if !b.issue(now) {
			break
		}
		issued++
	}
	return ready, issued
}

// dropInvalidHead discards invalidated entries at the head so the next
// valid entry (if any) becomes comparable. Returns how many were
// dropped; dropped entries were fetched and never used.
func (b *Buffer) dropInvalidHead() int {
	dropped := 0
	for b.count > 0 && !b.fifo[b.head].valid {
		b.fifo[b.head] = slot{}
		b.head++
		if b.head == b.depth {
			b.head = 0
		}
		b.count--
		dropped++
	}
	return dropped
}

// invalidate clears any entry holding blk (write-back coherence: stores
// on their way to memory invalidate stale stream copies). It returns
// the number of entries cleared.
func (b *Buffer) invalidate(blk mem.Addr) int {
	if !b.active {
		return 0
	}
	n := 0
	for i, c := b.head, 0; c < b.count; c++ {
		if b.fifo[i].valid && b.fifo[i].block == blk {
			b.fifo[i].valid = false
			n++
		}
		i++
		if i == b.depth {
			i = 0
		}
	}
	return n
}

// LengthDist is the paper's Table 3 histogram: hits attributed to the
// length of the stream (number of hits served between allocation and
// reallocation) they belonged to, in buckets 1-5, 6-10, 11-15, 16-20
// and >20.
//
//simlint:state counters
type LengthDist struct {
	// Buckets holds hits attributed per bucket.
	Buckets [5]uint64
	// Streams counts terminated streams per bucket.
	Streams [5]uint64
}

// bucketOf maps a stream length to its Table 3 bucket index.
func bucketOf(length uint64) int {
	switch {
	case length <= 5:
		return 0
	case length <= 10:
		return 1
	case length <= 15:
		return 2
	case length <= 20:
		return 3
	default:
		return 4
	}
}

// add records a terminated stream that served length hits.
func (d *LengthDist) add(length uint64) {
	if length == 0 {
		return
	}
	i := bucketOf(length)
	d.Buckets[i] += length
	d.Streams[i]++
}

// TotalHits returns the sum over buckets.
func (d *LengthDist) TotalHits() uint64 {
	var t uint64
	for _, v := range d.Buckets {
		t += v
	}
	return t
}

// Percent returns each bucket's share of hits in percent (0 slice when
// no hits were recorded).
func (d *LengthDist) Percent() [5]float64 {
	var out [5]float64
	t := d.TotalHits()
	if t == 0 {
		return out
	}
	for i, v := range d.Buckets {
		out[i] = 100 * float64(v) / float64(t)
	}
	return out
}

// BucketLabels names the Table 3 buckets in order.
func BucketLabels() [5]string {
	return [5]string{"1-5", "6-10", "11-15", "16-20", ">20"}
}

// Stats accumulates the observable behaviour of a stream set.
//
//simlint:state counters
type Stats struct {
	// Probes is the number of on-chip misses presented to the set.
	Probes uint64
	// Hits is the number of probes that matched a stream head.
	Hits uint64
	// PendingHits is the subset of Hits whose data had not yet returned
	// from memory (see the paper's Section 8 caveat).
	PendingHits uint64
	// Misses is Probes - Hits.
	Misses uint64
	// Allocations counts stream (re)allocations.
	Allocations uint64
	// PrefetchesIssued counts blocks requested from memory.
	PrefetchesIssued uint64
	// PrefetchesWasted counts fetched blocks discarded unused, whether
	// by reallocation flushes or by write-back invalidation.
	PrefetchesWasted uint64
	// Invalidations counts entries cleared by write-backs.
	Invalidations uint64
	// Lengths is the Table 3 stream-length distribution.
	Lengths LengthDist
}

// Add returns the element-wise sum of two Stats (used to merge
// partitioned instruction and data stream sets).
//
//simlint:statefull merge
func (s Stats) Add(o Stats) Stats {
	s.Probes += o.Probes
	s.Hits += o.Hits
	s.PendingHits += o.PendingHits
	s.Misses += o.Misses
	s.Allocations += o.Allocations
	s.PrefetchesIssued += o.PrefetchesIssued
	s.PrefetchesWasted += o.PrefetchesWasted
	s.Invalidations += o.Invalidations
	for i := range s.Lengths.Buckets {
		s.Lengths.Buckets[i] += o.Lengths.Buckets[i]
		s.Lengths.Streams[i] += o.Lengths.Streams[i]
	}
	return s
}

// HitRate returns Hits/Probes, or 0 with no probes.
func (s Stats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Probes)
}

// Set is a group of stream buffers probed in parallel, with LRU
// selection of the stream to reallocate (the paper's policy).
//
// heads mirrors each buffer's valid head-block tag in one contiguous
// array — the software analogue of the hardware's parallel comparators.
// A probe is then a tight scan over the array instead of a pointer
// chase through every buffer's FIFO; headUnknown marks buffers whose
// head needs the slow path (empty, inactive, or dirtied by a
// write-back invalidation).
//
//simlint:state
type Set struct {
	geom    mem.Geometry
	bufs    []*Buffer
	heads   []mem.Addr
	latency uint64
	realloc Realloc
	clock   uint64
	stats   Stats
}

// headUnknown is the heads[] sentinel: no cached head tag. Real block
// numbers are byte addresses shifted down, so the all-ones value can
// never collide with one.
const headUnknown = ^mem.Addr(0)

// syncHead refreshes the cached head tag of buffer i.
func (s *Set) syncHead(i int) {
	if h, ok := s.bufs[i].HeadBlock(); ok {
		s.heads[i] = h
	} else {
		s.heads[i] = headUnknown
	}
}

// Realloc selects which stream is sacrificed when a new one must be
// allocated and no buffer is idle.
type Realloc uint8

// Reallocation policies.
const (
	// ReallocLRU replaces the least recently used stream (the paper's
	// policy).
	ReallocLRU Realloc = iota
	// ReallocFIFO replaces the oldest-allocated stream regardless of
	// use (kept for the ablation benches).
	ReallocFIFO
)

// String names the policy.
func (r Realloc) String() string {
	if r == ReallocFIFO {
		return "FIFO"
	}
	return "LRU"
}

// Config describes a stream set.
type Config struct {
	// Streams is the number of buffers (the paper sweeps 1-10).
	Streams int
	// Depth is the FIFO depth per buffer (the paper fixes 2).
	Depth int
	// Latency, in references, is how long a prefetch takes to return.
	// Zero means data is available immediately.
	Latency uint64
	// Realloc selects the victim policy (default LRU, as the paper
	// assumes).
	Realloc Realloc
	// OnPrefetch, when set, observes every issued prefetch's block
	// number (memory-traffic analyses use it; nil costs nothing).
	OnPrefetch func(blk mem.Addr)
}

// NewSet builds a stream set.
func NewSet(geom mem.Geometry, cfg Config) (*Set, error) {
	if cfg.Streams < 1 {
		return nil, fmt.Errorf("stream: need at least one stream, got %d", cfg.Streams)
	}
	s := &Set{geom: geom, latency: cfg.Latency, realloc: cfg.Realloc}
	for i := 0; i < cfg.Streams; i++ {
		b, err := NewBuffer(geom, cfg.Depth)
		if err != nil {
			return nil, err
		}
		b.onPrefetch = cfg.OnPrefetch
		s.bufs = append(s.bufs, b)
		s.heads = append(s.heads, headUnknown)
	}
	return s, nil
}

// Streams returns the number of buffers in the set.
func (s *Set) Streams() int { return len(s.bufs) }

// Stats returns a copy of the accumulated statistics.
func (s *Set) Stats() Stats { return s.stats }

// ResetStats clears counters without disturbing stream contents.
//
//simlint:statefull reset
func (s *Set) ResetStats() { s.stats = Stats{} }

// AddStats accumulates another set's counters into this one (the
// window-sharded replay engine merges per-chunk deltas this way).
//
//simlint:statefull merge
func (s *Set) AddStats(o Stats) { s.stats = s.stats.Add(o) }

// SetStats overwrites the statistics wholesale; the window-sharded
// replay engine restores a caller's accumulated counters onto an
// adopted final-chunk state with it.
//
//simlint:statefull adopt
func (s *Set) SetStats(o Stats) { s.stats = o }

// clone returns a deep copy of one buffer: same geometry and policy,
// fresh FIFO storage, identical allocation state and clocks.
//
//simlint:statefull clone
func (b *Buffer) clone() *Buffer {
	n := *b
	n.fifo = append([]slot(nil), b.fifo...)
	return &n
}

// Clone returns a deep copy of the set — every buffer's FIFO and
// address-generation state, the cached head tags, the reference clock
// and the statistics. The clone evolves independently of the original.
// The OnPrefetch hook, if any, is shared with the original: callers
// that clone for concurrent replay must not configure one.
//
//simlint:statefull clone
func (s *Set) Clone() *Set {
	n := *s
	n.bufs = make([]*Buffer, len(s.bufs))
	for i, b := range s.bufs {
		n.bufs[i] = b.clone()
	}
	n.heads = append([]mem.Addr(nil), s.heads...)
	return &n
}

// ProbeResult reports what one probe did, so callers layering timing
// models on top (core.Outcome) can account incrementally instead of
// diffing full Stats copies around every access.
type ProbeResult struct {
	// Hit reports whether the block matched a stream head.
	Hit bool
	// Pending is set on a hit whose prefetch had not yet returned.
	Pending bool
	// Issued counts refill prefetches triggered by the hit.
	Issued uint64
}

// Probe presents an on-chip miss for block blk (a block number). On a
// hit the matching stream shifts and refills; the caller moves the
// block into the primary cache. The return reports hit/miss; Probe has
// already updated all statistics.
func (s *Set) Probe(blk mem.Addr) (hit bool) {
	return s.ProbeOutcome(blk).Hit
}

// ProbeOutcome is Probe plus a per-access report of the side effects
// (pending status, refill prefetches issued).
func (s *Set) ProbeOutcome(blk mem.Addr) ProbeResult {
	s.clock++
	s.stats.Probes++
	for i, h := range s.heads {
		if h == headUnknown {
			// Slow path: drop invalidated entries at the head (as the
			// pre-heads-array code did on every buffer every probe —
			// lazily it is the same probe that does the dropping) and
			// re-cache the now-exposed head, if any.
			b := s.bufs[i]
			s.stats.PrefetchesWasted += uint64(b.dropInvalidHead())
			hb, ok := b.HeadBlock()
			if !ok {
				continue
			}
			s.heads[i] = hb
			h = hb
		}
		if h != blk {
			continue
		}
		ready, issued := s.bufs[i].consumeHead(s.clock, s.latency)
		s.syncHead(i)
		s.stats.Hits++
		if !ready {
			s.stats.PendingHits++
		}
		s.stats.PrefetchesIssued += uint64(issued)
		return ProbeResult{Hit: true, Pending: !ready, Issued: uint64(issued)}
	}
	s.stats.Misses++
	return ProbeResult{}
}

// AllocateUnit reallocates the LRU stream as a unit-stride stream
// beginning one block past missBlock (the missed block itself arrives
// via the fast path). It returns the number of prefetches issued.
func (s *Set) AllocateUnit(missBlock mem.Addr) uint64 {
	startWord := (missBlock + 1) << (s.geom.BlockShift() - s.geom.WordShift())
	return s.allocate(startWord, int64(s.geom.WordsPerBlock()))
}

// AllocateStrided reallocates the LRU stream with an arbitrary word
// stride, starting from lastWord+stride (the reference at lastWord has
// already been serviced by the fast path). It returns the number of
// prefetches issued.
func (s *Set) AllocateStrided(lastWord mem.Addr, stride int64) uint64 {
	start := int64(lastWord) + stride
	if start < 0 || stride == 0 {
		return 0 // degenerate; nothing useful to prefetch
	}
	return s.allocate(mem.Addr(start), stride)
}

// allocate picks the victim buffer per the reallocation policy
// (preferring idle buffers) and resets it, returning the number of
// prefetches issued for the new stream.
func (s *Set) allocate(startWord mem.Addr, stride int64) uint64 {
	vi := -1
	for i, b := range s.bufs {
		if !b.active {
			vi = i
			break
		}
		rank, best := b.lastUse, uint64(0)
		if vi >= 0 {
			best = s.bufs[vi].lastUse
		}
		if s.realloc == ReallocFIFO {
			rank = b.allocAt
			if vi >= 0 {
				best = s.bufs[vi].allocAt
			}
		}
		if vi < 0 || rank < best {
			vi = i
		}
	}
	victim := s.bufs[vi]
	if victim.active {
		s.stats.Lengths.add(victim.hitsThisAllocation)
	}
	flushed, issued := victim.reset(startWord, stride, s.clock)
	s.syncHead(vi)
	s.stats.PrefetchesWasted += uint64(flushed)
	s.stats.PrefetchesIssued += uint64(issued)
	s.stats.Allocations++
	return uint64(issued)
}

// InvalidateBlock implements write-back coherence: clear every stream
// entry holding blk. Cleared entries count as wasted prefetches.
func (s *Set) InvalidateBlock(blk mem.Addr) {
	for i, b := range s.bufs {
		n := b.invalidate(blk)
		if n > 0 {
			// The head tag may now be stale; the next probe re-derives
			// it (and accounts the dropped entries as wasted).
			s.heads[i] = headUnknown
		}
		s.stats.Invalidations += uint64(n)
		s.stats.PrefetchesWasted += uint64(n)
	}
}

// Finish flushes accounting at end of simulation: in-flight prefetches
// never consumed count as wasted, and live stream lengths are recorded.
func (s *Set) Finish() {
	for _, b := range s.bufs {
		if !b.active {
			continue
		}
		s.stats.PrefetchesWasted += uint64(b.count)
		s.stats.Lengths.add(b.hitsThisAllocation)
	}
}

// ActiveStreams returns how many buffers currently hold streams.
func (s *Set) ActiveStreams() int {
	n := 0
	for _, b := range s.bufs {
		if b.active {
			n++
		}
	}
	return n
}
