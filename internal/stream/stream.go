// Package stream implements Jouppi-style stream buffers as extended by
// the paper: FIFO prefetch buffers of configurable depth, grouped into
// a multi-way set with LRU reallocation, supporting both unit-stride
// prefetching (successive cache blocks) and the paper's Section 7
// extension to arbitrary constant word strides (the incrementer of
// Figure 2 replaced by a general adder).
//
// The model is structural: entries carry block tags, valid bits and an
// availability (data-returned) bit. An optional latency, measured in
// processor references, models the delay between issuing a prefetch and
// its data arriving; a probe that matches a still-pending entry counts
// as a hit (the paper's accounting, discussed in its Section 8 caveat)
// but is also tallied separately as a PendingHit.
package stream

import (
	"fmt"

	"streamsim/internal/mem"
)

// slot is one FIFO entry of a stream buffer.
type slot struct {
	block   mem.Addr // block-number tag
	valid   bool
	issueAt uint64 // reference clock when the prefetch was issued
}

// Buffer is a single stream buffer: a FIFO of prefetched blocks plus
// the address-generation state (next word address and word stride).
type Buffer struct {
	geom       mem.Geometry
	depth      int
	onPrefetch func(blk mem.Addr)

	fifo  []slot
	head  int // index of the oldest entry
	count int // number of valid entries

	nextWord  mem.Addr // word address the next prefetch derives from
	stride    int64    // word stride; wordsPerBlock for unit streams
	active    bool
	exhausted bool // address generator walked off the address space

	hitsThisAllocation uint64
	lastUse            uint64
	allocAt            uint64
}

// NewBuffer returns an inactive stream buffer with the given FIFO
// depth. Depth must be at least 1; the paper fixes it at 2.
func NewBuffer(geom mem.Geometry, depth int) (*Buffer, error) {
	if depth < 1 {
		return nil, fmt.Errorf("stream: depth %d < 1", depth)
	}
	return &Buffer{geom: geom, depth: depth, fifo: make([]slot, depth)}, nil
}

// Active reports whether the buffer currently holds a stream.
func (b *Buffer) Active() bool { return b.active }

// Stride returns the current word stride (0 when inactive).
func (b *Buffer) Stride() int64 {
	if !b.active {
		return 0
	}
	return b.stride
}

// Len returns the number of prefetches currently in the FIFO.
func (b *Buffer) Len() int { return b.count }

// HeadBlock returns the block tag at the head of the FIFO. ok is false
// when the buffer is inactive or empty (all entries invalidated).
func (b *Buffer) HeadBlock() (blk mem.Addr, ok bool) {
	if !b.active || b.count == 0 {
		return 0, false
	}
	s := b.fifo[b.head]
	if !s.valid {
		return 0, false
	}
	return s.block, true
}

// reset flushes the FIFO and begins a new stream. startWord is the word
// address of the first prefetch target; stride is the word stride. It
// returns the number of unconsumed prefetches discarded (wasted
// bandwidth) and the number of new prefetches issued.
func (b *Buffer) reset(startWord mem.Addr, stride int64, now uint64) (flushed, issued int) {
	flushed = b.count
	b.head, b.count = 0, 0
	for i := range b.fifo {
		b.fifo[i] = slot{}
	}
	b.active = true
	b.exhausted = false
	b.stride = stride
	b.nextWord = startWord
	b.hitsThisAllocation = 0
	b.lastUse = now
	b.allocAt = now
	for i := 0; i < b.depth; i++ {
		if !b.issue(now) {
			break
		}
		issued++
	}
	return flushed, issued
}

// issue appends one prefetch to the FIFO tail, advancing the address
// generator. It reports false when the FIFO is full or the generator is
// exhausted (a negative-stride stream that walked off address 0).
func (b *Buffer) issue(now uint64) bool {
	if b.count == b.depth || b.exhausted {
		return false
	}
	blk := b.geom.BlockOfWord(b.nextWord)
	tail := (b.head + b.count) % b.depth
	b.fifo[tail] = slot{block: blk, valid: true, issueAt: now}
	b.count++
	if b.onPrefetch != nil {
		b.onPrefetch(blk)
	}
	if next := int64(b.nextWord) + b.stride; next < 0 {
		b.exhausted = true
	} else {
		b.nextWord = mem.Addr(next)
	}
	return true
}

// consumeHead pops the head entry and issues a replacement prefetch,
// keeping the FIFO at depth. It returns whether the popped entry's data
// had already returned (now-issueAt >= latency) and how many prefetches
// were issued as refill.
func (b *Buffer) consumeHead(now uint64, latency uint64) (ready bool, issued int) {
	s := b.fifo[b.head]
	ready = now-s.issueAt >= latency
	b.fifo[b.head] = slot{}
	b.head = (b.head + 1) % b.depth
	b.count--
	b.hitsThisAllocation++
	b.lastUse = now
	for b.count < b.depth {
		if !b.issue(now) {
			break
		}
		issued++
	}
	return ready, issued
}

// dropInvalidHead discards invalidated entries at the head so the next
// valid entry (if any) becomes comparable. Returns how many were
// dropped; dropped entries were fetched and never used.
func (b *Buffer) dropInvalidHead() int {
	dropped := 0
	for b.count > 0 && !b.fifo[b.head].valid {
		b.fifo[b.head] = slot{}
		b.head = (b.head + 1) % b.depth
		b.count--
		dropped++
	}
	return dropped
}

// invalidate clears any entry holding blk (write-back coherence: stores
// on their way to memory invalidate stale stream copies). It returns
// the number of entries cleared.
func (b *Buffer) invalidate(blk mem.Addr) int {
	if !b.active {
		return 0
	}
	n := 0
	for i, c := b.head, 0; c < b.count; i, c = (i+1)%b.depth, c+1 {
		if b.fifo[i].valid && b.fifo[i].block == blk {
			b.fifo[i].valid = false
			n++
		}
	}
	return n
}

// LengthDist is the paper's Table 3 histogram: hits attributed to the
// length of the stream (number of hits served between allocation and
// reallocation) they belonged to, in buckets 1-5, 6-10, 11-15, 16-20
// and >20.
type LengthDist struct {
	// Buckets holds hits attributed per bucket.
	Buckets [5]uint64
	// Streams counts terminated streams per bucket.
	Streams [5]uint64
}

// bucketOf maps a stream length to its Table 3 bucket index.
func bucketOf(length uint64) int {
	switch {
	case length <= 5:
		return 0
	case length <= 10:
		return 1
	case length <= 15:
		return 2
	case length <= 20:
		return 3
	default:
		return 4
	}
}

// add records a terminated stream that served length hits.
func (d *LengthDist) add(length uint64) {
	if length == 0 {
		return
	}
	i := bucketOf(length)
	d.Buckets[i] += length
	d.Streams[i]++
}

// TotalHits returns the sum over buckets.
func (d *LengthDist) TotalHits() uint64 {
	var t uint64
	for _, v := range d.Buckets {
		t += v
	}
	return t
}

// Percent returns each bucket's share of hits in percent (0 slice when
// no hits were recorded).
func (d *LengthDist) Percent() [5]float64 {
	var out [5]float64
	t := d.TotalHits()
	if t == 0 {
		return out
	}
	for i, v := range d.Buckets {
		out[i] = 100 * float64(v) / float64(t)
	}
	return out
}

// BucketLabels names the Table 3 buckets in order.
func BucketLabels() [5]string {
	return [5]string{"1-5", "6-10", "11-15", "16-20", ">20"}
}

// Stats accumulates the observable behaviour of a stream set.
type Stats struct {
	// Probes is the number of on-chip misses presented to the set.
	Probes uint64
	// Hits is the number of probes that matched a stream head.
	Hits uint64
	// PendingHits is the subset of Hits whose data had not yet returned
	// from memory (see the paper's Section 8 caveat).
	PendingHits uint64
	// Misses is Probes - Hits.
	Misses uint64
	// Allocations counts stream (re)allocations.
	Allocations uint64
	// PrefetchesIssued counts blocks requested from memory.
	PrefetchesIssued uint64
	// PrefetchesWasted counts fetched blocks discarded unused, whether
	// by reallocation flushes or by write-back invalidation.
	PrefetchesWasted uint64
	// Invalidations counts entries cleared by write-backs.
	Invalidations uint64
	// Lengths is the Table 3 stream-length distribution.
	Lengths LengthDist
}

// Add returns the element-wise sum of two Stats (used to merge
// partitioned instruction and data stream sets).
func (s Stats) Add(o Stats) Stats {
	s.Probes += o.Probes
	s.Hits += o.Hits
	s.PendingHits += o.PendingHits
	s.Misses += o.Misses
	s.Allocations += o.Allocations
	s.PrefetchesIssued += o.PrefetchesIssued
	s.PrefetchesWasted += o.PrefetchesWasted
	s.Invalidations += o.Invalidations
	for i := range s.Lengths.Buckets {
		s.Lengths.Buckets[i] += o.Lengths.Buckets[i]
		s.Lengths.Streams[i] += o.Lengths.Streams[i]
	}
	return s
}

// HitRate returns Hits/Probes, or 0 with no probes.
func (s Stats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Probes)
}

// Set is a group of stream buffers probed in parallel, with LRU
// selection of the stream to reallocate (the paper's policy).
type Set struct {
	geom    mem.Geometry
	bufs    []*Buffer
	latency uint64
	realloc Realloc
	clock   uint64
	stats   Stats
}

// Realloc selects which stream is sacrificed when a new one must be
// allocated and no buffer is idle.
type Realloc uint8

// Reallocation policies.
const (
	// ReallocLRU replaces the least recently used stream (the paper's
	// policy).
	ReallocLRU Realloc = iota
	// ReallocFIFO replaces the oldest-allocated stream regardless of
	// use (kept for the ablation benches).
	ReallocFIFO
)

// String names the policy.
func (r Realloc) String() string {
	if r == ReallocFIFO {
		return "FIFO"
	}
	return "LRU"
}

// Config describes a stream set.
type Config struct {
	// Streams is the number of buffers (the paper sweeps 1-10).
	Streams int
	// Depth is the FIFO depth per buffer (the paper fixes 2).
	Depth int
	// Latency, in references, is how long a prefetch takes to return.
	// Zero means data is available immediately.
	Latency uint64
	// Realloc selects the victim policy (default LRU, as the paper
	// assumes).
	Realloc Realloc
	// OnPrefetch, when set, observes every issued prefetch's block
	// number (memory-traffic analyses use it; nil costs nothing).
	OnPrefetch func(blk mem.Addr)
}

// NewSet builds a stream set.
func NewSet(geom mem.Geometry, cfg Config) (*Set, error) {
	if cfg.Streams < 1 {
		return nil, fmt.Errorf("stream: need at least one stream, got %d", cfg.Streams)
	}
	s := &Set{geom: geom, latency: cfg.Latency, realloc: cfg.Realloc}
	for i := 0; i < cfg.Streams; i++ {
		b, err := NewBuffer(geom, cfg.Depth)
		if err != nil {
			return nil, err
		}
		b.onPrefetch = cfg.OnPrefetch
		s.bufs = append(s.bufs, b)
	}
	return s, nil
}

// Streams returns the number of buffers in the set.
func (s *Set) Streams() int { return len(s.bufs) }

// Stats returns a copy of the accumulated statistics.
func (s *Set) Stats() Stats { return s.stats }

// ResetStats clears counters without disturbing stream contents.
func (s *Set) ResetStats() { s.stats = Stats{} }

// Probe presents an on-chip miss for block blk (a block number). On a
// hit the matching stream shifts and refills; the caller moves the
// block into the primary cache. The return reports hit/miss; Probe has
// already updated all statistics.
func (s *Set) Probe(blk mem.Addr) (hit bool) {
	s.clock++
	s.stats.Probes++
	for _, b := range s.bufs {
		s.stats.PrefetchesWasted += uint64(b.dropInvalidHead())
		h, ok := b.HeadBlock()
		if !ok || h != blk {
			continue
		}
		ready, issued := b.consumeHead(s.clock, s.latency)
		s.stats.Hits++
		if !ready {
			s.stats.PendingHits++
		}
		s.stats.PrefetchesIssued += uint64(issued)
		return true
	}
	s.stats.Misses++
	return false
}

// AllocateUnit reallocates the LRU stream as a unit-stride stream
// beginning one block past missBlock (the missed block itself arrives
// via the fast path).
func (s *Set) AllocateUnit(missBlock mem.Addr) {
	startWord := (missBlock + 1) << (s.geom.BlockShift() - s.geom.WordShift())
	s.allocate(startWord, int64(s.geom.WordsPerBlock()))
}

// AllocateStrided reallocates the LRU stream with an arbitrary word
// stride, starting from lastWord+stride (the reference at lastWord has
// already been serviced by the fast path).
func (s *Set) AllocateStrided(lastWord mem.Addr, stride int64) {
	start := int64(lastWord) + stride
	if start < 0 || stride == 0 {
		return // degenerate; nothing useful to prefetch
	}
	s.allocate(mem.Addr(start), stride)
}

// allocate picks the victim buffer per the reallocation policy
// (preferring idle buffers) and resets it.
func (s *Set) allocate(startWord mem.Addr, stride int64) {
	var victim *Buffer
	for _, b := range s.bufs {
		if !b.active {
			victim = b
			break
		}
		rank, best := b.lastUse, uint64(0)
		if victim != nil {
			best = victim.lastUse
		}
		if s.realloc == ReallocFIFO {
			rank = b.allocAt
			if victim != nil {
				best = victim.allocAt
			}
		}
		if victim == nil || rank < best {
			victim = b
		}
	}
	if victim.active {
		s.stats.Lengths.add(victim.hitsThisAllocation)
	}
	flushed, issued := victim.reset(startWord, stride, s.clock)
	s.stats.PrefetchesWasted += uint64(flushed)
	s.stats.PrefetchesIssued += uint64(issued)
	s.stats.Allocations++
}

// InvalidateBlock implements write-back coherence: clear every stream
// entry holding blk. Cleared entries count as wasted prefetches.
func (s *Set) InvalidateBlock(blk mem.Addr) {
	for _, b := range s.bufs {
		n := b.invalidate(blk)
		s.stats.Invalidations += uint64(n)
		s.stats.PrefetchesWasted += uint64(n)
	}
}

// Finish flushes accounting at end of simulation: in-flight prefetches
// never consumed count as wasted, and live stream lengths are recorded.
func (s *Set) Finish() {
	for _, b := range s.bufs {
		if !b.active {
			continue
		}
		s.stats.PrefetchesWasted += uint64(b.count)
		s.stats.Lengths.add(b.hitsThisAllocation)
	}
}

// ActiveStreams returns how many buffers currently hold streams.
func (s *Set) ActiveStreams() int {
	n := 0
	for _, b := range s.bufs {
		if b.active {
			n++
		}
	}
	return n
}
