package stream

import (
	"testing"
	"testing/quick"

	"streamsim/internal/mem"
)

func geom(t testing.TB) mem.Geometry {
	t.Helper()
	return mem.DefaultGeometry()
}

func newSet(t testing.TB, n, depth int) *Set {
	t.Helper()
	s, err := NewSet(geom(t), Config{Streams: n, Depth: depth})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSetValidation(t *testing.T) {
	g := geom(t)
	if _, err := NewSet(g, Config{Streams: 0, Depth: 2}); err == nil {
		t.Error("zero streams should be rejected")
	}
	if _, err := NewSet(g, Config{Streams: 2, Depth: 0}); err == nil {
		t.Error("zero depth should be rejected")
	}
	if _, err := NewSet(g, Config{Streams: 4, Depth: 2}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer(geom(t), 0); err == nil {
		t.Error("depth 0 should be rejected")
	}
}

func TestUnitStreamSequentialHits(t *testing.T) {
	s := newSet(t, 1, 2)
	// Miss on block 10 allocates a stream prefetching 11, 12.
	if s.Probe(10) {
		t.Fatal("cold probe should miss")
	}
	s.AllocateUnit(10)
	for blk := mem.Addr(11); blk < 30; blk++ {
		if !s.Probe(blk) {
			t.Fatalf("probe of block %d should hit the running stream", blk)
		}
	}
	st := s.Stats()
	if st.Hits != 19 {
		t.Errorf("Hits = %d, want 19", st.Hits)
	}
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
	if st.Allocations != 1 {
		t.Errorf("Allocations = %d, want 1", st.Allocations)
	}
}

func TestHeadOnlyCompare(t *testing.T) {
	s := newSet(t, 1, 4)
	s.Probe(10)
	s.AllocateUnit(10) // FIFO holds 11, 12, 13, 14
	// Block 13 is in the FIFO but not at the head: must miss (the
	// hardware compares only the head tag).
	if s.Probe(13) {
		t.Error("non-head entry must not hit")
	}
}

func TestStridedStream(t *testing.T) {
	s := newSet(t, 1, 2)
	g := geom(t)
	// Stride of 100 words = 400 bytes (> one 64B block).
	const stride = 100
	base := mem.Addr(1 << 20) // word address
	s.Probe(g.BlockOfWord(base))
	s.AllocateStrided(base, stride)
	for i := int64(1); i <= 20; i++ {
		w := base + mem.Addr(i*stride)
		if !s.Probe(g.BlockOfWord(w)) {
			t.Fatalf("strided probe %d (word %#x) should hit", i, w)
		}
	}
	if got := s.Stats().Hits; got != 20 {
		t.Errorf("Hits = %d, want 20", got)
	}
}

func TestNegativeStride(t *testing.T) {
	s := newSet(t, 1, 2)
	g := geom(t)
	base := mem.Addr(1 << 20)
	const stride = -64
	s.AllocateStrided(base, stride)
	for i := int64(1); i <= 10; i++ {
		w := mem.Addr(int64(base) + i*stride)
		if !s.Probe(g.BlockOfWord(w)) {
			t.Fatalf("negative-stride probe %d should hit", i)
		}
	}
}

func TestNegativeStrideUnderflowStops(t *testing.T) {
	s := newSet(t, 1, 4)
	// Stream walking backward from word 32 with stride -16: prefetches
	// words 16, 0, then must stop instead of wrapping.
	s.AllocateStrided(32, -16)
	b := s.bufs[0]
	if b.Len() != 2 {
		t.Errorf("FIFO holds %d entries, want 2 (16 and 0)", b.Len())
	}
}

func TestZeroStrideAllocationIgnored(t *testing.T) {
	s := newSet(t, 1, 2)
	s.AllocateStrided(100, 0)
	if s.ActiveStreams() != 0 {
		t.Error("zero-stride allocation should be dropped")
	}
	if got := s.Stats().Allocations; got != 0 {
		t.Errorf("Allocations = %d, want 0", got)
	}
}

func TestLRUReallocation(t *testing.T) {
	s := newSet(t, 2, 2)
	// Allocate stream A at block 100, stream B at block 200.
	s.AllocateUnit(100)
	s.AllocateUnit(200)
	// Use stream A (making B the LRU).
	if !s.Probe(101) {
		t.Fatal("stream A should hit")
	}
	// New allocation must evict B, not A.
	s.AllocateUnit(300)
	if !s.Probe(102) {
		t.Error("stream A should survive reallocation")
	}
	if !s.Probe(301) {
		t.Error("new stream should be live")
	}
	if s.Probe(201) {
		t.Error("stream B should have been reallocated")
	}
}

func TestInactivePreferredOverLRU(t *testing.T) {
	s := newSet(t, 3, 2)
	s.AllocateUnit(100)
	s.AllocateUnit(200)
	if s.ActiveStreams() != 2 {
		t.Fatalf("ActiveStreams = %d, want 2", s.ActiveStreams())
	}
	s.AllocateUnit(300)
	// All three must be live: the third allocation used the idle buffer.
	for _, blk := range []mem.Addr{101, 201, 301} {
		if !s.Probe(blk) {
			t.Errorf("block %d should hit; idle buffer not used", blk)
		}
	}
}

func TestMultiwayInterleavedStreams(t *testing.T) {
	// Two interleaved unit-stride streams need two buffers.
	s := newSet(t, 2, 2)
	s.AllocateUnit(1000)
	s.AllocateUnit(2000)
	for i := mem.Addr(1); i <= 50; i++ {
		if !s.Probe(1000 + i) {
			t.Fatalf("stream 1 probe %d missed", i)
		}
		if !s.Probe(2000 + i) {
			t.Fatalf("stream 2 probe %d missed", i)
		}
	}
	if got := s.Stats().HitRate(); got != 1.0 {
		t.Errorf("hit rate = %v, want 1.0", got)
	}
}

func TestSingleBufferThrashesOnInterleave(t *testing.T) {
	// With one buffer, interleaved streams evict each other: the classic
	// motivation for multi-way streams.
	s := newSet(t, 1, 2)
	hits := 0
	for i := mem.Addr(1); i <= 20; i++ {
		if s.Probe(1000 + i) {
			hits++
		} else {
			s.AllocateUnit(1000 + i)
		}
		if s.Probe(2000 + i) {
			hits++
		} else {
			s.AllocateUnit(2000 + i)
		}
	}
	if hits != 0 {
		t.Errorf("interleave over one buffer hit %d times, want 0", hits)
	}
}

func TestInvalidateBlock(t *testing.T) {
	s := newSet(t, 1, 2)
	s.AllocateUnit(10) // holds 11, 12
	s.InvalidateBlock(11)
	if got := s.Stats().Invalidations; got != 1 {
		t.Errorf("Invalidations = %d, want 1", got)
	}
	// Head (11) is invalid; probe of 12 should still hit after the
	// hardware skips the dead entry.
	if !s.Probe(12) {
		t.Error("probe of 12 should hit after head invalidation")
	}
}

func TestInvalidateCountsWasted(t *testing.T) {
	s := newSet(t, 1, 2)
	s.AllocateUnit(10)
	before := s.Stats().PrefetchesWasted
	s.InvalidateBlock(12)
	if got := s.Stats().PrefetchesWasted - before; got != 1 {
		t.Errorf("wasted delta = %d, want 1", got)
	}
}

func TestWastedPrefetchAccounting(t *testing.T) {
	s := newSet(t, 1, 2)
	s.AllocateUnit(10) // issues 2 prefetches
	s.AllocateUnit(50) // flushes both unused, issues 2 more
	st := s.Stats()
	if st.PrefetchesIssued != 4 {
		t.Errorf("PrefetchesIssued = %d, want 4", st.PrefetchesIssued)
	}
	if st.PrefetchesWasted != 2 {
		t.Errorf("PrefetchesWasted = %d, want 2", st.PrefetchesWasted)
	}
}

func TestFinishFlushesInFlight(t *testing.T) {
	s := newSet(t, 2, 2)
	s.AllocateUnit(10)
	s.Probe(11)
	s.Finish()
	st := s.Stats()
	// After one hit the FIFO refilled to depth 2; both are in flight.
	if st.PrefetchesWasted != 2 {
		t.Errorf("PrefetchesWasted = %d, want 2", st.PrefetchesWasted)
	}
	if st.Lengths.TotalHits() != 1 {
		t.Errorf("length dist hits = %d, want 1", st.Lengths.TotalHits())
	}
}

func TestPendingHitLatency(t *testing.T) {
	g := geom(t)
	s, err := NewSet(g, Config{Streams: 1, Depth: 2, Latency: 100})
	if err != nil {
		t.Fatal(err)
	}
	s.Probe(10)
	s.AllocateUnit(10)
	// Immediately probing the prefetched block: a hit, but pending.
	if !s.Probe(11) {
		t.Fatal("probe should hit")
	}
	st := s.Stats()
	if st.PendingHits != 1 {
		t.Errorf("PendingHits = %d, want 1", st.PendingHits)
	}
	// Let "time" (references) pass beyond the latency.
	for i := 0; i < 200; i++ {
		s.Probe(999999) // misses that advance the clock
	}
	if !s.Probe(12) {
		t.Fatal("probe of 12 should hit")
	}
	if got := s.Stats().PendingHits; got != 1 {
		t.Errorf("PendingHits = %d, want still 1 (data arrived)", got)
	}
}

func TestLengthDistBuckets(t *testing.T) {
	cases := []struct {
		length uint64
		bucket int
	}{
		{1, 0}, {5, 0}, {6, 1}, {10, 1}, {11, 2}, {15, 2},
		{16, 3}, {20, 3}, {21, 4}, {1000, 4},
	}
	for _, c := range cases {
		if got := bucketOf(c.length); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.length, got, c.bucket)
		}
	}
}

func TestLengthDistPercent(t *testing.T) {
	var d LengthDist
	d.add(3)  // 3 hits in bucket 0
	d.add(25) // 25 hits in bucket 4
	d.add(0)  // ignored
	if d.TotalHits() != 28 {
		t.Fatalf("TotalHits = %d, want 28", d.TotalHits())
	}
	p := d.Percent()
	if p[0] < 10.5 || p[0] > 10.8 {
		t.Errorf("bucket 0 share = %v, want ~10.7", p[0])
	}
	if p[4] < 89 || p[4] > 89.5 {
		t.Errorf("bucket 4 share = %v, want ~89.3", p[4])
	}
	var empty LengthDist
	if p := empty.Percent(); p != [5]float64{} {
		t.Errorf("empty Percent = %v, want zeros", p)
	}
}

func TestLengthDistRecordedOnRealloc(t *testing.T) {
	s := newSet(t, 1, 2)
	s.AllocateUnit(10)
	for blk := mem.Addr(11); blk <= 17; blk++ { // 7 hits
		if !s.Probe(blk) {
			t.Fatalf("probe %d should hit", blk)
		}
	}
	s.AllocateUnit(100) // terminates the 7-hit stream
	d := s.Stats().Lengths
	if d.Buckets[1] != 7 {
		t.Errorf("bucket 6-10 hits = %d, want 7", d.Buckets[1])
	}
	if d.Streams[1] != 1 {
		t.Errorf("bucket 6-10 streams = %d, want 1", d.Streams[1])
	}
}

func TestStatsHitRate(t *testing.T) {
	var st Stats
	if st.HitRate() != 0 {
		t.Error("empty stats should have zero hit rate")
	}
	st = Stats{Probes: 4, Hits: 3}
	if st.HitRate() != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", st.HitRate())
	}
}

func TestBucketLabels(t *testing.T) {
	want := [5]string{"1-5", "6-10", "11-15", "16-20", ">20"}
	if got := BucketLabels(); got != want {
		t.Errorf("BucketLabels = %v, want %v", got, want)
	}
}

// Property: for any depth and any run of sequential blocks, a single
// unit stream hits on every block after allocation, and issued
// prefetches equal hits + in-flight entries.
func TestUnitStreamProperty(t *testing.T) {
	f := func(depthRaw uint8, runRaw uint8, baseRaw uint16) bool {
		depth := int(depthRaw%6) + 1
		run := int(runRaw%64) + 1
		base := mem.Addr(baseRaw)
		s, err := NewSet(mem.DefaultGeometry(), Config{Streams: 1, Depth: depth})
		if err != nil {
			return false
		}
		s.AllocateUnit(base)
		for i := 1; i <= run; i++ {
			if !s.Probe(base + mem.Addr(i)) {
				return false
			}
		}
		s.Finish()
		st := s.Stats()
		return st.PrefetchesIssued == st.Hits+st.PrefetchesWasted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the FIFO never exceeds its depth.
func TestDepthInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		s, err := NewSet(mem.DefaultGeometry(), Config{Streams: 2, Depth: 3})
		if err != nil {
			return false
		}
		for _, op := range ops {
			blk := mem.Addr(op % 512)
			if !s.Probe(blk) {
				s.AllocateUnit(blk)
			}
			for _, b := range s.bufs {
				if b.Len() > 3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: probes = hits + misses under arbitrary interleaving.
func TestProbeAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		s, err := NewSet(mem.DefaultGeometry(), Config{Streams: 4, Depth: 2})
		if err != nil {
			return false
		}
		for _, op := range ops {
			blk := mem.Addr(op % 128)
			if !s.Probe(blk) {
				s.AllocateUnit(blk)
			}
		}
		st := s.Stats()
		return st.Probes == st.Hits+st.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReallocString(t *testing.T) {
	if ReallocLRU.String() != "LRU" || ReallocFIFO.String() != "FIFO" {
		t.Error("Realloc names wrong")
	}
}

func TestFIFOReallocationIgnoresUse(t *testing.T) {
	s, err := NewSet(mem.DefaultGeometry(), Config{Streams: 2, Depth: 2, Realloc: ReallocFIFO})
	if err != nil {
		t.Fatal(err)
	}
	s.AllocateUnit(100) // stream A, allocated first
	s.AllocateUnit(200) // stream B
	if !s.Probe(101) {  // use A: would save it under LRU
		t.Fatal("stream A should hit")
	}
	s.AllocateUnit(300) // FIFO must evict A (oldest allocation)
	if s.Probe(102) {
		t.Error("stream A should have been reallocated under FIFO")
	}
	if !s.Probe(201) {
		t.Error("stream B should survive under FIFO")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Probes: 10, Hits: 7, Misses: 3, Allocations: 2,
		PrefetchesIssued: 9, PrefetchesWasted: 2, PendingHits: 1, Invalidations: 1}
	a.Lengths.add(3)
	b := Stats{Probes: 5, Hits: 2, Misses: 3, Allocations: 1, PrefetchesIssued: 4}
	b.Lengths.add(25)
	sum := a.Add(b)
	if sum.Probes != 15 || sum.Hits != 9 || sum.Misses != 6 {
		t.Errorf("Add counters wrong: %+v", sum)
	}
	if sum.Lengths.Buckets[0] != 3 || sum.Lengths.Buckets[4] != 25 {
		t.Errorf("Add length buckets wrong: %+v", sum.Lengths)
	}
	// Add must not mutate its receiver's original.
	if a.Probes != 10 {
		t.Error("Add mutated operand")
	}
}

func TestOnPrefetchHook(t *testing.T) {
	var issued []mem.Addr
	s, err := NewSet(mem.DefaultGeometry(), Config{
		Streams: 1, Depth: 2,
		OnPrefetch: func(blk mem.Addr) { issued = append(issued, blk) },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AllocateUnit(10)
	if len(issued) != 2 || issued[0] != 11 || issued[1] != 12 {
		t.Fatalf("hook saw %v, want [11 12]", issued)
	}
	s.Probe(11) // consume head, refill
	if len(issued) != 3 || issued[2] != 13 {
		t.Errorf("hook after refill saw %v, want [... 13]", issued)
	}
}
