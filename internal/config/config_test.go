package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamsim/internal/core"
)

func intp(v int) *int       { return &v }
func uintp(v uint) *uint    { return &v }
func u64p(v uint64) *uint64 { return &v }
func boolp(v bool) *bool    { return &v }

func TestEmptyFileIsPaperDefault(t *testing.T) {
	cfg, err := (&File{}).Build()
	if err != nil {
		t.Fatal(err)
	}
	want := core.DefaultConfig()
	if cfg.Streams.Streams != want.Streams.Streams || cfg.Streams.Depth != want.Streams.Depth ||
		cfg.UnitFilterEntries != want.UnitFilterEntries ||
		cfg.Stride != want.Stride || cfg.CzoneBits != want.CzoneBits {
		t.Errorf("empty file = %+v, want the paper default", cfg)
	}
}

func TestPresets(t *testing.T) {
	cases := map[string]func(core.Config) bool{
		"paper":    func(c core.Config) bool { return c.Stride == core.CzoneScheme && c.UnitFilterEntries == 16 },
		"section6": func(c core.Config) bool { return c.Stride == core.NoStrideDetection && c.UnitFilterEntries == 16 },
		"section5": func(c core.Config) bool { return c.UnitFilterEntries == 0 && c.Streams.Streams == 10 },
		"bare":     func(c core.Config) bool { return c.Streams.Streams == 0 },
	}
	for name, check := range cases {
		cfg, err := (&File{Preset: name}).Build()
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if !check(cfg) {
			t.Errorf("preset %s produced %+v", name, cfg)
		}
	}
	if _, err := (&File{Preset: "section99"}).Build(); err == nil {
		t.Error("unknown preset should fail")
	}
	if len(PresetNames()) != 4 {
		t.Error("PresetNames out of date")
	}
}

func TestOverrides(t *testing.T) {
	f := &File{
		Preset:        "paper",
		Streams:       intp(4),
		Depth:         intp(8),
		Latency:       u64p(30),
		FilterEntries: intp(8),
		Stride:        "mindelta",
		StrideEntries: intp(4),
		L1KB:          uintp(32),
		L1Assoc:       uintp(2),
		VictimEntries: intp(4),
		Partitioned:   boolp(true),
	}
	cfg, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Streams.Streams != 4 || cfg.Streams.Depth != 8 || cfg.Streams.Latency != 30 {
		t.Errorf("stream overrides lost: %+v", cfg.Streams)
	}
	if cfg.Stride != core.MinDeltaScheme || cfg.StrideFilterEntries != 4 {
		t.Errorf("stride overrides lost")
	}
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1D.Assoc != 2 {
		t.Errorf("L1 overrides lost: %+v", cfg.L1D)
	}
	if cfg.VictimEntries != 4 || !cfg.PartitionedStreams {
		t.Error("victim/partition overrides lost")
	}
}

func TestZeroStreamsDisablesEverything(t *testing.T) {
	cfg, err := (&File{Streams: intp(0)}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Streams.Streams != 0 || cfg.UnitFilterEntries != 0 || cfg.Stride != core.NoStrideDetection {
		t.Errorf("streams=0 should strip prefetch hardware: %+v", cfg)
	}
}

func TestBadStrideScheme(t *testing.T) {
	if _, err := (&File{Stride: "psychic"}).Build(); err == nil {
		t.Error("unknown stride scheme should fail")
	}
}

func TestInvalidCombinationRejected(t *testing.T) {
	// A filter without streams is invalid in core; Build must surface it.
	f := &File{Preset: "bare", FilterEntries: intp(16)}
	if _, err := f.Build(); err == nil {
		t.Error("filter-without-streams should fail validation")
	}
}

func TestReadJSON(t *testing.T) {
	cfg, err := Read(strings.NewReader(`{"preset": "section6", "streams": 4, "czone_bits": 20}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Streams.Streams != 4 || cfg.UnitFilterEntries != 16 {
		t.Errorf("JSON config wrong: %+v", cfg)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"streems": 4}`)); err == nil {
		t.Error("typo'd field should be rejected")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("non-JSON should fail")
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(`{"preset": "section5"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UnitFilterEntries != 0 || cfg.Streams.Streams != 10 {
		t.Errorf("loaded config wrong: %+v", cfg)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestDescribe(t *testing.T) {
	paper, _ := (&File{}).Build()
	s := Describe(paper)
	for _, want := range []string{"10 streams", "16-entry filter", "czone 16 bits"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe(paper) = %q, missing %q", s, want)
		}
	}
	bare, _ := (&File{Preset: "bare"}).Build()
	if !strings.Contains(Describe(bare), "no streams") {
		t.Errorf("Describe(bare) = %q", Describe(bare))
	}
}
