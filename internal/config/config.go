// Package config serializes memory-system configurations to JSON so
// experiments are reproducible from declarative files, and names the
// paper's canonical setups as presets.
//
// The JSON layer deliberately mirrors the paper's vocabulary (streams,
// depth, filter entries, czone bits) rather than core.Config's full
// structure; the handful of exotic knobs (victim caches, partitioned
// streams, L1 shape) are exposed with defaults matching the paper.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"streamsim/internal/core"
	"streamsim/internal/stream"
)

// File is the JSON schema. Zero-valued fields take the paper's
// defaults (see Defaults); explicit zeros are expressed with pointers.
type File struct {
	// Preset, when set, starts from a named configuration before the
	// other fields override it: "paper" (the full Section 7 system),
	// "section5" (plain streams), "section6" (filtered streams),
	// "bare" (no streams).
	Preset string `json:"preset,omitempty"`

	// Streams is the stream buffer count.
	Streams *int `json:"streams,omitempty"`
	// Depth is the per-stream FIFO depth.
	Depth *int `json:"depth,omitempty"`
	// Latency is the prefetch return latency in references.
	Latency *uint64 `json:"latency,omitempty"`
	// FilterEntries sizes the unit-stride filter (0 disables).
	FilterEntries *int `json:"filter_entries,omitempty"`
	// Stride selects "czone", "mindelta" or "none".
	Stride string `json:"stride,omitempty"`
	// StrideEntries sizes the non-unit-stride history.
	StrideEntries *int `json:"stride_entries,omitempty"`
	// CzoneBits sets the czone size in word bits.
	CzoneBits *uint `json:"czone_bits,omitempty"`

	// L1KB sizes each on-chip cache in KB.
	L1KB *uint `json:"l1_kb,omitempty"`
	// L1Assoc is the on-chip associativity.
	L1Assoc *uint `json:"l1_assoc,omitempty"`
	// VictimEntries adds victim caches behind the L1s.
	VictimEntries *int `json:"victim_entries,omitempty"`
	// Partitioned splits instruction and data streams.
	Partitioned *bool `json:"partitioned,omitempty"`
}

// presets maps names to base configurations.
func presets() map[string]core.Config {
	paper := core.DefaultConfig()

	s6 := paper
	s6.Stride = core.NoStrideDetection
	s6.StrideFilterEntries = 0

	s5 := s6
	s5.UnitFilterEntries = 0

	bare := s5
	bare.Streams = stream.Config{}

	return map[string]core.Config{
		"":         paper,
		"paper":    paper,
		"section5": s5,
		"section6": s6,
		"bare":     bare,
	}
}

// PresetNames lists the accepted preset names.
func PresetNames() []string {
	return []string{"paper", "section5", "section6", "bare"}
}

// Build resolves the file into a core.Config.
func (f *File) Build() (core.Config, error) {
	cfg, ok := presets()[f.Preset]
	if !ok {
		return core.Config{}, fmt.Errorf("config: unknown preset %q (paper, section5, section6, bare)", f.Preset)
	}
	if f.Streams != nil {
		if *f.Streams == 0 {
			cfg.Streams = stream.Config{}
			cfg.UnitFilterEntries = 0
			cfg.Stride = core.NoStrideDetection
		} else {
			cfg.Streams.Streams = *f.Streams
			if cfg.Streams.Depth == 0 {
				cfg.Streams.Depth = 2
			}
		}
	}
	if f.Depth != nil {
		cfg.Streams.Depth = *f.Depth
	}
	if f.Latency != nil {
		cfg.Streams.Latency = *f.Latency
	}
	if f.FilterEntries != nil {
		cfg.UnitFilterEntries = *f.FilterEntries
	}
	switch f.Stride {
	case "":
	case "czone":
		cfg.Stride = core.CzoneScheme
	case "mindelta":
		cfg.Stride = core.MinDeltaScheme
	case "none":
		cfg.Stride = core.NoStrideDetection
	default:
		return core.Config{}, fmt.Errorf("config: unknown stride scheme %q", f.Stride)
	}
	if f.StrideEntries != nil {
		cfg.StrideFilterEntries = *f.StrideEntries
	}
	if f.CzoneBits != nil {
		cfg.CzoneBits = *f.CzoneBits
	}
	if f.L1KB != nil {
		cfg.L1I.SizeBytes = *f.L1KB << 10
		cfg.L1D.SizeBytes = *f.L1KB << 10
	}
	if f.L1Assoc != nil {
		cfg.L1I.Assoc = *f.L1Assoc
		cfg.L1D.Assoc = *f.L1Assoc
	}
	if f.VictimEntries != nil {
		cfg.VictimEntries = *f.VictimEntries
	}
	if f.Partitioned != nil {
		cfg.PartitionedStreams = *f.Partitioned
	}
	// Validate by constructing a system.
	if _, err := core.New(cfg); err != nil {
		return core.Config{}, fmt.Errorf("config: %w", err)
	}
	return cfg, nil
}

// Load reads and resolves a JSON configuration file. The one place
// the simulator touches the filesystem by design.
//
//simlint:configload
func Load(path string) (core.Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.Config{}, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses a JSON configuration from r.
func Read(r io.Reader) (core.Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var file File
	if err := dec.Decode(&file); err != nil {
		return core.Config{}, fmt.Errorf("config: %w", err)
	}
	return file.Build()
}

// Describe renders a config's memory-system summary, the form printed
// by tools' verbose modes.
func Describe(cfg core.Config) string {
	if cfg.Streams.Streams == 0 {
		return fmt.Sprintf("L1 %dKB/%d-way %s + memory (no streams)",
			cfg.L1D.SizeBytes>>10, cfg.L1D.Assoc, cfg.L1D.Replacement)
	}
	filter := "no filter"
	if cfg.UnitFilterEntries > 0 {
		filter = fmt.Sprintf("%d-entry filter", cfg.UnitFilterEntries)
	}
	stride := "no stride detection"
	switch cfg.Stride {
	case core.CzoneScheme:
		stride = fmt.Sprintf("czone %d bits x%d", cfg.CzoneBits, cfg.StrideFilterEntries)
	case core.MinDeltaScheme:
		stride = fmt.Sprintf("min-delta x%d", cfg.StrideFilterEntries)
	}
	return fmt.Sprintf("L1 %dKB/%d-way + %d streams depth %d, %s, %s",
		cfg.L1D.SizeBytes>>10, cfg.L1D.Assoc,
		cfg.Streams.Streams, cfg.Streams.Depth, filter, stride)
}
