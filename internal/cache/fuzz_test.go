package cache

import (
	"testing"
)

// FuzzCacheOps drives an arbitrary operation sequence and checks the
// model's core invariants after every step: a just-accessed block is
// resident, counters balance, and no set ever holds more than assoc
// distinct blocks (checked indirectly by replaying membership).
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 251, 128, 60})
	f.Add([]byte{9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		c, err := New(Config{
			Name: "fuzz", SizeBytes: 2048, Assoc: 2, BlockBytes: 64,
			Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate,
		})
		if err != nil {
			t.Fatal(err)
		}
		resident := map[uint64]bool{} // our belief, updated from results
		for _, op := range ops {
			addr := uint64(op) * 64
			blk := addr / 64
			var res Result
			switch op % 3 {
			case 0:
				res = c.Read(addr)
			case 1:
				res = c.Write(addr)
			case 2:
				present, _ := c.Invalidate(addr)
				if present != resident[blk] {
					t.Fatalf("Invalidate(%#x) present=%v, believed %v", addr, present, resident[blk])
				}
				delete(resident, blk)
				continue
			}
			if !res.Sampled {
				t.Fatal("unsampled result without set sampling")
			}
			if res.Hit != resident[blk] {
				t.Fatalf("access %#x hit=%v, believed resident=%v", addr, res.Hit, resident[blk])
			}
			if res.Filled {
				resident[blk] = true
			}
			if res.Evicted {
				if !resident[res.VictimBlock] {
					t.Fatalf("evicted block %#x was not believed resident", res.VictimBlock)
				}
				delete(resident, res.VictimBlock)
			}
			if !c.Contains(addr) {
				t.Fatalf("block %#x absent immediately after access", addr)
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("counter imbalance: %+v", s)
		}
	})
}
