package cache

import (
	"testing"
	"testing/quick"
)

// small returns a tiny direct-mapped cache for deterministic tests:
// 4 sets of 1 way, 64-byte blocks.
func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{
		Name: "t", SizeBytes: 256, Assoc: 1, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 100, Assoc: 1, BlockBytes: 64}, // size not pow2
		{SizeBytes: 256, Assoc: 3, BlockBytes: 64}, // assoc not pow2
		{SizeBytes: 256, Assoc: 1, BlockBytes: 48}, // block not pow2
		{SizeBytes: 64, Assoc: 4, BlockBytes: 64},  // too small
		{SizeBytes: 256, Assoc: 1, BlockBytes: 0},  // zero block
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
	if _, err := New(Config{SizeBytes: 65536, Assoc: 4, BlockBytes: 64}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small(t)
	if r := c.Read(0x100); r.Hit {
		t.Error("first access should miss")
	}
	if r := c.Read(0x100); !r.Hit {
		t.Error("second access should hit")
	}
	if r := c.Read(0x13f); !r.Hit {
		t.Error("same-block access should hit")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 3 accesses, 2 hits, 1 miss", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := small(t)
	// 4 sets * 64B blocks: addresses 0 and 256 collide in set 0.
	c.Read(0)
	c.Read(256)
	if r := c.Read(0); r.Hit {
		t.Error("conflicting block should have evicted 0")
	}
}

func TestLRUOrder(t *testing.T) {
	c, err := New(Config{SizeBytes: 2 * 64, Assoc: 2, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	// One set, two ways. Fill with A, B; touch A; insert C: B evicted.
	a, b, cc := uint64(0), uint64(64), uint64(128)
	c.Read(a)
	c.Read(b)
	c.Read(a) // A most recent
	c.Read(cc)
	if !c.Contains(a) {
		t.Error("A should survive (recently used)")
	}
	if c.Contains(b) {
		t.Error("B should be evicted (LRU)")
	}
}

func TestFIFOOrder(t *testing.T) {
	c, err := New(Config{SizeBytes: 2 * 64, Assoc: 2, BlockBytes: 64,
		Replacement: FIFO, Write: WriteBack, Alloc: WriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	a, b, cc := uint64(0), uint64(64), uint64(128)
	c.Read(a)
	c.Read(b)
	c.Read(a) // touching A must NOT save it under FIFO
	c.Read(cc)
	if c.Contains(a) {
		t.Error("A should be evicted (oldest fill) despite recent use")
	}
	if !c.Contains(b) {
		t.Error("B should survive under FIFO")
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	mk := func() *Cache {
		c, err := New(Config{SizeBytes: 4 * 64, Assoc: 4, BlockBytes: 64,
			Replacement: Random, Write: WriteBack, Alloc: WriteAllocate, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	run := func(c *Cache) Stats {
		for i := 0; i < 1000; i++ {
			c.Read(uint64(i%17) * 64)
		}
		return c.Stats()
	}
	s1, s2 := run(mk()), run(mk())
	if s1 != s2 {
		t.Errorf("same seed gave different stats: %+v vs %+v", s1, s2)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := small(t)
	c.Write(0) // dirty block 0 in set 0
	r := c.Read(256)
	if !r.WroteBack {
		t.Fatal("evicting dirty block should write back")
	}
	if r.VictimBlock != 0 {
		t.Errorf("VictimBlock = %#x, want 0", r.VictimBlock)
	}
	if got := c.Stats().WriteBacks; got != 1 {
		t.Errorf("WriteBacks = %d, want 1", got)
	}
}

func TestVictimBlockReconstruction(t *testing.T) {
	c := small(t)
	// Block at byte 0x1240 -> block 0x49, set 1, tag 0x12.
	c.Write(0x1240)
	r := c.Read(0x2240) // same set 1
	if !r.WroteBack {
		t.Fatal("should evict dirty victim")
	}
	if r.VictimBlock != 0x49 {
		t.Errorf("VictimBlock = %#x, want 0x49", r.VictimBlock)
	}
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	c := small(t)
	c.Read(0)
	r := c.Read(256)
	if r.WroteBack {
		t.Error("clean eviction must not write back")
	}
}

func TestWriteThrough(t *testing.T) {
	c, err := New(Config{SizeBytes: 256, Assoc: 1, BlockBytes: 64,
		Replacement: LRU, Write: WriteThrough, Alloc: WriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	c.Write(0) // miss + fill + through
	c.Write(0) // hit + through
	if got := c.Stats().WriteBacks; got != 2 {
		t.Errorf("WriteBacks = %d, want 2 (every store propagates)", got)
	}
	// Evicting should not add a write-back: nothing is dirty.
	c.Read(256)
	if got := c.Stats().WriteBacks; got != 2 {
		t.Errorf("WriteBacks after eviction = %d, want 2", got)
	}
}

func TestNoWriteAllocate(t *testing.T) {
	c, err := New(Config{SizeBytes: 256, Assoc: 1, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: NoWriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	r := c.Write(0)
	if r.Filled {
		t.Error("store miss must not fill under no-write-allocate")
	}
	if c.Contains(0) {
		t.Error("block must not be resident")
	}
	if got := c.Stats().WriteBacks; got != 1 {
		t.Errorf("WriteBacks = %d, want 1 (store forwarded)", got)
	}
}

func TestSetSampling(t *testing.T) {
	c, err := New(Config{SizeBytes: 16 * 64, Assoc: 1, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate, SampleEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 16 sets; only sets 0, 4, 8, 12 are simulated.
	for set := uint64(0); set < 16; set++ {
		r := c.Read(set * 64)
		if set%4 == 0 && !r.Sampled {
			t.Errorf("set %d should be sampled", set)
		}
		if set%4 != 0 && r.Sampled {
			t.Errorf("set %d should be skipped", set)
		}
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Unsampled != 12 {
		t.Errorf("stats = %+v, want 4 sampled / 12 unsampled", s)
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	c.Write(0)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Contains(0) {
		t.Error("block still resident after invalidate")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("second invalidate should find nothing")
	}
}

func TestFlush(t *testing.T) {
	c := small(t)
	c.Write(0)
	c.Read(64)
	c.Flush()
	if c.Contains(0) || c.Contains(64) {
		t.Error("flush should empty the cache")
	}
	if got := c.Stats().WriteBacks; got != 1 {
		t.Errorf("WriteBacks = %d, want 1 (one dirty line)", got)
	}
}

func TestResetStats(t *testing.T) {
	c := small(t)
	c.Read(0)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 {
		t.Errorf("stats not cleared: %+v", s)
	}
	if !c.Contains(0) {
		t.Error("ResetStats must not disturb contents")
	}
}

func TestStatsRates(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.MissRate() != 0 {
		t.Error("empty stats should have zero rates")
	}
	s = Stats{Accesses: 10, Hits: 7, Misses: 3}
	if s.HitRate() != 0.7 {
		t.Errorf("HitRate = %v, want 0.7", s.HitRate())
	}
	if s.MissRate() != 0.3 {
		t.Errorf("MissRate = %v, want 0.3", s.MissRate())
	}
}

// Property: hits + misses always equals sampled accesses, and a repeat
// access to the same address immediately after is always a hit.
func TestAccountingInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := New(Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64,
			Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Read(uint64(a))
			if !c.Contains(uint64(a)) {
				return false
			}
			if r := c.Read(uint64(a)); !r.Hit {
				return false
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a fully-associative LRU cache of N blocks retains the last
// N distinct blocks touched.
func TestLRURetention(t *testing.T) {
	const ways = 8
	c, err := New(Config{SizeBytes: ways * 64, Assoc: ways, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Read(uint64(i) * 64)
	}
	for i := 100 - ways; i < 100; i++ {
		if !c.Contains(uint64(i) * 64) {
			t.Errorf("block %d should be retained", i)
		}
	}
	if c.Contains(uint64(100-ways-1) * 64) {
		t.Error("older block should be evicted")
	}
}

// Property: working sets that fit are fully retained whatever the order
// of a second pass (no capacity or conflict misses on re-walk).
func TestFitWorkingSetAllHit(t *testing.T) {
	c, err := New(Config{SizeBytes: 4096, Assoc: 4, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 4096; a += 64 {
		c.Read(a)
	}
	c.ResetStats()
	for a := uint64(4096) - 64; ; a -= 64 {
		c.Read(a)
		if a == 0 {
			break
		}
	}
	if s := c.Stats(); s.Misses != 0 {
		t.Errorf("re-walk of resident set missed %d times", s.Misses)
	}
}
