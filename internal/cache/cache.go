// Package cache implements a set-associative cache model with the
// structural knobs the paper exercises: size, associativity, block
// size, LRU/random/FIFO replacement, write-back or write-through
// handling, write-allocate or no-write-allocate, and set sampling for
// fast secondary-cache hit-rate estimation (Kessler, Hill & Wood's
// technique, cited as [11] in the paper).
//
// The model is purely functional with respect to data: it tracks tags,
// valid and dirty bits but not contents, which is all a hit-rate and
// bandwidth study needs.
package cache

import "fmt"

// Replacement selects the victim way on a miss in a full set.
type Replacement uint8

// Replacement policies.
const (
	// LRU evicts the least recently used way.
	LRU Replacement = iota
	// Random evicts a uniformly random way (the paper's on-chip caches
	// use random replacement).
	Random
	// FIFO evicts the oldest-filled way regardless of use.
	FIFO
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case Random:
		return "random"
	case FIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// WritePolicy selects how stores that hit are propagated.
type WritePolicy uint8

// Write policies.
const (
	// WriteBack marks the block dirty and writes it to memory only on
	// eviction (the paper's data cache policy).
	WriteBack WritePolicy = iota
	// WriteThrough sends every store to memory immediately.
	WriteThrough
)

// String returns the policy name.
func (w WritePolicy) String() string {
	if w == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// AllocPolicy selects whether a store miss fills the cache.
type AllocPolicy uint8

// Allocation policies.
const (
	// WriteAllocate fills the block on a store miss (the paper's data
	// cache policy).
	WriteAllocate AllocPolicy = iota
	// NoWriteAllocate sends the store to memory without filling.
	NoWriteAllocate
)

// String returns the policy name.
func (a AllocPolicy) String() string {
	if a == WriteAllocate {
		return "write-allocate"
	}
	return "no-write-allocate"
}

// Config describes a cache instance.
type Config struct {
	// Name labels the cache in stats output (e.g. "L1D").
	Name string
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes uint
	// Assoc is the number of ways per set. Must be a power of two and
	// divide SizeBytes/BlockBytes.
	Assoc uint
	// BlockBytes is the line size. Must be a power of two.
	BlockBytes uint
	// Replacement is the victim-selection policy.
	Replacement Replacement
	// Write is the store propagation policy.
	Write WritePolicy
	// Alloc is the store-miss fill policy.
	Alloc AllocPolicy
	// SampleEvery enables set sampling when > 1: only sets whose index
	// is divisible by SampleEvery are simulated; accesses to other sets
	// are ignored and reported as unsampled. Hit rates from the sampled
	// sets estimate the full cache's (the paper uses this for its
	// multi-megabyte secondary caches). 0 or 1 simulates every set.
	SampleEvery uint
	// Seed drives the Random replacement policy. Ignored otherwise.
	Seed int64
}

// Line state is kept struct-of-arrays (tags, packed valid/dirty flags,
// and replacement stamps) rather than as an array of line structs: the
// access path's tag scan then reads 8 bytes per way instead of a 32-byte
// struct, which keeps far more of the simulated cache resident in the
// host CPU's own caches. The stamp arrays are written only when the
// replacement policy reads them.
const (
	flagValid = 1 << 0
	flagDirty = 1 << 1
)

// invalidTag occupies the tag slot of an invalid way so the probe
// loop needs no separate valid check. A stored tag could only collide
// with the sentinel if an access address had all 64 bits set;
// simulator addresses are bounded by the 62-bit trace format
// (trace.MaxAddr), so the sentinel is unreachable.
const invalidTag = ^uint64(0)

// Stats accumulates the observable behaviour of a cache. For a sampled
// cache the counts cover only the sampled sets.
//
// Accesses is derived on read (Stats sums Hits and Misses), so no
// snapshot handler owes it coverage.
//
//simlint:state counters
//simlint:statederived Accesses
type Stats struct {
	// Accesses is the number of sampled references presented. It is
	// derived (Hits + Misses) when Stats is read, so the access path
	// maintains one counter fewer.
	Accesses uint64
	// Hits is the number of sampled references that hit.
	Hits uint64
	// Misses is Accesses - Hits.
	Misses uint64
	// ReadMisses and WriteMisses split Misses by reference type.
	ReadMisses  uint64
	WriteMisses uint64
	// WriteBacks counts dirty evictions (write-back caches) or
	// propagated stores (write-through caches).
	WriteBacks uint64
	// Fills counts blocks brought in from the next level by demand
	// accesses.
	Fills uint64
	// PrefetchFills counts blocks installed by Prefetch.
	PrefetchFills uint64
	// Unsampled counts references skipped by set sampling.
	Unsampled uint64
}

// HitRate returns Hits/Accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result reports what a single access did.
type Result struct {
	// Sampled is false when set sampling skipped the reference; every
	// other field is then meaningless.
	Sampled bool
	// Hit reports whether the reference hit.
	Hit bool
	// Filled reports whether a block was brought in.
	Filled bool
	// Evicted reports whether a valid line was displaced by the fill
	// (clean or dirty — victim caches want both).
	Evicted bool
	// EvictedDirty reports whether the displaced line was dirty.
	EvictedDirty bool
	// WroteBack reports whether a dirty victim was written to memory
	// (always equal to Evicted && EvictedDirty for write-back caches).
	WroteBack bool
	// VictimBlock is the displaced line's block address when Evicted.
	VictimBlock uint64
}

// Cache is a set-associative cache. It is not safe for concurrent use.
//
// Way i of set s lives at flat index s<<assocShift | i in each of the
// state arrays; the access path does one address computation instead of
// chasing a per-set slice header (the per-reference simulator hot path).
//
//simlint:state
type Cache struct {
	cfg        Config
	tags       []uint64
	meta       []uint8  // flagValid | flagDirty per way
	used       []uint64 // LRU stamps, written only under LRU
	filled     []uint64 // FIFO stamps, written only under FIFO
	numSets    uint
	blockShift uint
	tagShift   uint // log2(numSets), precomputed off the access path
	assocShift uint // log2(Assoc)
	setMask    uint64
	sampleMod  uint64 // cfg.SampleEvery when > 1; 0 means every set
	assoc      uint64 // cfg.Assoc, pre-widened for the probe loop
	stamped    bool   // replacement policy reads clock stamps
	clock      uint64
	rngState   uint64 // xorshift64* state for Random replacement
	stats      Stats
}

// New validates cfg and builds the cache.
func New(cfg Config) (*Cache, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / cfg.BlockBytes / cfg.Assoc
	ways := numSets * cfg.Assoc
	c := &Cache{
		cfg:        cfg,
		numSets:    numSets,
		blockShift: log2(cfg.BlockBytes),
		tagShift:   log2(numSets),
		assocShift: log2(cfg.Assoc),
		setMask:    uint64(numSets - 1),
		assoc:      uint64(cfg.Assoc),
		tags:       make([]uint64, ways),
		meta:       make([]uint8, ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	switch cfg.Replacement {
	case LRU:
		c.used = make([]uint64, ways)
	case FIFO:
		c.filled = make([]uint64, ways)
	}
	c.stamped = c.used != nil || c.filled != nil
	if cfg.SampleEvery > 1 {
		c.sampleMod = uint64(cfg.SampleEvery)
	}
	if cfg.Replacement == Random {
		// Seed the xorshift64* generator from the config seed; the
		// state must be nonzero, and mixing with a splitmix-style
		// constant keeps nearby seeds decorrelated.
		c.rngState = uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
		if c.rngState == 0 {
			c.rngState = 0x2545F4914F6CDD1D
		}
	}
	return c, nil
}

func validate(cfg Config) error {
	pow2 := func(v uint) bool { return v != 0 && v&(v-1) == 0 }
	switch {
	case !pow2(cfg.BlockBytes):
		return fmt.Errorf("cache %s: block size %d not a power of two", cfg.Name, cfg.BlockBytes)
	case !pow2(cfg.SizeBytes):
		return fmt.Errorf("cache %s: size %d not a power of two", cfg.Name, cfg.SizeBytes)
	case !pow2(cfg.Assoc):
		return fmt.Errorf("cache %s: associativity %d not a power of two", cfg.Name, cfg.Assoc)
	case cfg.SizeBytes < cfg.BlockBytes*cfg.Assoc:
		return fmt.Errorf("cache %s: size %d too small for %d ways of %d-byte blocks",
			cfg.Name, cfg.SizeBytes, cfg.Assoc, cfg.BlockBytes)
	}
	return nil
}

func log2(v uint) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() uint { return c.numSets }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats {
	st := c.stats
	st.Accesses = st.Hits + st.Misses
	return st
}

// ResetStats clears the counters without disturbing cache contents.
//
//simlint:statefull reset
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AddStats accumulates another cache's counters into this one. The
// derived Accesses field of the argument is ignored (Stats recomputes
// it on read). The window-sharded replay engine uses it to merge the
// per-chunk deltas its forks produce.
//
//simlint:statefull merge
func (c *Cache) AddStats(s Stats) {
	c.stats.Hits += s.Hits
	c.stats.Misses += s.Misses
	c.stats.ReadMisses += s.ReadMisses
	c.stats.WriteMisses += s.WriteMisses
	c.stats.WriteBacks += s.WriteBacks
	c.stats.Fills += s.Fills
	c.stats.PrefetchFills += s.PrefetchFills
	c.stats.Unsampled += s.Unsampled
}

// Clone returns a deep copy of the cache: same configuration and
// derived geometry, fresh backing arrays for the tag, metadata and
// replacement-stamp state, and a copy of the statistics and the
// replacement RNG state. The clone evolves independently of the
// original from this point on.
//
//simlint:statefull clone
func (c *Cache) Clone() *Cache {
	n := *c
	n.tags = append([]uint64(nil), c.tags...)
	n.meta = append([]uint8(nil), c.meta...)
	if c.used != nil {
		n.used = append([]uint64(nil), c.used...)
	}
	if c.filled != nil {
		n.filled = append([]uint64(nil), c.filled...)
	}
	return &n
}

// index splits a byte address into set index and tag.
func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.blockShift
	return blk & c.setMask, blk >> c.tagShift
}

// sampled reports whether set sampling includes this set.
func (c *Cache) sampled(set uint64) bool {
	return c.sampleMod == 0 || set%c.sampleMod == 0
}

// base returns the flat index of way 0 of a set.
func (c *Cache) base(set uint64) uint64 { return set << c.assocShift }

// ProbeStatus is Probe's verdict on a reference.
type ProbeStatus uint8

// Probe outcomes.
const (
	// ProbeHit: the block is resident; finish with HitAt.
	ProbeHit ProbeStatus = iota
	// ProbeMiss: the block is absent; finish with MissAt.
	ProbeMiss
	// ProbeUnsampled: set sampling skips this reference; finish with
	// NoteUnsampled.
	ProbeUnsampled
)

// Probe is the pure lookup half of an access: it classifies addr and,
// on a hit, returns the matching way's flat index. It mutates nothing,
// which keeps it small enough for the compiler to inline into the
// per-reference simulation loop — on the dominant hit path the whole
// cache lookup then runs without a function call. Callers MUST pair it
// with exactly one of HitAt / MissAt / NoteUnsampled to keep the
// statistics and replacement state coherent; Read and Write wrap the
// pairing for callers that want one-shot semantics.
//
//simlint:hotpath
func (c *Cache) Probe(addr uint64) (way uint64, st ProbeStatus) {
	// Written flat (no index/sampled/base helpers) to stay under the
	// inlining budget.
	blk := addr >> c.blockShift
	set := blk & c.setMask
	if c.sampleMod != 0 && set%c.sampleMod != 0 {
		return 0, ProbeUnsampled
	}
	tag := blk >> c.tagShift
	i := set << c.assocShift
	for end := i + c.assoc; i < end; i++ {
		if c.tags[i] == tag {
			return i, ProbeHit
		}
	}
	return 0, ProbeMiss
}

// Prober is a batch-scoped snapshot of the lookup geometry Probe
// reads. Every field is fixed at New time except the tags slice, whose
// header never changes while its backing array takes the insertions —
// so a Prober held across HitAt/MissAt calls still observes them. The
// point is aliasing: Probe on the *Cache reloads seven geometry fields
// per reference because the compiler must assume the interleaved
// bookkeeping calls may write anywhere in the struct, while a Prober
// kept in a caller's stack frame provably cannot alias those writes
// and the loads hoist out of the batch loop entirely.
type Prober struct {
	tags       []uint64
	setMask    uint64
	sampleMod  uint64
	assoc      uint64
	blockShift uint
	tagShift   uint
	assocShift uint
	deferHits  bool
}

// Prober returns the batch probe view of the cache. A Prober is cheap
// to build (one copy, no allocation) and remains valid for the life of
// the cache; batch loops build one per batch on the stack.
func (c *Cache) Prober() Prober {
	return Prober{
		tags:       c.tags,
		setMask:    c.setMask,
		sampleMod:  c.sampleMod,
		assoc:      c.assoc,
		blockShift: c.blockShift,
		tagShift:   c.tagShift,
		assocShift: c.assocShift,
		deferHits:  !c.stamped,
	}
}

// DeferHits reports whether a read hit's entire bookkeeping is the hit
// counter — HitAt(way, false) is then exactly AddHits(1). True for the
// paper's random-replacement caches, whose hits touch no replacement
// state; a batch loop may then count read hits in a register and flush
// the total once per batch. False under LRU/FIFO, where every hit
// must stamp the way and the per-reference HitAt path is mandatory.
func (p *Prober) DeferHits() bool { return p.deferHits }

// Probe is the Prober form of Cache.Probe: the same classification,
// reading the snapshot's geometry. The tag scan ranges over a
// sub-slice so the compiler drops the per-way bounds checks, which
// keeps the method within the inlining budget at every call site.
//
// The snapshot is borrowed for the batch: its tags slice aliases the
// cache's live storage, so keeping a Prober (or anything reached
// through it) past the replay batch would let stale geometry or a
// resized cache corrupt a later probe.
//
//simlint:hotpath
//simlint:borrowed p
func (p *Prober) Probe(addr uint64) (way uint64, st ProbeStatus) {
	blk := addr >> p.blockShift
	set := blk & p.setMask
	if p.sampleMod != 0 && set%p.sampleMod != 0 {
		return 0, ProbeUnsampled
	}
	tag := blk >> p.tagShift
	i := set << p.assocShift
	for k, tv := range p.tags[i : i+p.assoc] {
		if tv == tag {
			return i + uint64(k), ProbeHit
		}
	}
	return 0, ProbeMiss
}

// AddHits credits n deferred read hits in one update. Only valid when
// the cache's Prober reports DeferHits — each credited hit must have
// been a Probe that returned ProbeHit with no other bookkeeping due.
//
//simlint:hotpath
func (c *Cache) AddHits(n uint64) { c.stats.Hits += n }

// SetStats overwrites the statistics wholesale. It exists for the
// multi-config replay engine: when every system in a fan-out shares an
// identical L1 configuration, one leader simulates the front end and
// the followers adopt its counters instead of re-deriving them
// reference by reference. Any other use forfeits the invariant that
// stats describe this cache's own history.
//
//simlint:statefull adopt
func (c *Cache) SetStats(s Stats) { c.stats = s }

// HitAt does the bookkeeping of a tag match at the way Probe returned:
// hit count, replacement clock and LRU stamp, write-policy effects.
// Inlinable, so the hit path stays call-free end to end.
//
//simlint:hotpath
func (c *Cache) HitAt(way uint64, write bool) {
	c.stats.Hits++
	if c.stamped {
		// The clock only feeds LRU/FIFO stamps; random-replacement
		// caches (the paper's L1s) skip the tick.
		c.clock++
		if c.used != nil {
			c.used[way] = c.clock
		}
	}
	if write {
		if c.cfg.Write == WriteBack {
			c.meta[way] |= flagDirty
		} else {
			c.stats.WriteBacks++
		}
	}
}

// NoteUnsampled counts a reference skipped by set sampling.
//
//simlint:hotpath
func (c *Cache) NoteUnsampled() { c.stats.Unsampled++ }

// Read presents a load at addr.
func (c *Cache) Read(addr uint64) Result { return c.access(addr, false) }

// Write presents a store at addr.
func (c *Cache) Write(addr uint64) Result { return c.access(addr, true) }

// access is the one-shot hit/miss/fill path: Probe plus the matching
// completion.
func (c *Cache) access(addr uint64, write bool) Result {
	way, st := c.Probe(addr)
	switch st {
	case ProbeHit:
		c.HitAt(way, write)
		return Result{Sampled: true, Hit: true}
	case ProbeUnsampled:
		c.NoteUnsampled()
		return Result{}
	default:
		return c.MissAt(addr, write)
	}
}

// MissAt handles fill, eviction and write-policy accounting for a
// sampled reference Probe classified as a miss.
//
//simlint:hotpath
func (c *Cache) MissAt(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	base := c.base(set)
	end := base + uint64(c.cfg.Assoc)
	if c.stamped {
		c.clock++
	}
	c.stats.Misses++
	if write {
		c.stats.WriteMisses++
	} else {
		c.stats.ReadMisses++
	}

	if write && c.cfg.Alloc == NoWriteAllocate {
		c.stats.WriteBacks++
		return Result{Sampled: true}
	}

	res := Result{Sampled: true, Filled: true}
	i := c.pickVictim(base, end)
	if c.meta[i]&flagValid != 0 {
		res.Evicted = true
		res.VictimBlock = c.victimBlock(set, c.tags[i])
		if c.meta[i]&flagDirty != 0 {
			res.EvictedDirty = true
			res.WroteBack = true
			c.stats.WriteBacks++
		}
	}
	c.tags[i] = tag
	m := uint8(flagValid)
	if write && c.cfg.Write == WriteBack {
		m |= flagDirty
	}
	c.meta[i] = m
	if write && c.cfg.Write == WriteThrough {
		c.stats.WriteBacks++
	}
	if c.used != nil {
		c.used[i] = c.clock
	}
	if c.filled != nil {
		c.filled[i] = c.clock
	}
	c.stats.Fills++
	return res
}

// victimBlock reconstructs the block address of an evicted line.
func (c *Cache) victimBlock(set, tag uint64) uint64 {
	return tag<<c.tagShift | set
}

// pickVictim chooses the flat index of the way to evict in
// [base, end), preferring invalid ways.
func (c *Cache) pickVictim(base, end uint64) uint64 {
	for i := base; i < end; i++ {
		if c.meta[i]&flagValid == 0 {
			return i
		}
	}
	switch c.cfg.Replacement {
	case Random:
		// xorshift64*: seeded at New, uniform over the power-of-two
		// associativity via masking.
		x := c.rngState
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		c.rngState = x
		return base + (x*0x2545F4914F6CDD1D)>>32&(end-base-1)
	case FIFO:
		best, bestAt := base, c.filled[base]
		for i := base + 1; i < end; i++ {
			if c.filled[i] < bestAt {
				best, bestAt = i, c.filled[i]
			}
		}
		return best
	default: // LRU
		best, bestAt := base, c.used[base]
		for i := base + 1; i < end; i++ {
			if c.used[i] < bestAt {
				best, bestAt = i, c.used[i]
			}
		}
		return best
	}
}

// Prefetch installs the block holding addr without counting a demand
// access: the side door used by the on-chip prefetcher baselines
// (internal/prefetch). If the block is already resident nothing
// happens and Filled is false; otherwise the fill and any eviction are
// handled exactly as for a demand miss (the victim's write-back is
// reported so the caller can account the traffic). Replacement state
// is updated so prefetched blocks age like fetched ones.
func (c *Cache) Prefetch(addr uint64) Result {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return Result{}
	}
	base := c.base(set)
	end := base + uint64(c.cfg.Assoc)
	for i := base; i < end; i++ {
		if c.tags[i] == tag {
			return Result{Sampled: true, Hit: true}
		}
	}
	c.clock++
	res := Result{Sampled: true, Filled: true}
	i := c.pickVictim(base, end)
	if c.meta[i]&flagValid != 0 {
		res.Evicted = true
		res.VictimBlock = c.victimBlock(set, c.tags[i])
		if c.meta[i]&flagDirty != 0 {
			res.EvictedDirty = true
			res.WroteBack = true
			c.stats.WriteBacks++
		}
	}
	c.tags[i] = tag
	c.meta[i] = flagValid
	if c.used != nil {
		c.used[i] = c.clock
	}
	if c.filled != nil {
		c.filled[i] = c.clock
	}
	c.stats.PrefetchFills++
	return res
}

// SetDirty marks the resident block holding addr dirty, reporting
// whether it was found. Victim-cache integration uses this to restore
// the dirty state of a line swapped back from the victim buffer.
func (c *Cache) SetDirty(addr uint64) bool {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return false
	}
	base := c.base(set)
	for i := base; i < base+uint64(c.cfg.Assoc); i++ {
		if c.meta[i]&flagValid != 0 && c.tags[i] == tag {
			c.meta[i] |= flagDirty
			return true
		}
	}
	return false
}

// Contains reports whether the block holding addr is resident. Sampled
// caches report false for unsampled sets.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return false
	}
	base := c.base(set)
	for i := base; i < base+uint64(c.cfg.Assoc); i++ {
		if c.meta[i]&flagValid != 0 && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Invalidate removes the block holding addr if resident, returning
// whether it was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return false, false
	}
	base := c.base(set)
	for i := base; i < base+uint64(c.cfg.Assoc); i++ {
		if c.meta[i]&flagValid != 0 && c.tags[i] == tag {
			present, dirty = true, c.meta[i]&flagDirty != 0
			c.meta[i] = 0
			c.tags[i] = invalidTag
			return present, dirty
		}
	}
	return false, false
}

// Flush invalidates every line, counting dirty lines as write-backs.
func (c *Cache) Flush() {
	for i := range c.meta {
		if c.meta[i]&(flagValid|flagDirty) == flagValid|flagDirty {
			c.stats.WriteBacks++
		}
		c.meta[i] = 0
		c.tags[i] = invalidTag
	}
	for i := range c.used {
		c.used[i] = 0
	}
	for i := range c.filled {
		c.filled[i] = 0
	}
}
