// Package cache implements a set-associative cache model with the
// structural knobs the paper exercises: size, associativity, block
// size, LRU/random/FIFO replacement, write-back or write-through
// handling, write-allocate or no-write-allocate, and set sampling for
// fast secondary-cache hit-rate estimation (Kessler, Hill & Wood's
// technique, cited as [11] in the paper).
//
// The model is purely functional with respect to data: it tracks tags,
// valid and dirty bits but not contents, which is all a hit-rate and
// bandwidth study needs.
package cache

import (
	"fmt"
	"math/rand"
)

// Replacement selects the victim way on a miss in a full set.
type Replacement uint8

// Replacement policies.
const (
	// LRU evicts the least recently used way.
	LRU Replacement = iota
	// Random evicts a uniformly random way (the paper's on-chip caches
	// use random replacement).
	Random
	// FIFO evicts the oldest-filled way regardless of use.
	FIFO
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case Random:
		return "random"
	case FIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// WritePolicy selects how stores that hit are propagated.
type WritePolicy uint8

// Write policies.
const (
	// WriteBack marks the block dirty and writes it to memory only on
	// eviction (the paper's data cache policy).
	WriteBack WritePolicy = iota
	// WriteThrough sends every store to memory immediately.
	WriteThrough
)

// String returns the policy name.
func (w WritePolicy) String() string {
	if w == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// AllocPolicy selects whether a store miss fills the cache.
type AllocPolicy uint8

// Allocation policies.
const (
	// WriteAllocate fills the block on a store miss (the paper's data
	// cache policy).
	WriteAllocate AllocPolicy = iota
	// NoWriteAllocate sends the store to memory without filling.
	NoWriteAllocate
)

// String returns the policy name.
func (a AllocPolicy) String() string {
	if a == WriteAllocate {
		return "write-allocate"
	}
	return "no-write-allocate"
}

// Config describes a cache instance.
type Config struct {
	// Name labels the cache in stats output (e.g. "L1D").
	Name string
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes uint
	// Assoc is the number of ways per set. Must be a power of two and
	// divide SizeBytes/BlockBytes.
	Assoc uint
	// BlockBytes is the line size. Must be a power of two.
	BlockBytes uint
	// Replacement is the victim-selection policy.
	Replacement Replacement
	// Write is the store propagation policy.
	Write WritePolicy
	// Alloc is the store-miss fill policy.
	Alloc AllocPolicy
	// SampleEvery enables set sampling when > 1: only sets whose index
	// is divisible by SampleEvery are simulated; accesses to other sets
	// are ignored and reported as unsampled. Hit rates from the sampled
	// sets estimate the full cache's (the paper uses this for its
	// multi-megabyte secondary caches). 0 or 1 simulates every set.
	SampleEvery uint
	// Seed drives the Random replacement policy. Ignored otherwise.
	Seed int64
}

// line is one way of one set.
type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	lastUse  uint64 // LRU timestamp
	filledAt uint64 // FIFO timestamp
}

// Stats accumulates the observable behaviour of a cache. For a sampled
// cache the counts cover only the sampled sets.
type Stats struct {
	// Accesses is the number of sampled references presented.
	Accesses uint64
	// Hits is the number of sampled references that hit.
	Hits uint64
	// Misses is Accesses - Hits.
	Misses uint64
	// ReadMisses and WriteMisses split Misses by reference type.
	ReadMisses  uint64
	WriteMisses uint64
	// WriteBacks counts dirty evictions (write-back caches) or
	// propagated stores (write-through caches).
	WriteBacks uint64
	// Fills counts blocks brought in from the next level by demand
	// accesses.
	Fills uint64
	// PrefetchFills counts blocks installed by Prefetch.
	PrefetchFills uint64
	// Unsampled counts references skipped by set sampling.
	Unsampled uint64
}

// HitRate returns Hits/Accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result reports what a single access did.
type Result struct {
	// Sampled is false when set sampling skipped the reference; every
	// other field is then meaningless.
	Sampled bool
	// Hit reports whether the reference hit.
	Hit bool
	// Filled reports whether a block was brought in.
	Filled bool
	// Evicted reports whether a valid line was displaced by the fill
	// (clean or dirty — victim caches want both).
	Evicted bool
	// EvictedDirty reports whether the displaced line was dirty.
	EvictedDirty bool
	// WroteBack reports whether a dirty victim was written to memory
	// (always equal to Evicted && EvictedDirty for write-back caches).
	WroteBack bool
	// VictimBlock is the displaced line's block address when Evicted.
	VictimBlock uint64
}

// Cache is a set-associative cache. It is not safe for concurrent use.
type Cache struct {
	cfg        Config
	sets       [][]line
	numSets    uint
	blockShift uint
	setMask    uint64
	clock      uint64
	rng        *rand.Rand
	stats      Stats
}

// New validates cfg and builds the cache.
func New(cfg Config) (*Cache, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / cfg.BlockBytes / cfg.Assoc
	c := &Cache{
		cfg:        cfg,
		numSets:    numSets,
		blockShift: log2(cfg.BlockBytes),
		setMask:    uint64(numSets - 1),
		sets:       make([][]line, numSets),
	}
	lines := make([]line, numSets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i], lines = lines[:cfg.Assoc:cfg.Assoc], lines[cfg.Assoc:]
	}
	if cfg.Replacement == Random {
		c.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return c, nil
}

func validate(cfg Config) error {
	pow2 := func(v uint) bool { return v != 0 && v&(v-1) == 0 }
	switch {
	case !pow2(cfg.BlockBytes):
		return fmt.Errorf("cache %s: block size %d not a power of two", cfg.Name, cfg.BlockBytes)
	case !pow2(cfg.SizeBytes):
		return fmt.Errorf("cache %s: size %d not a power of two", cfg.Name, cfg.SizeBytes)
	case !pow2(cfg.Assoc):
		return fmt.Errorf("cache %s: associativity %d not a power of two", cfg.Name, cfg.Assoc)
	case cfg.SizeBytes < cfg.BlockBytes*cfg.Assoc:
		return fmt.Errorf("cache %s: size %d too small for %d ways of %d-byte blocks",
			cfg.Name, cfg.SizeBytes, cfg.Assoc, cfg.BlockBytes)
	}
	return nil
}

func log2(v uint) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() uint { return c.numSets }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// index splits a byte address into set index and tag.
func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.blockShift
	return blk & c.setMask, blk >> log2size(c.numSets)
}

func log2size(v uint) uint { return log2(v) }

// sampled reports whether set sampling includes this set.
func (c *Cache) sampled(set uint64) bool {
	return c.cfg.SampleEvery <= 1 || set%uint64(c.cfg.SampleEvery) == 0
}

// Read presents a load at addr.
func (c *Cache) Read(addr uint64) Result { return c.access(addr, false) }

// Write presents a store at addr.
func (c *Cache) Write(addr uint64) Result { return c.access(addr, true) }

// access is the common hit/miss/fill path.
func (c *Cache) access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		c.stats.Unsampled++
		return Result{}
	}
	c.clock++
	c.stats.Accesses++
	ways := c.sets[set]

	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == tag {
			c.stats.Hits++
			w.lastUse = c.clock
			if write {
				if c.cfg.Write == WriteBack {
					w.dirty = true
				} else {
					c.stats.WriteBacks++
				}
			}
			return Result{Sampled: true, Hit: true}
		}
	}

	// Miss.
	c.stats.Misses++
	if write {
		c.stats.WriteMisses++
	} else {
		c.stats.ReadMisses++
	}

	if write && c.cfg.Alloc == NoWriteAllocate {
		c.stats.WriteBacks++
		return Result{Sampled: true}
	}

	res := Result{Sampled: true, Filled: true}
	victim := c.pickVictim(ways)
	w := &ways[victim]
	if w.valid {
		res.Evicted = true
		res.VictimBlock = c.victimBlock(set, w.tag)
		if w.dirty {
			res.EvictedDirty = true
			res.WroteBack = true
			c.stats.WriteBacks++
		}
	}
	w.tag = tag
	w.valid = true
	w.dirty = write && c.cfg.Write == WriteBack
	if write && c.cfg.Write == WriteThrough {
		c.stats.WriteBacks++
	}
	w.lastUse = c.clock
	w.filledAt = c.clock
	c.stats.Fills++
	return res
}

// victimBlock reconstructs the block address of an evicted line.
func (c *Cache) victimBlock(set, tag uint64) uint64 {
	return tag<<log2size(c.numSets) | set
}

// pickVictim chooses the way to evict, preferring invalid ways.
func (c *Cache) pickVictim(ways []line) int {
	for i := range ways {
		if !ways[i].valid {
			return i
		}
	}
	switch c.cfg.Replacement {
	case Random:
		return c.rng.Intn(len(ways))
	case FIFO:
		best, bestAt := 0, ways[0].filledAt
		for i := 1; i < len(ways); i++ {
			if ways[i].filledAt < bestAt {
				best, bestAt = i, ways[i].filledAt
			}
		}
		return best
	default: // LRU
		best, bestAt := 0, ways[0].lastUse
		for i := 1; i < len(ways); i++ {
			if ways[i].lastUse < bestAt {
				best, bestAt = i, ways[i].lastUse
			}
		}
		return best
	}
}

// Prefetch installs the block holding addr without counting a demand
// access: the side door used by the on-chip prefetcher baselines
// (internal/prefetch). If the block is already resident nothing
// happens and Filled is false; otherwise the fill and any eviction are
// handled exactly as for a demand miss (the victim's write-back is
// reported so the caller can account the traffic). Replacement state
// is updated so prefetched blocks age like fetched ones.
func (c *Cache) Prefetch(addr uint64) Result {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return Result{}
	}
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return Result{Sampled: true, Hit: true}
		}
	}
	c.clock++
	res := Result{Sampled: true, Filled: true}
	victim := c.pickVictim(ways)
	w := &ways[victim]
	if w.valid {
		res.Evicted = true
		res.VictimBlock = c.victimBlock(set, w.tag)
		if w.dirty {
			res.EvictedDirty = true
			res.WroteBack = true
			c.stats.WriteBacks++
		}
	}
	*w = line{tag: tag, valid: true, lastUse: c.clock, filledAt: c.clock}
	c.stats.PrefetchFills++
	return res
}

// SetDirty marks the resident block holding addr dirty, reporting
// whether it was found. Victim-cache integration uses this to restore
// the dirty state of a line swapped back from the victim buffer.
func (c *Cache) SetDirty(addr uint64) bool {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return false
	}
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.dirty = true
			return true
		}
	}
	return false
}

// Contains reports whether the block holding addr is resident. Sampled
// caches report false for unsampled sets.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return false
	}
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes the block holding addr if resident, returning
// whether it was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	if !c.sampled(set) {
		return false, false
	}
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			present, dirty = true, w.dirty
			w.valid = false
			w.dirty = false
			return present, dirty
		}
	}
	return false, false
}

// Flush invalidates every line, counting dirty lines as write-backs.
func (c *Cache) Flush() {
	for s := range c.sets {
		for i := range c.sets[s] {
			w := &c.sets[s][i]
			if w.valid && w.dirty {
				c.stats.WriteBacks++
			}
			*w = line{}
		}
	}
}
