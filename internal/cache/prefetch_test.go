package cache

import "testing"

func TestPrefetchFillsWithoutDemandStats(t *testing.T) {
	c := small(t)
	res := c.Prefetch(0x1000)
	if !res.Filled || res.Hit {
		t.Fatalf("cold prefetch result = %+v, want a fill", res)
	}
	s := c.Stats()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("prefetch polluted demand stats: %+v", s)
	}
	if s.PrefetchFills != 1 {
		t.Errorf("PrefetchFills = %d, want 1", s.PrefetchFills)
	}
	if !c.Contains(0x1000) {
		t.Error("prefetched block not resident")
	}
	if r := c.Read(0x1000); !r.Hit {
		t.Error("demand access after prefetch should hit")
	}
}

func TestPrefetchResidentNoop(t *testing.T) {
	c := small(t)
	c.Read(0x1000)
	res := c.Prefetch(0x1000)
	if res.Filled || !res.Hit {
		t.Errorf("prefetch of resident block = %+v, want hit/no-fill", res)
	}
	if got := c.Stats().PrefetchFills; got != 0 {
		t.Errorf("PrefetchFills = %d, want 0", got)
	}
}

func TestPrefetchEvictsAndReportsWriteBack(t *testing.T) {
	c := small(t)          // 4-set direct-mapped, 256 B
	c.Write(0)             // dirty block 0 in set 0
	res := c.Prefetch(256) // same set
	if !res.Evicted || !res.WroteBack || res.VictimBlock != 0 {
		t.Errorf("prefetch eviction = %+v, want dirty victim block 0", res)
	}
	if got := c.Stats().WriteBacks; got != 1 {
		t.Errorf("WriteBacks = %d, want 1", got)
	}
}

func TestPrefetchRespectsSetSampling(t *testing.T) {
	c, err := New(Config{SizeBytes: 16 * 64, Assoc: 1, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate, SampleEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res := c.Prefetch(64); res.Sampled { // set 1: unsampled
		t.Error("prefetch into an unsampled set should be skipped")
	}
	if res := c.Prefetch(0); !res.Sampled || !res.Filled {
		t.Error("prefetch into a sampled set should fill")
	}
}

func TestPrefetchedBlockAges(t *testing.T) {
	// A prefetched block participates in LRU like any other line.
	c, err := New(Config{SizeBytes: 2 * 64, Assoc: 2, BlockBytes: 64,
		Replacement: LRU, Write: WriteBack, Alloc: WriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	c.Prefetch(0) // oldest
	c.Read(64)    // newer
	c.Read(128)   // evicts the prefetched 0
	if c.Contains(0) {
		t.Error("stale prefetched block should be the LRU victim")
	}
}

func TestSetDirty(t *testing.T) {
	c := small(t)
	if c.SetDirty(0x1000) {
		t.Error("SetDirty on absent block should report false")
	}
	c.Read(0x1000)
	if !c.SetDirty(0x1000) {
		t.Fatal("SetDirty on resident block should succeed")
	}
	// Evicting it must now write back.
	res := c.Read(0x1000 + 4096)
	if !res.WroteBack {
		t.Error("block marked dirty via SetDirty did not write back")
	}
}
