package timing

import (
	"testing"

	"streamsim/internal/cache"
	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/stream"
)

// smallCfg is a deterministic 4 KB direct-mapped system.
func smallCfg(streams int) core.Config {
	cfg := core.DefaultConfig()
	cfg.L1I = cache.Config{Name: "L1I", SizeBytes: 4 << 10, Assoc: 1, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate}
	cfg.L1D = cache.Config{Name: "L1D", SizeBytes: 4 << 10, Assoc: 1, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate}
	cfg.Streams = stream.Config{Streams: streams, Depth: 2}
	cfg.UnitFilterEntries = 0
	cfg.Stride = core.NoStrideDetection
	return cfg
}

func TestLatencyValidation(t *testing.T) {
	bad := DefaultLatencies()
	bad.L1Hit = 0
	if _, err := New(smallCfg(2), bad); err == nil {
		t.Error("zero L1 latency should be rejected")
	}
	bad = DefaultLatencies()
	bad.Memory = 1
	bad.StreamHit = 10
	if _, err := New(smallCfg(2), bad); err == nil {
		t.Error("memory faster than stream buffer should be rejected")
	}
}

func TestPureComputeCPI(t *testing.T) {
	m, err := New(smallCfg(0), DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	m.AddInstructions(1000)
	if cpi := m.Stats().CPI(); cpi != 1.0 {
		t.Errorf("compute-only CPI = %v, want 1.0", cpi)
	}
}

func TestL1HitCost(t *testing.T) {
	lat := DefaultLatencies()
	m, err := New(smallCfg(0), lat)
	if err != nil {
		t.Fatal(err)
	}
	a := mem.Access{Addr: 1 << 20, Kind: mem.Read}
	m.Access(a) // cold miss: memory
	before := m.Stats().Cycles
	m.Access(a) // hit
	if got := m.Stats().Cycles - before; got != lat.L1Hit {
		t.Errorf("L1 hit cost %d cycles, want %d", got, lat.L1Hit)
	}
}

func TestMemoryMissCost(t *testing.T) {
	lat := DefaultLatencies()
	m, err := New(smallCfg(0), lat)
	if err != nil {
		t.Fatal(err)
	}
	m.Access(mem.Access{Addr: 1 << 20, Kind: mem.Read})
	if got := m.Stats().Cycles; got != lat.Memory {
		t.Errorf("cold miss cost %d cycles, want %d", got, lat.Memory)
	}
}

func TestStreamHitCheaperThanMemory(t *testing.T) {
	lat := DefaultLatencies()
	lat.BusBlock = 0 // isolate latency from bandwidth
	run := func(streams int) Stats {
		m, err := New(smallCfg(streams), lat)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			m.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64), Kind: mem.Read})
			m.AddInstructions(10)
		}
		return m.Stats()
	}
	bare := run(0)
	with := run(2)
	if with.Cycles >= bare.Cycles {
		t.Errorf("streams should cut execution time: %d vs %d cycles", with.Cycles, bare.Cycles)
	}
	// Expected improvement: ~every miss (1/block... every access here
	// is an L1 miss on a fresh block) served at StreamHit instead of
	// Memory.
	if with.CPI() > bare.CPI()*0.5 {
		t.Errorf("speedup too small: CPI %v vs %v", with.CPI(), bare.CPI())
	}
}

func TestBusContentionChargesDemandFetches(t *testing.T) {
	lat := DefaultLatencies()
	lat.BusBlock = 100 // absurd bus: contention must dominate
	m, err := New(smallCfg(2), lat)
	if err != nil {
		t.Fatal(err)
	}
	// Isolated misses: each allocates a stream (no filter), issuing 2
	// useless prefetches that clog the bus before the next miss.
	for i := 0; i < 100; i++ {
		m.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64*37), Kind: mem.Read})
	}
	if m.Stats().BusWaitCycles == 0 {
		t.Error("prefetch traffic on a slow bus must delay demand fetches")
	}
}

func TestNoBusModelNoWait(t *testing.T) {
	lat := DefaultLatencies()
	lat.BusBlock = 0
	m, err := New(smallCfg(2), lat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64*37), Kind: mem.Read})
	}
	if m.Stats().BusWaitCycles != 0 {
		t.Error("BusBlock=0 must disable contention")
	}
}

func TestPendingPenalty(t *testing.T) {
	lat := DefaultLatencies()
	lat.BusBlock = 0
	cfg := smallCfg(1)
	cfg.Streams.Latency = 1000 // prefetches never ready in this test
	m, err := New(cfg, lat)
	if err != nil {
		t.Fatal(err)
	}
	m.Access(mem.Access{Addr: 1 << 20, Kind: mem.Read}) // miss, allocates
	before := m.Stats().Cycles
	m.Access(mem.Access{Addr: 1<<20 + 64, Kind: mem.Read}) // pending stream hit
	got := m.Stats().Cycles - before
	want := lat.StreamHit + lat.PendingPenalty
	if got != want {
		t.Errorf("pending stream hit cost %d, want %d", got, want)
	}
}

func TestStatsBreakdownConsistent(t *testing.T) {
	m, err := New(smallCfg(2), DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		m.Access(mem.Access{Addr: mem.Addr(1<<20 + i*64), Kind: mem.Read})
		m.AddInstructions(3)
	}
	s := m.Stats()
	if s.Cycles != s.InstructionCycles+s.StallCycles {
		t.Errorf("cycle breakdown broken: %d != %d + %d",
			s.Cycles, s.InstructionCycles, s.StallCycles)
	}
	if s.CPI() <= 1 {
		t.Errorf("CPI = %v, must exceed 1 with memory stalls", s.CPI())
	}
}

func TestSystemExposed(t *testing.T) {
	m, err := New(smallCfg(2), DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	m.Access(mem.Access{Addr: 1 << 20, Kind: mem.Read})
	if m.System() == nil {
		t.Fatal("System() should expose the functional simulator")
	}
	if got := m.Results().L1D.Accesses; got != 1 {
		t.Errorf("functional results lost: accesses = %d", got)
	}
}

func TestEmptyStatsCPI(t *testing.T) {
	var s Stats
	if s.CPI() != 0 {
		t.Error("CPI with no instructions should be 0")
	}
}

func TestNewWithL2Validation(t *testing.T) {
	bad := cache.Config{SizeBytes: 100, Assoc: 1, BlockBytes: 64}
	if _, err := NewWithL2(smallCfg(0), bad, DefaultLatencies()); err == nil {
		t.Error("invalid L2 config should be rejected")
	}
}

func TestL2InterceptsFastPath(t *testing.T) {
	lat := DefaultLatencies()
	lat.BusBlock = 0
	l2cfg := cache.Config{
		Name: "L2", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
	}
	m, err := NewWithL2(smallCfg(0), l2cfg, lat)
	if err != nil {
		t.Fatal(err)
	}
	if m.L2() == nil {
		t.Fatal("L2 accessor should expose the cache")
	}
	a, b := mem.Addr(1<<20), mem.Addr(1<<20+4096) // conflict in the 4 KB L1
	m.Access(mem.Access{Addr: a, Kind: mem.Read}) // memory (L2 cold)
	m.Access(mem.Access{Addr: b, Kind: mem.Read}) // evicts a from L1; L2 cold
	before := m.Stats().Cycles
	m.Access(mem.Access{Addr: a, Kind: mem.Read}) // L1 conflict miss -> L2 hit
	if got := m.Stats().Cycles - before; got != lat.L2Hit {
		t.Errorf("L2 hit cost %d cycles, want %d", got, lat.L2Hit)
	}
	if m.L2().Stats().Hits != 1 {
		t.Errorf("L2 hits = %d, want 1", m.L2().Stats().Hits)
	}
}

func TestL2MissStillPaysMemory(t *testing.T) {
	lat := DefaultLatencies()
	lat.BusBlock = 0
	l2cfg := cache.Config{
		Name: "L2", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
	}
	m, err := NewWithL2(smallCfg(0), l2cfg, lat)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats().Cycles
	m.Access(mem.Access{Addr: 1 << 20, Kind: mem.Read})
	if got := m.Stats().Cycles - before; got != lat.Memory {
		t.Errorf("L2 cold miss cost %d cycles, want %d (memory)", got, lat.Memory)
	}
}

func TestL2SpeedsUpRewalk(t *testing.T) {
	lat := DefaultLatencies()
	lat.BusBlock = 0
	l2cfg := cache.Config{
		Name: "L2", SizeBytes: 1 << 20, Assoc: 4, BlockBytes: 64,
		Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
	}
	runPass := func(withL2 bool) uint64 {
		var m *Model
		var err error
		if withL2 {
			m, err = NewWithL2(smallCfg(0), l2cfg, lat)
		} else {
			m, err = New(smallCfg(0), lat)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Two passes over 512 KB: the second fits the L2 but not the L1.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 8192; i++ {
				m.Access(mem.Access{Addr: mem.Addr(1<<22 + i*64), Kind: mem.Read})
			}
		}
		return m.Stats().Cycles
	}
	if with, without := runPass(true), runPass(false); with >= without {
		t.Errorf("L2 should cut re-walk time: %d vs %d cycles", with, without)
	}
}
