// Package timing layers a simple in-order execution-time model over
// the functional memory system, producing the effective-CPI numbers
// the paper deliberately leaves out (its Section 4.2 explains why hit
// rate is its metric; this package is the extension a downstream user
// of the library asks for first).
//
// The model is deliberately austere, matching the paper's target
// systems: a single-issue in-order processor that blocks on every
// memory reference, a fixed main-memory latency, and a memory bus
// whose occupancy (demand fetches, prefetches and write-backs all
// take BusBlock cycles per block) delays demand fetches when
// prefetching has saturated it. That last term is how the paper's
// "extra bandwidth" turns into lost time on bandwidth-limited
// machines.
package timing

import (
	"fmt"

	"streamsim/internal/cache"
	"streamsim/internal/core"
	"streamsim/internal/mem"
)

// Latencies are the cycle costs of each service level.
type Latencies struct {
	// L1Hit is the on-chip hit cost (pipelined: usually 1).
	L1Hit uint64
	// VictimHit is the victim-buffer swap cost.
	VictimHit uint64
	// StreamHit is the cost of pulling a ready block from a stream
	// buffer into the L1 (no RAM lookup: the paper argues this can be
	// faster than a secondary cache hit).
	StreamHit uint64
	// PendingPenalty is added to StreamHit when the prefetch had not
	// yet returned (the Section 8 caveat: a correct but late prefetch
	// performs like a partial miss).
	PendingPenalty uint64
	// L2Hit is the secondary-cache hit cost, used only by models built
	// with NewWithL2 (the conventional system streams are compared
	// against).
	L2Hit uint64
	// Memory is the full fast-path latency of main memory.
	Memory uint64
	// BusBlock is the bus occupancy per block transferred; 0 disables
	// bandwidth contention.
	BusBlock uint64
}

// DefaultLatencies matches a circa-1994 workstation-class part: 50ns
// processor-visible DRAM latency at ~100 MHz, a fast stream buffer,
// and a bus that moves a 64-byte block in 8 cycles.
func DefaultLatencies() Latencies {
	return Latencies{
		L1Hit:          1,
		VictimHit:      2,
		StreamHit:      4,
		PendingPenalty: 20,
		L2Hit:          10,
		Memory:         50,
		BusBlock:       8,
	}
}

// validate rejects degenerate latency sets.
func (l Latencies) validate() error {
	if l.L1Hit == 0 {
		return fmt.Errorf("timing: L1 hit latency must be at least 1 cycle")
	}
	if l.Memory < l.StreamHit {
		return fmt.Errorf("timing: memory latency %d below stream hit latency %d", l.Memory, l.StreamHit)
	}
	return nil
}

// Stats is the timing ledger.
type Stats struct {
	// Cycles is total execution time.
	Cycles uint64
	// InstructionCycles is the compute component (1 cycle per
	// instruction).
	InstructionCycles uint64
	// StallCycles is the memory component.
	StallCycles uint64
	// BusWaitCycles is the subset of StallCycles spent waiting for the
	// bus to drain prefetch/write-back traffic.
	BusWaitCycles uint64
	// Instructions is the retired count.
	Instructions uint64
}

// CPI returns cycles per instruction, or 0 before any instructions.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Model drives a core.System and charges cycles. It satisfies
// workload.Sink, so a benchmark can run against it directly.
type Model struct {
	sys *core.System
	l2  *cache.Cache // optional: the conventional-system comparison
	lat Latencies

	now       uint64 // current cycle
	busFreeAt uint64 // cycle at which the memory bus drains
	stats     Stats
}

// New builds a timing model over a fresh memory system.
func New(cfg core.Config, lat Latencies) (*Model, error) {
	if err := lat.validate(); err != nil {
		return nil, err
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Model{sys: sys, lat: lat}, nil
}

// NewWithL2 builds a timing model for the conventional system the
// paper replaces: cfg (normally with streams disabled) backed by a
// secondary cache. L1 misses that the functional system would send to
// memory probe the L2 first, at lat.L2Hit on a hit.
func NewWithL2(cfg core.Config, l2cfg cache.Config, lat Latencies) (*Model, error) {
	m, err := New(cfg, lat)
	if err != nil {
		return nil, err
	}
	if m.l2, err = cache.New(l2cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// L2 exposes the secondary cache's statistics (nil without one).
func (m *Model) L2() *cache.Cache { return m.l2 }

// System returns the underlying functional simulator (for its
// Results).
func (m *Model) System() *core.System { return m.sys }

// Stats returns a copy of the timing ledger.
func (m *Model) Stats() Stats {
	s := m.stats
	s.Cycles = m.now
	return s
}

// AddInstructions retires n instructions at one cycle each.
func (m *Model) AddInstructions(n uint64) {
	m.sys.AddInstructions(n)
	m.now += n
	m.stats.InstructionCycles += n
	m.stats.Instructions += n
}

// AccessBatch runs a batch of references through Access in order,
// completing the workload.BatchSink surface so batched producers
// (trace replay, the workload generator) amortize interface dispatch.
func (m *Model) AccessBatch(accs []mem.Access) {
	for i := range accs {
		m.Access(accs[i])
	}
}

// Access runs one reference through the memory system and charges its
// latency.
func (m *Model) Access(a mem.Access) {
	out := m.sys.AccessOutcome(a)

	// Bus occupancy: every block moved (prefetches issued on this
	// access, plus a write-back, plus a demand fetch) holds the bus.
	busy := out.Prefetches * m.lat.BusBlock
	if out.WroteBack {
		busy += m.lat.BusBlock
	}

	var stall uint64
	switch out.Level {
	case core.LevelL1, core.LevelUnsampled:
		stall = m.lat.L1Hit
	case core.LevelVictim:
		stall = m.lat.VictimHit
	case core.LevelStream:
		stall = m.lat.StreamHit
		if out.Pending {
			stall += m.lat.PendingPenalty
		}
	case core.LevelMemory, core.LevelNone:
		// A secondary cache, when present, intercepts the fast path.
		if m.l2 != nil && out.Level == core.LevelMemory {
			var res cache.Result
			if a.Kind == mem.Write {
				res = m.l2.Write(uint64(a.Addr))
			} else {
				res = m.l2.Read(uint64(a.Addr))
			}
			if res.Hit {
				stall += m.lat.L2Hit
				break
			}
			if res.WroteBack {
				busy += m.lat.BusBlock
			}
		}
		// The demand fetch needs the bus: wait for queued prefetch and
		// write-back traffic first.
		if m.busFreeAt > m.now {
			wait := m.busFreeAt - m.now
			stall += wait
			m.stats.BusWaitCycles += wait
			m.now += wait
		}
		stall += m.lat.Memory
		busy += m.lat.BusBlock
	}

	// Queue this access's transfers behind whatever the bus is doing.
	if m.busFreeAt < m.now {
		m.busFreeAt = m.now
	}
	m.busFreeAt += busy

	m.now += stall
	m.stats.StallCycles += stall
}

// Results finalizes and returns the functional results.
func (m *Model) Results() core.Results { return m.sys.Results() }
