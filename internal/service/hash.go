// Canonical job keys. The memo store is keyed by a hash of the
// default-filled request, so "table1 at scale 1" and "table1 with
// scale omitted" — or a sweep with and without an explicit
// metric:"hit" — land on the same entry, the service-level analogue
// of the per-process traceCache key (name, size, scale).
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"streamsim/internal/service/api"
)

// normalize returns the request with every optional field filled with
// its default, the form that is both hashed and echoed back to
// clients.
func normalize(req api.SubmitRequest) api.SubmitRequest {
	if req.Experiment != "" && req.Scale == 0 {
		req.Scale = 1.0
	}
	if req.Sweep != nil {
		s := req.Sweep.WithDefaults()
		req.Sweep = &s
	}
	if req.Optimize != nil {
		o := req.Optimize.WithDefaults()
		req.Optimize = &o
	}
	return req
}

// canonicalKey hashes a normalized request. encoding/json marshals
// struct fields in declaration order, so equal requests produce equal
// bytes and therefore equal keys.
func canonicalKey(req api.SubmitRequest) (string, error) {
	b, err := json.Marshal(normalize(req))
	if err != nil {
		return "", fmt.Errorf("service: hashing request: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}
