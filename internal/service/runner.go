// The default job runner: maps a submitted request onto the in-process
// harness — experiments.Lookup(...).Run for paper artefacts,
// sweeprun.Run for parameter sweeps — so service results are computed
// by exactly the code paths the CLI uses.
package service

import (
	"context"
	"errors"
	"fmt"

	"streamsim/internal/experiments"
	"streamsim/internal/search"
	"streamsim/internal/service/api"
	"streamsim/internal/sweeprun"
	"streamsim/internal/tab"
)

// runRequest executes one normalized request under ctx. Job results
// must be byte-identical to the direct in-process run (the golden
// tests diff them), so this root must stay deterministic. Optimizer
// jobs normally route through Server.runJob's progress-streaming path
// instead, but a direct call computes the identical result table.
//
//simlint:deterministic
func runRequest(ctx context.Context, req api.SubmitRequest) (*tab.Table, error) {
	switch {
	case req.Experiment == "" && req.Sweep == nil && req.Optimize == nil:
		return nil, fmt.Errorf("service: request names no job (experiment, sweep or optimize)")
	case (req.Experiment != "" && req.Sweep != nil) || (req.Experiment != "" && req.Optimize != nil) ||
		(req.Sweep != nil && req.Optimize != nil):
		return nil, fmt.Errorf("service: request names more than one job kind")
	case req.Experiment != "":
		e, err := experiments.Lookup(req.Experiment)
		if err != nil {
			return nil, err
		}
		return e.Run(ctx, experiments.Options{Scale: req.Scale})
	case req.Sweep != nil:
		t, _, err := sweeprun.Run(ctx, *req.Sweep)
		return t, err
	default:
		res, err := search.Run(ctx, *req.Optimize)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	}
}

// validateRequest rejects malformed requests before they are queued,
// so submissions fail fast with 400 instead of producing failed jobs.
func validateRequest(req api.SubmitRequest) error {
	set := 0
	for _, on := range []bool{req.Experiment != "", req.Sweep != nil, req.Optimize != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("exactly one of experiment, sweep and optimize must be set, got %d", set)
	}
	switch {
	case req.Experiment != "":
		if _, err := experiments.Lookup(req.Experiment); err != nil {
			return fmt.Errorf("unknown experiment %q", req.Experiment)
		}
		if req.Scale <= 0 || req.Scale > 1 {
			return fmt.Errorf("scale must be in (0, 1], got %g", req.Scale)
		}
		return nil
	case req.Sweep != nil:
		return req.Sweep.Validate()
	default:
		return req.Optimize.Validate()
	}
}

// terminalFor classifies a job error: context cancellation becomes a
// cancelled job, anything else a failed one.
func terminalFor(s *Server, j *job, t *tab.Table, err error) {
	switch {
	case err == nil:
		s.store.markDone(j, t)
	case errors.Is(err, context.Canceled):
		s.store.markCancelled(j)
	default:
		s.store.markFailed(j, err)
	}
}
