// The default job runner: maps a submitted request onto the in-process
// harness — experiments.Lookup(...).Run for paper artefacts,
// sweeprun.Run for parameter sweeps — so service results are computed
// by exactly the code paths the CLI uses.
package service

import (
	"context"
	"errors"
	"fmt"

	"streamsim/internal/experiments"
	"streamsim/internal/service/api"
	"streamsim/internal/sweeprun"
	"streamsim/internal/tab"
)

// runRequest executes one normalized request under ctx. Job results
// must be byte-identical to the direct in-process run (the golden
// tests diff them), so this root must stay deterministic.
//
//simlint:deterministic
func runRequest(ctx context.Context, req api.SubmitRequest) (*tab.Table, error) {
	switch {
	case req.Experiment != "" && req.Sweep != nil:
		return nil, fmt.Errorf("service: request names both an experiment and a sweep")
	case req.Experiment != "":
		e, err := experiments.Lookup(req.Experiment)
		if err != nil {
			return nil, err
		}
		return e.Run(ctx, experiments.Options{Scale: req.Scale})
	case req.Sweep != nil:
		t, _, err := sweeprun.Run(ctx, *req.Sweep)
		return t, err
	default:
		return nil, fmt.Errorf("service: request names neither an experiment nor a sweep")
	}
}

// validateRequest rejects malformed requests before they are queued,
// so submissions fail fast with 400 instead of producing failed jobs.
func validateRequest(req api.SubmitRequest) error {
	switch {
	case req.Experiment != "" && req.Sweep != nil:
		return fmt.Errorf("exactly one of experiment and sweep must be set, got both")
	case req.Experiment != "":
		if _, err := experiments.Lookup(req.Experiment); err != nil {
			return fmt.Errorf("unknown experiment %q", req.Experiment)
		}
		if req.Scale <= 0 || req.Scale > 1 {
			return fmt.Errorf("scale must be in (0, 1], got %g", req.Scale)
		}
		return nil
	case req.Sweep != nil:
		return req.Sweep.Validate()
	default:
		return fmt.Errorf("exactly one of experiment and sweep must be set, got neither")
	}
}

// terminalFor classifies a job error: context cancellation becomes a
// cancelled job, anything else a failed one.
func terminalFor(s *Server, j *job, t *tab.Table, err error) {
	switch {
	case err == nil:
		s.store.markDone(j, t)
	case errors.Is(err, context.Canceled):
		s.store.markCancelled(j)
	default:
		s.store.markFailed(j, err)
	}
}
