// The worker pool: a bounded queue drained by a fixed set of worker
// goroutines. Submission is non-blocking — a full backlog is reported
// to the caller (the HTTP layer answers 503) instead of stalling the
// request handler — and Drain stops intake and waits for in-flight
// jobs, which is what makes SIGTERM graceful.
package service

import "sync"

// pool runs jobs on a fixed number of workers over a bounded queue.
type pool struct {
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// newPool starts workers goroutines draining a backlog-deep queue,
// calling run for each job.
func newPool(workers, backlog int, run func(*job)) *pool {
	p := &pool{queue: make(chan *job, backlog)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				run(j)
			}
		}()
	}
	return p
}

// submit enqueues a job; false means the backlog is full or the pool
// is draining.
func (p *pool) submit(j *job) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- j:
		return true
	default:
		return false
	}
}

// drain stops intake and blocks until every queued and running job
// has finished. Safe to call more than once.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
