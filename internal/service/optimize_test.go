package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamsim/internal/search"
	"streamsim/internal/service/api"
)

// optimizeSpec is a small real optimization whose grid exceeds the
// budget, so the pareto strategy streams several generations.
func optimizeSpec() search.Spec {
	return search.Spec{
		Workload: "mgrid",
		Scale:    0.05,
		Strategy: "pareto",
		Space: []search.Dim{
			{Param: "streams", Values: []int{1, 2, 4, 8}},
			{Param: "depth", Values: []int{1, 2}},
		},
		Budget: 6,
		Seed:   3,
	}
}

// postOptimize POSTs a spec to /v1/optimize and returns the response.
func postOptimize(t *testing.T, hs *httptest.Server, spec search.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+api.OptimizePath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// decodeLines reads every NDJSON line until EOF.
func decodeLines(t *testing.T, resp *http.Response) []api.JobStatus {
	t.Helper()
	var out []api.JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var st api.JobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, st)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no NDJSON lines")
	}
	return out
}

// TestOptimizeStreamsImprovingFront drives the real optimizer through
// POST /v1/optimize and checks the acceptance contract: NDJSON lines
// carry a monotonically improving Pareto front — every point of an
// earlier front is matched or dominated by a later one — and the
// terminal line is a done job whose table answers the winner. The
// search_* gauges must be live afterwards.
func TestOptimizeStreamsImprovingFront(t *testing.T) {
	svc := New(Config{Workers: 1})
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(svc.Abort)

	resp := postOptimize(t, hs, optimizeSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := decodeLines(t, resp)

	var fronts [][]search.Eval
	lastEvals := 0
	for _, st := range lines {
		if st.Progress == nil {
			continue
		}
		p := st.Progress
		if p.Evals < lastEvals {
			t.Errorf("evals regressed: %d after %d", p.Evals, lastEvals)
		}
		lastEvals = p.Evals
		if p.Evals > p.Budget {
			t.Errorf("evals %d exceed budget %d", p.Evals, p.Budget)
		}
		fronts = append(fronts, p.Front)
	}
	if len(fronts) < 2 {
		t.Fatalf("want several generation snapshots, got %d", len(fronts))
	}
	for g := 1; g < len(fronts); g++ {
		for _, old := range fronts[g-1] {
			matched := false
			for _, cur := range fronts[g] {
				if cur.Hit >= old.Hit && cur.Cost <= old.Cost {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("generation %d lost front point %+v", g, old)
			}
		}
	}

	last := lines[len(lines)-1]
	if last.State != api.StateDone {
		t.Fatalf("final state %s (error %q), want done", last.State, last.Error)
	}
	if last.Table == nil || !strings.Contains(last.Text, "winner:") {
		t.Errorf("done line lacks the result table: %+v", last)
	}

	mresp, err := hs.Client().Get(hs.URL + api.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if v, _ := metrics["search_evals_total"].(float64); v < 1 {
		t.Errorf("search_evals_total = %v, want >= 1", metrics["search_evals_total"])
	}
	if v, _ := metrics["search_front_size"].(float64); v < 1 {
		t.Errorf("search_front_size = %v, want >= 1", metrics["search_front_size"])
	}
}

// TestOptimizeCancelMidGeneration cancels a streaming optimizer job
// through DELETE /v1/jobs/{id} and expects the job context to abort
// the optimizer mid-generation and the stream to end on a cancelled
// status line.
func TestOptimizeCancelMidGeneration(t *testing.T) {
	sawCancel := make(chan struct{})
	cfg := Config{
		Workers: 1,
		RunOptimize: func(ctx context.Context, s search.Spec, onProgress func(search.Progress)) (*search.Result, error) {
			onProgress(search.Progress{Strategy: s.Strategy, Generation: 0, Evals: 1, Budget: s.Budget, FrontSize: 1})
			<-ctx.Done() // a generation in flight: only cancellation ends it
			close(sawCancel)
			return nil, ctx.Err()
		},
	}
	svc := New(cfg)
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(svc.Abort)

	resp := postOptimize(t, hs, optimizeSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var last api.JobStatus
	cancelled := false
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
		if last.Progress != nil && !cancelled {
			cancelled = true
			cl := &api.Client{Base: hs.URL, HTTP: hs.Client()}
			if _, err := cl.Cancel(context.Background(), last.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !cancelled {
		t.Fatal("never saw a progress line to cancel after")
	}
	if last.State != api.StateCancelled {
		t.Fatalf("final state %s, want cancelled", last.State)
	}
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("optimizer never observed the cancellation")
	}
}

// TestOptimizeMemoizedAndValidated pins the endpoint to the job
// store's contract: equal specs share one job (the optimizer runs
// once), and a malformed spec fails fast with 400.
func TestOptimizeMemoizedAndValidated(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{
		Workers: 1,
		RunOptimize: func(ctx context.Context, s search.Spec, onProgress func(search.Progress)) (*search.Result, error) {
			calls.Add(1)
			r := &search.Result{Spec: s.WithDefaults(), Evals: 1}
			return r, nil
		},
	}
	svc := New(cfg)
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(svc.Abort)

	first := decodeLines(t, postOptimize(t, hs, optimizeSpec()))
	if got := first[len(first)-1].State; got != api.StateDone {
		t.Fatalf("first run ended %s", got)
	}
	again := decodeLines(t, postOptimize(t, hs, optimizeSpec()))
	if got := again[len(again)-1].State; got != api.StateDone {
		t.Fatalf("second run ended %s", got)
	}
	if first[len(first)-1].ID != again[len(again)-1].ID {
		t.Errorf("equal specs produced distinct jobs %s and %s",
			first[len(first)-1].ID, again[len(again)-1].ID)
	}
	if calls.Load() != 1 {
		t.Errorf("optimizer ran %d times, want 1 (memoized)", calls.Load())
	}

	bad := optimizeSpec()
	bad.Space = nil
	resp := postOptimize(t, hs, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec got %d, want 400", resp.StatusCode)
	}
}
