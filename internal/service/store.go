// The job store: every submitted job, addressable by ID, plus the
// memo index from canonical request key to the job that computed (or
// is computing) it. All state transitions happen under one mutex;
// readers get snapshot copies, and each job carries a version counter
// and a done channel so the NDJSON stream can push transitions
// without polling the whole store.
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"streamsim/internal/search"
	"streamsim/internal/service/api"
	"streamsim/internal/tab"
)

// job is one unit of work plus its lifecycle bookkeeping.
type job struct {
	status  api.JobStatus
	ctx     context.Context // the run context a worker executes under
	cancel  func()          // cancels ctx
	done    chan struct{}   // closed on terminal state
	version uint64          // bumped on every mutation
	changed chan struct{}   // closed and replaced on every mutation
}

// store holds jobs and the memo index.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string          // submission order, for listing
	byKey map[string]string // canonical key -> job ID
	seq   int

	memoHits uint64
}

func newStore() *store {
	return &store{
		jobs:  make(map[string]*job),
		byKey: make(map[string]string),
	}
}

// now is the store's clock (overridable in tests if ever needed).
var now = time.Now

// submit registers a new job for the request, or returns the existing
// job that already computed (or is computing) the same canonical key.
// The boolean is true when the caller must enqueue the returned job.
func (s *store) submit(req api.SubmitRequest, key string, ctx context.Context, cancel func()) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byKey[key]; ok {
		j := s.jobs[id]
		// Done, queued and running jobs are all shareable; failed and
		// cancelled ones are not — resubmission retries them.
		if !j.status.State.Terminal() || j.status.State == api.StateDone {
			s.memoHits++
			return j, false
		}
	}
	s.seq++
	j := &job{
		status: api.JobStatus{
			ID:      fmt.Sprintf("job-%d", s.seq),
			Key:     key,
			State:   api.StateQueued,
			Request: req,
			Created: now(),
		},
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		changed: make(chan struct{}),
	}
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	s.byKey[key] = j.status.ID
	return j, true
}

// get returns the job by ID.
func (s *store) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns a snapshot of every job in submission order.
func (s *store) list() []api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	return out
}

// snapshot returns a copy of the job's status and its version.
func (s *store) snapshot(j *job) (api.JobStatus, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status, j.version
}

// watch returns the channel closed at the next mutation after version
// v, or nil if the job already moved past v (read the snapshot again).
func (s *store) watch(j *job, v uint64) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.version != v {
		return nil
	}
	return j.changed
}

// mutate applies fn under the lock and wakes watchers.
func (s *store) mutate(j *job, fn func(*api.JobStatus)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(&j.status)
	j.version++
	close(j.changed)
	j.changed = make(chan struct{})
}

// setProgress publishes an optimizer generation snapshot, waking
// streamers. Late callbacks racing a cancellation are dropped so a
// terminal status stays frozen.
func (s *store) setProgress(j *job, p *search.Progress) {
	s.mutate(j, func(st *api.JobStatus) {
		if st.State.Terminal() {
			return
		}
		st.Progress = p
	})
}

// markRunning moves a queued job to running; false if it was already
// cancelled (the worker then skips it).
func (s *store) markRunning(j *job) bool {
	ok := false
	s.mutate(j, func(st *api.JobStatus) {
		if st.State != api.StateQueued {
			return
		}
		t := now()
		st.State, st.Started, ok = api.StateRunning, &t, true
	})
	return ok
}

// finish moves a job to a terminal state and closes its done channel.
func (s *store) finish(j *job, fn func(*api.JobStatus)) {
	s.mutate(j, func(st *api.JobStatus) {
		if st.State.Terminal() {
			return
		}
		t := now()
		st.Finished = &t
		fn(st)
	})
	select {
	case <-j.done:
	default:
		close(j.done)
	}
}

// markDone records a successful result.
func (s *store) markDone(j *job, t *tab.Table) {
	s.finish(j, func(st *api.JobStatus) {
		st.State = api.StateDone
		st.Table, st.Text, st.CSV = t, t.Render(), t.CSV()
	})
}

// markFailed records an error.
func (s *store) markFailed(j *job, err error) {
	s.finish(j, func(st *api.JobStatus) {
		st.State, st.Error = api.StateFailed, err.Error()
	})
}

// markCancelled records a cancellation (queued or running).
func (s *store) markCancelled(j *job) {
	s.finish(j, func(st *api.JobStatus) {
		st.State = api.StateCancelled
	})
}

// stats summarizes job counts per state plus memo hits.
func (s *store) stats() (queued, running, done, failed, cancelled int, memoHits uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		switch j.status.State {
		case api.StateQueued:
			queued++
		case api.StateRunning:
			running++
		case api.StateDone:
			done++
		case api.StateFailed:
			failed++
		case api.StateCancelled:
			cancelled++
		}
	}
	return queued, running, done, failed, cancelled, s.memoHits
}
