package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamsim/internal/service/api"
	"streamsim/internal/sweeprun"
	"streamsim/internal/tab"
)

// sweepSpec is a small valid sweep used across tests.
var sweepSpec = sweeprun.Spec{
	Workload: "mgrid",
	Param:    "streams",
	Values:   []int{1, 2},
}

// fakeTable is a tiny deterministic result for injected runners.
func fakeTable(title string) *tab.Table {
	t := &tab.Table{Title: title, Columns: []string{"k", "v"}}
	t.AddRow("answer", "42")
	return t
}

// newTestServer starts a service with an injected runner behind
// httptest and returns the API client for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *api.Client) {
	t.Helper()
	svc := New(cfg)
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(svc.Abort)
	return svc, &api.Client{Base: hs.URL, HTTP: hs.Client()}
}

// instantRunner returns a runner that records calls and finishes
// immediately.
func instantRunner(calls *atomic.Int64) func(context.Context, api.SubmitRequest) (*tab.Table, error) {
	return func(_ context.Context, req api.SubmitRequest) (*tab.Table, error) {
		calls.Add(1)
		return fakeTable("run of " + req.Experiment), nil
	}
}

func TestSubmitStatusResult(t *testing.T) {
	var calls atomic.Int64
	_, cl := newTestServer(t, Config{Workers: 2, RunJob: instantRunner(&calls)})
	ctx := context.Background()

	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Key == "" {
		t.Fatalf("submit response missing id/key: %+v", st)
	}
	if st.Request.Scale != 1.0 {
		t.Errorf("request not normalized: scale = %g, want 1", st.Request.Scale)
	}
	st, err = cl.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("state = %s, want done (error %q)", st.State, st.Error)
	}
	want := fakeTable("run of table1")
	if st.Text != want.Render() || st.CSV != want.CSV() {
		t.Errorf("result text/CSV do not match the runner's table")
	}
	if st.Started == nil || st.Finished == nil {
		t.Errorf("timestamps missing: %+v", st)
	}
	got, err := cl.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != st.Text || got.State != api.StateDone {
		t.Errorf("Get disagrees with Wait")
	}
	if calls.Load() != 1 {
		t.Errorf("runner ran %d times, want 1", calls.Load())
	}
}

func TestSubmitValidation(t *testing.T) {
	var calls atomic.Int64
	_, cl := newTestServer(t, Config{Workers: 1, RunJob: instantRunner(&calls)})
	ctx := context.Background()
	bad := []api.SubmitRequest{
		{},                                         // neither
		{Experiment: "nosuch"},                     // unknown experiment
		{Experiment: "table1", Scale: -0.5},        // bad scale
		{Experiment: "table1", Scale: 2},           // bad scale
		{Sweep: &sweepSpec, Experiment: "fig3"},    // both
		{Sweep: &sweeprun.Spec{Workload: "mgrid"}}, // sweep missing param/values
	}
	for i, req := range bad {
		if _, err := cl.Submit(ctx, req); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, req)
		} else if !strings.Contains(err.Error(), "400") {
			t.Errorf("bad request %d: error %v, want 400", i, err)
		}
	}
	if calls.Load() != 0 {
		t.Errorf("runner ran for invalid requests")
	}
}

func TestUnknownJob(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1, RunJob: instantRunner(new(atomic.Int64))})
	if _, err := cl.Get(context.Background(), "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job: err = %v, want 404", err)
	}
}

func TestMemoization(t *testing.T) {
	var calls atomic.Int64
	_, cl := newTestServer(t, Config{Workers: 2, RunJob: instantRunner(&calls)})
	ctx := context.Background()

	st1, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1", Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st1.ID); err != nil {
		t.Fatal(err)
	}
	// Scale omitted normalizes to 1.0: same canonical key, memo hit.
	st2, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.ID != st1.ID || st2.State != api.StateDone {
		t.Errorf("resubmission not served from memo store: %+v", st2)
	}
	if st2.Text == "" {
		t.Errorf("memoized response missing result")
	}
	// A different scale is a different key and a fresh job.
	st3, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1", Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached || st3.ID == st1.ID {
		t.Errorf("different options wrongly memoized: %+v", st3)
	}
	if _, err := cl.Wait(ctx, st3.ID); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("runner ran %d times, want 2", calls.Load())
	}
}

func TestResubmitAfterFailureRetries(t *testing.T) {
	var calls atomic.Int64
	runner := func(context.Context, api.SubmitRequest) (*tab.Table, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("transient failure")
		}
		return fakeTable("ok"), nil
	}
	_, cl := newTestServer(t, Config{Workers: 1, RunJob: runner})
	ctx := context.Background()

	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateFailed || !strings.Contains(st.Error, "transient") {
		t.Fatalf("first run: state %s error %q", st.State, st.Error)
	}
	st2, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached || st2.ID == st.ID {
		t.Fatalf("failed job wrongly memoized: %+v", st2)
	}
	if st2, err = cl.Wait(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	if st2.State != api.StateDone {
		t.Errorf("retry: state %s, want done", st2.State)
	}
}

// blockingRunner blocks until release is closed (or ctx is done),
// signalling entry on started.
func blockingRunner(started chan<- string, release <-chan struct{}) func(context.Context, api.SubmitRequest) (*tab.Table, error) {
	return func(ctx context.Context, req api.SubmitRequest) (*tab.Table, error) {
		select {
		case started <- req.Experiment:
		default:
		}
		select {
		case <-release:
			return fakeTable("released " + req.Experiment), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	_, cl := newTestServer(t, Config{Workers: 1, RunJob: blockingRunner(started, release)})
	ctx := context.Background()

	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if st, err = cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateCancelled {
		t.Errorf("state = %s, want cancelled", st.State)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	_, cl := newTestServer(t, Config{Workers: 1, Backlog: 8, RunJob: blockingRunner(started, release)})
	ctx := context.Background()

	// First job occupies the only worker; the second stays queued.
	if _, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"}); err != nil {
		t.Fatal(err)
	}
	<-started
	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "fig3"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateQueued {
		t.Fatalf("second job state = %s, want queued", st.State)
	}
	if st, err = cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateCancelled {
		t.Errorf("cancelled queued job state = %s", st.State)
	}
}

func TestPoolSaturation(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	// No deferred close: Abort (test cleanup) unblocks the runner on
	// any early exit, and the test closes release itself below.
	_, cl := newTestServer(t, Config{Workers: 1, Backlog: 1, RunJob: blockingRunner(started, release)})
	ctx := context.Background()

	// Worker busy + backlog of one full = the third submission bounces.
	if _, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "fig3"}); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "fig5"})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("saturated pool: err = %v, want 503", err)
	}
	// The bounced request must be retryable once capacity frees up.
	close(release)
	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "fig5"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Errorf("retried job state = %s, want done", st.State)
	}
}

func TestGracefulDrain(t *testing.T) {
	var calls atomic.Int64
	slow := func(_ context.Context, req api.SubmitRequest) (*tab.Table, error) {
		time.Sleep(20 * time.Millisecond)
		calls.Add(1)
		return fakeTable(req.Experiment), nil
	}
	svc, cl := newTestServer(t, Config{Workers: 2, Backlog: 16, RunJob: slow})
	ctx := context.Background()

	ids := []string{}
	for _, id := range []string{"table1", "fig3", "fig5", "table2"} {
		st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: id})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	svc.Drain() // must wait for all four, not abandon queued ones

	for _, id := range ids {
		st, err := cl.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != api.StateDone {
			t.Errorf("after drain, job %s state = %s, want done", id, st.State)
		}
	}
	if calls.Load() != 4 {
		t.Errorf("runner ran %d jobs, want 4", calls.Load())
	}
	// Draining servers refuse new work and report unhealthy.
	if _, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table3"}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("submit while draining: err = %v, want 503", err)
	}
	if err := cl.Health(ctx); err == nil {
		t.Errorf("healthz should fail while draining")
	}
}

func TestStreamNDJSON(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc := New(Config{Workers: 1, RunJob: blockingRunner(started, release)})
	hs := httptest.NewServer(svc.Handler())
	defer hs.Close()
	defer svc.Abort()
	cl := &api.Client{Base: hs.URL, HTTP: hs.Client()}
	ctx := context.Background()

	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	resp, err := hs.Client().Get(hs.URL + api.JobsPath + "/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var states []api.JobState
	readLine := func() api.JobStatus {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early (err %v) after states %v", sc.Err(), states)
		}
		var line api.JobStatus
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		states = append(states, line.State)
		return line
	}
	if first := readLine(); first.State != api.StateRunning {
		t.Fatalf("first stream line state = %s, want running", first.State)
	}
	close(release)
	for {
		line := readLine()
		if line.State.Terminal() {
			if line.State != api.StateDone {
				t.Fatalf("terminal state = %s, want done", line.State)
			}
			if line.Text == "" {
				t.Errorf("terminal stream line missing result text")
			}
			break
		}
	}
	if sc.Scan() {
		t.Errorf("stream kept going after terminal line: %q", sc.Text())
	}
}

func TestListJobs(t *testing.T) {
	var calls atomic.Int64
	_, cl := newTestServer(t, Config{Workers: 2, RunJob: instantRunner(&calls)})
	ctx := context.Background()
	for _, id := range []string{"table1", "fig3"} {
		st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: id})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := cl.HTTP.Get(cl.Base + api.JobsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Request.Experiment != "table1" || list[1].Request.Experiment != "fig3" {
		t.Errorf("list = %+v, want table1 then fig3", list)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	var calls atomic.Int64
	_, cl := newTestServer(t, Config{Workers: 1, RunJob: instantRunner(&calls)})
	ctx := context.Background()
	st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"}); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.HTTP.Get(cl.Base + api.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"jobs_queued", "jobs_running", "jobs_done", "jobs_failed", "jobs_cancelled",
		"memo_hits", "workers", "trace_cache_hits", "refs_replayed_total",
		"refs_per_sec", "replay_fanout_width", "replay_window_shards", "uptime_seconds",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	var done, memo int
	if err := json.Unmarshal(m["jobs_done"], &done); err != nil || done != 1 {
		t.Errorf("jobs_done = %s, want 1", m["jobs_done"])
	}
	if err := json.Unmarshal(m["memo_hits"], &memo); err != nil || memo != 1 {
		t.Errorf("memo_hits = %s, want 1", m["memo_hits"])
	}
}

func TestConcurrentSubmitSameKey(t *testing.T) {
	var calls atomic.Int64
	started := make(chan string, 64)
	release := make(chan struct{})
	runner := func(ctx context.Context, req api.SubmitRequest) (*tab.Table, error) {
		calls.Add(1)
		return blockingRunner(started, release)(ctx, req)
	}
	_, cl := newTestServer(t, Config{Workers: 4, Backlog: 64, RunJob: runner})
	ctx := context.Background()

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: "table1"})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(release)
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		if id != ids[0] {
			t.Fatalf("concurrent identical submissions got different jobs: %v", ids)
		}
	}
	st, err := cl.Wait(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Errorf("state = %s, want done", st.State)
	}
	if calls.Load() != 1 {
		t.Errorf("runner ran %d times for one key, want 1", calls.Load())
	}
}

func TestCanonicalKeyNormalization(t *testing.T) {
	k1, err := canonicalKey(api.SubmitRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := canonicalKey(api.SubmitRequest{Experiment: "table1", Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("omitted and explicit default scale hash differently")
	}
	k3, err := canonicalKey(api.SubmitRequest{Experiment: "table1", Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Errorf("different scales hash identically")
	}
	sweepA := api.SubmitRequest{Sweep: &sweepSpec}
	filled := sweepSpec.WithDefaults()
	sweepB := api.SubmitRequest{Sweep: &filled}
	kA, _ := canonicalKey(sweepA)
	kB, _ := canonicalKey(sweepB)
	if kA != kB {
		t.Errorf("sweep with and without explicit defaults hash differently")
	}
	if kA == k1 {
		t.Errorf("sweep and experiment requests collide")
	}
}
