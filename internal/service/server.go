// Package service is the simulation-as-a-service subsystem behind
// cmd/simd: an HTTP JSON API that accepts experiment and sweep jobs,
// runs them on a bounded worker pool, memoizes results by canonical
// request hash, streams job progress as NDJSON and exposes
// expvar-backed metrics. The simulation itself is untouched — jobs
// execute the same experiments.Run / sweeprun.Run entry points as the
// CLI, under a cancellable context.
package service

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"streamsim/internal/core"
	"streamsim/internal/experiments"
	"streamsim/internal/search"
	"streamsim/internal/service/api"
	"streamsim/internal/tab"
)

// Config sizes and wires a Server.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS(0).
	Workers int
	// Backlog is the queue depth beyond running jobs; 0 means 256.
	Backlog int
	// RunJob executes one normalized request; nil means the in-process
	// harness (experiments / sweeprun). Tests inject slow or failing
	// runners here.
	RunJob func(ctx context.Context, req api.SubmitRequest) (*tab.Table, error)
	// RunOptimize executes one optimizer job, reporting each generation
	// through onProgress; nil means search.RunProgress. Tests inject
	// controllable optimizers here.
	RunOptimize func(ctx context.Context, s search.Spec, onProgress func(search.Progress)) (*search.Result, error)
}

// Server owns the job store, the worker pool and the HTTP handlers.
type Server struct {
	cfg      Config
	store    *store
	pool     *pool
	mux      *http.ServeMux
	metrics  *expvar.Map
	base     context.Context // parent of every job context
	abortAll context.CancelFunc
	start    time.Time
	draining atomic.Bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = 256
	}
	if cfg.RunJob == nil {
		cfg.RunJob = runRequest
	}
	if cfg.RunOptimize == nil {
		cfg.RunOptimize = search.RunProgress
	}
	s := &Server{
		cfg:   cfg,
		store: newStore(),
		mux:   http.NewServeMux(),
		start: now(),
	}
	s.base, s.abortAll = context.WithCancel(context.Background())
	s.pool = newPool(cfg.Workers, cfg.Backlog, s.runJob)
	s.initMetrics()
	s.routes()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting jobs and waits for queued and running ones to
// finish — the graceful half of SIGTERM shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.pool.drain()
}

// Abort cancels every job context and then drains, for when the
// graceful window has expired.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.abortAll()
	s.pool.drain()
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST "+api.JobsPath, s.handleSubmit)
	s.mux.HandleFunc("GET "+api.JobsPath, s.handleList)
	s.mux.HandleFunc("GET "+api.JobsPath+"/{id}", s.handleGet)
	s.mux.HandleFunc("GET "+api.JobsPath+"/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE "+api.JobsPath+"/{id}", s.handleCancel)
	s.mux.HandleFunc("POST "+api.OptimizePath, s.handleOptimize)
	s.mux.HandleFunc("GET "+api.HealthPath, s.handleHealth)
	s.mux.HandleFunc("GET "+api.MetricsPath, s.handleMetrics)
}

// initMetrics builds an unregistered expvar.Map (so multiple servers
// can coexist in one process, e.g. under httptest) whose members read
// live store and harness counters.
func (s *Server) initMetrics() {
	m := new(expvar.Map).Init()
	gauge := func(name string, f func() any) { m.Set(name, expvar.Func(f)) }
	gauge("jobs_queued", func() any { q, _, _, _, _, _ := s.store.stats(); return q })
	gauge("jobs_running", func() any { _, r, _, _, _, _ := s.store.stats(); return r })
	gauge("jobs_done", func() any { _, _, d, _, _, _ := s.store.stats(); return d })
	gauge("jobs_failed", func() any { _, _, _, f, _, _ := s.store.stats(); return f })
	gauge("jobs_cancelled", func() any { _, _, _, _, c, _ := s.store.stats(); return c })
	gauge("memo_hits", func() any { _, _, _, _, _, h := s.store.stats(); return h })
	gauge("workers", func() any { return s.cfg.Workers })
	gauge("trace_cache_hits", func() any { return experiments.TraceCacheHits() })
	gauge("refs_replayed_total", func() any { return experiments.ReplayedRefs() })
	gauge("replay_fanout_width", func() any { return core.LastFanOutWidth() })
	gauge("replay_window_shards", func() any { return core.LastWindowShards() })
	gauge("search_evals_total", func() any { return search.EvalsTotal() })
	gauge("search_eval_cache_hits_total", func() any { return search.EvalCacheHits() })
	gauge("search_front_size", func() any { return search.LastFrontSize() })
	gauge("refs_per_sec", func() any {
		up := now().Sub(s.start).Seconds()
		if up <= 0 {
			return 0.0
		}
		return float64(experiments.ReplayedRefs()) / up
	})
	gauge("uptime_seconds", func() any { return now().Sub(s.start).Seconds() })
	s.metrics = m
}

// runJob is the worker-pool callback for one dequeued job.
func (s *Server) runJob(j *job) {
	if j.ctx.Err() != nil {
		s.store.markCancelled(j)
		return
	}
	if !s.store.markRunning(j) {
		return // cancelled while queued
	}
	if opt := j.status.Request.Optimize; opt != nil {
		res, err := s.cfg.RunOptimize(j.ctx, *opt, func(p search.Progress) {
			s.store.setProgress(j, &p)
		})
		var t *tab.Table
		if err == nil {
			t = res.Table()
		}
		terminalFor(s, j, t, err)
		return
	}
	t, err := s.cfg.RunJob(j.ctx, j.status.Request)
	terminalFor(s, j, t, err)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	// Encode errors here mean the client went away mid-response; the
	// status header is already written, so there is nothing to report.
	_ = enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a job, answering from the memo store when the
// canonical key is already known.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req api.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req = normalize(req)
	if err := validateRequest(req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := canonicalKey(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ctx, cancel := context.WithCancel(s.base)
	j, fresh := s.store.submit(req, key, ctx, cancel)
	if !fresh {
		cancel() // the new context is unused; the existing job keeps its own
		st, _ := s.store.snapshot(j)
		st.Cached = true
		writeJSON(w, http.StatusOK, st)
		return
	}
	if !s.pool.submit(j) {
		s.store.markFailed(j, fmt.Errorf("worker queue full"))
		writeError(w, http.StatusServiceUnavailable, "worker queue full (backlog %d)", s.cfg.Backlog)
		return
	}
	st, _ := s.store.snapshot(j)
	writeJSON(w, http.StatusAccepted, st)
}

// handleList returns every job in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.store.list())
}

// jobFor resolves the {id} path value, answering 404 itself.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j, ok
}

// handleGet returns one job's status.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st, _ := s.store.snapshot(j)
	writeJSON(w, http.StatusOK, st)
}

// handleCancel cancels a queued or running job. Cancelling a terminal
// job is a no-op that returns its final status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.cancel()
	st, _ := s.store.snapshot(j)
	if st.State == api.StateQueued {
		// A worker may never pick it up (or will skip it); settle now.
		s.store.markCancelled(j)
		st, _ = s.store.snapshot(j)
	}
	writeJSON(w, http.StatusOK, st)
}

// streamHeartbeat paces keepalive lines on an idle stream.
const streamHeartbeat = time.Second

// handleStream writes the job's status as NDJSON lines — one per
// state transition plus heartbeats — until the job is terminal or the
// client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	s.streamJob(w, r, j)
}

// streamJob is the shared NDJSON push loop behind /stream and
// /v1/optimize: one status line per store mutation (state transitions
// and optimizer progress) plus heartbeats, until the job is terminal
// or the client goes away.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	hb := time.NewTimer(streamHeartbeat)
	defer hb.Stop()
	for {
		st, v := s.store.snapshot(j)
		if err := enc.Encode(st); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if st.State.Terminal() {
			return
		}
		ch := s.store.watch(j, v)
		if ch == nil {
			continue // already moved on; emit the newer snapshot
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(streamHeartbeat)
		select {
		case <-ch:
		case <-hb.C:
		case <-r.Context().Done():
			return
		}
	}
}

// handleOptimize accepts a search.Spec, submits it as an optimizer
// job — same store, memoization, worker pool and backpressure as
// /v1/jobs — and streams the job's status on the same response: one
// NDJSON line per generation, each carrying a front at least as good
// as the last, ending with the terminal status. Cancellation goes
// through DELETE /v1/jobs/{id} (the first line carries the ID) and
// lands mid-generation via the job context.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var spec search.Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req := normalize(api.SubmitRequest{Optimize: &spec})
	if err := validateRequest(req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := canonicalKey(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ctx, cancel := context.WithCancel(s.base)
	j, fresh := s.store.submit(req, key, ctx, cancel)
	if !fresh {
		cancel() // the new context is unused; the existing job keeps its own
	} else if !s.pool.submit(j) {
		s.store.markFailed(j, fmt.Errorf("worker queue full"))
		writeError(w, http.StatusServiceUnavailable, "worker queue full (backlog %d)", s.cfg.Backlog)
		return
	}
	s.streamJob(w, r, j)
}

// handleHealth answers 200 while the service accepts jobs and 503
// once draining has begun.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the expvar map as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.String())
}
