// Package api is the wire codec of the simd job service, shared by
// the server (internal/service), the streamsim submit/wait client
// mode and the simd self-test. Keeping one request/response vocabulary
// here is what lets the CLI and the service stay in lockstep.
package api

import (
	"time"

	"streamsim/internal/search"
	"streamsim/internal/sweeprun"
	"streamsim/internal/tab"
)

// Service paths.
const (
	// JobsPath accepts POST (submit) and GET (list); append /{id} for
	// job status, /{id}/stream for NDJSON progress and DELETE /{id}
	// to cancel.
	JobsPath = "/v1/jobs"
	// OptimizePath accepts POST with a search.Spec body: it submits an
	// optimizer job (same store, memoization and backpressure as
	// JobsPath) and streams its status as NDJSON on the same response,
	// each line carrying the evolving Pareto front.
	OptimizePath = "/v1/optimize"
	// HealthPath answers 200 while the service accepts jobs.
	HealthPath = "/healthz"
	// MetricsPath serves the expvar-backed JSON metrics.
	MetricsPath = "/metrics"
)

// SubmitRequest asks the service to run one job: a paper experiment by
// ID, a parameter sweep, or a config-space optimization. Exactly one
// of Experiment, Sweep and Optimize must be set.
type SubmitRequest struct {
	// Experiment is a paper artefact ID (e.g. "table1", "fig3"; see
	// paperexp -list).
	Experiment string `json:"experiment,omitempty"`
	// Scale is the workload iteration scale in (0, 1] for experiment
	// jobs; 0 means the experiment default of 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Sweep describes a parameter-sweep job.
	Sweep *sweeprun.Spec `json:"sweep,omitempty"`
	// Optimize describes a config-space optimizer job.
	Optimize *search.Spec `json:"optimize,omitempty"`
}

// JobState is the lifecycle of a job.
type JobState string

// Job lifecycle states.
const (
	// StateQueued means the job waits for a worker.
	StateQueued JobState = "queued"
	// StateRunning means a worker is executing the job.
	StateRunning JobState = "running"
	// StateDone means the job finished and Table/Text/CSV are set.
	StateDone JobState = "done"
	// StateFailed means the job errored; Error is set.
	StateFailed JobState = "failed"
	// StateCancelled means the job was cancelled before finishing.
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the service's view of one job, returned by every
// endpoint and streamed as NDJSON lines by /v1/jobs/{id}/stream.
type JobStatus struct {
	// ID addresses the job in later calls.
	ID string `json:"id"`
	// Key is the canonical memoization hash of the request; two
	// requests for the same artefact at the same options share it.
	Key string `json:"key"`
	// State is the lifecycle state.
	State JobState `json:"state"`
	// Request echoes the submitted (default-filled) request.
	Request SubmitRequest `json:"request"`
	// Cached is set on submit responses served from the memoized job
	// store instead of enqueueing new work.
	Cached bool `json:"cached,omitempty"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
	// Progress is the latest generation snapshot of a running optimizer
	// job: the evolving Pareto front, evaluation count and current
	// best. Each front only improves on the previous line's.
	Progress *search.Progress `json:"progress,omitempty"`
	// Table is the structured result of a done job.
	Table *tab.Table `json:"table,omitempty"`
	// Text is the rendered form of Table (byte-identical to what the
	// in-process harness prints).
	Text string `json:"text,omitempty"`
	// CSV is the CSV form of Table.
	CSV string `json:"csv,omitempty"`
	// Created, Started and Finished stamp the lifecycle transitions.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// ErrorResponse is the JSON error envelope for non-2xx answers.
type ErrorResponse struct {
	Error string `json:"error"`
}
