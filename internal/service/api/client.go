// The HTTP client side of the codec: what streamsim submit/wait and
// the simd self-test use to talk to a running service.
package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a simd server.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8210".
	Base string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JobStatus or error envelope.
func (c *Client) do(ctx context.Context, method, path string, body any) (JobStatus, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return JobStatus{}, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return JobStatus{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return JobStatus{}, decodeError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("api: decoding %s %s: %w", method, path, err)
	}
	return st, nil
}

// decodeError turns a non-2xx response into an error.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var e ErrorResponse
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return fmt.Errorf("api: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("api: %s: %s", resp.Status, bytes.TrimSpace(b))
}

// Submit enqueues a job (or is answered from the memoized store) and
// returns its status.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	return c.do(ctx, http.MethodPost, JobsPath, req)
}

// Get returns the current status of a job.
func (c *Client) Get(ctx context.Context, id string) (JobStatus, error) {
	return c.do(ctx, http.MethodGet, JobsPath+"/"+id, nil)
}

// Cancel asks the service to cancel a job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	return c.do(ctx, http.MethodDelete, JobsPath+"/"+id, nil)
}

// Wait follows the job's NDJSON progress stream until it reaches a
// terminal state and returns the final status. If the stream drops
// mid-job it falls back to polling.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+JobsPath+"/"+id+"/stream", nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return JobStatus{}, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20) // result tables ride the last line
	var last JobStatus
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &last); err != nil {
			return JobStatus{}, fmt.Errorf("api: bad stream line: %w", err)
		}
		if last.State.Terminal() {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		return JobStatus{}, ctx.Err()
	}
	// Stream ended without a terminal state: poll.
	return c.poll(ctx, id)
}

// poll falls back to periodic Gets until the job is terminal.
func (c *Client) poll(ctx context.Context, id string) (JobStatus, error) {
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-t.C:
		}
	}
}

// Health checks the /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+HealthPath, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("api: health: %s", resp.Status)
	}
	return nil
}
