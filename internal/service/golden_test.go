package service

import (
	"context"
	"testing"

	"streamsim/internal/experiments"
	"streamsim/internal/service/api"
	"streamsim/internal/sweeprun"
)

// goldenScale keeps the 13-experiment equivalence pass fast; the
// selftest (`make service-smoke`) runs the same check out of process.
const goldenScale = 0.05

// TestGoldenEquivalence submits every paper experiment through the
// HTTP service and checks the returned table is byte-identical to the
// direct in-process run at the same options — the determinism
// guarantee that makes memoized service results trustworthy. The
// directives below are detflow gates (see detflow_static_test.go):
// this pass exercises job execution and, through it, every annotated
// experiment runner.
//
//simlint:deterministic streamsim/internal/service.runRequest
//simlint:deterministic streamsim/internal/experiments.Figure3
//simlint:deterministic streamsim/internal/experiments.Figure9
//simlint:deterministic streamsim/internal/experiments.Table4
//simlint:deterministic streamsim/internal/experiments.Scalability
func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden equivalence runs every experiment; skipped in -short")
	}
	_, cl := newTestServer(t, Config{}) // real runner
	ctx := context.Background()

	// Submit everything first so the pool overlaps the work, then
	// compare each result against its direct run.
	ids := map[string]string{}
	for _, e := range experiments.All() {
		st, err := cl.Submit(ctx, api.SubmitRequest{Experiment: e.ID, Scale: goldenScale})
		if err != nil {
			t.Fatalf("submit %s: %v", e.ID, err)
		}
		ids[e.ID] = st.ID
	}
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			st, err := cl.Wait(ctx, ids[e.ID])
			if err != nil {
				t.Fatal(err)
			}
			if st.State != api.StateDone {
				t.Fatalf("state = %s (error %q)", st.State, st.Error)
			}
			want, err := e.Run(ctx, experiments.Options{Scale: goldenScale})
			if err != nil {
				t.Fatal(err)
			}
			if st.Text != want.Render() {
				t.Errorf("service table differs from direct run:\nservice:\n%s\ndirect:\n%s", st.Text, want.Render())
			}
			if st.CSV != want.CSV() {
				t.Errorf("service CSV differs from direct run")
			}
		})
	}
}

// TestGoldenSweepEquivalence does the same for a sweep job.
func TestGoldenSweepEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	_, cl := newTestServer(t, Config{}) // real runner
	ctx := context.Background()
	spec := sweepSpec // mgrid, streams, {1,2}; defaults fill the rest

	st, err := cl.Submit(ctx, api.SubmitRequest{Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("state = %s (error %q)", st.State, st.Error)
	}
	want, _, err := sweeprun.Run(ctx, spec.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if st.Text != want.Render() {
		t.Errorf("service sweep table differs from direct run:\nservice:\n%s\ndirect:\n%s", st.Text, want.Render())
	}
}
