package filter

import (
	"testing"
	"testing/quick"

	"streamsim/internal/mem"
)

func TestNewUnitStrideValidation(t *testing.T) {
	if _, err := NewUnitStride(0); err == nil {
		t.Error("size 0 should be rejected")
	}
	f, err := NewUnitStride(8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 8 {
		t.Errorf("Size = %d, want 8", f.Size())
	}
}

func TestUnitStrideConsecutivePair(t *testing.T) {
	f, _ := NewUnitStride(8)
	if f.Lookup(100) {
		t.Fatal("first miss must not match")
	}
	if !f.Lookup(101) {
		t.Fatal("second consecutive miss must match")
	}
	s := f.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v, want 2 lookups, 1 hit, 1 insert", s)
	}
}

func TestUnitStrideEntryFreedOnHit(t *testing.T) {
	f, _ := NewUnitStride(8)
	f.Lookup(100)
	f.Lookup(101) // hit, entry freed
	// The same pair again requires re-priming.
	if f.Lookup(101) {
		t.Error("entry should have been freed; immediate re-lookup must miss")
	}
}

func TestUnitStrideIsolatedReferencesFiltered(t *testing.T) {
	f, _ := NewUnitStride(8)
	// Widely scattered misses never match.
	for _, b := range []mem.Addr{10, 500, 90, 7000, 42, 123456} {
		if f.Lookup(b) {
			t.Errorf("isolated miss %d should not match", b)
		}
	}
	if got := f.Stats().Hits; got != 0 {
		t.Errorf("Hits = %d, want 0", got)
	}
}

func TestUnitStrideNonConsecutiveGap(t *testing.T) {
	f, _ := NewUnitStride(8)
	f.Lookup(100)
	if f.Lookup(102) {
		t.Error("gap of 2 blocks must not match (strictly consecutive)")
	}
}

func TestUnitStrideBackwardRunNotDetected(t *testing.T) {
	// The Figure 4 filter stores a+1 only: descending runs never match.
	f, _ := NewUnitStride(8)
	f.Lookup(100)
	if f.Lookup(99) {
		t.Error("descending pair must not match the unit-stride filter")
	}
}

func TestUnitStrideCapacityEviction(t *testing.T) {
	f, _ := NewUnitStride(2)
	f.Lookup(10) // stores 11
	f.Lookup(20) // stores 21
	f.Lookup(30) // stores 31, evicting 11 (LRU)
	if f.Lookup(11) {
		t.Error("prediction for 11 should have been evicted")
	}
	if got := f.Stats().Evictions; got == 0 {
		t.Error("expected at least one eviction")
	}
	if !f.Lookup(31) {
		t.Error("most recent prediction should survive")
	}
}

func TestUnitStrideDuplicateInsertRefreshes(t *testing.T) {
	f, _ := NewUnitStride(2)
	f.Lookup(10) // stores 11
	f.Lookup(10) // stores 11 again -> refresh, not second entry
	f.Lookup(20) // stores 21 in the second slot
	// 11 must still be present: the duplicate didn't consume a slot.
	if !f.Lookup(11) {
		t.Error("refreshed prediction lost")
	}
}

func TestUnitStrideReset(t *testing.T) {
	f, _ := NewUnitStride(4)
	f.Lookup(10)
	f.Reset()
	if f.Lookup(11) {
		t.Error("reset should clear history")
	}
	if got := f.Stats().Lookups; got != 2 {
		t.Errorf("Reset cleared stats; Lookups = %d, want 2", got)
	}
}

func TestUnitStrideStatsHitRate(t *testing.T) {
	var s UnitStrideStats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s = UnitStrideStats{Lookups: 8, Hits: 2}
	if s.HitRate() != 0.25 {
		t.Errorf("HitRate = %v, want 0.25", s.HitRate())
	}
}

// Property: a strictly sequential run of N>=2 block misses produces
// exactly floor(N/2) filter hits (each hit frees the entry, so pairs).
func TestUnitStrideSequentialPairing(t *testing.T) {
	f := func(startRaw uint16, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		fl, err := NewUnitStride(16)
		if err != nil {
			return false
		}
		hits := 0
		for i := 0; i < n; i++ {
			if fl.Lookup(mem.Addr(startRaw) + mem.Addr(i)) {
				hits++
			}
		}
		return hits == n/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewNonUnitStrideValidation(t *testing.T) {
	if _, err := NewNonUnitStride(0, 16); err == nil {
		t.Error("size 0 should be rejected")
	}
	if _, err := NewNonUnitStride(16, 0); err == nil {
		t.Error("czone 0 should be rejected")
	}
	if _, err := NewNonUnitStride(16, 63); err == nil {
		t.Error("czone 63 should be rejected")
	}
	f, err := NewNonUnitStride(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 16 || f.CzoneBits() != 16 {
		t.Errorf("Size/CzoneBits = %d/%d, want 16/16", f.Size(), f.CzoneBits())
	}
}

func TestNonUnitStrideThreeStridedRefs(t *testing.T) {
	f, _ := NewNonUnitStride(16, 16)
	base := mem.Addr(0x10000)
	const stride = 300
	if a, _, _ := f.Observe(base); a {
		t.Fatal("first reference must not allocate")
	}
	if a, _, _ := f.Observe(base + stride); a {
		t.Fatal("second reference must not allocate")
	}
	alloc, last, got := f.Observe(base + 2*stride)
	if !alloc {
		t.Fatal("third equal-stride reference must allocate")
	}
	if got != stride {
		t.Errorf("stride = %d, want %d", got, stride)
	}
	if last != base+2*stride {
		t.Errorf("lastWord = %#x, want %#x", last, base+2*stride)
	}
}

func TestNonUnitStrideEntryFreedOnAllocation(t *testing.T) {
	f, _ := NewNonUnitStride(16, 16)
	base := mem.Addr(0x10000)
	f.Observe(base)
	f.Observe(base + 100)
	f.Observe(base + 200) // allocates, frees entry
	// Next same-partition miss starts detection over (META1).
	if a, _, _ := f.Observe(base + 300); a {
		t.Error("entry should have been freed; detection must restart")
	}
	if a, _, _ := f.Observe(base + 400); a {
		t.Error("second post-free reference must not allocate yet")
	}
	if a, _, _ := f.Observe(base + 500); !a {
		t.Error("third post-free strided reference should allocate")
	}
}

func TestNonUnitStrideNegative(t *testing.T) {
	f, _ := NewNonUnitStride(16, 16)
	// Mid-partition base so the backward walk stays in one czone.
	base := mem.Addr(0x20000 + 0x8000)
	f.Observe(base)
	f.Observe(base - 500)
	alloc, _, stride := f.Observe(base - 1000)
	if !alloc || stride != -500 {
		t.Errorf("(alloc, stride) = (%v, %d), want (true, -500)", alloc, stride)
	}
}

func TestNonUnitStrideRevisedGuess(t *testing.T) {
	f, _ := NewNonUnitStride(16, 16)
	base := mem.Addr(0x10000)
	f.Observe(base)
	f.Observe(base + 100) // guess 100
	if a, _, _ := f.Observe(base + 300); a {
		t.Fatal("delta 200 != guess 100: must not allocate")
	}
	// New guess is 200; verify it.
	alloc, _, stride := f.Observe(base + 500)
	if !alloc || stride != 200 {
		t.Errorf("(alloc, stride) = (%v, %d), want (true, 200)", alloc, stride)
	}
	if got := f.Stats().StrideChanges; got != 1 {
		t.Errorf("StrideChanges = %d, want 1", got)
	}
}

func TestNonUnitStrideZeroDeltaIgnored(t *testing.T) {
	f, _ := NewNonUnitStride(16, 16)
	base := mem.Addr(0x10000)
	f.Observe(base)
	f.Observe(base) // duplicate: no state change
	f.Observe(base + 100)
	alloc, _, stride := f.Observe(base + 200)
	if !alloc || stride != 100 {
		t.Errorf("(alloc, stride) = (%v, %d), want (true, 100): duplicates must not derail the FSM", alloc, stride)
	}
}

func TestNonUnitStridePartitionIsolation(t *testing.T) {
	// Two interleaved strided walks in different partitions must both
	// be detected: partitioning is the whole point (Section 7).
	f, _ := NewNonUnitStride(16, 16)
	a := mem.Addr(1) << 20 // partition tags differ at czone 16
	b := mem.Addr(5) << 20
	var gotA, gotB bool
	for i := mem.Addr(0); i < 3; i++ {
		if al, _, s := f.Observe(a + i*300); al && s == 300 {
			gotA = true
		}
		if al, _, s := f.Observe(b + i*700); al && s == 700 {
			gotB = true
		}
	}
	if !gotA || !gotB {
		t.Errorf("interleaved partitions detected (A, B) = (%v, %v), want both", gotA, gotB)
	}
}

func TestNonUnitStrideCzoneTooSmall(t *testing.T) {
	// If the czone is smaller than the stride, consecutive references
	// land in different partitions and are never correlated — the
	// paper's Figure 9 failure mode.
	f, _ := NewNonUnitStride(16, 4) // 16-word partitions
	base := mem.Addr(0x10000)
	const stride = 1000 // >> 16 words
	for i := mem.Addr(0); i < 10; i++ {
		if alloc, _, _ := f.Observe(base + i*stride); alloc {
			t.Fatal("stride larger than partition must not be detected")
		}
	}
}

func TestNonUnitStrideCzoneTooLargeInterference(t *testing.T) {
	// With a huge czone, two interleaved streams fall into the same
	// partition and their deltas alternate, blocking verification —
	// the other Figure 9 failure mode.
	f, _ := NewNonUnitStride(16, 40)
	a := mem.Addr(0x100000)
	b := mem.Addr(0x900000)
	for i := mem.Addr(0); i < 8; i++ {
		if alloc, _, _ := f.Observe(a + i*300); alloc {
			t.Fatal("interfering streams should prevent detection (A)")
		}
		if alloc, _, _ := f.Observe(b + i*300); alloc {
			t.Fatal("interfering streams should prevent detection (B)")
		}
	}
}

func TestSetCzoneBits(t *testing.T) {
	f, _ := NewNonUnitStride(16, 16)
	f.Observe(0x10000)
	if err := f.SetCzoneBits(20); err != nil {
		t.Fatal(err)
	}
	if f.CzoneBits() != 20 {
		t.Errorf("CzoneBits = %d, want 20", f.CzoneBits())
	}
	// In-flight detection was invalidated.
	if a, _, _ := f.Observe(0x10000 + 100); a {
		t.Error("detection state should be cleared by czone change")
	}
	if err := f.SetCzoneBits(0); err == nil {
		t.Error("czone 0 should be rejected")
	}
}

func TestNonUnitStrideEviction(t *testing.T) {
	f, _ := NewNonUnitStride(2, 16)
	// Three distinct partitions: the first (LRU) is evicted.
	f.Observe(mem.Addr(1) << 20)
	f.Observe(mem.Addr(2) << 20)
	f.Observe(mem.Addr(3) << 20)
	if got := f.Stats().Evictions; got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	// Partition 1's state is gone: two more refs there don't allocate,
	// three do.
	p := mem.Addr(1) << 20
	if a, _, _ := f.Observe(p + 100); a {
		t.Error("evicted partition must restart detection")
	}
}

func TestNonUnitStrideReset(t *testing.T) {
	f, _ := NewNonUnitStride(4, 16)
	f.Observe(0x10000)
	f.Observe(0x10000 + 100)
	f.Reset()
	if a, _, _ := f.Observe(0x10000 + 200); a {
		t.Error("reset should clear FSM state")
	}
}

// Property: any constant word stride whose magnitude fits well inside
// the partition is detected on the third observation.
func TestNonUnitStrideDetectsAnyFittingStride(t *testing.T) {
	f := func(strideRaw int16, baseRaw uint16) bool {
		stride := int64(strideRaw)
		if stride == 0 {
			stride = 17
		}
		// czone 20 bits: strides up to 2^15 easily fit.
		fl, err := NewNonUnitStride(16, 20)
		if err != nil {
			return false
		}
		// Mid-partition base (czone 20 bits => 2^20-word zones) so that
		// base +/- 2*stride (|stride| <= 2^15) stays inside one zone.
		base := int64(1)<<30 + int64(1)<<19 + int64(baseRaw%1024)
		fl.Observe(mem.Addr(base))
		if a, _, _ := fl.Observe(mem.Addr(base + stride)); a {
			return false
		}
		alloc, _, got := fl.Observe(mem.Addr(base + 2*stride))
		return alloc && got == stride
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewMinDeltaValidation(t *testing.T) {
	if _, err := NewMinDelta(0, 0); err == nil {
		t.Error("size 0 should be rejected")
	}
	if _, err := NewMinDelta(4, -1); err == nil {
		t.Error("negative maxDelta should be rejected")
	}
}

func TestMinDeltaBasic(t *testing.T) {
	f, _ := NewMinDelta(4, 0)
	if a, _ := f.Observe(1000); a {
		t.Fatal("first observation has no history")
	}
	alloc, stride := f.Observe(1300)
	if !alloc || stride != 300 {
		t.Errorf("(alloc, stride) = (%v, %d), want (true, 300)", alloc, stride)
	}
}

func TestMinDeltaPicksNearest(t *testing.T) {
	f, _ := NewMinDelta(4, 0)
	f.Observe(1000)
	f.Observe(5000)
	alloc, stride := f.Observe(5200) // nearest is 5000 -> delta 200
	if !alloc || stride != 200 {
		t.Errorf("(alloc, stride) = (%v, %d), want (true, 200)", alloc, stride)
	}
	alloc, stride = f.Observe(900) // nearest is 1000 -> delta -100
	if !alloc || stride != -100 {
		t.Errorf("(alloc, stride) = (%v, %d), want (true, -100)", alloc, stride)
	}
}

func TestMinDeltaMaxDeltaBound(t *testing.T) {
	f, _ := NewMinDelta(4, 100)
	f.Observe(1000)
	if a, _ := f.Observe(5000); a {
		t.Error("delta 4000 exceeds bound 100; must not allocate")
	}
	if a, s := f.Observe(5050); !a || s != 50 {
		t.Error("delta 50 within bound should allocate")
	}
}

func TestMinDeltaFIFOWraparound(t *testing.T) {
	f, _ := NewMinDelta(2, 0)
	f.Observe(10)
	f.Observe(1000)
	f.Observe(2000) // evicts 10
	// Nearest to 30 is now 1000, not 10.
	alloc, stride := f.Observe(30)
	if !alloc || stride != -970 {
		t.Errorf("(alloc, stride) = (%v, %d), want (true, -970)", alloc, stride)
	}
}

func TestMinDeltaStats(t *testing.T) {
	f, _ := NewMinDelta(4, 0)
	f.Observe(1)
	f.Observe(100)
	s := f.Stats()
	if s.Observations != 2 || s.Allocations != 1 {
		t.Errorf("stats = %+v, want 2 observations / 1 allocation", s)
	}
}

// referenceNonUnit is a brute-force reimplementation of the Section 7
// scheme used to model-check NonUnitStride: an unbounded map of
// partitions, each holding the Figure 7 FSM registers.
type referenceNonUnit struct {
	czone uint
	parts map[mem.Addr]*refEntry
}

type refEntry struct {
	last   mem.Addr
	stride int64
	meta2  bool
}

func (r *referenceNonUnit) observe(w mem.Addr) (bool, mem.Addr, int64) {
	tag := w >> r.czone
	e, ok := r.parts[tag]
	if !ok {
		r.parts[tag] = &refEntry{last: w}
		return false, 0, 0
	}
	d := int64(w) - int64(e.last)
	if d == 0 {
		return false, 0, 0
	}
	if !e.meta2 {
		e.stride, e.last, e.meta2 = d, w, true
		return false, 0, 0
	}
	if d == e.stride {
		delete(r.parts, tag)
		return true, w, d
	}
	e.stride, e.last = d, w
	return false, 0, 0
}

// Property: with an oversized table (no capacity evictions), the
// hardware model agrees exactly with the brute-force reference on any
// observation sequence.
func TestNonUnitStrideMatchesReference(t *testing.T) {
	f := func(wordsRaw []uint16, czoneRaw uint8) bool {
		czone := uint(czoneRaw%12) + 4
		hw, err := NewNonUnitStride(4096, czone)
		if err != nil {
			return false
		}
		ref := &referenceNonUnit{czone: czone, parts: map[mem.Addr]*refEntry{}}
		for _, w := range wordsRaw {
			word := mem.Addr(w)
			a1, l1, s1 := hw.Observe(word)
			a2, l2, s2 := ref.observe(word)
			if a1 != a2 || l1 != l2 || s1 != s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
