package filter_test

import (
	"fmt"

	"streamsim/internal/filter"
	"streamsim/internal/mem"
)

// ExampleUnitStride shows the Section 6 allocation policy: a stream is
// allocated only on the second of two consecutive-block misses.
func ExampleUnitStride() {
	f, err := filter.NewUnitStride(16)
	if err != nil {
		panic(err)
	}
	fmt.Println("isolated miss allocates:", f.Lookup(500))
	fmt.Println("miss at block 10 allocates:", f.Lookup(10))
	fmt.Println("miss at block 11 allocates:", f.Lookup(11))
	// Output:
	// isolated miss allocates: false
	// miss at block 10 allocates: false
	// miss at block 11 allocates: true
}

// ExampleNonUnitStride walks the Figure 7 FSM: three equal-stride
// misses in one czone partition verify the stride.
func ExampleNonUnitStride() {
	f, err := filter.NewNonUnitStride(16, 16)
	if err != nil {
		panic(err)
	}
	base := mem.Addr(1 << 20)
	const stride = 2048 // words
	for i := mem.Addr(0); i < 3; i++ {
		alloc, _, s := f.Observe(base + i*stride)
		fmt.Printf("observation %d: allocate=%v stride=%d\n", i+1, alloc, s)
	}
	// Output:
	// observation 1: allocate=false stride=0
	// observation 2: allocate=false stride=0
	// observation 3: allocate=true stride=2048
}
