// Package filter implements the paper's stream-allocation filters.
//
// The unit-stride filter (Section 6, Figure 4) is a small history
// buffer that delays stream allocation until two misses to consecutive
// cache blocks are seen, eliminating isolated references and the memory
// bandwidth their speculative prefetches would waste.
//
// The non-unit-stride filter (Section 7, Figures 6 and 7) dynamically
// partitions the word-address space by a run-time "czone" size and runs
// a per-partition finite state machine that verifies a constant stride
// across three misses before allocating a strided stream. It sits
// behind the unit-stride filter: it observes only references that the
// unit-stride filter rejected.
//
// The minimum-delta scheme is the paper's alternative stride detector
// (kept for the ablation benches): it stores the last N miss addresses
// and uses the minimum distance to any of them as the stride.
package filter

import (
	"fmt"

	"streamsim/internal/mem"
)

// UnitStrideStats counts unit-stride filter behaviour.
//
//simlint:state counters
type UnitStrideStats struct {
	// Lookups is the number of stream misses presented.
	Lookups uint64
	// Hits is the number of lookups that matched (stream allocated).
	Hits uint64
	// Inserts counts new history entries written.
	Inserts uint64
	// Evictions counts history entries displaced by Inserts.
	Evictions uint64
}

// HitRate returns Hits/Lookups, or 0 with no lookups.
func (s UnitStrideStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// unitEntry is one slot of the unit-stride history buffer.
type unitEntry struct {
	block   mem.Addr // stored as missBlock+1 (Figure 4)
	valid   bool
	lastUse uint64
}

// UnitStride is the Section 6 filter: allocate a stream only after
// misses to blocks i and i+1.
//
//simlint:state
type UnitStride struct {
	entries []unitEntry
	clock   uint64
	stats   UnitStrideStats
}

// NewUnitStride builds a filter with size history entries. The paper
// finds 8-10 sufficient and uses 16 for its Figure 5 data.
func NewUnitStride(size int) (*UnitStride, error) {
	if size < 1 {
		return nil, fmt.Errorf("filter: unit-stride filter needs >= 1 entry, got %d", size)
	}
	return &UnitStride{entries: make([]unitEntry, size)}, nil
}

// Size returns the number of history entries.
func (f *UnitStride) Size() int { return len(f.entries) }

// Stats returns a copy of the accumulated statistics.
func (f *UnitStride) Stats() UnitStrideStats { return f.stats }

// ResetStats clears the counters without disturbing the history.
//
//simlint:statefull reset
func (f *UnitStride) ResetStats() { f.stats = UnitStrideStats{} }

// SetStats overwrites the statistics wholesale; the window-sharded
// replay engine restores accumulated counters onto adopted state.
//
//simlint:statefull adopt
func (f *UnitStride) SetStats(s UnitStrideStats) { f.stats = s }

// AddStats accumulates another filter's counters into this one.
//
//simlint:statefull merge
func (f *UnitStride) AddStats(s UnitStrideStats) {
	f.stats.Lookups += s.Lookups
	f.stats.Hits += s.Hits
	f.stats.Inserts += s.Inserts
	f.stats.Evictions += s.Evictions
}

// Clone returns a deep copy of the filter; the clone evolves
// independently of the original.
//
//simlint:statefull clone
func (f *UnitStride) Clone() *UnitStride {
	n := *f
	n.entries = append([]unitEntry(nil), f.entries...)
	return &n
}

// Lookup presents a block address that missed both the primary cache
// and the streams. It returns true when the miss completes a
// consecutive pair (block-1 missed recently): the caller should
// allocate a unit stream at missBlock and the matching history entry
// has been freed. On false the filter has recorded missBlock+1 so a
// future miss to the next block will match.
func (f *UnitStride) Lookup(missBlock mem.Addr) bool {
	f.clock++
	f.stats.Lookups++
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid && e.block == missBlock {
			// Two consecutive misses confirmed; free the entry (the
			// paper frees it as soon as the stream is detected).
			e.valid = false
			f.stats.Hits++
			return true
		}
	}
	f.insert(missBlock + 1)
	return false
}

// insert records a predicted next-miss block, evicting the LRU entry
// if the history is full.
func (f *UnitStride) insert(block mem.Addr) {
	victim := -1
	for i := range f.entries {
		e := &f.entries[i]
		if e.block == block && e.valid {
			e.lastUse = f.clock // refresh an existing prediction
			return
		}
		if !e.valid {
			if victim == -1 || f.entries[victim].valid {
				victim = i
			}
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(f.entries); i++ {
			if f.entries[i].lastUse < f.entries[victim].lastUse {
				victim = i
			}
		}
		f.stats.Evictions++
	}
	f.entries[victim] = unitEntry{block: block, valid: true, lastUse: f.clock}
	f.stats.Inserts++
}

// Reset clears the history but keeps statistics.
func (f *UnitStride) Reset() {
	for i := range f.entries {
		f.entries[i] = unitEntry{}
	}
}

// fsmState is the Figure 7 state of a non-unit-stride filter entry.
type fsmState uint8

const (
	// meta1 has seen one miss (last_addr recorded).
	meta1 fsmState = iota
	// meta2 has a stride guess awaiting verification.
	meta2
)

// nonUnitEntry is one slot of the non-unit-stride filter: the partition
// tag plus the FSM registers of Figure 7.
type nonUnitEntry struct {
	tag      mem.Addr
	lastAddr mem.Addr // word address of the previous miss in the zone
	stride   int64    // current stride guess (META2 only)
	state    fsmState
	valid    bool
	lastUse  uint64
}

// NonUnitStrideStats counts non-unit-stride filter behaviour.
//
//simlint:state counters
type NonUnitStrideStats struct {
	// Observations is the number of references presented.
	Observations uint64
	// Allocations is the number of verified strides (streams allocated).
	Allocations uint64
	// Inserts counts new partition entries created.
	Inserts uint64
	// Evictions counts partitions displaced while mid-detection.
	Evictions uint64
	// StrideChanges counts META2 guesses that had to be revised.
	StrideChanges uint64
}

// NonUnitStride is the Section 7 czone-partitioned stride detector.
//
//simlint:state
type NonUnitStride struct {
	entries   []nonUnitEntry
	czoneBits uint
	clock     uint64
	stats     NonUnitStrideStats
}

// Czone size limits: the paper sweeps 10-26 bits of word address
// (Figure 9); we accept any usable split of a 64-bit word address.
const (
	MinCzoneBits = 1
	MaxCzoneBits = 62
)

// NewNonUnitStride builds a detector with size partition entries and
// the given czone size in bits of word address. The paper uses 16
// entries and czone sizes between 10 and 26 bits.
func NewNonUnitStride(size int, czoneBits uint) (*NonUnitStride, error) {
	if size < 1 {
		return nil, fmt.Errorf("filter: non-unit-stride filter needs >= 1 entry, got %d", size)
	}
	if czoneBits < MinCzoneBits || czoneBits > MaxCzoneBits {
		return nil, fmt.Errorf("filter: czone size %d bits outside [%d, %d]",
			czoneBits, MinCzoneBits, MaxCzoneBits)
	}
	return &NonUnitStride{entries: make([]nonUnitEntry, size), czoneBits: czoneBits}, nil
}

// Size returns the number of partition entries.
func (f *NonUnitStride) Size() int { return len(f.entries) }

// CzoneBits returns the current czone size in bits.
func (f *NonUnitStride) CzoneBits() uint { return f.czoneBits }

// SetCzoneBits changes the partition size at run time (the paper lets
// the program store a mask in a memory-mapped location). Changing the
// czone invalidates in-flight detections, since tags are reinterpreted.
func (f *NonUnitStride) SetCzoneBits(bits uint) error {
	if bits < MinCzoneBits || bits > MaxCzoneBits {
		return fmt.Errorf("filter: czone size %d bits outside [%d, %d]",
			bits, MinCzoneBits, MaxCzoneBits)
	}
	f.czoneBits = bits
	for i := range f.entries {
		f.entries[i] = nonUnitEntry{}
	}
	return nil
}

// Stats returns a copy of the accumulated statistics.
func (f *NonUnitStride) Stats() NonUnitStrideStats { return f.stats }

// ResetStats clears the counters without disturbing the partitions.
//
//simlint:statefull reset
func (f *NonUnitStride) ResetStats() { f.stats = NonUnitStrideStats{} }

// SetStats overwrites the statistics wholesale; the window-sharded
// replay engine restores accumulated counters onto adopted state.
//
//simlint:statefull adopt
func (f *NonUnitStride) SetStats(s NonUnitStrideStats) { f.stats = s }

// AddStats accumulates another detector's counters into this one.
//
//simlint:statefull merge
func (f *NonUnitStride) AddStats(s NonUnitStrideStats) {
	f.stats.Observations += s.Observations
	f.stats.Allocations += s.Allocations
	f.stats.Inserts += s.Inserts
	f.stats.Evictions += s.Evictions
	f.stats.StrideChanges += s.StrideChanges
}

// Clone returns a deep copy of the detector; the clone evolves
// independently of the original.
//
//simlint:statefull clone
func (f *NonUnitStride) Clone() *NonUnitStride {
	n := *f
	n.entries = append([]nonUnitEntry(nil), f.entries...)
	return &n
}

// tag extracts the partition tag (the word-address bits above the
// czone) of a word address.
func (f *NonUnitStride) tag(word mem.Addr) mem.Addr {
	return word >> f.czoneBits
}

// Observe presents the word address of a reference that missed the
// primary cache, the streams, and the unit-stride filter. When three
// consecutive same-partition misses with equal deltas have been seen it
// returns alloc=true with the stream parameters: prefetching should
// start from lastWord+stride. The partition entry is freed on
// allocation (Section 7: "at the end of three consecutive strided
// references a stream is allocated and the entry in the filter is
// freed").
func (f *NonUnitStride) Observe(word mem.Addr) (alloc bool, lastWord mem.Addr, stride int64) {
	f.clock++
	f.stats.Observations++
	t := f.tag(word)
	for i := range f.entries {
		e := &f.entries[i]
		if !e.valid || e.tag != t {
			continue
		}
		e.lastUse = f.clock
		delta := int64(word) - int64(e.lastAddr)
		if delta == 0 {
			// Same word missed again (possible under trace sampling);
			// no information, leave the FSM untouched.
			return false, 0, 0
		}
		switch e.state {
		case meta1:
			// Second reference: record the stride guess.
			e.stride = delta
			e.lastAddr = word
			e.state = meta2
			return false, 0, 0
		default: // meta2
			if delta == e.stride {
				// Verified: allocate and free the entry.
				e.valid = false
				f.stats.Allocations++
				return true, word, delta
			}
			// Revised guess (Figure 7's self-loop on META2).
			e.stride = delta
			e.lastAddr = word
			f.stats.StrideChanges++
			return false, 0, 0
		}
	}
	f.insert(t, word)
	return false, 0, 0
}

// insert creates a fresh partition entry in META1.
func (f *NonUnitStride) insert(tag, word mem.Addr) {
	victim := -1
	for i := range f.entries {
		if !f.entries[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(f.entries); i++ {
			if f.entries[i].lastUse < f.entries[victim].lastUse {
				victim = i
			}
		}
		f.stats.Evictions++
	}
	f.entries[victim] = nonUnitEntry{
		tag: tag, lastAddr: word, state: meta1, valid: true, lastUse: f.clock,
	}
	f.stats.Inserts++
}

// Reset clears all partitions but keeps statistics.
func (f *NonUnitStride) Reset() {
	for i := range f.entries {
		f.entries[i] = nonUnitEntry{}
	}
}

// MinDeltaStats counts minimum-delta scheme behaviour.
//
//simlint:state counters
type MinDeltaStats struct {
	// Observations is the number of references presented.
	Observations uint64
	// Allocations is the number of strides produced.
	Allocations uint64
}

// MinDelta is the paper's alternative stride detector: a history of the
// last N miss word-addresses; the minimum distance between a new miss
// and any entry becomes the stride. The paper found its performance
// similar to the partition scheme but its hardware (N subtractions and
// a minimum reduction per miss) less attractive.
//
//simlint:state
type MinDelta struct {
	history  []mem.Addr
	valid    []bool
	next     int
	maxDelta int64
	stats    MinDeltaStats
}

// NewMinDelta builds the scheme with size history entries. maxDelta
// bounds the accepted stride magnitude in words (0 means unbounded);
// a bound keeps unrelated misses from producing nonsense strides.
func NewMinDelta(size int, maxDelta int64) (*MinDelta, error) {
	if size < 1 {
		return nil, fmt.Errorf("filter: min-delta scheme needs >= 1 entry, got %d", size)
	}
	if maxDelta < 0 {
		return nil, fmt.Errorf("filter: negative maxDelta %d", maxDelta)
	}
	return &MinDelta{
		history:  make([]mem.Addr, size),
		valid:    make([]bool, size),
		maxDelta: maxDelta,
	}, nil
}

// Stats returns a copy of the accumulated statistics.
func (f *MinDelta) Stats() MinDeltaStats { return f.stats }

// ResetStats clears the counters without disturbing the history.
//
//simlint:statefull reset
func (f *MinDelta) ResetStats() { f.stats = MinDeltaStats{} }

// SetStats overwrites the statistics wholesale; the window-sharded
// replay engine restores accumulated counters onto adopted state.
//
//simlint:statefull adopt
func (f *MinDelta) SetStats(s MinDeltaStats) { f.stats = s }

// AddStats accumulates another scheme's counters into this one.
//
//simlint:statefull merge
func (f *MinDelta) AddStats(s MinDeltaStats) {
	f.stats.Observations += s.Observations
	f.stats.Allocations += s.Allocations
}

// Clone returns a deep copy of the scheme; the clone evolves
// independently of the original.
//
//simlint:statefull clone
func (f *MinDelta) Clone() *MinDelta {
	n := *f
	n.history = append([]mem.Addr(nil), f.history...)
	n.valid = append([]bool(nil), f.valid...)
	return &n
}

// Observe presents a miss word address and returns a stride when one
// can be derived: the signed delta to the nearest history entry. The
// address is recorded afterwards (FIFO replacement).
func (f *MinDelta) Observe(word mem.Addr) (alloc bool, stride int64) {
	f.stats.Observations++
	best := int64(0)
	found := false
	for i, h := range f.history {
		if !f.valid[i] {
			continue
		}
		d := int64(word) - int64(h)
		if d == 0 {
			continue
		}
		if !found || abs64(d) < abs64(best) {
			best, found = d, true
		}
	}
	f.history[f.next] = word
	f.valid[f.next] = true
	f.next = (f.next + 1) % len(f.history)
	if !found || (f.maxDelta > 0 && abs64(best) > f.maxDelta) {
		return false, 0
	}
	f.stats.Allocations++
	return true, best
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
