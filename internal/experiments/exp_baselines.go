// Extension experiment: the Section 2 related-work prefetchers as
// baselines. The paper argues stream buffers are the right choice for
// commodity-processor systems because PC-indexed schemes (Baer-Chen's
// RPT) require modifying the processor; this experiment quantifies the
// comparison: miss coverage and extra memory traffic for tagged OBL,
// the RPT, and the paper's filtered stream buffers.
package experiments

import (
	"context"

	"streamsim/internal/cache"
	"streamsim/internal/mem"
	"streamsim/internal/prefetch"
	"streamsim/internal/tab"
	"streamsim/internal/workload"
)

// baselineResult summarizes one prefetcher run.
type baselineResult struct {
	// Coverage is the fraction of baseline misses eliminated (%).
	Coverage float64
	// Extra is wasted prefetch traffic relative to baseline misses (%).
	Extra float64
}

// runOnChipPrefetcher replays a trace through L1s with a prefetcher
// that fills the cache directly. rpt, when non-nil, additionally
// observes every data reference (it is on-chip beside the load/store
// unit); p supplies the miss/first-use hooks.
func runOnChipPrefetcher(ctx context.Context, name string, size workload.Size, scale float64,
	p prefetch.Prefetcher, rpt *prefetch.RPT) (baselineResult, error) {
	tr, err := record(ctx, name, size, scale)
	if err != nil {
		return baselineResult{}, err
	}
	base, err := missStream(ctx, name, size, scale) // baseline misses (no prefetch)
	if err != nil {
		return baselineResult{}, err
	}
	var baseMisses uint64
	for _, ev := range base.events {
		if !ev.write {
			baseMisses++
		}
	}

	cfg := noStreams()
	l1i, err := cache.New(cfg.L1I)
	if err != nil {
		return baselineResult{}, err
	}
	l1d, err := cache.New(cfg.L1D)
	if err != nil {
		return baselineResult{}, err
	}
	geom := cfg.Geometry

	// pending tracks prefetched-but-untouched blocks for the tagged
	// policies and for wasted-traffic accounting.
	pending := map[mem.Addr]bool{}
	var misses, issued, wasted uint64

	install := func(c *cache.Cache, blocks []mem.Addr) {
		for _, b := range blocks {
			addr := geom.BlockToByte(b)
			res := c.Prefetch(uint64(addr))
			if !res.Filled {
				continue
			}
			issued++
			pending[b] = true
			if res.Evicted {
				victim := mem.Addr(res.VictimBlock)
				if pending[victim] {
					// A prefetched block died untouched.
					delete(pending, victim)
					wasted++
				}
			}
		}
	}

	err = tr.each(ctx, func(pa *mem.Access) {
		a := *pa
		c := l1d
		if a.Kind == mem.IFetch {
			c = l1i
		}
		var res cache.Result
		if a.Kind == mem.Write {
			res = c.Write(uint64(a.Addr))
		} else {
			res = c.Read(uint64(a.Addr))
		}
		blk := geom.BlockAddr(a.Addr)
		if res.Hit && pending[blk] {
			delete(pending, blk)
			install(c, p.FirstUse(a, blk))
		}
		if res.Sampled && !res.Hit && res.Filled {
			misses++
			if res.Evicted {
				if victim := mem.Addr(res.VictimBlock); pending[victim] {
					delete(pending, victim)
					wasted++
				}
			}
			install(c, p.Miss(a, blk))
		}
		if rpt != nil {
			if pb, ok := rpt.Observe(a); ok {
				install(c, []mem.Addr{pb})
			}
		}
	})
	if err != nil {
		return baselineResult{}, err
	}
	wasted += uint64(len(pending)) // still untouched at end

	out := baselineResult{}
	if baseMisses > 0 {
		out.Coverage = 100 * float64(int64(baseMisses)-int64(misses)) / float64(baseMisses)
		out.Extra = 100 * float64(wasted) / float64(baseMisses)
	}
	return out, nil
}

// Baselines compares tagged OBL and the Baer-Chen RPT against the
// paper's filtered stream buffers. Registered as "extbase".
func Baselines(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Extension: stream buffers vs Section 2 prefetchers (miss coverage %, extra traffic %)",
		Columns: []string{
			"benchmark", "streams cov", "streams extra",
			"OBL cov", "OBL extra", "RPT cov", "RPT extra",
		},
		Notes: []string{
			"coverage = % of no-prefetch misses eliminated (stream hit rate for streams);",
			"extra = wasted prefetched blocks / baseline misses; RPT sees load/store PCs",
			"(requires processor modification, the paper's argument for streams)",
		},
	}
	for _, name := range workload.Names() {
		size := table1Size(name)
		sres, err := runConfig(ctx, name, size, opt, stridedStreams(16))
		if err != nil {
			return nil, err
		}
		obl, err := prefetch.NewOBL(1)
		if err != nil {
			return nil, err
		}
		oblRes, err := runOnChipPrefetcher(ctx, name, size, opt.Scale, obl, nil)
		if err != nil {
			return nil, err
		}
		rpt, err := prefetch.NewRPT(mem.DefaultGeometry(), 512, 4)
		if err != nil {
			return nil, err
		}
		rptRes, err := runOnChipPrefetcher(ctx, name, size, opt.Scale, rpt, rpt)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			tab.F(sres.StreamHitRate()), tab.F(sres.ExtraBandwidth()),
			tab.F(oblRes.Coverage), tab.F(oblRes.Extra),
			tab.F(rptRes.Coverage), tab.F(rptRes.Extra))
	}
	return t, nil
}
