// Table experiments: the paper's Tables 1-4.
package experiments

import (
	"context"
	"fmt"

	"streamsim/internal/cache"
	"streamsim/internal/tab"
	"streamsim/internal/workload"
)

// Table1 regenerates benchmark characteristics: data-set size, primary
// data-cache miss rate and misses per instruction, on the paper's bare
// 64K+64K 4-way L1 system.
func Table1(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Table 1: benchmark characteristics (64KB I + 64KB D, 4-way, random repl.)",
		Columns: []string{
			"benchmark", "suite", "data MB", "paper MB",
			"D-miss %", "paper %", "MPI %", "paper %",
		},
		Notes: []string{
			"synthetic traces are shorter than the paper's full program runs, so absolute",
			"miss rates run higher than Table 1's; the NAS >> PERFECT ordering and the",
			"per-benchmark character (which programs stress the memory system) are preserved",
		},
	}
	for _, name := range workload.Names() {
		size := table1Size(name)
		w, err := workload.New(name, size)
		if err != nil {
			return nil, err
		}
		r, err := runConfig(ctx, name, size, opt, noStreams())
		if err != nil {
			return nil, err
		}
		ref := paperTable1[name]
		t.AddRow(
			name, w.Suite,
			fmt.Sprintf("%.1f", float64(w.DataBytes)/(1<<20)), tab.F(ref.DataMB),
			tab.F2(r.DataMissRate()), tab.F2(ref.MissPct),
			tab.F2(r.MPI()), tab.F2(ref.MPIPct),
		)
	}
	return t, nil
}

// Table2 regenerates the extra bandwidth consumed by ordinary
// (unfiltered) streams at ten streams.
func Table2(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title:   "Table 2: extra bandwidth of ordinary streams (10 streams, no filter)",
		Columns: []string{"benchmark", "EB %", "paper EB %", "hit %"},
	}
	for _, name := range workload.Names() {
		r, err := runConfig(ctx, name, table1Size(name), opt, plainStreams(10))
		if err != nil {
			return nil, err
		}
		t.AddRow(name, tab.F(r.ExtraBandwidth()), tab.F(paperTable2[name]),
			tab.F(r.StreamHitRate()))
	}
	return t, nil
}

// Table3 regenerates the stream length distribution at ten streams.
func Table3(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Table 3: stream length distribution, % of hits (10 streams)",
		Columns: []string{
			"benchmark", "1-5", "6-10", "11-15", "16-20", ">20",
			"paper 1-5", "paper >20",
		},
	}
	for _, name := range workload.Names() {
		r, err := runConfig(ctx, name, table1Size(name), opt, plainStreams(10))
		if err != nil {
			return nil, err
		}
		p := r.Streams.Lengths.Percent()
		ref := paperTable3[name]
		t.AddRow(name,
			tab.F(p[0]), tab.F(p[1]), tab.F(p[2]), tab.F(p[3]), tab.F(p[4]),
			tab.F(ref[0]), tab.F(ref[4]))
	}
	return t, nil
}

// l2Sizes is Table 4's secondary-cache search space.
var l2Sizes = []uint{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}

// l2SizeName formats a cache size the way Table 4 prints it.
func l2SizeName(bytes uint) string {
	if bytes >= 1<<20 {
		return fmt.Sprintf("%d MB", bytes>>20)
	}
	return fmt.Sprintf("%d KB", bytes>>10)
}

// minL2ForHitRate finds the smallest secondary cache (over
// associativities 1-4 and block sizes 64/128, with set sampling)
// whose local hit rate matches the stream hit rate.
func minL2ForHitRate(ctx context.Context, name string, size workload.Size, scale, target float64) (string, float64, error) {
	ms, err := missStream(ctx, name, size, scale)
	if err != nil {
		return "", 0, err
	}
	for _, bytes := range l2Sizes {
		// Sample every 16th set for multi-megabyte caches, as the paper
		// does; small caches are simulated fully.
		sample := uint(16)
		if bytes <= 256<<10 {
			sample = 1
		}
		// All six (assoc, block) shapes of one size replay from a single
		// pass over the miss stream.
		var cfgs []cache.Config
		for _, assoc := range []uint{1, 2, 4} {
			for _, blk := range []uint{64, 128} {
				cfgs = append(cfgs, cache.Config{
					Name: "L2", SizeBytes: bytes, Assoc: assoc, BlockBytes: blk,
					Replacement: cache.LRU, Write: cache.WriteBack,
					Alloc: cache.WriteAllocate, SampleEvery: sample,
				})
			}
		}
		hrs, err := ms.l2LocalHitRates(ctx, cfgs)
		if err != nil {
			return "", 0, err
		}
		best := 0.0
		for _, hr := range hrs {
			if hr > best {
				best = hr
			}
		}
		if best >= target {
			return l2SizeName(bytes), best, nil
		}
	}
	return "> 4 MB", 0, nil
}

// Table4 regenerates the streams-versus-secondary-cache scaling
// comparison: for each growable benchmark at both input sizes, the
// stream hit rate (full Section 7 configuration) and the minimum
// secondary cache matching it.
//
//simlint:deterministic
func Table4(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Table 4: stream buffers versus secondary cache",
		Columns: []string{
			"benchmark", "input", "stream hit %", "paper hit %",
			"min L2 for same hit rate", "paper L2",
		},
		Notes: []string{
			"stream config: 10 streams, 16-entry unit filter, 16-entry czone filter;",
			"L2 search: 64 KB - 4 MB, assoc 1/2/4, blocks 64/128 B, set sampling 1/16",
		},
	}
	sizes := []workload.Size{workload.SizeSmall, workload.SizeLarge}
	type cell struct {
		hit float64
		l2  string
	}
	cells := make([]cell, len(paperTable4)*len(sizes))
	err := runParallel(ctx, len(cells), func(i int) error {
		ref := paperTable4[i/len(sizes)]
		sz := sizes[i%len(sizes)]
		r, err := runConfig(ctx, ref.Name, sz, opt, stridedStreams(16))
		if err != nil {
			return err
		}
		hit := r.StreamHitRate()
		l2, _, err := minL2ForHitRate(ctx, ref.Name, sz, opt.Scale, hit)
		if err != nil {
			return err
		}
		cells[i] = cell{hit: hit, l2: l2}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ri, ref := range paperTable4 {
		for si, sz := range sizes {
			c := cells[ri*len(sizes)+si]
			input, paperHit, paperL2 := ref.SmallInput, ref.SmallHit, ref.SmallL2
			if sz == workload.SizeLarge {
				input, paperHit, paperL2 = ref.LargeInput, ref.LargeHit, ref.LargeL2
			}
			t.AddRow(ref.Name, input, tab.F(c.hit), tab.F(paperHit), c.l2, paperL2)
		}
	}
	return t, nil
}
