package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"streamsim/internal/workload"
)

// TestExperimentPreCancelled: a cancelled context aborts every
// experiment before (or promptly after) its first replay batch.
func TestExperimentPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range All() {
		if _, err := e.Run(ctx, quick); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Run on cancelled ctx = %v, want context.Canceled", e.ID, err)
		}
	}
}

// TestExperimentCancelMidRun cancels an experiment that is actively
// recording and replaying and checks it unwinds promptly rather than
// running to completion.
func TestExperimentCancelMidRun(t *testing.T) {
	ResetTraceCache()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Figure3(ctx, Options{Scale: 0.5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Figure3 = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancelled Figure3 took %v to unwind", d)
	}
}

// TestResetTraceCacheConcurrent exercises ResetTraceCache against
// concurrent record() calls; under -race this guards the fix for the
// sync.Map-reassignment data race.
func TestResetTraceCacheConcurrent(t *testing.T) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := record(context.Background(), "embar", workload.SizeSmall, 0.01); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		ResetTraceCache()
	}
	close(stop)
	wg.Wait()
}
