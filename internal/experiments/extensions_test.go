package experiments

import (
	"context"
	"strconv"
	"testing"
)

// cellFloat parses a numeric table cell.
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", cell, err)
	}
	return v
}

func TestCPIExperimentShape(t *testing.T) {
	tbl, err := CPI(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 6 {
		t.Fatalf("extcpi shape %dx%d, want 15x6", len(tbl.Rows), len(tbl.Columns))
	}
	for _, row := range tbl.Rows {
		bare := cellFloat(t, row[1])
		full := cellFloat(t, row[3])
		if bare < 1 || full < 1 {
			t.Errorf("%s: CPI below 1 (bare %.2f, full %.2f)", row[0], bare, full)
		}
		// Streams should never make things dramatically worse.
		if full > bare*1.2 {
			t.Errorf("%s: filtered streams slowed execution %.2f -> %.2f", row[0], bare, full)
		}
	}
}

func TestBaselinesExperimentShape(t *testing.T) {
	tbl, err := Baselines(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 7 {
		t.Fatalf("extbase shape %dx%d, want 15x7", len(tbl.Rows), len(tbl.Columns))
	}
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	// embar: every scheme trivially covers a single sequential stream.
	for col := 1; col <= 5; col += 2 {
		if v := cellFloat(t, byName["embar"][col]); v < 90 {
			t.Errorf("embar column %d coverage = %.1f, want > 90", col, v)
		}
	}
	// OBL wastes heavily on the strided codes; the RPT does not.
	if obl := cellFloat(t, byName["fftpde"][4]); obl < 20 {
		t.Errorf("fftpde OBL extra traffic = %.1f, want large (sequential lookahead on strides)", obl)
	}
	if rpt := cellFloat(t, byName["fftpde"][6]); rpt > 15 {
		t.Errorf("fftpde RPT extra traffic = %.1f, want small", rpt)
	}
}

func TestEqualCostExperimentShape(t *testing.T) {
	tbl, err := EqualCost(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 4 {
		t.Fatalf("extcost shape %dx%d, want 15x4", len(tbl.Rows), len(tbl.Columns))
	}
	wins := 0
	for _, row := range tbl.Rows {
		if cellFloat(t, row[3]) > 1.0 {
			wins++
		}
	}
	// The paper's conclusion holds "for regular scientific workloads":
	// the stream node must win for most benchmarks, not all.
	if wins < 8 {
		t.Errorf("stream node wins only %d/15 equal-cost comparisons", wins)
	}
	if wins == 15 {
		t.Error("stream node should NOT win everywhere (cache-friendly irregular codes exist)")
	}
}

func TestScalabilityExperimentShape(t *testing.T) {
	tbl, err := Scalability(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 6 {
		t.Fatalf("extscale shape %dx%d, want 15x6", len(tbl.Rows), len(tbl.Columns))
	}
	for _, row := range tbl.Rows {
		gain := cellFloat(t, row[5])
		if gain < 0.9 {
			t.Errorf("%s: filter reduced sustainable machine size (gain %.2f)", row[0], gain)
		}
	}
}

func TestChartForFigures(t *testing.T) {
	tbl, err := Figure9(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	chart, ok := ChartFor("fig9", tbl)
	if !ok {
		t.Fatal("fig9 should be chartable")
	}
	if len(chart.Series) != 3 {
		t.Errorf("fig9 chart has %d series, want 3", len(chart.Series))
	}
	for _, s := range chart.Series {
		if len(s.Values) != len(figure9CzoneBits) {
			t.Errorf("series %s has %d points, want %d", s.Name, len(s.Values), len(figure9CzoneBits))
		}
	}
	if chart.YMax != 100 {
		t.Error("hit-rate chart should be scaled 0-100")
	}
}

func TestChartForFig3FiltersRows(t *testing.T) {
	tbl, err := Figure3(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	chart, ok := ChartFor("fig3", tbl)
	if !ok {
		t.Fatal("fig3 should be chartable")
	}
	if len(chart.Series) >= 15 {
		t.Errorf("fig3 chart should subset the 15 curves, has %d", len(chart.Series))
	}
}

func TestChartForTablesNotChartable(t *testing.T) {
	tbl, err := Table2(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ChartFor("table2", tbl); ok {
		t.Error("tables must not be chartable")
	}
}
