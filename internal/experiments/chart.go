// Chart conversion: the figure experiments can render as ASCII line
// charts (`paperexp -plot`) in addition to their data tables.
package experiments

import (
	"strconv"

	"streamsim/internal/plot"
	"streamsim/internal/tab"
)

// chartable marks the experiments that are line charts in the paper
// and selects which benchmarks to draw (all 15 curves of Figure 3
// would be unreadable; the paper splits them over two graphs, we pick
// the representative spread).
var chartable = map[string]struct {
	xLabel, yLabel string
	rows           map[string]bool // nil = all rows
}{
	"fig3": {
		xLabel: "number of streams", yLabel: "stream hit rate (%)",
		rows: map[string]bool{
			"embar": true, "mgrid": true, "cgm": true, "appbt": true,
			"fftpde": true, "adm": true, "trfd": true,
		},
	},
	"fig9": {
		xLabel: "czone size (bits)", yLabel: "stream hit rate (%)",
	},
}

// ChartFor converts a rendered figure table into a line chart. ok is
// false for experiments that are not line figures.
func ChartFor(id string, t *tab.Table) (*plot.Chart, bool) {
	spec, isChart := chartable[id]
	if !isChart {
		return nil, false
	}
	c := &plot.Chart{
		Title:  t.Title,
		XLabel: spec.xLabel,
		YLabel: spec.yLabel,
		XTicks: append([]string(nil), t.Columns[1:]...),
		YMin:   0,
		YMax:   100,
		Height: 22,
	}
	for _, row := range t.Rows {
		if len(row) < 2 {
			continue
		}
		name := row[0]
		if spec.rows != nil && !spec.rows[name] {
			continue
		}
		s := plot.Series{Name: name}
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				continue
			}
			s.Values = append(s.Values, v)
		}
		c.Series = append(c.Series, s)
	}
	return c, true
}
