// Extension experiment: effective CPI. The paper argues (Section 4.2)
// that hit rate is the right metric for its purposes and leaves
// execution time to the reader; this experiment is that reader's
// follow-up, using the internal/timing model to convert each
// benchmark's behaviour into cycles on a circa-1994 in-order machine.
package experiments

import (
	"context"

	"streamsim/internal/core"
	"streamsim/internal/tab"
	"streamsim/internal/timing"
	"streamsim/internal/workload"
)

// CPI estimates per-benchmark cycles-per-instruction for three memory
// systems: bare L1 + memory, L1 + unfiltered streams, and the paper's
// full filtered configuration. It is an extension — no paper artefact
// corresponds to it — registered as "extcpi".
func CPI(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Extension: effective CPI (in-order CPU, 50-cycle memory, 8-cycle bus blocks)",
		Columns: []string{
			"benchmark", "CPI bare", "CPI streams", "CPI filtered", "speedup", "bus-wait %",
		},
		Notes: []string{
			"speedup = bare / filtered; bus-wait % is the share of filtered-system cycles",
			"spent waiting for prefetch traffic to drain — the time cost of EB",
		},
	}
	lat := timing.DefaultLatencies()
	for _, name := range workload.Names() {
		size := table1Size(name)
		bare, err := runTimed(ctx, name, size, opt.Scale, noStreams(), lat)
		if err != nil {
			return nil, err
		}
		plain, err := runTimed(ctx, name, size, opt.Scale, plainStreams(10), lat)
		if err != nil {
			return nil, err
		}
		full, err := runTimed(ctx, name, size, opt.Scale, stridedStreams(16), lat)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if full.CPI() > 0 {
			speedup = bare.CPI() / full.CPI()
		}
		busPct := 0.0
		if full.Cycles > 0 {
			busPct = 100 * float64(full.BusWaitCycles) / float64(full.Cycles)
		}
		t.AddRow(name,
			tab.F2(bare.CPI()), tab.F2(plain.CPI()), tab.F2(full.CPI()),
			tab.F2(speedup), tab.F(busPct))
	}
	return t, nil
}

// runTimed replays a benchmark trace through a timing model.
func runTimed(ctx context.Context, name string, size workload.Size, scale float64,
	cfg core.Config, lat timing.Latencies) (timing.Stats, error) {
	tr, err := record(ctx, name, size, scale)
	if err != nil {
		return timing.Stats{}, err
	}
	m, err := timing.New(cfg, lat)
	if err != nil {
		return timing.Stats{}, err
	}
	if err := replayTimed(ctx, m, tr); err != nil {
		return timing.Stats{}, err
	}
	return m.Stats(), nil
}
