// Extension experiment: effective CPI. The paper argues (Section 4.2)
// that hit rate is the right metric for its purposes and leaves
// execution time to the reader; this experiment is that reader's
// follow-up, using the internal/timing model to convert each
// benchmark's behaviour into cycles on a circa-1994 in-order machine.
package experiments

import (
	"context"

	"streamsim/internal/core"
	"streamsim/internal/tab"
	"streamsim/internal/timing"
	"streamsim/internal/workload"
)

// CPI estimates per-benchmark cycles-per-instruction for three memory
// systems: bare L1 + memory, L1 + unfiltered streams, and the paper's
// full filtered configuration. It is an extension — no paper artefact
// corresponds to it — registered as "extcpi".
func CPI(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Extension: effective CPI (in-order CPU, 50-cycle memory, 8-cycle bus blocks)",
		Columns: []string{
			"benchmark", "CPI bare", "CPI streams", "CPI filtered", "speedup", "bus-wait %",
		},
		Notes: []string{
			"speedup = bare / filtered; bus-wait % is the share of filtered-system cycles",
			"spent waiting for prefetch traffic to drain — the time cost of EB",
		},
	}
	lat := timing.DefaultLatencies()
	for _, name := range workload.Names() {
		size := table1Size(name)
		tr, err := record(ctx, name, size, opt.Scale)
		if err != nil {
			return nil, err
		}
		// All three memory systems replay from one decode of the trace.
		models := make([]*timing.Model, 3)
		for i, cfg := range []core.Config{noStreams(), plainStreams(10), stridedStreams(16)} {
			if models[i], err = timing.New(cfg, lat); err != nil {
				return nil, err
			}
		}
		if err := replayTimedMulti(ctx, models, tr); err != nil {
			return nil, err
		}
		bare, plain, full := models[0].Stats(), models[1].Stats(), models[2].Stats()
		speedup := 0.0
		if full.CPI() > 0 {
			speedup = bare.CPI() / full.CPI()
		}
		busPct := 0.0
		if full.Cycles > 0 {
			busPct = 100 * float64(full.BusWaitCycles) / float64(full.Cycles)
		}
		t.AddRow(name,
			tab.F2(bare.CPI()), tab.F2(plain.CPI()), tab.F2(full.CPI()),
			tab.F2(speedup), tab.F(busPct))
	}
	return t, nil
}
