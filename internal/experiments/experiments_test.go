package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"streamsim/internal/cache"
	"streamsim/internal/workload"
)

// quick runs experiments at a small scale to keep the suite fast.
var quick = Options{Scale: 0.1}

func TestLookup(t *testing.T) {
	for _, e := range All() {
		got, err := Lookup(e.ID)
		if err != nil {
			t.Errorf("Lookup(%q): %v", e.ID, err)
		}
		if got.Paper != e.Paper {
			t.Errorf("Lookup(%q) returned %q", e.ID, got.Paper)
		}
	}
	if _, err := Lookup("table99"); err == nil {
		t.Error("unknown id should be rejected")
	}
}

func TestAllInPaperOrder(t *testing.T) {
	want := []string{"table1", "fig3", "table2", "fig5", "table3", "fig8", "fig9", "table4", "extcpi", "extbase", "extcost", "extscale", "extbank"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, e.ID, want[i])
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1.0 {
		t.Errorf("default scale = %v, want 1.0", o.Scale)
	}
	o = Options{Scale: 0.5}.withDefaults()
	if o.Scale != 0.5 {
		t.Error("explicit scale overwritten")
	}
}

func TestTable1Shape(t *testing.T) {
	tbl, err := Table1(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 {
		t.Errorf("Table 1 has %d rows, want 15", len(tbl.Rows))
	}
	if len(tbl.Columns) != 8 {
		t.Errorf("Table 1 has %d columns, want 8", len(tbl.Columns))
	}
	if tbl.Rows[0][0] != "embar" || tbl.Rows[14][0] != "trfd" {
		t.Error("rows not in the paper's Table 1 order")
	}
	out := tbl.Render()
	if !strings.Contains(out, "benchmark") || !strings.Contains(out, "mgrid") {
		t.Error("render incomplete")
	}
}

func TestFigure3Shape(t *testing.T) {
	tbl, err := Figure3(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 {
		t.Errorf("Figure 3 has %d rows, want 15", len(tbl.Rows))
	}
	// benchmark + one column per stream count.
	if len(tbl.Columns) != 1+len(figure3StreamCounts) {
		t.Errorf("Figure 3 has %d columns, want %d", len(tbl.Columns), 1+len(figure3StreamCounts))
	}
}

func TestTable2Shape(t *testing.T) {
	tbl, err := Table2(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 4 {
		t.Errorf("Table 2 shape %dx%d, want 15x4", len(tbl.Rows), len(tbl.Columns))
	}
}

func TestFigure5Shape(t *testing.T) {
	tbl, err := Figure5(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 7 {
		t.Errorf("Figure 5 shape %dx%d, want 15x7", len(tbl.Rows), len(tbl.Columns))
	}
}

func TestTable3SharesSumTo100(t *testing.T) {
	tbl, err := Table3(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		var sum float64
		for _, cell := range row[1:6] {
			var v float64
			if _, err := fmt.Sscan(cell, &v); err != nil {
				t.Fatalf("%s: bad cell %q", row[0], cell)
			}
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: length shares sum to %.1f, want ~100", row[0], sum)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	tbl, err := Figure8(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 5 {
		t.Errorf("Figure 8 shape %dx%d, want 15x5", len(tbl.Rows), len(tbl.Columns))
	}
}

func TestFigure9Shape(t *testing.T) {
	tbl, err := Figure9(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("Figure 9 has %d rows, want 3 (appsp, fftpde, trfd)", len(tbl.Rows))
	}
	if len(tbl.Columns) != 1+len(figure9CzoneBits) {
		t.Errorf("Figure 9 has %d columns, want %d", len(tbl.Columns), 1+len(figure9CzoneBits))
	}
}

func TestTable4Shape(t *testing.T) {
	tbl, err := Table4(context.Background(), quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 { // 5 benchmarks x 2 sizes
		t.Errorf("Table 4 has %d rows, want 10", len(tbl.Rows))
	}
}

func TestTraceCacheReuse(t *testing.T) {
	ResetTraceCache()
	a, err := record(context.Background(), "embar", workload.SizeSmall, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := record(context.Background(), "embar", workload.SizeSmall, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second record() should return the cached trace")
	}
	c, err := record(context.Background(), "embar", workload.SizeSmall, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different scale must not share a cache entry")
	}
}

func TestMissStreamDeterministic(t *testing.T) {
	a, err := missStream(context.Background(), "is", workload.SizeSmall, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.events) == 0 {
		t.Fatal("empty miss stream")
	}
	b, err := missStream(context.Background(), "is", workload.SizeSmall, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("miss stream should be memoized")
	}
}

func TestL2HitRateMonotonicInSize(t *testing.T) {
	ms, err := missStream(context.Background(), "cgm", workload.SizeSmall, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, size := range []uint{64 << 10, 512 << 10, 4 << 20} {
		hr, err := ms.l2LocalHitRate(context.Background(), cache.Config{
			Name: "L2", SizeBytes: size, Assoc: 4, BlockBytes: 64,
			Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
		})
		if err != nil {
			t.Fatal(err)
		}
		if hr < prev-2 { // small tolerance: LRU anomalies exist
			t.Errorf("L2 hit rate fell with size: %.1f after %.1f", hr, prev)
		}
		prev = hr
	}
}

func TestMinL2ReportsUnreachable(t *testing.T) {
	// A target of 101% can never be met.
	name, _, err := minL2ForHitRate(context.Background(), "is", workload.SizeSmall, 0.05, 101)
	if err != nil {
		t.Fatal(err)
	}
	if name != "> 4 MB" {
		t.Errorf("unreachable target reported %q, want \"> 4 MB\"", name)
	}
}

func TestL2SizeName(t *testing.T) {
	cases := map[uint]string{
		64 << 10: "64 KB",
		1 << 20:  "1 MB",
		4 << 20:  "4 MB",
	}
	for in, want := range cases {
		if got := l2SizeName(in); got != want {
			t.Errorf("l2SizeName(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRunParallelCoversAllIndices(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	err := runParallel(context.Background(), 37, func(i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 37 {
		t.Errorf("ran %d indices, want 37", len(seen))
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := runParallel(context.Background(), 10, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestRunParallelZero(t *testing.T) {
	if err := runParallel(context.Background(), 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero tasks should succeed, got %v", err)
	}
}
