// Published numbers from the paper, used for side-by-side comparison
// columns in the regenerated tables. Values read from the paper's
// Table 1, Table 2, Table 3, Table 4 and the prose around Figures 5
// and 8 (figure curves quoted in the text are included; purely
// graphical values are approximate and marked so in EXPERIMENTS.md).
package experiments

// paperTable1 holds Table 1's per-benchmark characteristics.
var paperTable1 = map[string]struct {
	DataMB  float64
	MissPct float64
	MPIPct  float64
}{
	"embar":  {1.0, 0.28, 0.10},
	"mgrid":  {1.0, 0.84, 0.08},
	"cgm":    {2.9, 3.33, 1.43},
	"fftpde": {14.7, 3.08, 0.50},
	"is":     {0.80, 0.53, 0.20},
	"appsp":  {2.2, 2.24, 0.38},
	"appbt":  {4.2, 1.88, 0.45},
	"applu":  {5.4, 1.26, 0.18},
	"spec77": {1.3, 0.50, 0.15},
	"adm":    {0.6, 0.04, 0.00},
	"bdna":   {2.1, 1.39, 0.42},
	"dyfesm": {0.1, 0.01, 0.00},
	"mdg":    {0.2, 0.03, 0.01},
	"qcd":    {9.2, 0.16, 0.06},
	"trfd":   {8.0, 0.05, 0.00},
}

// paperTable2 holds Table 2's extra bandwidth of ordinary streams (%).
var paperTable2 = map[string]float64{
	"embar": 8, "cgm": 30, "mgrid": 36, "fftpde": 158, "is": 48,
	"appsp": 134, "appbt": 62, "applu": 38,
	"spec77": 44, "adm": 150, "bdna": 68, "dyfesm": 108, "mdg": 76,
	"qcd": 74, "trfd": 96,
}

// paperTable3 holds Table 3's stream length distribution (% of hits in
// buckets 1-5, 6-10, 11-15, 16-20, >20) at ten streams.
var paperTable3 = map[string][5]float64{
	"embar":  {1, 0, 0, 0, 99},
	"mgrid":  {13, 1, 0, 0, 86},
	"cgm":    {3, 0, 0, 0, 97},
	"fftpde": {41, 0, 0, 0, 59},
	"is":     {4, 2, 0, 1, 93},
	"appsp":  {5, 0, 0, 11, 84},
	"appbt":  {63, 0, 0, 0, 37},
	"applu":  {22, 3, 4, 7, 64},
	"spec77": {14, 1, 1, 0, 84},
	"adm":    {73, 12, 5, 1, 9},
	"bdna":   {36, 17, 8, 6, 33},
	"dyfesm": {50, 17, 7, 1, 25},
	"mdg":    {32, 9, 7, 6, 46},
	"qcd":    {50, 6, 1, 0, 43},
	"trfd":   {7, 2, 1, 0, 90},
}

// paperFig5 holds the filter numbers the paper quotes in prose
// (Section 6.1): hit rate and EB with and without the filter.
var paperFig5 = map[string]struct {
	HitPlain, HitFiltered float64 // percent; 0 = not quoted
	EBPlain, EBFiltered   float64
}{
	"trfd":   {50, 50, 96, 11},
	"is":     {55, 55, 48, 7},
	"appsp":  {0, 0, 134, 45},
	"cgm":    {0, 0, 30, 13},
	"fftpde": {26, 37, 158, 37},
	"appbt":  {65, 45, 62, 48},
}

// paperFig8 holds the Section 7.1 stride-detection gains quoted in
// prose: unit-stride-only vs constant-stride hit rates.
var paperFig8 = map[string]struct{ Unit, Strided float64 }{
	"fftpde": {26, 71},
	"appsp":  {33, 65},
	"trfd":   {50, 65},
}

// paperTable4 holds Table 4: stream hit rate and the minimum
// secondary cache achieving it, per input size.
var paperTable4 = []struct {
	Name       string
	SmallInput string
	LargeInput string
	SmallHit   float64
	LargeHit   float64
	SmallL2    string
	LargeL2    string
}{
	{"appsp", "12^3", "24^3", 43, 65, "128 KB", "1 MB"},
	{"appbt", "12^3", "24^3", 50, 52, "512 KB", "2 MB"},
	{"applu", "12^3", "24^3", 62, 73, "1 MB", "2 MB"},
	{"cgm", "1400", "5600", 85, 51, "1 MB", "64 KB"},
	{"mgrid", "32^3", "64^3", 76, 88, "2 MB", "4 MB"},
}
