// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment returns a tab.Table whose rows
// carry both the measured values and, where the paper prints a number,
// the published value for side-by-side comparison.
//
// Workload traces are recorded once per (benchmark, size) and replayed
// across memory-system configurations, exactly as the paper replays
// its Shade traces through different simulator settings.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"streamsim/internal/cache"
	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/stream"
	"streamsim/internal/tab"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// Options tune how expensively the experiments run.
type Options struct {
	// Scale is the workload iteration scale in (0, 1]; 1 reproduces
	// the full traces, smaller values run faster for smoke tests.
	Scale float64
	// Shards forces the window-shard count of the hit-rate replays
	// (core.ShardOptions.Shards): 0 derives the chunk plan from each
	// trace's window count, 1 forces exact sequential replays. The
	// timing experiments (extscale, extcpi) ignore it — cycle
	// accounting is order-dependent, so they always replay
	// sequentially.
	Shards int
	// Streams overrides nothing; experiments fix their own memory
	// system configurations per the paper.
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	return o
}

// Experiment identifies one paper artefact.
type Experiment struct {
	// ID is the harness name (e.g. "fig3", "table4").
	ID string
	// Paper names the artefact in the paper.
	Paper string
	// Run executes the experiment. Cancelling ctx aborts the trace
	// generation and replay loops within one batch boundary and
	// returns ctx.Err().
	Run func(ctx context.Context, o Options) (*tab.Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: benchmark characteristics", Table1},
		{"fig3", "Figure 3: hit rate vs number of streams", Figure3},
		{"table2", "Table 2: extra bandwidth of ordinary streams", Table2},
		{"fig5", "Figure 5: filter effect on hit rate and EB", Figure5},
		{"table3", "Table 3: stream length distribution", Table3},
		{"fig8", "Figure 8: non-unit stride detection", Figure8},
		{"fig9", "Figure 9: hit rate vs czone size", Figure9},
		{"table4", "Table 4: streams versus secondary cache", Table4},
		{"extcpi", "Extension: effective CPI under a timing model", CPI},
		{"extbase", "Extension: OBL and RPT prefetcher baselines", Baselines},
		{"extcost", "Extension: equal-cost L2 node vs stream node", EqualCost},
		{"extscale", "Extension: shared-memory scalability with and without the filter", Scalability},
		{"extbank", "Extension: interleaved-memory bank behaviour of the traffic", BankBehaviour},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// table1Size returns the input size each benchmark is traced at for
// the single-input experiments (Tables 1-3, Figures 3-9). The paper's
// Table 1 inputs correspond to SizeLarge for the three NAS solvers it
// lists at bigger grids; everything else runs its small input.
func table1Size(name string) workload.Size {
	switch name {
	case "appsp", "appbt", "applu":
		return workload.SizeLarge
	default:
		return workload.SizeSmall
	}
}

// recorded is an in-memory trace: the reference stream (held in a
// compact delta-encoded trace.Store rather than a []mem.Access, a
// several-fold memory saving that also keeps replay from streaming
// 24 bytes per reference through the host caches) and the retired
// instruction count of one workload run.
type recorded struct {
	store *trace.Store
	insts uint64
}

// newRecorded sizes the store from the per-workload reference
// estimate so recording never regrows mid-trace.
func newRecorded(name string, size workload.Size, scale float64) *recorded {
	return &recorded{store: trace.NewStore(int(workload.EstimateRefs(name, size, scale)))}
}

// Access implements workload.Sink.
func (r *recorded) Access(a mem.Access) { r.store.Append(a) }

// AccessBatch implements workload.BatchSink.
func (r *recorded) AccessBatch(accs []mem.Access) { r.store.AppendBatch(accs) }

// AddInstructions implements workload.Sink.
func (r *recorded) AddInstructions(n uint64) { r.insts += n }

// each decodes the trace in batches and calls fn on every access in
// order — the shared iteration shape for consumers that want scalar
// visits (miss-stream derivation, the prefetcher baselines, the
// timing replay) without paying per-access decode state. ctx is
// polled once per batch; a cancelled walk returns ctx.Err().
func (r *recorded) each(ctx context.Context, fn func(a *mem.Access)) error {
	done := ctx.Done()
	buf := make([]mem.Access, trace.ReplayBatchLen)
	it := r.store.Iter()
	for n := it.Next(buf); n > 0; n = it.Next(buf) {
		for i := 0; i < n; i++ {
			fn(&buf[i])
		}
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	replayedRefs.Add(uint64(r.store.Len()))
	return nil
}

// replay feeds the trace into a memory system through the batched
// hot path, window-sharded across workers when the trace is long
// enough (core.ReplayStoreWindowed; systems carrying traffic hooks
// fall back to an exact sequential pass automatically).
func (r *recorded) replay(ctx context.Context, sys *core.System, opt core.ShardOptions) error {
	if err := core.ReplayStoreWindowed(ctx, sys, r.store, opt); err != nil {
		return err
	}
	sys.AddInstructions(r.insts)
	replayedRefs.Add(uint64(r.store.Len()))
	return nil
}

// replayMulti feeds the trace into every system from one decode per
// batch via the window-sharded fan-out engine: N configs share each
// decoded 512-reference slice while it is L1-hot, and long traces
// additionally split into window chunks across workers. The chunk
// plan depends only on the trace and opt, never on the host, so the
// published numbers are machine-independent; short traces replay
// exactly as the sequential engine would.
func (r *recorded) replayMulti(ctx context.Context, systems []*core.System, opt core.ShardOptions) error {
	if err := core.ReplayStoreMultiWindowed(ctx, systems, r.store, opt); err != nil {
		return err
	}
	for _, sys := range systems {
		sys.AddInstructions(r.insts)
	}
	replayedRefs.Add(uint64(r.store.Len()) * uint64(len(systems)))
	return nil
}

// replayedRefs counts references replayed (or scalar-walked) through
// completed trace passes, process-wide. The simd service exposes it as
// a throughput metric; the add-per-completed-pass granularity keeps
// the replay loop free of per-batch atomics.
var replayedRefs atomic.Uint64

// ReplayedRefs returns the total references replayed through completed
// trace passes since process start.
func ReplayedRefs() uint64 { return replayedRefs.Load() }

// traceCache memoizes recorded traces per (name, size, scale) so a
// multi-configuration experiment generates each workload once.
var traceCache sync.Map

type traceKey struct {
	name  string
	size  workload.Size
	scale float64
}

// traceCacheHits counts record() calls served from the memoized
// trace cache, process-wide (a simd /metrics gauge).
var traceCacheHits atomic.Uint64

// TraceCacheHits returns how many trace lookups were served from the
// in-process trace cache since process start.
func TraceCacheHits() uint64 { return traceCacheHits.Load() }

// record returns the (possibly cached) trace of a benchmark.
func record(ctx context.Context, name string, size workload.Size, scale float64) (*recorded, error) {
	key := traceKey{name, size, scale}
	if v, ok := traceCache.Load(key); ok {
		traceCacheHits.Add(1)
		return v.(*recorded), nil
	}
	w, err := workload.New(name, size)
	if err != nil {
		return nil, err
	}
	r := newRecorded(name, size, scale)
	if err := w.RunContext(ctx, r, scale); err != nil {
		return nil, err
	}
	if err := r.store.Err(); err != nil {
		return nil, err
	}
	v, loaded := traceCache.LoadOrStore(key, r)
	if loaded {
		traceCacheHits.Add(1)
	}
	return v.(*recorded), nil
}

// ResetTraceCache drops memoized traces (used by benchmarks that want
// to measure generation cost). Entries are deleted in place rather
// than by reassigning the sync.Map value, which would race with
// concurrent Loads from in-flight experiment runs.
func ResetTraceCache() {
	traceCache.Range(func(k, _ any) bool {
		traceCache.Delete(k)
		return true
	})
	l2StreamCache.Range(func(k, _ any) bool {
		l2StreamCache.Delete(k)
		return true
	})
}

// runParallel executes fn(0..n-1) across up to GOMAXPROCS workers and
// returns the first error. Each simulation run builds its own System,
// so runs are independent; only the memoized trace caches are shared
// (they are concurrency-safe). A cancelled ctx stops the dispatch of
// further indices; indices already running observe ctx themselves
// through the replay loops.
func runParallel(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Memory-system configuration builders, named after the paper's setups.

// plainStreams is Section 5: n streams of depth 2, no filters.
func plainStreams(n int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Streams = stream.Config{Streams: n, Depth: 2}
	cfg.UnitFilterEntries = 0
	cfg.Stride = core.NoStrideDetection
	return cfg
}

// filteredStreams is Section 6: 10 streams behind a 16-entry
// unit-stride filter.
func filteredStreams() core.Config {
	cfg := plainStreams(10)
	cfg.UnitFilterEntries = 16
	return cfg
}

// stridedStreams is Section 7: the filtered configuration plus a
// 16-entry non-unit-stride (czone) filter.
func stridedStreams(czoneBits uint) core.Config {
	cfg := filteredStreams()
	cfg.Stride = core.CzoneScheme
	cfg.StrideFilterEntries = 16
	cfg.CzoneBits = czoneBits
	return cfg
}

// noStreams is the bare L1 + memory system used for Table 1.
func noStreams() core.Config {
	cfg := core.DefaultConfig()
	cfg.Streams = stream.Config{}
	cfg.UnitFilterEntries = 0
	cfg.Stride = core.NoStrideDetection
	return cfg
}

// runConfig replays a benchmark trace through a configuration.
func runConfig(ctx context.Context, name string, size workload.Size, opt Options, cfg core.Config) (core.Results, error) {
	tr, err := record(ctx, name, size, opt.Scale)
	if err != nil {
		return core.Results{}, err
	}
	sys, err := core.New(cfg)
	if err != nil {
		return core.Results{}, err
	}
	if err := tr.replay(ctx, sys, core.ShardOptions{Shards: opt.Shards}); err != nil {
		return core.Results{}, err
	}
	return sys.Results(), nil
}

// runConfigs replays one benchmark trace through every configuration,
// decoding each batch once for all of them. It is the multi-config
// analogue of runConfig; each entry of the returned slice is
// byte-identical to a runConfig call with the same configuration.
func runConfigs(ctx context.Context, name string, size workload.Size, opt Options, cfgs []core.Config) ([]core.Results, error) {
	tr, err := record(ctx, name, size, opt.Scale)
	if err != nil {
		return nil, err
	}
	systems := make([]*core.System, len(cfgs))
	for i, cfg := range cfgs {
		if systems[i], err = core.New(cfg); err != nil {
			return nil, err
		}
	}
	if err := tr.replayMulti(ctx, systems, core.ShardOptions{Shards: opt.Shards}); err != nil {
		return nil, err
	}
	res := make([]core.Results, len(systems))
	for i, sys := range systems {
		res[i] = sys.Results()
	}
	return res, nil
}

// l2MissStream is the L1 miss-side traffic of one trace: the block
// fills and write-backs that a secondary cache would observe. It is
// recorded once and replayed across L2 configurations (Table 4).
type l2MissStream struct {
	events []l2Event
}

type l2Event struct {
	addr  mem.Addr
	write bool // write-back of a dirty victim
}

// l2StreamCache memoizes miss streams per (name, size, scale).
var l2StreamCache sync.Map

// missStream derives the L1 miss traffic of a benchmark trace.
func missStream(ctx context.Context, name string, size workload.Size, scale float64) (*l2MissStream, error) {
	key := traceKey{name, size, scale}
	if v, ok := l2StreamCache.Load(key); ok {
		return v.(*l2MissStream), nil
	}
	tr, err := record(ctx, name, size, scale)
	if err != nil {
		return nil, err
	}
	cfg := noStreams()
	l1i, err := cache.New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	geom := cfg.Geometry
	ms := &l2MissStream{}
	err = tr.each(ctx, func(a *mem.Access) {
		c := l1d
		if a.Kind == mem.IFetch {
			c = l1i
		}
		var res cache.Result
		if a.Kind == mem.Write {
			res = c.Write(uint64(a.Addr))
		} else {
			res = c.Read(uint64(a.Addr))
		}
		if !res.Sampled || res.Hit {
			return
		}
		if res.WroteBack {
			ms.events = append(ms.events, l2Event{
				addr:  geom.BlockToByte(mem.Addr(res.VictimBlock)),
				write: true,
			})
		}
		if res.Filled {
			ms.events = append(ms.events, l2Event{addr: geom.BlockBase(a.Addr)})
		}
	})
	if err != nil {
		return nil, err
	}
	v, _ := l2StreamCache.LoadOrStore(key, ms)
	return v.(*l2MissStream), nil
}

// l2LocalHitRate replays a miss stream through one secondary cache
// configuration and returns the local hit rate in percent.
func (ms *l2MissStream) l2LocalHitRate(ctx context.Context, cfg cache.Config) (float64, error) {
	hrs, err := ms.l2LocalHitRates(ctx, []cache.Config{cfg})
	if err != nil {
		return 0, err
	}
	return hrs[0], nil
}

// l2LocalHitRates replays a miss stream through several secondary
// cache configurations in one pass over the events — the Table 4
// search probes six (assoc, block) shapes per cache size, and the
// event list only has to stream through the host's caches once for
// all of them. Hit rates return in percent, in configuration order,
// identical to separate l2LocalHitRate calls. ctx is polled every
// ReplayBatchLen events.
func (ms *l2MissStream) l2LocalHitRates(ctx context.Context, cfgs []cache.Config) ([]float64, error) {
	caches := make([]*cache.Cache, len(cfgs))
	for i, cfg := range cfgs {
		l2, err := cache.New(cfg)
		if err != nil {
			return nil, err
		}
		caches[i] = l2
	}
	done := ctx.Done()
	for i, ev := range ms.events {
		if ev.write {
			for _, l2 := range caches {
				l2.Write(uint64(ev.addr))
			}
		} else {
			for _, l2 := range caches {
				l2.Read(uint64(ev.addr))
			}
		}
		if i%trace.ReplayBatchLen == trace.ReplayBatchLen-1 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
	}
	hrs := make([]float64, len(caches))
	for i, l2 := range caches {
		hrs[i] = 100 * l2.Stats().HitRate()
	}
	return hrs, nil
}
