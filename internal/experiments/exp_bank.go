// Extension experiment: bank behaviour of the memory traffic. The
// paper assumes "sufficient main memory bandwidth"; on a real
// interleaved memory, bandwidth depends on which banks the traffic
// lands on. Strided prefetching — exactly what the czone scheme emits
// for fftpde's power-of-two strides — can camp on a fraction of the
// banks. This experiment replays each benchmark's actual memory
// traffic (demand fetches, write-backs and issued prefetches, in
// order) through interleaved-memory models of 8 and 32 banks.
package experiments

import (
	"context"

	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/memctl"
	"streamsim/internal/tab"
	"streamsim/internal/workload"
)

// bankRequestSpacing is the modelled cycles between successive memory
// requests: a heavily loaded system (each request arrives before the
// previous bank recovers when the traffic camps).
const bankRequestSpacing = 4

// trafficOf captures the ordered block sequence a configuration moves
// over the memory interface for one benchmark trace.
func trafficOf(ctx context.Context, name string, size workload.Size, scale float64, cfg core.Config) ([]mem.Addr, error) {
	tr, err := record(ctx, name, size, scale)
	if err != nil {
		return nil, err
	}
	var blocks []mem.Addr
	hook := func(blk mem.Addr) { blocks = append(blocks, blk) }
	cfg.OnMemoryTraffic = hook
	cfg.Streams.OnPrefetch = hook
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := tr.replay(ctx, sys, core.ShardOptions{}); err != nil {
		return nil, err
	}
	return blocks, nil
}

// bankStats replays a block sequence through an interleaved memory.
func bankStats(blocks []mem.Addr, banks int) (memctl.Stats, error) {
	b, err := memctl.New(memctl.Config{Banks: banks, BusyCycles: 20})
	if err != nil {
		return memctl.Stats{}, err
	}
	now := uint64(0)
	for _, blk := range blocks {
		b.Access(blk, now)
		now += bankRequestSpacing
	}
	return b.Stats(), nil
}

// BankBehaviour reports per-benchmark bank-conflict rates and average
// waits under 8- and 32-bank memories, for the full stream
// configuration's traffic. Registered as "extbank".
func BankBehaviour(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Extension: interleaved-memory bank behaviour of the stream traffic",
		Columns: []string{
			"benchmark", "traffic blocks",
			"conflict% 8 banks", "avg wait 8", "conflict% 32 banks", "avg wait 32",
		},
		Notes: []string{
			"traffic = demand fetches + write-backs + issued prefetches, in order,",
			"one request per 4 cycles, 20-cycle bank recovery; power-of-two strides",
			"(fftpde, trfd) concentrate on few banks and recover with more interleave",
		},
	}
	names := workload.Names()
	type row struct {
		n       int
		s8, s32 memctl.Stats
	}
	rows := make([]row, len(names))
	err := runParallel(ctx, len(names), func(i int) error {
		name := names[i]
		blocks, err := trafficOf(ctx, name, table1Size(name), opt.Scale, stridedStreams(16))
		if err != nil {
			return err
		}
		s8, err := bankStats(blocks, 8)
		if err != nil {
			return err
		}
		s32, err := bankStats(blocks, 32)
		if err != nil {
			return err
		}
		rows[i] = row{n: len(blocks), s8: s8, s32: s32}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		r := rows[i]
		t.AddRow(name, tab.D(uint64(r.n)),
			tab.F(100*r.s8.ConflictRate()), tab.F(r.s8.AvgWait()),
			tab.F(100*r.s32.ConflictRate()), tab.F(r.s32.AvgWait()))
	}
	return t, nil
}
