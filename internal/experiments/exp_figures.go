// Figure experiments: the paper's Figures 3, 5, 8 and 9 as data
// tables (one column per x-axis point). Benchmarks fan out across the
// machine's cores; within a benchmark, every x-axis configuration
// replays from a single decode of the recorded trace (runConfigs), so
// a nine-point sweep decodes its trace once instead of nine times.
package experiments

import (
	"context"
	"fmt"

	"streamsim/internal/core"
	"streamsim/internal/tab"
	"streamsim/internal/workload"
)

// figure3StreamCounts is Figure 3's x axis.
var figure3StreamCounts = []int{1, 2, 3, 4, 5, 6, 7, 8, 10}

// Figure3 regenerates hit rate versus the number of streams for every
// benchmark (unfiltered, depth 2).
//
//simlint:deterministic
func Figure3(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	cols := []string{"benchmark"}
	for _, n := range figure3StreamCounts {
		cols = append(cols, fmt.Sprintf("%d", n))
	}
	t := &tab.Table{
		Title:   "Figure 3: stream hit rate (%) vs number of streams (depth 2, no filter)",
		Columns: cols,
		Notes: []string{
			"expected shape: most benchmarks plateau by 7-8 streams in the 50-80% band;",
			"fftpde/appsp stay low (non-unit strides), adm/dyfesm stay low (indirections)",
		},
	}
	names := workload.Names()
	nc := len(figure3StreamCounts)
	cells := make([]float64, len(names)*nc)
	err := runParallel(ctx, len(names), func(i int) error {
		name := names[i]
		cfgs := make([]core.Config, nc)
		for j, streams := range figure3StreamCounts {
			cfgs[j] = plainStreams(streams)
		}
		res, err := runConfigs(ctx, name, table1Size(name), opt, cfgs)
		if err != nil {
			return err
		}
		for j, r := range res {
			cells[i*nc+j] = r.StreamHitRate()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range names {
		row := []string{name}
		for si := 0; si < nc; si++ {
			row = append(row, tab.F(cells[bi*nc+si]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure5 regenerates the filter study: hit rate and extra bandwidth
// with and without the 16-entry unit-stride filter at ten streams.
func Figure5(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Figure 5: effect of the unit-stride filter (10 streams, 16 entries)",
		Columns: []string{
			"benchmark", "hit w/o", "hit w/", "EB w/o", "EB w/",
			"paper hit w/o->w/", "paper EB w/o->w/",
		},
	}
	names := workload.Names()
	type pair struct{ plain, filt [2]float64 } // hit, EB
	cells := make([]pair, len(names))
	err := runParallel(ctx, len(names), func(i int) error {
		name := names[i]
		res, err := runConfigs(ctx, name, table1Size(name), opt,
			[]core.Config{plainStreams(10), filteredStreams()})
		if err != nil {
			return err
		}
		plain, filt := res[0], res[1]
		cells[i] = pair{
			plain: [2]float64{plain.StreamHitRate(), plain.ExtraBandwidth()},
			filt:  [2]float64{filt.StreamHitRate(), filt.ExtraBandwidth()},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		refHit, refEB := "-", "-"
		if ref, ok := paperFig5[name]; ok {
			if ref.HitPlain > 0 {
				refHit = fmt.Sprintf("%.0f->%.0f", ref.HitPlain, ref.HitFiltered)
			}
			if ref.EBPlain > 0 {
				refEB = fmt.Sprintf("%.0f->%.0f", ref.EBPlain, ref.EBFiltered)
			}
		}
		c := cells[i]
		t.AddRow(name,
			tab.F(c.plain[0]), tab.F(c.filt[0]),
			tab.F(c.plain[1]), tab.F(c.filt[1]),
			refHit, refEB)
	}
	return t, nil
}

// Figure8 regenerates the non-unit-stride study: unit-stride-only
// streams versus the czone constant-stride scheme (both behind the
// unit-stride filter, 10 streams, 16-entry filters, czone 16 bits).
func Figure8(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Figure 8: unit-stride-only vs constant-stride detection (10 streams)",
		Columns: []string{
			"benchmark", "unit-only hit %", "constant-stride hit %",
			"paper unit", "paper strided",
		},
		Notes: []string{
			"expected: fftpde, appsp and trfd gain dramatically; others change little",
		},
	}
	names := workload.Names()
	cells := make([][2]float64, len(names))
	err := runParallel(ctx, len(names), func(i int) error {
		name := names[i]
		res, err := runConfigs(ctx, name, table1Size(name), opt,
			[]core.Config{filteredStreams(), stridedStreams(16)})
		if err != nil {
			return err
		}
		cells[i] = [2]float64{res[0].StreamHitRate(), res[1].StreamHitRate()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		pu, ps := "-", "-"
		if ref, ok := paperFig8[name]; ok {
			pu, ps = tab.F(ref.Unit), tab.F(ref.Strided)
		}
		t.AddRow(name, tab.F(cells[i][0]), tab.F(cells[i][1]), pu, ps)
	}
	return t, nil
}

// figure9CzoneBits is Figure 9's x axis.
var figure9CzoneBits = []uint{10, 12, 14, 16, 18, 20, 22, 24, 26}

// figure9Benchmarks are the programs with significant non-unit-stride
// references.
var figure9Benchmarks = []string{"appsp", "fftpde", "trfd"}

// Figure9 regenerates hit-rate sensitivity to the czone size for the
// three stride-heavy benchmarks.
//
//simlint:deterministic
func Figure9(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	cols := []string{"benchmark"}
	for _, b := range figure9CzoneBits {
		cols = append(cols, fmt.Sprintf("%d", b))
	}
	t := &tab.Table{
		Title:   "Figure 9: stream hit rate (%) vs czone size in bits (10 streams)",
		Columns: cols,
		Notes: []string{
			"expected: fftpde effective only in a middle czone window; appsp and trfd",
			"prefer large czones (paper: optimal czone is a little over twice the stride)",
		},
	}
	nc := len(figure9CzoneBits)
	cells := make([]float64, len(figure9Benchmarks)*nc)
	err := runParallel(ctx, len(figure9Benchmarks), func(i int) error {
		name := figure9Benchmarks[i]
		cfgs := make([]core.Config, nc)
		for j, bits := range figure9CzoneBits {
			cfgs[j] = stridedStreams(bits)
		}
		res, err := runConfigs(ctx, name, table1Size(name), opt, cfgs)
		if err != nil {
			return err
		}
		for j, r := range res {
			cells[i*nc+j] = r.StreamHitRate()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range figure9Benchmarks {
		row := []string{name}
		for si := 0; si < nc; si++ {
			row = append(row, tab.F(cells[bi*nc+si]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
