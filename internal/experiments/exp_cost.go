// Extension experiment: the paper's conclusion as a measurement. "The
// cost savings of stream buffers over large caches can be applied to
// increase the main memory bandwidth, resulting in a system with
// better overall performance" — this experiment builds both nodes at
// equal cost and times them.
package experiments

import (
	"context"

	"streamsim/internal/cache"
	"streamsim/internal/cost"
	"streamsim/internal/mem"
	"streamsim/internal/tab"
	"streamsim/internal/timing"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

// costClockMHz is the modelled processor clock.
const costClockMHz = 100

// EqualCost compares, per benchmark, a conventional node (1 MB L2,
// baseline bandwidth) against an equal-cost stream node whose L2
// savings were spent on memory bandwidth. Registered as "extcost".
func EqualCost(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	prices := cost.DefaultPrices()
	l2Node := cost.Node{L2KB: 1 << 10, BandwidthMBps: 300}
	streamNode, err := prices.EqualCostBandwidth(l2Node, cost.Node{Streams: 10, Filtered: true})
	if err != nil {
		return nil, err
	}
	l2Bus, err := cost.BusBlockCycles(l2Node, costClockMHz, 64)
	if err != nil {
		return nil, err
	}
	streamBus, err := cost.BusBlockCycles(streamNode, costClockMHz, 64)
	if err != nil {
		return nil, err
	}
	l2Cost, err := prices.Cost(l2Node)
	if err != nil {
		return nil, err
	}

	t := &tab.Table{
		Title: "Extension: equal-cost nodes — 1 MB L2 vs streams + extra bandwidth",
		Columns: []string{
			"benchmark", "CPI L2 node", "CPI stream node", "stream speedup",
		},
		Notes: []string{
			tab.F(l2Node.BandwidthMBps) + " MB/s + 1 MB L2 versus " +
				tab.F(streamNode.BandwidthMBps) + " MB/s + 10 filtered streams, both $" + tab.F(l2Cost),
			"the paper's conclusion: spend the SRAM dollars on bandwidth instead",
		},
	}

	names := workload.Names()
	cells := make([][2]float64, len(names))
	err = runParallel(ctx, len(names), func(i int) error {
		name := names[i]
		size := table1Size(name)
		tr, err := record(ctx, name, size, opt.Scale)
		if err != nil {
			return err
		}

		latL2 := timing.DefaultLatencies()
		latL2.BusBlock = l2Bus
		l2cfg := cache.Config{
			Name: "L2", SizeBytes: uint(l2Node.L2KB) << 10, Assoc: 4, BlockBytes: 64,
			Replacement: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
		}
		ml2, err := timing.NewWithL2(noStreams(), l2cfg, latL2)
		if err != nil {
			return err
		}

		latS := timing.DefaultLatencies()
		latS.BusBlock = streamBus
		ms, err := timing.New(stridedStreams(16), latS)
		if err != nil {
			return err
		}

		// Both nodes replay from one decode of the trace.
		if err := replayTimedMulti(ctx, []*timing.Model{ml2, ms}, tr); err != nil {
			return err
		}

		cells[i] = [2]float64{ml2.Stats().CPI(), ms.Stats().CPI()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		l2CPI, sCPI := cells[i][0], cells[i][1]
		speedup := 0.0
		if sCPI > 0 {
			speedup = l2CPI / sCPI
		}
		t.AddRow(name, tab.F2(l2CPI), tab.F2(sCPI), tab.F2(speedup))
	}
	return t, nil
}

// replayTimed feeds a recorded trace into a timing model, spreading
// the instruction count across the accesses.
func replayTimed(ctx context.Context, m *timing.Model, tr *recorded) error {
	return replayTimedMulti(ctx, []*timing.Model{m}, tr)
}

// replayTimedMulti feeds one recorded trace into several timing
// models from a single decode pass, spreading the instruction count
// across the accesses exactly as replayTimed always has, so each
// model's ledger is identical to an independent replayTimed run. The
// decode skips the PC stream: the timing model, like core.System,
// never reads Access.PC.
func replayTimedMulti(ctx context.Context, models []*timing.Model, tr *recorded) error {
	perAccess := uint64(0)
	if n := uint64(tr.store.Len()); n > 0 {
		perAccess = tr.insts / n
	}
	done := ctx.Done()
	buf := make([]mem.Access, trace.ReplayBatchLen)
	it := tr.store.Iter()
	var spent uint64
	for n := it.NextNoPC(buf); n > 0; n = it.NextNoPC(buf) {
		for _, m := range models {
			for i := 0; i < n; i++ {
				m.Access(buf[i])
				m.AddInstructions(perAccess)
			}
		}
		spent += uint64(n) * perAccess
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	if tr.insts > spent {
		for _, m := range models {
			m.AddInstructions(tr.insts - spent)
		}
	}
	replayedRefs.Add(uint64(tr.store.Len()) * uint64(len(models)))
	return nil
}
