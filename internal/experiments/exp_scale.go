// Extension experiment: the paper's opening motivation, quantified.
// "Memory system efficiency is particularly critical within the
// context of large-scale parallel machines (1K processors or more)
// because the costs of any inefficiencies are magnified by the scale
// of the system." Each processor's wasted prefetch bandwidth is
// multiplied by the processor count, so the unit-stride filter buys
// scalability directly: this experiment computes how many processors
// a fixed shared memory system sustains with and without it.
package experiments

import (
	"context"

	"streamsim/internal/tab"
	"streamsim/internal/timing"
	"streamsim/internal/workload"
)

// sharedMemoryBlocksPerKilocycle is the modelled machine-wide memory
// capacity: 250 block transfers per 1000 processor cycles (a T3D-class
// interconnect serving the whole partition).
const sharedMemoryBlocksPerKilocycle = 250.0

// trafficRate returns a configuration's memory-traffic demand in
// blocks per kilocycle, from a timed run.
func trafficRate(st timing.Stats, traffic uint64) float64 {
	if st.Cycles == 0 {
		return 0
	}
	return 1000 * float64(traffic) / float64(st.Cycles)
}

// Scalability compares how many processors the shared memory sustains
// per benchmark for unfiltered versus filtered streams. Registered as
// "extscale".
//
//simlint:deterministic
func Scalability(ctx context.Context, opt Options) (*tab.Table, error) {
	opt = opt.withDefaults()
	t := &tab.Table{
		Title: "Extension: processors sustained by a fixed shared memory system",
		Columns: []string{
			"benchmark", "blk/kcy unfiltered", "blk/kcy filtered",
			"procs unfiltered", "procs filtered", "gain",
		},
		Notes: []string{
			"demand per processor in blocks per 1000 cycles; capacity 250 blk/kcy;",
			"procs = capacity / per-processor demand — the EB saved by the filter",
			"multiplies straight into machine size (the paper's 1K-node argument)",
		},
	}
	lat := timing.DefaultLatencies()
	lat.BusBlock = 0 // per-node latency only; the shared capacity is the analysis
	names := workload.Names()
	cells := make([][2]float64, len(names))
	err := runParallel(ctx, len(names), func(i int) error {
		name := names[i]
		size := table1Size(name)
		tr, err := record(ctx, name, size, opt.Scale)
		if err != nil {
			return err
		}
		unfiltered, err := timing.New(plainStreams(10), lat)
		if err != nil {
			return err
		}
		filtered, err := timing.New(stridedStreams(16), lat)
		if err != nil {
			return err
		}
		models := []*timing.Model{unfiltered, filtered}
		if err := replayTimedMulti(ctx, models, tr); err != nil {
			return err
		}
		for j, m := range models {
			cells[i][j] = trafficRate(m.Stats(), m.Results().MemoryTraffic())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		un, fi := cells[i][0], cells[i][1]
		pu, pf := 0.0, 0.0
		if un > 0 {
			pu = sharedMemoryBlocksPerKilocycle / un
		}
		if fi > 0 {
			pf = sharedMemoryBlocksPerKilocycle / fi
		}
		gain := 0.0
		if pu > 0 {
			gain = pf / pu
		}
		t.AddRow(name, tab.F(un), tab.F(fi),
			tab.F(pu), tab.F(pf), tab.F2(gain))
	}
	return t, nil
}
