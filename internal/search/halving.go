// Successive halving: score a seeded pool of candidates on a short
// trace prefix, keep the top half, double the prefix, repeat until the
// finalists replay the full trace. Early rungs are cheap (the prefix
// engine decodes the first windows once per generation), and with the
// checkpointed incremental layer each surviving lineage processes each
// trace window at most once: the evaluator snapshots every candidate
// at its rung boundary, survivors restore and replay only the newly
// added windows, repeated window counts (the minRungWindows floor) are
// served from the eval memo, and eliminated candidates release their
// snapshots right after selection. Scores — and therefore survivor
// sets, winners and fronts — are byte-identical to re-simulating every
// rung from window 0 (Spec.Scratch forces that behaviour for the CI
// equivalence gate).
package search

import (
	"context"
	"math/rand"
)

// minRungWindows keeps the earliest rung meaningful: a score over a
// couple of windows is mostly warmup noise.
const minRungWindows = 4

func runHalving(ctx context.Context, ev *evaluator, onProgress func(Progress)) (*Result, error) {
	s := ev.spec
	gsize := gridSize(s.Space)
	// The rung schedule roughly doubles cost per survivor while halving
	// survivors, so a pool of budget/2 keeps the eval total within
	// budget (n + n/2 + ... <= 2n, modulo ceiling crumbs trimmed below).
	n := s.Budget / 2
	if n < 1 {
		n = 1
	}
	if n > gsize {
		n = gsize
	}
	var pool []candidate
	if n == gsize {
		pool = enumerate(s.Space)
	} else {
		rng := rand.New(rand.NewSource(s.Seed))
		pool = sample(rng, s.Space, n, make(map[string]bool, n))
	}
	rungs := 1
	for m := n; m > 1; m = (m + 1) / 2 {
		rungs++
	}
	K := ev.tr.WindowCount()

	var full []Eval // cumulative full-trace evals (front material)
	var best *Eval  // best at the deepest rung reached
	for r := 0; r < rungs && len(pool) > 0; r++ {
		// Prefix length: halved per rung walking back from the full
		// trace, floored so the first rung still sees real behaviour.
		w := 0
		if r < rungs-1 {
			w = K >> (rungs - 1 - r)
			if w < minRungWindows {
				w = minRungWindows
			}
			if w >= K {
				w = 0
			}
		}
		if ev.evals+len(pool) > s.Budget {
			pool = pool[:s.Budget-ev.evals]
			if len(pool) == 0 {
				break
			}
		}
		// Only this rung's pool can ever be extended again: release the
		// checkpoints of everything eliminated or trimmed away.
		ev.releaseStates(pool)

		evals, err := ev.evaluate(ctx, pool, w)
		if err != nil {
			return nil, err
		}
		if w == 0 {
			full = append(full, evals...)
		}
		order := rankByScore(s.Metric, evals)
		best = &evals[order[0]]
		if onProgress != nil {
			p := progressFor(s, r, ev.evals, w, full, best)
			p.WindowsResumed, p.WindowsReplayed = ev.lastResumed, ev.lastReplayed
			onProgress(p)
		}
		if r == rungs-1 {
			break
		}
		keepN := (len(pool) + 1) / 2
		next := make([]candidate, keepN)
		// Survivors keep their rank order, so the next rung's pool —
		// and with it every later decision — is a pure function of the
		// scores, which the replay engines make machine-independent.
		for k := 0; k < keepN; k++ {
			next[k] = pool[order[k]]
		}
		pool = next
	}
	ev.releaseStates(nil) // the run is over; nothing resumes past here
	r := finishResult(ev, full)
	if r.Winner == nil && best != nil && satisfies(*best, s.Constraints) {
		// Budget ran out before any full-trace rung: report the deepest
		// prefix best honestly, Windows marking the partial evidence.
		b := *best
		r.Winner = &b
		p := *best
		r.Peak = &p
	}
	return r, nil
}
