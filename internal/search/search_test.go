package search

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// tinySpec is the shared test optimization: a small two-dimensional
// space over a short mgrid recording.
func tinySpec() Spec {
	return Spec{
		Workload: "mgrid",
		Scale:    0.05,
		Space: []Dim{
			{Param: "streams", Values: []int{1, 4, 8}},
			{Param: "depth", Values: []int{1, 2}},
		},
		Budget: 12,
		Seed:   3,
	}
}

// TestRunDeterministicAcrossParallel is the acceptance gate for the
// optimizer's reproducibility: for a fixed seed the result is
// byte-identical across repeated runs and across -parallel widths, for
// both the grid oracle and seeded halving.
//
//simlint:deterministic streamsim/internal/search.Run
func TestRunDeterministicAcrossParallel(t *testing.T) {
	ctx := context.Background()
	for _, strategy := range []string{"grid", "halving"} {
		t.Run(strategy, func(t *testing.T) {
			var want []byte
			for _, parallel := range []int{1, 2, 4} {
				s := tinySpec()
				s.Strategy = strategy
				s.Parallel = parallel
				r, err := Run(ctx, s)
				if err != nil {
					t.Fatal(err)
				}
				// Parallelism is an execution knob, not part of the answer.
				r.Spec.Parallel = 0
				got, err := json.Marshal(r)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if string(got) != string(want) {
					t.Errorf("parallel=%d result diverges:\ngot  %s\nwant %s", parallel, got, want)
				}
			}
		})
	}
}

// TestScratchMatchesIncremental is the checkpoint layer's equivalence
// gate at package level: for every strategy, a run with the
// incremental-replay layer enabled must decide exactly what a
// Spec.Scratch run decides — same winner, front, peak, eval count and
// per-eval scores — while halving actually replays fewer references
// and serves the floored repeated rungs from the eval memo. Only the
// replay-cost accounting fields may differ.
func TestScratchMatchesIncremental(t *testing.T) {
	ctx := context.Background()
	for _, strategy := range []string{"halving", "pareto", "grid"} {
		t.Run(strategy, func(t *testing.T) {
			run := func(scratch bool) *Result {
				s := tinySpec()
				// applu's small input is an 8-window trace, so halving's
				// rung schedule hits the minRungWindows floor: repeated
				// window counts exercise the eval memo, not just the
				// checkpoint resume.
				s.Workload = "applu"
				s.Strategy = strategy
				s.Scratch = scratch
				r, err := Run(ctx, s)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			scratch := run(true)
			incr := run(false)
			if scratch.RefsSimulated != scratch.RefsScratch {
				t.Errorf("scratch run claims a saving: simulated %d of %d",
					scratch.RefsSimulated, scratch.RefsScratch)
			}
			if incr.RefsScratch != scratch.RefsScratch {
				t.Errorf("scratch-equivalent work diverges: %d vs %d",
					incr.RefsScratch, scratch.RefsScratch)
			}
			if strategy == "halving" {
				if incr.RefsSimulated >= scratch.RefsSimulated {
					t.Errorf("incremental halving replayed %d refs, scratch %d — no saving",
						incr.RefsSimulated, scratch.RefsSimulated)
				}
				if incr.CacheHits == 0 {
					t.Error("incremental halving served no evaluation from the memo")
				}
			}
			// Decisions must be byte-identical; only the cost accounting
			// may differ between the two modes.
			norm := func(r *Result) string {
				r.Spec.Scratch = false
				r.RefsSimulated, r.RefsScratch, r.CacheHits = 0, 0, 0
				b, err := json.Marshal(r)
				if err != nil {
					t.Fatal(err)
				}
				return string(b)
			}
			if got, want := norm(incr), norm(scratch); got != want {
				t.Errorf("incremental result diverges from scratch:\ngot  %s\nwant %s", got, want)
			}
		})
	}
}

// TestHalvingMatchesGridWinner checks the optimize-smoke property at
// package level: on a space the budget can cover, seeded successive
// halving converges on the same winner the exhaustive grid finds.
func TestHalvingMatchesGridWinner(t *testing.T) {
	ctx := context.Background()
	run := func(strategy string) *Result {
		s := tinySpec()
		s.Space = []Dim{{Param: "streams", Values: []int{1, 2, 4, 8}}}
		s.Strategy = strategy
		s.Budget = 16
		r, err := Run(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Winner == nil {
			t.Fatalf("%s found no winner", strategy)
		}
		return r
	}
	grid := run("grid")
	halving := run("halving")
	if grid.Summary() != halving.Summary() {
		t.Errorf("winners diverge:\ngrid    %s\nhalving %s", grid.Summary(), halving.Summary())
	}
	if halving.Winner.Windows != 0 {
		t.Errorf("halving winner scored on %d-window prefix, want full trace", halving.Winner.Windows)
	}
	if grid.Evals != 4 {
		t.Errorf("grid spent %d evals over a 4-point space", grid.Evals)
	}
	if halving.Evals > 16 {
		t.Errorf("halving spent %d evals, budget 16", halving.Evals)
	}
}

// TestParetoFrontImproves checks the streaming contract the service
// relies on: each generation's snapshot only improves — evaluations
// accumulate, the best objective never regresses, and every run stays
// within budget.
func TestParetoFrontImproves(t *testing.T) {
	ctx := context.Background()
	s := tinySpec()
	s.Strategy = "pareto"
	// A grid larger than the budget forces the sampled-then-neighbors
	// path, so several generations stream.
	s.Space = []Dim{
		{Param: "streams", Values: []int{1, 2, 4, 8}},
		{Param: "depth", Values: []int{1, 2}},
	}
	s.Budget = 6
	s = s.WithDefaults()
	var snaps []Progress
	r, err := RunProgress(ctx, s, func(p Progress) { snaps = append(snaps, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("want several generations, got %d snapshot(s)", len(snaps))
	}
	for i, p := range snaps {
		if p.Strategy != "pareto" || p.Budget != s.Budget {
			t.Errorf("snapshot %d mislabelled: %+v", i, p)
		}
		if p.FrontSize != len(p.Front) {
			t.Errorf("snapshot %d front_size %d != len(front) %d", i, p.FrontSize, len(p.Front))
		}
		if p.Best == nil {
			t.Fatalf("snapshot %d has no best", i)
		}
		if i == 0 {
			continue
		}
		prev := snaps[i-1]
		if p.Evals <= prev.Evals {
			t.Errorf("snapshot %d evals %d did not grow from %d", i, p.Evals, prev.Evals)
		}
		if score(s.Metric, *p.Best) < score(s.Metric, *prev.Best) {
			t.Errorf("snapshot %d best regressed: %v after %v", i, *p.Best, *prev.Best)
		}
	}
	if r.Evals > s.Budget {
		t.Errorf("spent %d evals, budget %d", r.Evals, s.Budget)
	}
	if len(r.Front) == 0 || r.Winner == nil {
		t.Fatalf("degenerate result: %+v", r)
	}
	// The front is sorted by ascending cost and mutually non-dominated
	// on (score, cost).
	for i := 1; i < len(r.Front); i++ {
		if r.Front[i-1].Cost > r.Front[i].Cost {
			t.Errorf("front not cost-sorted at %d", i)
		}
		if score(s.Metric, r.Front[i]) <= score(s.Metric, r.Front[i-1]) {
			t.Errorf("front point %d does not improve the metric", i)
		}
	}
}

// TestConstraintsAndCheapestWithin exercises the paper's two
// questions: the winner under a cost budget, and the cheapest
// configuration within 1% of peak.
func TestConstraintsAndCheapestWithin(t *testing.T) {
	ctx := context.Background()
	base := tinySpec()
	base.Space = []Dim{{Param: "streams", Values: []int{1, 8}}}
	base.Strategy = "grid"
	free, err := Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if free.Winner == nil || free.Peak == nil {
		t.Fatal("unconstrained run found no winner")
	}
	if free.Winner.Config != free.Peak.Config {
		t.Errorf("without constraints winner %q != peak %q", free.Winner.Config, free.Peak.Config)
	}
	if free.Peak.Config != "streams=8" {
		t.Fatalf("peak %q, expected more streams to win on hit rate", free.Peak.Config)
	}

	// Cap cost just under the peak's: the cheaper config must win while
	// the peak stays the peak.
	s := base
	s.Constraints = []Constraint{{Metric: "cost", Op: "<=", Value: free.Peak.Cost - 1}}
	capped, err := Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Winner == nil || capped.Winner.Config != "streams=1" {
		t.Fatalf("cost-capped winner = %+v, want streams=1", capped.Winner)
	}
	if capped.Peak == nil || capped.Peak.Config != "streams=8" {
		t.Errorf("constraints must not restrict the peak: %+v", capped.Peak)
	}

	// An unsatisfiable constraint yields no winner but keeps the front.
	s.Constraints = []Constraint{{Metric: "hit", Op: ">=", Value: 101}}
	none, err := Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if none.Winner != nil {
		t.Errorf("impossible constraint still chose %+v", none.Winner)
	}
	if len(none.Front) == 0 {
		t.Error("impossible constraint emptied the front")
	}
	if !strings.Contains(none.Summary(), "none") {
		t.Errorf("Summary() = %q, want a no-winner line", none.Summary())
	}

	// CheapestWithin(0) is the peak itself (or a cost-tied equal);
	// CheapestWithin(1) admits everything, so it's the cheapest front
	// point.
	if c := free.CheapestWithin(0); c == nil || c.MetricValue("hit") < free.Peak.Hit {
		t.Errorf("CheapestWithin(0) = %+v, want the peak's hit rate", c)
	}
	if c := free.CheapestWithin(1); c == nil || c.Cost != free.Front[0].Cost {
		t.Errorf("CheapestWithin(1) = %+v, want the cheapest front point", c)
	}
}

// TestRunCancelMidGeneration cancels from the first progress callback
// and expects the optimizer to stop with context.Canceled instead of
// finishing the remaining generations.
func TestRunCancelMidGeneration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := tinySpec()
	s.Strategy = "pareto"
	// Grid (6) larger than the budget's initial sample, so more
	// generations would follow if cancellation were ignored.
	s.Budget = 5
	calls := 0
	_, err := RunProgress(ctx, s, func(Progress) {
		calls++
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunProgress = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("optimizer kept going for %d generations after cancel", calls)
	}
}

func TestValidate(t *testing.T) {
	ok := tinySpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no workload", func(s *Spec) { s.Workload = "" }, "workload"},
		{"bad metric", func(s *Spec) { s.Metric = "ipc" }, "metric"},
		{"bad strategy", func(s *Spec) { s.Strategy = "anneal" }, "strategy"},
		{"bad scale", func(s *Spec) { s.Scale = 2 }, "scale"},
		{"empty space", func(s *Spec) { s.Space = nil }, "dimension"},
		{"unknown param", func(s *Spec) { s.Space[0].Param = "warp" }, "unknown parameter"},
		{"duplicate param", func(s *Spec) { s.Space[1].Param = "streams" }, "two dimensions"},
		{"empty values", func(s *Spec) { s.Space[0].Values = nil }, "no values"},
		{"duplicate value", func(s *Spec) { s.Space[0].Values = []int{4, 4} }, "duplicate value"},
		{"negative parallel", func(s *Spec) { s.Parallel = -1 }, "parallel"},
		{"grid over budget", func(s *Spec) { s.Strategy = "grid"; s.Budget = 3 }, "grid strategy"},
		{"bad constraint metric", func(s *Spec) {
			s.Constraints = []Constraint{{Metric: "cpi", Op: "<=", Value: 1}}
		}, "constraint metric"},
		{"bad constraint op", func(s *Spec) {
			s.Constraints = []Constraint{{Metric: "eb", Op: "<", Value: 1}}
		}, "constraint op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tinySpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestParseConstraint(t *testing.T) {
	c, err := ParseConstraint("eb<=30")
	if err != nil {
		t.Fatal(err)
	}
	if c != (Constraint{Metric: "eb", Op: "<=", Value: 30}) {
		t.Errorf("ParseConstraint = %+v", c)
	}
	if c.String() != "eb<=30" {
		t.Errorf("String = %q", c.String())
	}
	c, err = ParseConstraint(" hit >= 58.5 ")
	if err != nil {
		t.Fatal(err)
	}
	if c.Metric != "hit" || c.Op != ">=" || c.Value != 58.5 {
		t.Errorf("ParseConstraint = %+v", c)
	}
	for _, bad := range []string{"", "eb=30", "eb<=x", "eb"} {
		if _, err := ParseConstraint(bad); err == nil {
			t.Errorf("ParseConstraint(%q) accepted", bad)
		}
	}
}

// TestEnumerateAndNeighbors pins candidate-generation order, which the
// deterministic strategies depend on.
func TestEnumerateAndNeighbors(t *testing.T) {
	dims := []Dim{
		{Param: "streams", Values: []int{1, 2}},
		{Param: "depth", Values: []int{1, 2, 3}},
	}
	var got []string
	for _, c := range enumerate(dims) {
		got = append(got, c.key())
	}
	want := []string{"1,1", "1,2", "1,3", "2,1", "2,2", "2,3"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("enumerate = %v, want %v", got, want)
	}
	var nb []string
	for _, c := range neighbors(candidate{2, 2}, dims) {
		nb = append(nb, c.key())
	}
	wantNb := []string{"1,2", "2,1", "2,3"}
	if strings.Join(nb, " ") != strings.Join(wantNb, " ") {
		t.Errorf("neighbors = %v, want %v", nb, wantNb)
	}
}
