// The batched evaluator: realize a generation of candidates as
// core.Systems, feed them through the fan-out replay engine against
// the one recorded trace, and score each on every metric at once.
package search

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"streamsim/internal/core"
	"streamsim/internal/cost"
	"streamsim/internal/sweeprun"
	"streamsim/internal/trace"
)

// baselineBandwidthMBps fixes the priced memory bandwidth so cost
// varies only with the searched hardware (streams, filters, victim
// SRAM); it matches the T3D-class 300 MB/s node of the cost package's
// examples.
const baselineBandwidthMBps = 300

// evaluator scores candidates against one recorded trace. It is the
// single evaluation path for every strategy, so halving, pareto and
// grid results are comparable by construction.
type evaluator struct {
	spec   Spec
	tr     *trace.Store
	prices cost.Prices
	evals  int // running count, owned by the strategy goroutine
}

// config realizes a candidate by applying each dimension's mutator to
// the paper-default configuration. Parameters outside the space stay
// at their paper defaults.
func (ev *evaluator) config(c candidate) (core.Config, error) {
	cfg := core.DefaultConfig()
	for i, d := range ev.spec.Space {
		if err := sweeprun.ParamSet[d.Param].Apply(&cfg, c[i]); err != nil {
			return core.Config{}, fmt.Errorf("search: %s=%d: %w", d.Param, c[i], err)
		}
	}
	return cfg, nil
}

// nodeCost prices the candidate's hardware delta: stream-buffer
// entries (PerStream prices a paper-depth buffer, so deeper buffers
// scale proportionally), filter logic if any filter is present, and
// victim-cache entries as SRAM.
func (ev *evaluator) nodeCost(cfg core.Config) (float64, error) {
	def := core.DefaultConfig()
	depth := cfg.Streams.Depth
	if depth <= 0 {
		depth = def.Streams.Depth
	}
	refDepth := def.Streams.Depth
	if refDepth <= 0 {
		refDepth = 1
	}
	units := (cfg.Streams.Streams*depth + refDepth - 1) / refDepth
	var sramKB uint
	if cfg.VictimEntries > 0 {
		bytes := cfg.VictimEntries * int(cfg.Geometry.BlockBytes())
		sramKB = uint((bytes + 1023) / 1024)
		if sramKB == 0 {
			sramKB = 1
		}
	}
	n := cost.Node{
		L2KB:          sramKB,
		Streams:       units,
		Filtered:      cfg.UnitFilterEntries > 0 || cfg.StrideFilterEntries > 0,
		BandwidthMBps: baselineBandwidthMBps,
	}
	return ev.prices.Cost(n)
}

// evaluate scores one generation. windows > 0 replays only that many
// sample windows (a cheap halving rung); windows == 0 replays the full
// trace through the window-sharded engine with zero options — the same
// machine-independent call the sweep engine uses, so full-trace scores
// are identical to a solo sweep point's and independent of generation
// grouping. The generation is split into up to Spec.Parallel
// contiguous groups replayed concurrently; per-candidate results never
// depend on the grouping, so any width produces identical evaluations.
func (ev *evaluator) evaluate(ctx context.Context, pool []candidate, windows int) ([]Eval, error) {
	if len(pool) == 0 {
		return nil, nil
	}
	evals := make([]Eval, len(pool))
	systems := make([]*core.System, len(pool))
	for i, c := range pool {
		cfg, err := ev.config(c)
		if err != nil {
			return nil, err
		}
		costUSD, err := ev.nodeCost(cfg)
		if err != nil {
			return nil, err
		}
		sys, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		systems[i] = sys
		evals[i] = Eval{
			Config:  c.label(ev.spec.Space),
			Values:  append([]int(nil), c...),
			Cost:    costUSD,
			Windows: windows,
		}
	}

	groups := ev.spec.Parallel
	if groups < 1 {
		groups = 1
	}
	if groups > len(pool) {
		groups = len(pool)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, groups)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		lo := g * len(pool) / groups
		hi := (g + 1) * len(pool) / groups
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			group := systems[lo:hi]
			var err error
			if windows > 0 {
				err = core.ReplayStoreMultiPrefix(runCtx, group, ev.tr, windows)
			} else {
				err = core.ReplayStoreMultiWindowed(runCtx, group, ev.tr, core.ShardOptions{})
			}
			if err != nil {
				errs[g] = err
				cancel()
			}
		}(g, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, sys := range systems {
		if windows <= 0 {
			// Instructions are a whole-trace quantity; prefix rungs rank
			// on access-stream metrics only, which don't need them.
			sys.AddInstructions(ev.tr.Instructions())
		}
		r := sys.Results()
		evals[i].Hit = r.StreamHitRate()
		evals[i].EB = r.ExtraBandwidth()
		evals[i].MissRate = r.DataMissRate()
	}
	ev.evals += len(pool)
	evalsTotal.Add(uint64(len(pool)))
	return evals, nil
}

// label renders "streams=8 depth=2" in dimension order.
func (c candidate) label(dims []Dim) string {
	var b strings.Builder
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", d.Param, c[i])
	}
	return b.String()
}
