// The batched evaluator: realize a generation of candidates as
// core.Systems, feed them through the fan-out replay engine against
// the one recorded trace, and score each on every metric at once.
//
// The evaluator also owns the incremental-replay layer (DESIGN.md §12):
// a generation-spanning memo of finished evaluations keyed by canonical
// candidate key × window count, and one rung checkpoint per live
// candidate so successive halving extends survivors from their last
// scored window instead of re-simulating from window 0. Both are
// bookkeeping on the strategy goroutine only — replay workers never
// touch them — so results stay identical at any Spec.Parallel width,
// and Spec.Scratch disables the whole layer without changing a single
// score.
package search

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"streamsim/internal/core"
	"streamsim/internal/cost"
	"streamsim/internal/sweeprun"
	"streamsim/internal/trace"
)

// baselineBandwidthMBps fixes the priced memory bandwidth so cost
// varies only with the searched hardware (streams, filters, victim
// SRAM); it matches the T3D-class 300 MB/s node of the cost package's
// examples.
const baselineBandwidthMBps = 300

// evaluator scores candidates against one recorded trace. It is the
// single evaluation path for every strategy, so halving, pareto and
// grid results are comparable by construction.
type evaluator struct {
	spec   Spec
	tr     *trace.Store
	prices cost.Prices
	evals  int // running count, owned by the strategy goroutine

	// Incremental-replay state, all owned by the strategy goroutine.
	// memo and states are nil when Spec.Scratch disables the layer;
	// memo hits still count toward evals and the budget, so the
	// strategies' decisions — and with them winners, fronts and eval
	// totals — are byte-identical with the layer on or off.
	memo      map[string]Eval       // candidate key × windows -> finished eval
	states    map[string]*evalState // candidate key -> latest rung checkpoint
	cacheHits int                   // evaluations served from memo
	refsSim   int64                 // trace references actually replayed
	refsScr   int64                 // references a from-scratch run would replay
	// lastResumed/lastReplayed split the latest generation's window
	// work: windows skipped by restoring checkpoints vs replayed.
	lastResumed  int
	lastReplayed int
}

// evalState is one candidate's resumable rung state: the snapshot taken
// after its latest prefix evaluation and the window count it covers.
type evalState struct {
	ck      *core.Checkpoint
	windows int
}

// memoKey is the eval memo key: canonical candidate key × the raw
// windows argument (0 for full trace — full and whole-trace-prefix
// evaluations differ in instruction accounting, and the raw argument
// keeps them distinct).
func memoKey(c candidate, windows int) string {
	return c.key() + "@" + strconv.Itoa(windows)
}

// releaseStates drops every rung checkpoint except those of the kept
// candidates, releasing eliminated snapshots to the collector. The
// kept map is rebuilt in pool order, so no map is ever ranged.
func (ev *evaluator) releaseStates(keep []candidate) {
	if ev.states == nil {
		return
	}
	kept := make(map[string]*evalState, len(keep))
	for _, c := range keep {
		k := c.key()
		if st, ok := ev.states[k]; ok {
			kept[k] = st
		}
	}
	ev.states = kept
}

// config realizes a candidate by applying each dimension's mutator to
// the paper-default configuration. Parameters outside the space stay
// at their paper defaults.
func (ev *evaluator) config(c candidate) (core.Config, error) {
	cfg := core.DefaultConfig()
	for i, d := range ev.spec.Space {
		if err := sweeprun.ParamSet[d.Param].Apply(&cfg, c[i]); err != nil {
			return core.Config{}, fmt.Errorf("search: %s=%d: %w", d.Param, c[i], err)
		}
	}
	return cfg, nil
}

// nodeCost prices the candidate's hardware delta: stream-buffer
// entries (PerStream prices a paper-depth buffer, so deeper buffers
// scale proportionally), filter logic if any filter is present, and
// victim-cache entries as SRAM.
func (ev *evaluator) nodeCost(cfg core.Config) (float64, error) {
	def := core.DefaultConfig()
	depth := cfg.Streams.Depth
	if depth <= 0 {
		depth = def.Streams.Depth
	}
	refDepth := def.Streams.Depth
	if refDepth <= 0 {
		refDepth = 1
	}
	units := (cfg.Streams.Streams*depth + refDepth - 1) / refDepth
	var sramKB uint
	if cfg.VictimEntries > 0 {
		bytes := cfg.VictimEntries * int(cfg.Geometry.BlockBytes())
		sramKB = uint((bytes + 1023) / 1024)
		if sramKB == 0 {
			sramKB = 1
		}
	}
	n := cost.Node{
		L2KB:          sramKB,
		Streams:       units,
		Filtered:      cfg.UnitFilterEntries > 0 || cfg.StrideFilterEntries > 0,
		BandwidthMBps: baselineBandwidthMBps,
	}
	return ev.prices.Cost(n)
}

// evaluate scores one generation. windows > 0 replays only that many
// sample windows (a cheap halving rung); windows == 0 replays the full
// trace through the window-sharded engine with zero options — the same
// machine-independent call the sweep engine uses, so full-trace scores
// are identical to a solo sweep point's and independent of generation
// grouping. The generation is split into up to Spec.Parallel
// contiguous groups replayed concurrently; per-candidate results never
// depend on the grouping, so any width produces identical evaluations.
//
// With the incremental layer enabled, a candidate whose exact (key,
// windows) evaluation is memoized is served without replaying anything,
// and a candidate holding a rung checkpoint at window F <= windows
// restores it and replays only [F, windows). A full-trace evaluation
// resumes from a checkpoint only when the windowed engine would have
// replayed exactly anyway (core.FullReplayResumable); on shardable
// traces its warmup-bounded approximation is the score of record, so
// those evaluations run from scratch.
func (ev *evaluator) evaluate(ctx context.Context, pool []candidate, windows int) ([]Eval, error) {
	if len(pool) == 0 {
		return nil, nil
	}
	K := ev.tr.WindowCount()
	to := windows
	if to <= 0 || to > K {
		to = K
	}
	scratchRefs := int64(ev.tr.PrefixLen(to))
	fullEval := windows <= 0
	ev.lastResumed, ev.lastReplayed = 0, 0

	evals := make([]Eval, len(pool))
	type job struct {
		idx  int // index into pool/evals
		cfg  core.Config
		from int // resume window (0 = from scratch)
		sys  *core.System
	}
	jobs := make([]job, 0, len(pool))
	for i, c := range pool {
		if e, ok := ev.memo[memoKey(c, windows)]; ok {
			evals[i] = e
			ev.cacheHits++
			evalCacheHits.Add(1)
			ev.refsScr += scratchRefs
			continue
		}
		cfg, err := ev.config(c)
		if err != nil {
			return nil, err
		}
		costUSD, err := ev.nodeCost(cfg)
		if err != nil {
			return nil, err
		}
		evals[i] = Eval{
			Config:  c.label(ev.spec.Space),
			Values:  append([]int(nil), c...),
			Cost:    costUSD,
			Windows: windows,
		}
		jobs = append(jobs, job{idx: i, cfg: cfg})
	}

	// Realize the systems, then swap in checkpoint restores where the
	// incremental layer allows a resume.
	for j := range jobs {
		sys, err := core.New(jobs[j].cfg)
		if err != nil {
			return nil, err
		}
		jobs[j].sys = sys
	}
	if len(ev.states) > 0 && len(jobs) > 0 {
		resumeOK := !fullEval
		if fullEval {
			fresh := make([]*core.System, len(jobs))
			for j := range jobs {
				fresh[j] = jobs[j].sys
			}
			resumeOK = core.FullReplayResumable(fresh, ev.tr)
		}
		if resumeOK {
			for j := range jobs {
				if st := ev.states[pool[jobs[j].idx].key()]; st != nil && st.windows > 0 && st.windows <= to {
					jobs[j].from = st.windows
					jobs[j].sys = st.ck.Restore()
				}
			}
		}
	}

	if len(jobs) > 0 {
		groups := ev.spec.Parallel
		if groups < 1 {
			groups = 1
		}
		if groups > len(jobs) {
			groups = len(jobs)
		}
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		errs := make([]error, groups)
		var wg sync.WaitGroup
		for g := 0; g < groups; g++ {
			lo := g * len(jobs) / groups
			hi := (g + 1) * len(jobs) / groups
			wg.Add(1)
			go func(g int, js []job) {
				defer wg.Done()
				// Within a group, candidates resuming from the same window
				// replay together (one decode pass, shared-front tap); in
				// practice a rung's survivors all resume from the previous
				// rung's boundary, so this is one run per group.
				for len(js) > 0 {
					run := 1
					for run < len(js) && js[run].from == js[0].from {
						run++
					}
					group := make([]*core.System, run)
					for k := 0; k < run; k++ {
						group[k] = js[k].sys
					}
					var err error
					if fullEval && js[0].from == 0 {
						err = core.ReplayStoreMultiWindowed(runCtx, group, ev.tr, core.ShardOptions{})
					} else {
						err = core.ReplayStoreMultiPrefixFrom(runCtx, group, ev.tr, js[0].from, to)
					}
					if err != nil {
						errs[g] = err
						cancel()
						return
					}
					js = js[run:]
				}
			}(g, jobs[lo:hi])
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	for _, jb := range jobs {
		if ev.states != nil && windows > 0 {
			// Snapshot before Results: Finish would close the bandwidth
			// ledger, and a closed ledger cannot be extended exactly.
			ev.states[pool[jb.idx].key()] = &evalState{ck: jb.sys.Checkpoint(), windows: to}
		}
		if fullEval {
			// Instructions are a whole-trace quantity; prefix rungs rank
			// on access-stream metrics only, which don't need them.
			jb.sys.AddInstructions(ev.tr.Instructions())
		}
		r := jb.sys.Results()
		e := &evals[jb.idx]
		e.Hit = r.StreamHitRate()
		e.EB = r.ExtraBandwidth()
		e.MissRate = r.DataMissRate()
		ev.refsSim += int64(ev.tr.PrefixLen(to) - ev.tr.PrefixLen(jb.from))
		ev.refsScr += scratchRefs
		ev.lastResumed += jb.from
		ev.lastReplayed += to - jb.from
		if ev.memo != nil {
			ev.memo[memoKey(pool[jb.idx], windows)] = *e
		}
	}
	ev.evals += len(pool)
	evalsTotal.Add(uint64(len(pool)))
	return evals, nil
}

// label renders "streams=8 depth=2" in dimension order.
func (c candidate) label(dims []Dim) string {
	var b strings.Builder
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", d.Param, c[i])
	}
	return b.String()
}
