// Exhaustive grid evaluation: the oracle strategy. Small enough
// spaces can skip cleverness entirely, and the CI optimize-smoke gate
// checks the seeded strategies find the same winner this one does.
package search

import "context"

func runGrid(ctx context.Context, ev *evaluator, onProgress func(Progress)) (*Result, error) {
	s := ev.spec
	pool := enumerate(s.Space)
	evals, err := ev.evaluate(ctx, pool, 0)
	if err != nil {
		return nil, err
	}
	if onProgress != nil {
		onProgress(progressFor(s, 0, ev.evals, 0, evals, bestOf(s.Metric, evals)))
	}
	return finishResult(ev, evals), nil
}
