// Pareto-front exploration over (metric, cost): evaluate a seeded
// sample on the full trace, compute the cost.Front, then spend the
// remaining budget evaluating one-step neighbours of front members —
// the spots where the cost-effectiveness frontier can still move.
// The front is recomputed over every evaluation so far, so each
// generation's snapshot only ever improves.
package search

import (
	"context"
	"math/rand"
)

func runPareto(ctx context.Context, ev *evaluator, onProgress func(Progress)) (*Result, error) {
	s := ev.spec
	gsize := gridSize(s.Space)
	rng := rand.New(rand.NewSource(s.Seed))
	seen := make(map[string]bool, s.Budget)

	initial := s.Budget / 4
	if initial < 1 {
		initial = 1
	}
	if initial > gsize {
		initial = gsize
	}
	if gsize <= s.Budget {
		// The whole grid fits the budget: exploration can only rediscover
		// enumeration, so skip straight to it.
		initial = gsize
	}
	var pool []candidate
	if initial == gsize {
		pool = enumerate(s.Space)
		for _, c := range pool {
			seen[c.key()] = true
		}
	} else {
		pool = sample(rng, s.Space, initial, seen)
	}

	var full []Eval
	for gen := 0; len(pool) > 0 && ev.evals < s.Budget; gen++ {
		if ev.evals+len(pool) > s.Budget {
			pool = pool[:s.Budget-ev.evals]
		}
		evals, err := ev.evaluate(ctx, pool, 0)
		if err != nil {
			return nil, err
		}
		full = append(full, evals...)
		front := computeFront(s.Metric, full)
		if onProgress != nil {
			onProgress(progressFor(s, gen, ev.evals, 0, full, bestOf(s.Metric, full)))
		}
		// Next generation: unseen one-step moves from the front, walked
		// in front order (ascending cost) then dimension order — a
		// deterministic frontier expansion.
		var next []candidate
		for _, fe := range front {
			for _, nb := range neighbors(candidate(fe.Values), s.Space) {
				k := nb.key()
				if seen[k] {
					continue
				}
				seen[k] = true
				next = append(next, nb)
			}
		}
		if len(next) == 0 && len(seen) < gsize {
			// Frontier closed but grid and budget remain: restart from a
			// fresh seeded sample to escape a local plateau.
			batch := s.Budget - ev.evals
			if batch > initial {
				batch = initial
			}
			next = sample(rng, s.Space, batch, seen)
		}
		pool = next
	}
	return finishResult(ev, full), nil
}
